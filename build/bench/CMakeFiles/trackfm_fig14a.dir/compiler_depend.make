# Empty custom commands generated dependencies file for trackfm_fig14a.
# This may be replaced when dependencies are built.
