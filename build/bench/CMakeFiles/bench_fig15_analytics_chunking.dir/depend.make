# Empty dependencies file for bench_fig15_analytics_chunking.
# This may be replaced when dependencies are built.
