file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_analytics_chunking.dir/bench_fig15_analytics_chunking.cc.o"
  "CMakeFiles/bench_fig15_analytics_chunking.dir/bench_fig15_analytics_chunking.cc.o.d"
  "bench_fig15_analytics_chunking"
  "bench_fig15_analytics_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_analytics_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
