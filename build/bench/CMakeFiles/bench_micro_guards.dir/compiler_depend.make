# Empty compiler generated dependencies file for bench_micro_guards.
# This may be replaced when dependencies are built.
