file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_guards.dir/bench_micro_guards.cc.o"
  "CMakeFiles/bench_micro_guards.dir/bench_micro_guards.cc.o.d"
  "bench_micro_guards"
  "bench_micro_guards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_guards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
