file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_stream_vs_fastswap.dir/bench_fig12_stream_vs_fastswap.cc.o"
  "CMakeFiles/bench_fig12_stream_vs_fastswap.dir/bench_fig12_stream_vs_fastswap.cc.o.d"
  "bench_fig12_stream_vs_fastswap"
  "bench_fig12_stream_vs_fastswap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_stream_vs_fastswap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
