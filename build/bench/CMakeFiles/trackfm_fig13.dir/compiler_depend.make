# Empty custom commands generated dependencies file for trackfm_fig13.
# This may be replaced when dependencies are built.
