# Empty custom commands generated dependencies file for trackfm_table1.
# This may be replaced when dependencies are built.
