file(REMOVE_RECURSE
  "CMakeFiles/trackfm_table1"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/trackfm_table1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
