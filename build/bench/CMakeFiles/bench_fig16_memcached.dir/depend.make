# Empty dependencies file for bench_fig16_memcached.
# This may be replaced when dependencies are built.
