file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_memcached.dir/bench_fig16_memcached.cc.o"
  "CMakeFiles/bench_fig16_memcached.dir/bench_fig16_memcached.cc.o.d"
  "bench_fig16_memcached"
  "bench_fig16_memcached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
