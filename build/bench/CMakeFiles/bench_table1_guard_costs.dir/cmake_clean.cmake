file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_guard_costs.dir/bench_table1_guard_costs.cc.o"
  "CMakeFiles/bench_table1_guard_costs.dir/bench_table1_guard_costs.cc.o.d"
  "bench_table1_guard_costs"
  "bench_table1_guard_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_guard_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
