file(REMOVE_RECURSE
  "CMakeFiles/trackfm_fig17a"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/trackfm_fig17a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
