# Empty dependencies file for bench_fig13_io_amplification.
# This may be replaced when dependencies are built.
