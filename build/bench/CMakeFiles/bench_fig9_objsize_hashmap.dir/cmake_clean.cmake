file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_objsize_hashmap.dir/bench_fig9_objsize_hashmap.cc.o"
  "CMakeFiles/bench_fig9_objsize_hashmap.dir/bench_fig9_objsize_hashmap.cc.o.d"
  "bench_fig9_objsize_hashmap"
  "bench_fig9_objsize_hashmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_objsize_hashmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
