# Empty compiler generated dependencies file for bench_fig9_objsize_hashmap.
# This may be replaced when dependencies are built.
