file(REMOVE_RECURSE
  "CMakeFiles/trackfm_fig15"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/trackfm_fig15.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
