# Empty dependencies file for bench_fig11_prefetch.
# This may be replaced when dependencies are built.
