# Empty custom commands generated dependencies file for trackfm_fig16a.
# This may be replaced when dependencies are built.
