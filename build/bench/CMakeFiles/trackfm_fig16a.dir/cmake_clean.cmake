file(REMOVE_RECURSE
  "CMakeFiles/trackfm_fig16a"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/trackfm_fig16a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
