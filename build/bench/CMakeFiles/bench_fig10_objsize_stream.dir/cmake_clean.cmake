file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_objsize_stream.dir/bench_fig10_objsize_stream.cc.o"
  "CMakeFiles/bench_fig10_objsize_stream.dir/bench_fig10_objsize_stream.cc.o.d"
  "bench_fig10_objsize_stream"
  "bench_fig10_objsize_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_objsize_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
