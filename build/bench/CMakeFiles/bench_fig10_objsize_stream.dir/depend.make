# Empty dependencies file for bench_fig10_objsize_stream.
# This may be replaced when dependencies are built.
