file(REMOVE_RECURSE
  "CMakeFiles/trackfm_sec46"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/trackfm_sec46.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
