# Empty custom commands generated dependencies file for trackfm_sec46.
# This may be replaced when dependencies are built.
