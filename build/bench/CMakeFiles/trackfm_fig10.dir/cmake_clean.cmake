file(REMOVE_RECURSE
  "CMakeFiles/trackfm_fig10"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/trackfm_fig10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
