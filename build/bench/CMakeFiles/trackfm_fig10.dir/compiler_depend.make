# Empty custom commands generated dependencies file for trackfm_fig10.
# This may be replaced when dependencies are built.
