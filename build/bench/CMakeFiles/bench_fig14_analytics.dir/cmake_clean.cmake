file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_analytics.dir/bench_fig14_analytics.cc.o"
  "CMakeFiles/bench_fig14_analytics.dir/bench_fig14_analytics.cc.o.d"
  "bench_fig14_analytics"
  "bench_fig14_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
