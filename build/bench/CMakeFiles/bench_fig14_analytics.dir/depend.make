# Empty dependencies file for bench_fig14_analytics.
# This may be replaced when dependencies are built.
