file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_nas.dir/bench_fig17_nas.cc.o"
  "CMakeFiles/bench_fig17_nas.dir/bench_fig17_nas.cc.o.d"
  "bench_fig17_nas"
  "bench_fig17_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
