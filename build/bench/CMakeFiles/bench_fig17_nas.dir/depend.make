# Empty dependencies file for bench_fig17_nas.
# This may be replaced when dependencies are built.
