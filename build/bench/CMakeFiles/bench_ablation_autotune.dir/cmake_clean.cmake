file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_autotune.dir/bench_ablation_autotune.cc.o"
  "CMakeFiles/bench_ablation_autotune.dir/bench_ablation_autotune.cc.o.d"
  "bench_ablation_autotune"
  "bench_ablation_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
