file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_kmeans_chunking.dir/bench_fig8_kmeans_chunking.cc.o"
  "CMakeFiles/bench_fig8_kmeans_chunking.dir/bench_fig8_kmeans_chunking.cc.o.d"
  "bench_fig8_kmeans_chunking"
  "bench_fig8_kmeans_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_kmeans_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
