# Empty dependencies file for bench_fig8_kmeans_chunking.
# This may be replaced when dependencies are built.
