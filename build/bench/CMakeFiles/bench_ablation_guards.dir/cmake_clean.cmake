file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_guards.dir/bench_ablation_guards.cc.o"
  "CMakeFiles/bench_ablation_guards.dir/bench_ablation_guards.cc.o.d"
  "bench_ablation_guards"
  "bench_ablation_guards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_guards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
