file(REMOVE_RECURSE
  "CMakeFiles/trackfm_fig11"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/trackfm_fig11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
