# Empty dependencies file for bench_sec46_compile_costs.
# This may be replaced when dependencies are built.
