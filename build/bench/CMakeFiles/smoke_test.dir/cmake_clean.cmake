file(REMOVE_RECURSE
  "CMakeFiles/smoke_test"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
