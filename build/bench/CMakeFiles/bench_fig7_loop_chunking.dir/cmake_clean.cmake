file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_loop_chunking.dir/bench_fig7_loop_chunking.cc.o"
  "CMakeFiles/bench_fig7_loop_chunking.dir/bench_fig7_loop_chunking.cc.o.d"
  "bench_fig7_loop_chunking"
  "bench_fig7_loop_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_loop_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
