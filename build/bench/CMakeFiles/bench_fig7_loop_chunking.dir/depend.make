# Empty dependencies file for bench_fig7_loop_chunking.
# This may be replaced when dependencies are built.
