file(REMOVE_RECURSE
  "CMakeFiles/trackfm_fig7"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/trackfm_fig7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
