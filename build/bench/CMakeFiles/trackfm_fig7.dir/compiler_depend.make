# Empty custom commands generated dependencies file for trackfm_fig7.
# This may be replaced when dependencies are built.
