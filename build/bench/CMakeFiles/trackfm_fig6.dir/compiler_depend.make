# Empty custom commands generated dependencies file for trackfm_fig6.
# This may be replaced when dependencies are built.
