# Empty custom commands generated dependencies file for trackfm_fig9.
# This may be replaced when dependencies are built.
