file(REMOVE_RECURSE
  "CMakeFiles/trackfm_fig9"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/trackfm_fig9.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
