# Empty dependencies file for taxi_analytics.
# This may be replaced when dependencies are built.
