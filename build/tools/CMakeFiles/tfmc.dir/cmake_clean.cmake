file(REMOVE_RECURSE
  "CMakeFiles/tfmc.dir/tfmc.cc.o"
  "CMakeFiles/tfmc.dir/tfmc.cc.o.d"
  "tfmc"
  "tfmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
