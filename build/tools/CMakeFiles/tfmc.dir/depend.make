# Empty dependencies file for tfmc.
# This may be replaced when dependencies are built.
