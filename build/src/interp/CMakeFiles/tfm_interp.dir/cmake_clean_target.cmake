file(REMOVE_RECURSE
  "libtfm_interp.a"
)
