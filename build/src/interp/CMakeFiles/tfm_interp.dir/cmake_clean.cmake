file(REMOVE_RECURSE
  "CMakeFiles/tfm_interp.dir/interpreter.cc.o"
  "CMakeFiles/tfm_interp.dir/interpreter.cc.o.d"
  "libtfm_interp.a"
  "libtfm_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfm_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
