# Empty compiler generated dependencies file for tfm_interp.
# This may be replaced when dependencies are built.
