# Empty compiler generated dependencies file for tfm_net.
# This may be replaced when dependencies are built.
