file(REMOVE_RECURSE
  "CMakeFiles/tfm_net.dir/network_model.cc.o"
  "CMakeFiles/tfm_net.dir/network_model.cc.o.d"
  "libtfm_net.a"
  "libtfm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
