file(REMOVE_RECURSE
  "libtfm_net.a"
)
