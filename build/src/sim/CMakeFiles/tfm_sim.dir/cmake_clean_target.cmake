file(REMOVE_RECURSE
  "libtfm_sim.a"
)
