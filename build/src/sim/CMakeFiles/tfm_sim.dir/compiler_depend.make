# Empty compiler generated dependencies file for tfm_sim.
# This may be replaced when dependencies are built.
