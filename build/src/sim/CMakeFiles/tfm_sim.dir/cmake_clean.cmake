file(REMOVE_RECURSE
  "CMakeFiles/tfm_sim.dir/cost_params.cc.o"
  "CMakeFiles/tfm_sim.dir/cost_params.cc.o.d"
  "CMakeFiles/tfm_sim.dir/stats.cc.o"
  "CMakeFiles/tfm_sim.dir/stats.cc.o.d"
  "CMakeFiles/tfm_sim.dir/zipf.cc.o"
  "CMakeFiles/tfm_sim.dir/zipf.cc.o.d"
  "libtfm_sim.a"
  "libtfm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
