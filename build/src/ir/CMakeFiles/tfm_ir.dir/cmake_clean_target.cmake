file(REMOVE_RECURSE
  "libtfm_ir.a"
)
