file(REMOVE_RECURSE
  "CMakeFiles/tfm_ir.dir/parser.cc.o"
  "CMakeFiles/tfm_ir.dir/parser.cc.o.d"
  "CMakeFiles/tfm_ir.dir/printer.cc.o"
  "CMakeFiles/tfm_ir.dir/printer.cc.o.d"
  "CMakeFiles/tfm_ir.dir/type.cc.o"
  "CMakeFiles/tfm_ir.dir/type.cc.o.d"
  "CMakeFiles/tfm_ir.dir/verifier.cc.o"
  "CMakeFiles/tfm_ir.dir/verifier.cc.o.d"
  "libtfm_ir.a"
  "libtfm_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfm_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
