# Empty compiler generated dependencies file for tfm_ir.
# This may be replaced when dependencies are built.
