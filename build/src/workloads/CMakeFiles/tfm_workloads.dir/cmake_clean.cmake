file(REMOVE_RECURSE
  "CMakeFiles/tfm_workloads.dir/backends.cc.o"
  "CMakeFiles/tfm_workloads.dir/backends.cc.o.d"
  "CMakeFiles/tfm_workloads.dir/dataframe.cc.o"
  "CMakeFiles/tfm_workloads.dir/dataframe.cc.o.d"
  "CMakeFiles/tfm_workloads.dir/hashmap.cc.o"
  "CMakeFiles/tfm_workloads.dir/hashmap.cc.o.d"
  "CMakeFiles/tfm_workloads.dir/kmeans.cc.o"
  "CMakeFiles/tfm_workloads.dir/kmeans.cc.o.d"
  "CMakeFiles/tfm_workloads.dir/memcached.cc.o"
  "CMakeFiles/tfm_workloads.dir/memcached.cc.o.d"
  "CMakeFiles/tfm_workloads.dir/nas.cc.o"
  "CMakeFiles/tfm_workloads.dir/nas.cc.o.d"
  "CMakeFiles/tfm_workloads.dir/stream.cc.o"
  "CMakeFiles/tfm_workloads.dir/stream.cc.o.d"
  "CMakeFiles/tfm_workloads.dir/trace_replay.cc.o"
  "CMakeFiles/tfm_workloads.dir/trace_replay.cc.o.d"
  "libtfm_workloads.a"
  "libtfm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
