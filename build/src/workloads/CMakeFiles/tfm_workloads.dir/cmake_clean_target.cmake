file(REMOVE_RECURSE
  "libtfm_workloads.a"
)
