# Empty dependencies file for tfm_workloads.
# This may be replaced when dependencies are built.
