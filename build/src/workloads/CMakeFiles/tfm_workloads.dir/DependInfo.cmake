
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/backends.cc" "src/workloads/CMakeFiles/tfm_workloads.dir/backends.cc.o" "gcc" "src/workloads/CMakeFiles/tfm_workloads.dir/backends.cc.o.d"
  "/root/repo/src/workloads/dataframe.cc" "src/workloads/CMakeFiles/tfm_workloads.dir/dataframe.cc.o" "gcc" "src/workloads/CMakeFiles/tfm_workloads.dir/dataframe.cc.o.d"
  "/root/repo/src/workloads/hashmap.cc" "src/workloads/CMakeFiles/tfm_workloads.dir/hashmap.cc.o" "gcc" "src/workloads/CMakeFiles/tfm_workloads.dir/hashmap.cc.o.d"
  "/root/repo/src/workloads/kmeans.cc" "src/workloads/CMakeFiles/tfm_workloads.dir/kmeans.cc.o" "gcc" "src/workloads/CMakeFiles/tfm_workloads.dir/kmeans.cc.o.d"
  "/root/repo/src/workloads/memcached.cc" "src/workloads/CMakeFiles/tfm_workloads.dir/memcached.cc.o" "gcc" "src/workloads/CMakeFiles/tfm_workloads.dir/memcached.cc.o.d"
  "/root/repo/src/workloads/nas.cc" "src/workloads/CMakeFiles/tfm_workloads.dir/nas.cc.o" "gcc" "src/workloads/CMakeFiles/tfm_workloads.dir/nas.cc.o.d"
  "/root/repo/src/workloads/stream.cc" "src/workloads/CMakeFiles/tfm_workloads.dir/stream.cc.o" "gcc" "src/workloads/CMakeFiles/tfm_workloads.dir/stream.cc.o.d"
  "/root/repo/src/workloads/trace_replay.cc" "src/workloads/CMakeFiles/tfm_workloads.dir/trace_replay.cc.o" "gcc" "src/workloads/CMakeFiles/tfm_workloads.dir/trace_replay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tfm/CMakeFiles/tfm_tfm.dir/DependInfo.cmake"
  "/root/repo/build/src/fastswap/CMakeFiles/tfm_fastswap.dir/DependInfo.cmake"
  "/root/repo/build/src/aifmlib/CMakeFiles/tfm_aifmlib.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tfm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/remote/CMakeFiles/tfm_remote.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tfm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tfm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
