file(REMOVE_RECURSE
  "libtfm_tfm.a"
)
