file(REMOVE_RECURSE
  "CMakeFiles/tfm_tfm.dir/guard_trace.cc.o"
  "CMakeFiles/tfm_tfm.dir/guard_trace.cc.o.d"
  "CMakeFiles/tfm_tfm.dir/tfm_runtime.cc.o"
  "CMakeFiles/tfm_tfm.dir/tfm_runtime.cc.o.d"
  "libtfm_tfm.a"
  "libtfm_tfm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfm_tfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
