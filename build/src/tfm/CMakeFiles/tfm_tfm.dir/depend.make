# Empty dependencies file for tfm_tfm.
# This may be replaced when dependencies are built.
