file(REMOVE_RECURSE
  "libtfm_aifmlib.a"
)
