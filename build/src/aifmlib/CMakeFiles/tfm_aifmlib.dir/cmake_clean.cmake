file(REMOVE_RECURSE
  "CMakeFiles/tfm_aifmlib.dir/aifm_runtime.cc.o"
  "CMakeFiles/tfm_aifmlib.dir/aifm_runtime.cc.o.d"
  "libtfm_aifmlib.a"
  "libtfm_aifmlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfm_aifmlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
