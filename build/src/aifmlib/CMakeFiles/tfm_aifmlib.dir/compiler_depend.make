# Empty compiler generated dependencies file for tfm_aifmlib.
# This may be replaced when dependencies are built.
