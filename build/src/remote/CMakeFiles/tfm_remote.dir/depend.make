# Empty dependencies file for tfm_remote.
# This may be replaced when dependencies are built.
