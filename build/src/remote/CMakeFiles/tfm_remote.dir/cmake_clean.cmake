file(REMOVE_RECURSE
  "CMakeFiles/tfm_remote.dir/remote_node.cc.o"
  "CMakeFiles/tfm_remote.dir/remote_node.cc.o.d"
  "libtfm_remote.a"
  "libtfm_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfm_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
