file(REMOVE_RECURSE
  "libtfm_remote.a"
)
