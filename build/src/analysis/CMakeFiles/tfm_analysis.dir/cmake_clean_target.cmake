file(REMOVE_RECURSE
  "libtfm_analysis.a"
)
