# Empty compiler generated dependencies file for tfm_analysis.
# This may be replaced when dependencies are built.
