file(REMOVE_RECURSE
  "CMakeFiles/tfm_analysis.dir/cfg.cc.o"
  "CMakeFiles/tfm_analysis.dir/cfg.cc.o.d"
  "CMakeFiles/tfm_analysis.dir/dominators.cc.o"
  "CMakeFiles/tfm_analysis.dir/dominators.cc.o.d"
  "CMakeFiles/tfm_analysis.dir/heap_provenance.cc.o"
  "CMakeFiles/tfm_analysis.dir/heap_provenance.cc.o.d"
  "CMakeFiles/tfm_analysis.dir/induction_variable.cc.o"
  "CMakeFiles/tfm_analysis.dir/induction_variable.cc.o.d"
  "CMakeFiles/tfm_analysis.dir/loop_info.cc.o"
  "CMakeFiles/tfm_analysis.dir/loop_info.cc.o.d"
  "libtfm_analysis.a"
  "libtfm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
