
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cfg.cc" "src/analysis/CMakeFiles/tfm_analysis.dir/cfg.cc.o" "gcc" "src/analysis/CMakeFiles/tfm_analysis.dir/cfg.cc.o.d"
  "/root/repo/src/analysis/dominators.cc" "src/analysis/CMakeFiles/tfm_analysis.dir/dominators.cc.o" "gcc" "src/analysis/CMakeFiles/tfm_analysis.dir/dominators.cc.o.d"
  "/root/repo/src/analysis/heap_provenance.cc" "src/analysis/CMakeFiles/tfm_analysis.dir/heap_provenance.cc.o" "gcc" "src/analysis/CMakeFiles/tfm_analysis.dir/heap_provenance.cc.o.d"
  "/root/repo/src/analysis/induction_variable.cc" "src/analysis/CMakeFiles/tfm_analysis.dir/induction_variable.cc.o" "gcc" "src/analysis/CMakeFiles/tfm_analysis.dir/induction_variable.cc.o.d"
  "/root/repo/src/analysis/loop_info.cc" "src/analysis/CMakeFiles/tfm_analysis.dir/loop_info.cc.o" "gcc" "src/analysis/CMakeFiles/tfm_analysis.dir/loop_info.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/tfm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tfm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
