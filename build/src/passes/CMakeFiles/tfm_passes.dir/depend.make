# Empty dependencies file for tfm_passes.
# This may be replaced when dependencies are built.
