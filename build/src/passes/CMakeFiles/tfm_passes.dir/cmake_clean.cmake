file(REMOVE_RECURSE
  "CMakeFiles/tfm_passes.dir/hot_alloc_pruning.cc.o"
  "CMakeFiles/tfm_passes.dir/hot_alloc_pruning.cc.o.d"
  "CMakeFiles/tfm_passes.dir/o1_passes.cc.o"
  "CMakeFiles/tfm_passes.dir/o1_passes.cc.o.d"
  "CMakeFiles/tfm_passes.dir/pass.cc.o"
  "CMakeFiles/tfm_passes.dir/pass.cc.o.d"
  "CMakeFiles/tfm_passes.dir/trackfm_passes.cc.o"
  "CMakeFiles/tfm_passes.dir/trackfm_passes.cc.o.d"
  "libtfm_passes.a"
  "libtfm_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfm_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
