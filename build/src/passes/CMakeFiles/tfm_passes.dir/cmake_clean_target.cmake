file(REMOVE_RECURSE
  "libtfm_passes.a"
)
