# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("net")
subdirs("remote")
subdirs("runtime")
subdirs("tfm")
subdirs("fastswap")
subdirs("aifmlib")
subdirs("ir")
subdirs("analysis")
subdirs("passes")
subdirs("interp")
subdirs("workloads")
subdirs("core")
