file(REMOVE_RECURSE
  "libtfm_core.a"
)
