# Empty compiler generated dependencies file for tfm_core.
# This may be replaced when dependencies are built.
