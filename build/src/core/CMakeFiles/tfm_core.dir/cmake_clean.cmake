file(REMOVE_RECURSE
  "CMakeFiles/tfm_core.dir/autotuner.cc.o"
  "CMakeFiles/tfm_core.dir/autotuner.cc.o.d"
  "CMakeFiles/tfm_core.dir/system.cc.o"
  "CMakeFiles/tfm_core.dir/system.cc.o.d"
  "libtfm_core.a"
  "libtfm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
