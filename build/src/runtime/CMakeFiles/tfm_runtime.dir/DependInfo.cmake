
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/far_mem_runtime.cc" "src/runtime/CMakeFiles/tfm_runtime.dir/far_mem_runtime.cc.o" "gcc" "src/runtime/CMakeFiles/tfm_runtime.dir/far_mem_runtime.cc.o.d"
  "/root/repo/src/runtime/frame_cache.cc" "src/runtime/CMakeFiles/tfm_runtime.dir/frame_cache.cc.o" "gcc" "src/runtime/CMakeFiles/tfm_runtime.dir/frame_cache.cc.o.d"
  "/root/repo/src/runtime/region_allocator.cc" "src/runtime/CMakeFiles/tfm_runtime.dir/region_allocator.cc.o" "gcc" "src/runtime/CMakeFiles/tfm_runtime.dir/region_allocator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/remote/CMakeFiles/tfm_remote.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tfm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tfm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
