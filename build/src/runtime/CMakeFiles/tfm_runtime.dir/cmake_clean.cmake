file(REMOVE_RECURSE
  "CMakeFiles/tfm_runtime.dir/far_mem_runtime.cc.o"
  "CMakeFiles/tfm_runtime.dir/far_mem_runtime.cc.o.d"
  "CMakeFiles/tfm_runtime.dir/frame_cache.cc.o"
  "CMakeFiles/tfm_runtime.dir/frame_cache.cc.o.d"
  "CMakeFiles/tfm_runtime.dir/region_allocator.cc.o"
  "CMakeFiles/tfm_runtime.dir/region_allocator.cc.o.d"
  "libtfm_runtime.a"
  "libtfm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
