# Empty compiler generated dependencies file for tfm_runtime.
# This may be replaced when dependencies are built.
