file(REMOVE_RECURSE
  "libtfm_runtime.a"
)
