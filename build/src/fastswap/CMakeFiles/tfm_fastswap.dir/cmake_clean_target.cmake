file(REMOVE_RECURSE
  "libtfm_fastswap.a"
)
