# Empty dependencies file for tfm_fastswap.
# This may be replaced when dependencies are built.
