file(REMOVE_RECURSE
  "CMakeFiles/tfm_fastswap.dir/fastswap_runtime.cc.o"
  "CMakeFiles/tfm_fastswap.dir/fastswap_runtime.cc.o.d"
  "libtfm_fastswap.a"
  "libtfm_fastswap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfm_fastswap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
