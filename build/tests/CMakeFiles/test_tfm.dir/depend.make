# Empty dependencies file for test_tfm.
# This may be replaced when dependencies are built.
