file(REMOVE_RECURSE
  "CMakeFiles/test_tfm.dir/test_tfm.cc.o"
  "CMakeFiles/test_tfm.dir/test_tfm.cc.o.d"
  "test_tfm"
  "test_tfm.pdb"
  "test_tfm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
