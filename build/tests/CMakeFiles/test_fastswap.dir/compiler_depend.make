# Empty compiler generated dependencies file for test_fastswap.
# This may be replaced when dependencies are built.
