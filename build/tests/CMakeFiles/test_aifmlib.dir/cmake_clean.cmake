file(REMOVE_RECURSE
  "CMakeFiles/test_aifmlib.dir/test_aifmlib.cc.o"
  "CMakeFiles/test_aifmlib.dir/test_aifmlib.cc.o.d"
  "test_aifmlib"
  "test_aifmlib.pdb"
  "test_aifmlib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aifmlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
