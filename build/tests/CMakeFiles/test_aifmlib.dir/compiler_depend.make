# Empty compiler generated dependencies file for test_aifmlib.
# This may be replaced when dependencies are built.
