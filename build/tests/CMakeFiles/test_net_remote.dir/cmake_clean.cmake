file(REMOVE_RECURSE
  "CMakeFiles/test_net_remote.dir/test_net_remote.cc.o"
  "CMakeFiles/test_net_remote.dir/test_net_remote.cc.o.d"
  "test_net_remote"
  "test_net_remote.pdb"
  "test_net_remote[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
