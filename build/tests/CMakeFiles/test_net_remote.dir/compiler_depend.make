# Empty compiler generated dependencies file for test_net_remote.
# This may be replaced when dependencies are built.
