
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/test_extensions.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/test_extensions.dir/test_extensions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/tfm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/tfm_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/tfm_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tfm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fastswap/CMakeFiles/tfm_fastswap.dir/DependInfo.cmake"
  "/root/repo/build/src/aifmlib/CMakeFiles/tfm_aifmlib.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tfm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/tfm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/tfm/CMakeFiles/tfm_tfm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tfm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/remote/CMakeFiles/tfm_remote.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tfm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tfm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
