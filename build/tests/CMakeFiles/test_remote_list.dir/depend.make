# Empty dependencies file for test_remote_list.
# This may be replaced when dependencies are built.
