file(REMOVE_RECURSE
  "CMakeFiles/test_remote_list.dir/test_remote_list.cc.o"
  "CMakeFiles/test_remote_list.dir/test_remote_list.cc.o.d"
  "test_remote_list"
  "test_remote_list.pdb"
  "test_remote_list[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remote_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
