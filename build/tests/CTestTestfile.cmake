# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net_remote[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_tfm[1]_include.cmake")
include("/root/repo/build/tests/test_fastswap[1]_include.cmake")
include("/root/repo/build/tests/test_aifmlib[1]_include.cmake")
include("/root/repo/build/tests/test_backends[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_passes[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_compiler_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build/tests/test_remote_list[1]_include.cmake")
include("/root/repo/build/tests/test_misc_coverage[1]_include.cmake")
