/**
 * @file
 * Paged data plane for the hybrid path arbiter (DESIGN.md §4l).
 *
 * Allocation sites the PathArbiterPass routes away from the guard plane
 * get fastswap-style cost semantics: resident mapped pages cost nothing
 * per access, a first touch takes a page fault that moves a whole 4 KB
 * page, and reclamation charges kernel-style per-page eviction. The
 * plane is a *residency and cost model only*: it shares the owning
 * FarMemRuntime's clock, network link, and observability stream, and it
 * never stores data — paged accesses read and write the far heap
 * through FarMemRuntime::rawRead/rawWrite, so routing a site to the
 * paging plane can change cycle counts but never program results or
 * the heap checksum. That is the legality contract the differential
 * hybrid gate checks.
 */

#ifndef TRACKFM_FASTSWAP_PAGED_PLANE_HH
#define TRACKFM_FASTSWAP_PAGED_PLANE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "fastswap_runtime.hh" // FastswapStats
#include "runtime/far_mem_runtime.hh"

namespace tfm
{

/**
 * Kernel-swap residency model over the shared far heap.
 *
 * Pages are 4 KB windows of the far-heap offset space. "Mapped" pages
 * (present, not in flight) model a valid PTE; "in flight" pages model
 * swap-cache entries readahead has fetched but no fault has mapped yet
 * (a touch pays only the local minor-fault price). Victim selection is
 * a CLOCK sweep with reference bits, like the frame cache.
 */
class PagedPlane
{
  public:
    explicit PagedPlane(FarMemRuntime &rt);

    /**
     * Account one @p len byte access at far-heap @p offset, taking
     * minor/major faults per 4 KB page touched. Charges cycles and
     * meters page transfers on the shared link; moves no data.
     */
    void touch(std::uint64_t offset, std::size_t len, bool for_write);

    /**
     * Drop every resident page (metering writebacks for dirty ones) so
     * a measurement can start from a fully remote heap.
     */
    void evacuate();

    const FastswapStats &stats() const { return _stats; }
    std::uint64_t residentPages() const { return resident_.size(); }
    std::uint32_t pageSize() const { return pageSize_; }
    std::uint64_t frameBudget() const { return frameBudget_; }

    /** Counters under "paged.*" (mirrors FastswapRuntime's export). */
    void exportStats(StatSet &set) const;

  private:
    /** Swap-cache / PTE state for one resident or in-flight page. */
    struct Page
    {
        bool dirty = false;
        bool inflight = false; ///< fetched by readahead, not yet mapped
        bool refbit = true;    ///< CLOCK reference bit
        std::uint64_t arrival = 0; ///< in-flight completion cycle
    };

    /** Fault in page @p pageId (present afterwards). */
    void majorFault(std::uint64_t pageId, bool for_write);
    /** Evict one victim via the CLOCK sweep (budget pressure). */
    void reclaimOne();
    /** Linux-style readahead around a major fault on @p pageId. */
    void readahead(std::uint64_t pageId);
    /** Cumulative paged.* counter emission into the trace (no cycles). */
    void obsCounters();

    FarMemRuntime &rt_;
    std::uint32_t pageSize_;
    std::uint64_t frameBudget_; ///< resident-page cap
    /// pageId -> state; std::map keeps sweeps/evacuation deterministic.
    std::map<std::uint64_t, Page> table_;
    std::vector<std::uint64_t> resident_; ///< CLOCK ring of page ids
    std::size_t clockHand_ = 0;
    FastswapStats _stats;
};

} // namespace tfm

#endif // TRACKFM_FASTSWAP_PAGED_PLANE_HH
