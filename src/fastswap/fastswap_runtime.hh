/**
 * @file
 * Fastswap-style kernel-based far memory baseline.
 *
 * Models the paper's kernel-based comparison point (Amaro et al.,
 * EuroSys '20): the application is unmodified, every page of its heap
 * can be swapped to the remote node, and the only interposition point is
 * the hardware page fault. Consequences the model reproduces:
 *
 *  - accesses to resident, mapped pages cost nothing extra (no guards);
 *  - a fault on a page whose data is already local (readahead landed,
 *    PTE not yet mapped) costs the Table 2 "local" fault price (1.3 K);
 *  - a fault on a remote page pays fault handling plus a full 4 KB page
 *    transfer (~34-35 K cycles total);
 *  - transfers are always whole pages — the I/O amplification that
 *    Figures 13 and 16 measure;
 *  - reclamation (cgroups accounting, unmapping) charges per evicted
 *    page and writes back dirty pages;
 *  - Linux-style swap readahead fetches a cluster of pages around a
 *    major fault, which is what lets Fastswap amortize faults under
 *    temporal/spatial locality (section 5 "Lessons").
 */

#ifndef TRACKFM_FASTSWAP_FASTSWAP_RUNTIME_HH
#define TRACKFM_FASTSWAP_FASTSWAP_RUNTIME_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/network_model.hh"
#include "remote/remote_node.hh"
#include "runtime/frame_cache.hh"
#include "runtime/object_state_table.hh"
#include "runtime/region_allocator.hh"
#include "sim/cost_params.hh"
#include "sim/cycle_clock.hh"
#include "sim/stats.hh"

namespace tfm
{

/** Configuration for the Fastswap baseline. */
struct FastswapConfig
{
    std::uint64_t farHeapBytes = 64ull << 20;
    std::uint64_t localMemBytes = 16ull << 20;
    /// Architected page size — fixed at 4 KB on the paper's testbed.
    std::uint32_t pageSizeBytes = 4096;
    /// Swap readahead window (pages fetched around a major fault).
    std::uint32_t readaheadPages = 8;
    bool readaheadEnabled = true;
    /// Observability sink; null falls back to obs::defaultSink().
    Observability *obs = nullptr;
    /// Per-instance trace stream label; empty uses "fastswap".
    std::string obsLabel;
};

/** Fault/paging counters (Fig. 14b and 16b plot these). */
struct FastswapStats
{
    std::uint64_t minorFaults = 0; ///< data local, PTE fixup only
    std::uint64_t majorFaults = 0; ///< remote fetch required
    std::uint64_t pageouts = 0;    ///< dirty pages written back
    std::uint64_t reclaims = 0;    ///< pages evicted
    std::uint64_t readaheads = 0;  ///< pages pulled in speculatively
};

/**
 * The kernel-swap simulator.
 *
 * Reuses the frame cache and state table machinery at page granularity:
 * "present + !inflight" models a mapped PTE; "present + inflight" models
 * a page in the swap cache that is not yet mapped (readahead).
 */
class FastswapRuntime
{
  public:
    FastswapRuntime(const FastswapConfig &config,
                    const CostParams &cost_params);

    CycleClock &clock() { return _clock; }
    NetworkModel &net() { return _net; }
    const CostParams &costs() const { return _costs; }
    const FastswapConfig &config() const { return cfg; }

    /** Allocate heap (ordinary malloc; any page may be swapped). */
    std::uint64_t allocate(std::uint64_t bytes);
    void deallocate(std::uint64_t offset);

    /**
     * Perform one access of @p len bytes at @p offset, taking page
     * faults as needed. Returns a host pointer to the first byte.
     */
    std::byte *access(std::uint64_t offset, bool for_write);

    /**
     * Multi-byte read; accesses spanning page boundaries fault on each
     * page touched.
     */
    void readBytes(std::uint64_t offset, void *dst, std::size_t len);

    /** Multi-byte write; one potential fault per page touched. */
    void writeBytes(std::uint64_t offset, const void *src, std::size_t len);

    /** Typed access helpers. */
    template <typename T>
    T
    load(std::uint64_t offset)
    {
        T value;
        readBytes(offset, &value, sizeof(T));
        return value;
    }

    template <typename T>
    void
    store(std::uint64_t offset, const T &value)
    {
        writeBytes(offset, &value, sizeof(T));
    }

    /** @name Initialization (no accounting)
     * @{ */
    void rawWrite(std::uint64_t offset, const void *src, std::size_t len);
    void rawRead(std::uint64_t offset, void *dst, std::size_t len);
    /** @} */

    /** Push every page remote so measurement starts cold. */
    void evacuateAll();

    const FastswapStats &stats() const { return _stats; }
    const NetStats &netStats() const { return _net.stats(); }
    void exportStats(StatSet &set) const;

    Observability *obs() const { return obs_; }
    std::uint32_t obsStream() const { return obsStream_; }

  private:
    std::uint64_t takeFrame();
    void evictFrame(std::uint64_t frame_idx);
    void readahead(std::uint64_t page_id);
    /** Epoch time-series snapshot (residency, wire bytes). */
    void obsEpochSample();

    FastswapConfig cfg;
    CostParams _costs;
    CycleClock _clock;
    NetworkModel _net;
    RemoteNode _remote;
    ObjectStateTable pages;
    FrameCache cache;
    RegionAllocator alloc_;
    FastswapStats _stats;
    Observability *obs_ = nullptr;
    std::uint32_t obsStream_ = 0;
};

} // namespace tfm

#endif // TRACKFM_FASTSWAP_FASTSWAP_RUNTIME_HH
