#include "fastswap_runtime.hh"

#include <algorithm>
#include <cstring>

#include "obs/obs.hh"
#include "sim/logging.hh"

namespace tfm
{

FastswapRuntime::FastswapRuntime(const FastswapConfig &config,
                                 const CostParams &cost_params)
    : cfg(config),
      _costs(cost_params),
      _net(_clock, _costs),
      _remote(config.farHeapBytes),
      pages(config.farHeapBytes, config.pageSizeBytes),
      cache(config.localMemBytes, config.pageSizeBytes),
      alloc_(config.farHeapBytes, config.pageSizeBytes)
{
    obs_ = cfg.obs ? cfg.obs : obs::defaultSink();
    if (obs_) {
        obsStream_ = obs_->registerStream(
            cfg.obsLabel.empty() ? "fastswap" : cfg.obsLabel.c_str());
        _net.attachObs(obs_, obsStream_);
    }
}

std::uint64_t
FastswapRuntime::allocate(std::uint64_t bytes)
{
    _clock.advance(_costs.allocCycles);
    const std::uint64_t offset = alloc_.allocate(bytes);
    TFM_ASSERT(offset != RegionAllocator::badOffset,
               "fastswap heap exhausted");
    return offset;
}

void
FastswapRuntime::deallocate(std::uint64_t offset)
{
    _clock.advance(_costs.allocCycles);
    alloc_.deallocate(offset);
}

std::byte *
FastswapRuntime::access(std::uint64_t offset, bool for_write)
{
    const std::uint64_t page_id = pages.objectOf(offset);
    ObjectMeta &meta = pages[page_id];
    if (obs_ && obs_->seriesDue(obsStream_, _clock.now()))
        obsEpochSample();

    if (meta.present()) {
        Frame &f = cache.frame(meta.frame());
        f.refbit = true;
        if (meta.inflight()) {
            // Swap-cache hit: data arrived via readahead but the PTE is
            // not mapped yet -> minor fault.
            _clock.advance(_costs.pageFaultLocalCycles);
            _net.waitUntil(f.arrivalCycle);
            meta.clearInflight();
            _stats.minorFaults++;
            if (obs_ && obs_->trace().enabled()) {
                obs_->trace().instant(obsStream_, TrackApp, "minor-fault",
                                      "fault", _clock.now());
                obs_->trace().arg("page", page_id);
            }
        }
        if (for_write)
            meta.setDirty();
        return cache.frameData(meta.frame()) + pages.offsetInObject(offset);
    }

    // Major fault: fetch the whole architected page from remote. The
    // span covers reclaim, the page transfer, and readahead issue; the
    // reclaim/readahead instants land inside it.
    const std::uint64_t faultStart = _clock.now();
    if (obs_ && obs_->trace().enabled()) {
        obs_->trace().begin(obsStream_, TrackApp, "major-fault", "fault",
                            faultStart);
        obs_->trace().arg("page", page_id);
    }
    const std::uint64_t frame_idx = takeFrame();
    std::byte *data = cache.frameData(frame_idx);
    _clock.advance(_costs.pageFaultLocalCycles +
                   _costs.pageFaultRemoteSwCycles);
    _remote.fetch(_net, page_id << pages.objectShift(), data,
                  pages.objectSize());
    meta.makeLocal(frame_idx);
    if (for_write)
        meta.setDirty();
    Frame &f = cache.frame(frame_idx);
    f.objId = page_id;
    f.arrivalCycle = 0;
    _stats.majorFaults++;

    if (cfg.readaheadEnabled)
        readahead(page_id);

    if (obs_) {
        obs_->faultLatency.record(_clock.now() - faultStart);
        if (obs_->trace().enabled()) {
            obs_->trace().end(obsStream_, TrackApp, "major-fault",
                              "fault", _clock.now());
        }
    }

    return data + pages.offsetInObject(offset);
}

void
FastswapRuntime::readBytes(std::uint64_t offset, void *dst, std::size_t len)
{
    auto *out = static_cast<std::byte *>(dst);
    std::size_t done = 0;
    while (done < len) {
        const std::uint64_t at = offset + done;
        const std::uint64_t in_page = pages.offsetInObject(at);
        const std::size_t piece = std::min<std::size_t>(
            len - done, pages.objectSize() - in_page);
        std::memcpy(out + done, access(at, false), piece);
        done += piece;
    }
}

void
FastswapRuntime::writeBytes(std::uint64_t offset, const void *src,
                            std::size_t len)
{
    const auto *in = static_cast<const std::byte *>(src);
    std::size_t done = 0;
    while (done < len) {
        const std::uint64_t at = offset + done;
        const std::uint64_t in_page = pages.offsetInObject(at);
        const std::size_t piece = std::min<std::size_t>(
            len - done, pages.objectSize() - in_page);
        std::memcpy(access(at, true), in + done, piece);
        done += piece;
    }
}

void
FastswapRuntime::readahead(std::uint64_t page_id)
{
    for (std::uint32_t k = 1; k <= cfg.readaheadPages; k++) {
        const std::uint64_t target = page_id + k;
        if (target >= pages.numObjects())
            break;
        ObjectMeta &meta = pages[target];
        if (meta.present())
            continue;
        std::uint64_t frame_idx = cache.allocFrame();
        if (frame_idx == FrameCache::noFrame) {
            // Don't reclaim on behalf of readahead; stop speculating.
            break;
        }
        std::byte *data = cache.frameData(frame_idx);
        const std::uint64_t arrival = _remote.fetchAsync(
            _net, target << pages.objectShift(), data, pages.objectSize());
        meta.makeLocal(frame_idx);
        meta.setInflight();
        Frame &f = cache.frame(frame_idx);
        f.objId = target;
        f.arrivalCycle = arrival;
        _stats.readaheads++;
        if (obs_ && obs_->trace().enabled()) {
            obs_->trace().instant(obsStream_, TrackApp, "readahead",
                                  "fault", _clock.now());
            obs_->trace().arg("page", target);
        }
    }
}

std::uint64_t
FastswapRuntime::takeFrame()
{
    std::uint64_t frame_idx = cache.allocFrame();
    if (frame_idx != FrameCache::noFrame)
        return frame_idx;
    const std::uint64_t victim = cache.pickVictim();
    TFM_ASSERT(victim != FrameCache::noFrame, "fastswap reclaim found no victim");
    evictFrame(victim);
    frame_idx = cache.allocFrame();
    TFM_ASSERT(frame_idx != FrameCache::noFrame, "reclaim freed no frame");
    return frame_idx;
}

void
FastswapRuntime::evictFrame(std::uint64_t frame_idx)
{
    Frame &f = cache.frame(frame_idx);
    ObjectMeta &meta = pages[f.objId];
    TFM_ASSERT(meta.present() && meta.frame() == frame_idx,
               "page table / frame mismatch on reclaim");
    _clock.advance(_costs.pageReclaimCycles);
    if (obs_ && obs_->trace().enabled()) {
        obs_->trace().instant(obsStream_, TrackApp, "reclaim", "fault",
                              _clock.now());
        obs_->trace().arg("page", f.objId);
        obs_->trace().arg("dirty", meta.dirty() ? 1 : 0);
    }
    if (meta.dirty()) {
        _remote.writeback(_net, f.objId << pages.objectShift(),
                          cache.frameData(frame_idx), pages.objectSize());
        _stats.pageouts++;
    }
    meta.makeRemote();
    cache.releaseFrame(frame_idx);
    _stats.reclaims++;
}

void
FastswapRuntime::rawWrite(std::uint64_t offset, const void *src,
                          std::size_t len)
{
    const auto *bytes = static_cast<const std::byte *>(src);
    std::size_t done = 0;
    while (done < len) {
        const std::uint64_t at = offset + done;
        const std::uint64_t page_id = pages.objectOf(at);
        const std::uint64_t in_page = pages.offsetInObject(at);
        const std::size_t chunk = std::min<std::size_t>(
            len - done, pages.objectSize() - in_page);
        _remote.rawWrite(at, bytes + done, chunk);
        const ObjectMeta &meta = pages[page_id];
        if (meta.present()) {
            std::memcpy(cache.frameData(meta.frame()) + in_page,
                        bytes + done, chunk);
        }
        done += chunk;
    }
}

void
FastswapRuntime::rawRead(std::uint64_t offset, void *dst, std::size_t len)
{
    auto *bytes = static_cast<std::byte *>(dst);
    std::size_t done = 0;
    while (done < len) {
        const std::uint64_t at = offset + done;
        const std::uint64_t page_id = pages.objectOf(at);
        const std::uint64_t in_page = pages.offsetInObject(at);
        const std::size_t chunk = std::min<std::size_t>(
            len - done, pages.objectSize() - in_page);
        const ObjectMeta &meta = pages[page_id];
        if (meta.present()) {
            std::memcpy(bytes + done,
                        cache.frameData(meta.frame()) + in_page, chunk);
        } else {
            _remote.rawRead(at, bytes + done, chunk);
        }
        done += chunk;
    }
}

void
FastswapRuntime::evacuateAll()
{
    for (std::uint64_t i = 0; i < cache.numFrames(); i++) {
        Frame &f = cache.frame(i);
        if (!f.used)
            continue;
        ObjectMeta &meta = pages[f.objId];
        if (meta.dirty()) {
            _remote.rawWrite(f.objId << pages.objectShift(),
                             cache.frameData(i), pages.objectSize());
        }
        meta.makeRemote();
        cache.releaseFrame(i);
    }
}

void
FastswapRuntime::exportStats(StatSet &set) const
{
    set.add("fastswap.minor_faults", _stats.minorFaults);
    set.add("fastswap.major_faults", _stats.majorFaults);
    set.add("fastswap.pageouts", _stats.pageouts);
    set.add("fastswap.reclaims", _stats.reclaims);
    set.add("fastswap.readaheads", _stats.readaheads);
    set.add("net.bytes_fetched", _net.stats().bytesFetched);
    set.add("net.bytes_written_back", _net.stats().bytesWrittenBack);
    set.add("clock.cycles", _clock.now());
    if (obs_)
        obs_->exportStats(set);
}

void
FastswapRuntime::obsEpochSample()
{
    obs_->counterSample(
        obsStream_, _clock.now(),
        {{"frames_used", cache.usedFrames()},
         {"net_bytes", _net.stats().totalBytes()}});
}

} // namespace tfm
