#include "paged_plane.hh"

#include <algorithm>

#include "obs/obs.hh"
#include "sim/logging.hh"
#include "tfm/tagged_ptr.hh"

namespace tfm
{

PagedPlane::PagedPlane(FarMemRuntime &rt)
    : rt_(rt), pageSize_(rt.config().pagedPageSizeBytes)
{
    const std::uint64_t localBytes = rt.config().pagedLocalMemBytes
                                         ? rt.config().pagedLocalMemBytes
                                         : rt.config().localMemBytes;
    frameBudget_ = std::max<std::uint64_t>(1, localBytes / pageSize_);
}

void
PagedPlane::touch(std::uint64_t offset, std::size_t len, bool for_write)
{
    if (len == 0)
        len = 1;
    const std::uint64_t first = offset / pageSize_;
    const std::uint64_t last = (offset + len - 1) / pageSize_;
    for (std::uint64_t pageId = first; pageId <= last; pageId++) {
        auto it = table_.find(pageId);
        if (it == table_.end()) {
            majorFault(pageId, for_write);
            continue;
        }
        Page &pg = it->second;
        pg.refbit = true;
        if (pg.inflight) {
            // Swap-cache hit: readahead landed the page but no fault has
            // mapped it yet -> minor fault (PTE fixup + residual wait).
            rt_.clock().advance(rt_.costs().pageFaultLocalCycles);
            rt_.net().waitUntil(pg.arrival);
            pg.inflight = false;
            _stats.minorFaults++;
            Observability *obs = rt_.obs();
            if (obs && obs->trace().enabled()) {
                obs->trace().instant(rt_.obsStream(), TrackApp,
                                     "pg-minor-fault", "paged",
                                     rt_.clock().now());
                obs->trace().arg("page", pageId);
            }
        }
        if (for_write)
            pg.dirty = true;
    }
}

void
PagedPlane::majorFault(std::uint64_t pageId, bool for_write)
{
    Observability *obs = rt_.obs();
    const std::uint64_t faultStart = rt_.clock().now();
    if (obs && obs->trace().enabled()) {
        obs->trace().begin(rt_.obsStream(), TrackApp, "pg-major-fault",
                           "paged", faultStart);
        obs->trace().arg("page", pageId);
    }

    while (resident_.size() >= frameBudget_)
        reclaimOne();

    rt_.clock().advance(rt_.costs().pageFaultLocalCycles +
                        rt_.costs().pageFaultRemoteSwCycles);
    rt_.net().fetchSync(pageSize_);
    Page pg;
    pg.dirty = for_write;
    pg.refbit = true;
    table_.emplace(pageId, pg);
    resident_.push_back(pageId);
    _stats.majorFaults++;

    if (rt_.config().pagedReadaheadEnabled)
        readahead(pageId);

    if (obs) {
        obs->faultLatency.record(rt_.clock().now() - faultStart);
        if (obs->trace().enabled()) {
            obs->trace().end(rt_.obsStream(), TrackApp, "pg-major-fault",
                             "paged", rt_.clock().now());
        }
        obsCounters();
    }
}

void
PagedPlane::reclaimOne()
{
    TFM_ASSERT(!resident_.empty(), "paged reclaim with no resident pages");
    // CLOCK sweep: clear reference bits until an unreferenced mapped page
    // comes around. In-flight pages are skipped (their fetch is already
    // paid for); if everything is referenced the sweep degrades to FIFO
    // after one lap, like the kernel's active/inactive approximation.
    for (std::size_t scanned = 0; scanned < 2 * resident_.size(); scanned++) {
        if (clockHand_ >= resident_.size())
            clockHand_ = 0;
        const std::uint64_t pageId = resident_[clockHand_];
        Page &pg = table_.at(pageId);
        if (pg.inflight || pg.refbit) {
            pg.refbit = pg.inflight && pg.refbit;
            clockHand_++;
            continue;
        }
        rt_.clock().advance(rt_.costs().pageReclaimCycles);
        if (pg.dirty) {
            rt_.net().writebackAsync(pageSize_);
            _stats.pageouts++;
        }
        Observability *obs = rt_.obs();
        if (obs && obs->trace().enabled()) {
            obs->trace().instant(rt_.obsStream(), TrackApp, "pg-reclaim",
                                 "paged", rt_.clock().now());
            obs->trace().arg("page", pageId);
            obs->trace().arg("dirty", pg.dirty ? 1 : 0);
        }
        table_.erase(pageId);
        resident_.erase(resident_.begin() +
                        static_cast<std::ptrdiff_t>(clockHand_));
        _stats.reclaims++;
        return;
    }
    // Two full laps found only in-flight pages: evict the oldest one
    // anyway (its readahead bytes are sunk cost; no writeback needed).
    const std::uint64_t pageId = resident_.front();
    rt_.clock().advance(rt_.costs().pageReclaimCycles);
    table_.erase(pageId);
    resident_.erase(resident_.begin());
    clockHand_ = 0;
    _stats.reclaims++;
}

void
PagedPlane::readahead(std::uint64_t pageId)
{
    const std::uint64_t lastPage =
        (rt_.config().farHeapBytes - 1) / pageSize_;
    for (std::uint32_t k = 1; k <= rt_.config().pagedReadaheadPages; k++) {
        const std::uint64_t target = pageId + k;
        if (target > lastPage)
            break;
        if (resident_.size() >= frameBudget_) {
            // Don't reclaim on behalf of speculation; stop the window.
            break;
        }
        if (table_.count(target))
            continue;
        Page pg;
        pg.inflight = true;
        pg.refbit = false;
        pg.arrival = rt_.net().fetchAsync(pageSize_);
        table_.emplace(target, pg);
        resident_.push_back(target);
        _stats.readaheads++;
        Observability *obs = rt_.obs();
        if (obs && obs->trace().enabled()) {
            obs->trace().instant(rt_.obsStream(), TrackApp, "pg-readahead",
                                 "paged", rt_.clock().now());
            obs->trace().arg("page", target);
        }
    }
}

void
PagedPlane::evacuate()
{
    for (const std::uint64_t pageId : resident_) {
        const Page &pg = table_.at(pageId);
        if (pg.dirty)
            rt_.net().writebackAsync(pageSize_);
    }
    table_.clear();
    resident_.clear();
    clockHand_ = 0;
}

void
PagedPlane::obsCounters()
{
    Observability *obs = rt_.obs();
    if (!obs || !obs->trace().enabled())
        return;
    const std::uint64_t now = rt_.clock().now();
    obs->trace().counter(rt_.obsStream(), "paged.major_faults", now,
                         _stats.majorFaults);
    obs->trace().counter(rt_.obsStream(), "paged.minor_faults", now,
                         _stats.minorFaults);
    obs->trace().counter(rt_.obsStream(), "paged.reclaims", now,
                         _stats.reclaims);
    obs->trace().counter(rt_.obsStream(), "paged.resident_pages", now,
                         resident_.size());
}

void
PagedPlane::exportStats(StatSet &set) const
{
    set.add("paged.minor_faults", _stats.minorFaults);
    set.add("paged.major_faults", _stats.majorFaults);
    set.add("paged.pageouts", _stats.pageouts);
    set.add("paged.reclaims", _stats.reclaims);
    set.add("paged.readaheads", _stats.readaheads);
    set.add("paged.resident_pages", resident_.size());
}

} // namespace tfm
