/**
 * @file
 * Register numbering and parallel-copy scheduling for the bytecode
 * engine (see bytecode.hh for the frame layout contract).
 */

#include "interp/bytecode.hh"

#include "ir/instruction.hh"

namespace tfm::bc
{

RegAlloc::RegAlloc(const ir::Function &function)
{
    // Slot 0 is the write-only sink, slot 1 the move scratch; `next`
    // starts past them. Constants are collected during the scan and
    // materialized into `init` once the numbering is complete.
    std::vector<const ir::Constant *> constants;
    auto assign = [&](const ir::Value *value) {
        if (regs.count(value))
            return;
        if (next > 0xFFFF) {
            overflow = true;
            return;
        }
        regs[value] = static_cast<std::uint16_t>(next++);
    };
    auto assignConstant = [&](const ir::Value *value) {
        if (!value->isConstant() || regs.count(value))
            return;
        assign(value);
        if (!overflow)
            constants.push_back(
                static_cast<const ir::Constant *>(value));
    };

    for (const auto &argument : function.arguments()) {
        assign(argument.get());
        args.push_back(regOf(argument.get()));
    }
    // The reference engine stores every phi into the frame (named or
    // not), so phis always get a register; other instructions only
    // when their result is observable (named, non-void).
    for (const auto &block : function.basicBlocks()) {
        for (const auto &inst : block->instructions()) {
            if (inst->op() == ir::Opcode::Phi ||
                (inst->type() != ir::Type::Void &&
                 !inst->name().empty())) {
                assign(inst.get());
            }
        }
    }
    for (const auto &block : function.basicBlocks()) {
        for (const auto &inst : block->instructions()) {
            for (std::size_t i = 0; i < inst->numOperands(); i++) {
                if (!ir::isTokenOperand(inst->op(), i))
                    assignConstant(inst->operand(i));
            }
            for (const auto &[incoming, pred] : inst->incoming()) {
                (void)pred;
                assignConstant(incoming);
            }
        }
    }

    init.assign(next, Slot{});
    if (overflow)
        return;
    for (const ir::Constant *constant : constants) {
        Slot &slot = init[regOf(constant)];
        if (constant->type() == ir::Type::F64)
            slot.f = constant->floatValue();
        else
            slot.i = static_cast<std::uint64_t>(constant->intValue());
    }
}

std::vector<Move>
scheduleParallelMoves(std::vector<Move> moves, std::uint16_t scratch)
{
    std::vector<Move> out;
    std::erase_if(moves, [](const Move &m) { return m.dst == m.src; });
    while (!moves.empty()) {
        // Emit any move whose destination no other pending move still
        // needs to read. Phi destinations are unique, so only sources
        // can alias.
        bool progress = false;
        for (std::size_t i = 0; i < moves.size(); i++) {
            bool read_later = false;
            for (std::size_t j = 0; j < moves.size(); j++) {
                if (j != i && moves[j].src == moves[i].dst) {
                    read_later = true;
                    break;
                }
            }
            if (!read_later) {
                out.push_back(moves[i]);
                moves.erase(moves.begin() +
                            static_cast<std::ptrdiff_t>(i));
                progress = true;
                break;
            }
        }
        if (progress)
            continue;
        // Every pending destination is still read: a cycle. Park one
        // source in the scratch register and redirect its readers.
        const std::uint16_t victim = moves.front().src;
        out.push_back(Move{scratch, victim});
        for (Move &move : moves) {
            if (move.src == victim)
                move.src = scratch;
        }
    }
    return out;
}

} // namespace tfm::bc
