/**
 * @file
 * Pre-decoded register bytecode for the IR interpreter.
 *
 * The tree-walking reference engine resolves every operand through a
 * `std::map<const ir::Value *, Slot>` and re-matches phi incoming lists
 * on every block entry. This module compiles each `ir::Function` once
 * into a dense instruction stream over numbered register slots:
 *
 *  - the frame is one flat `std::vector<Slot>` indexed by register
 *    number (constants pre-materialized, register 0 a write-only sink
 *    for unnamed results, register 1 a scratch for parallel copies);
 *  - every operand is resolved to a register at compile time, so the
 *    dispatch loop never touches a map;
 *  - phi semantics are pre-resolved into a parallel-copy move list
 *    attached to each CFG edge (scheduled with cycle breaking through
 *    the scratch register);
 *  - dispatch is direct-threaded (computed goto) when the build defines
 *    TFM_COMPUTED_GOTO, with a portable `switch` fallback.
 *
 * Compilation is conservative: any function whose SSA form cannot be
 * proven well-behaved (a use not dominated by its definition, a
 * terminator that is not last in its block, phis after non-phis) is
 * marked `ok = false` and keeps running on the reference engine, whose
 * lazy lookups reproduce the exact trap behavior. Both engines must be
 * bit-exact: same outputs, same heap contents, same trap text, same
 * step counts, same simulated cycles, same GuardStats.
 */

#ifndef TRACKFM_INTERP_BYTECODE_HH
#define TRACKFM_INTERP_BYTECODE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/function.hh"

namespace tfm
{

/** Runtime value: integer/pointer or double (one register slot). */
struct Slot
{
    std::uint64_t i = 0;
    double f = 0.0;
};

/** Thrown on traps; caught at the top of Interpreter::run(). */
struct TrapException
{
    std::string message;
};

/**
 * Interpreter intrinsics (the TrackFM libc replacement plus harness
 * hooks), resolved from the callee name once — at compile time for the
 * bytecode engine, per call for the reference engine.
 */
enum class Builtin : std::uint8_t
{
    None, ///< not an intrinsic: a user function (or unknown)
    RuntimeInit,
    TfmMalloc,
    TfmCalloc,
    HostMalloc, ///< host_malloc and untransformed malloc
    HostCalloc, ///< host_calloc and untransformed calloc
    TfmRealloc,
    TfmFree,
    HostFree, ///< untransformed free: host arena frees at teardown
    PrintI64,
    EvacuateAll,
    PgMalloc, ///< paged-plane allocation (hybrid arbiter, bit-61 tag)
    PgCalloc,
    PgFree
};

/** Intrinsic id for a callee name (None for user functions). */
Builtin builtinOf(const std::string &callee);

namespace bc
{

/** Pre-decoded opcodes. Order must match the dispatch label table. */
enum class Op : std::uint8_t
{
    Alloca,      ///< dst = {hostAlloc(imm), 0}
    LoadI,       ///< dst = {zext(*(aux-byte *)r[a].i), 0}
    LoadF,       ///< dst = {0, *(double *)r[a].i}
    StoreI,      ///< *(aux-byte *)r[b].i = r[a].i
    StoreF,      ///< *(double *)r[b].i = r[a].f
    Gep,         ///< dst = {r[a].i + r[b].i * imm, 0}
    GuardRead,   ///< dst = guard(r[a].i); kArmsEpoch arms reval slot aux
    GuardWrite,  ///< write flavor of GuardRead
    GuardReval,  ///< dst = revalidate reval slot aux against r[a].i
    ChunkBegin,  ///< (re)arm cursor aux; dst = {imm (cursor token), 0}
    ChunkAccess, ///< dst = chunk window for r[a].i through cursor aux
    Prefetch,    ///< prefetchAhead(r[a].i, 1, aux) when tagged
    Add,
    Sub,
    Mul,
    SDiv,
    SRem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    FAdd,
    FSub,
    FMul,
    FDiv,
    ICmpEq,
    ICmpNe,
    ICmpSlt,
    ICmpSle,
    ICmpSgt,
    ICmpSge,
    FCmpOlt,
    CopyI,  ///< dst = {r[a].i, 0} (zext / ptrtoint / inttoptr)
    TruncI, ///< dst = {r[a].i & imm, 0}
    SIToFP, ///< dst = {0, (double)(int64)r[a].i}
    FPToSI, ///< dst = {(uint64)(int64)r[a].f, 0}
    Call,   ///< dst = invoke call site aux
    Br,     ///< take edge aux
    CondBr, ///< take edge aux when r[a].i, else edge imm
    Ret,    ///< return r[a]
    RetVoid,
    Trap ///< trap messages[aux]; kChargeStep charges one step first
};

/** Inst::flags bits. */
constexpr std::uint8_t kWrite = 1;      ///< guard/chunk write access
constexpr std::uint8_t kArmsEpoch = 2;  ///< guard arms its reval slot
constexpr std::uint8_t kChargeStep = 4; ///< Trap charges one step

/**
 * One pre-decoded instruction. Operands are register numbers; `aux`
 * and `imm` carry opcode-specific immediates (see Op). `src` keeps the
 * originating IR instruction so debugLine/debugCol and allocation-site
 * identity survive pre-decoding.
 */
struct Inst
{
    Op op = Op::Trap;
    std::uint8_t flags = 0;
    std::uint16_t dst = 0;
    std::uint16_t a = 0;
    std::uint16_t b = 0;
    std::uint32_t aux = 0;
    std::int64_t imm = 0;
    const ir::Instruction *src = nullptr;
};

/** One register copy of a scheduled parallel-move list. */
struct Move
{
    std::uint16_t dst = 0;
    std::uint16_t src = 0;
};

/**
 * One CFG edge with its pre-resolved phi moves. Taking the edge
 * charges `phiSteps` interpreter steps (one per phi, reference-engine
 * parity), then either traps (a phi had no incoming for this
 * predecessor) or applies the scheduled copies and jumps to `target`.
 */
struct Edge
{
    std::uint32_t target = 0;   ///< pc of the successor block
    std::uint32_t phiSteps = 0; ///< steps charged before moves/trap
    bool phiTrap = false;       ///< missing incoming: trap after steps
    std::vector<Move> moves;
};

/** One call site, with the callee resolved at compile time. */
struct CallSite
{
    const ir::Instruction *inst = nullptr;
    const ir::Function *target = nullptr; ///< null => builtin intrinsic
    Builtin builtin = Builtin::None;
    std::vector<std::uint16_t> args;
};

/** One compiled function. */
struct Function
{
    const ir::Function *source = nullptr;
    /// False: compilation bailed out; the reference engine runs this
    /// function (see bailReason) while callers/callees stay compiled.
    bool ok = false;
    std::string bailReason;
    /// The entry block starts with phis: entering it with no
    /// predecessor traps before charging any steps.
    bool entryPhiTrap = false;
    std::uint32_t numRegs = 2;
    std::vector<Slot> initRegs; ///< constants pre-materialized
    std::vector<std::uint16_t> argRegs;
    std::vector<Inst> code;
    std::vector<Edge> edges;
    std::vector<CallSite> calls;
    std::vector<std::string> messages; ///< Trap message pool
    /// ChunkBegin origin per cursor slot (frame cursor state count).
    std::vector<const ir::Instruction *> cursorOrigins;
    std::uint32_t numRevals = 0; ///< epoch-arming guard slot count
};

/** A compiled module: one Function per ir::Function. */
struct Module
{
    std::map<const ir::Function *, Function> functions;
};

/** Compile every function; bailed-out ones are marked `ok = false`. */
Module compileModule(const ir::Module &module);

/**
 * Dense SSA-value -> register numbering for one function: arguments
 * and phis first (phis always occupy a frame slot in the reference
 * engine), then named non-void instructions, then constants.
 */
class RegAlloc
{
  public:
    /// Write-only sink for unnamed/void results.
    static constexpr std::uint16_t kSink = 0;
    /// Scratch register for parallel-copy cycle breaking.
    static constexpr std::uint16_t kScratch = 1;

    explicit RegAlloc(const ir::Function &function);

    /** False when the function needs more than 64K registers. */
    bool ok() const { return !overflow; }

    bool hasReg(const ir::Value *value) const
    {
        return regs.count(value) > 0;
    }

    /** Register of @p value; kSink when it has none. */
    std::uint16_t
    regOf(const ir::Value *value) const
    {
        auto it = regs.find(value);
        return it == regs.end() ? kSink : it->second;
    }

    std::uint32_t numRegs() const { return next; }
    const std::vector<Slot> &initRegs() const { return init; }
    const std::vector<std::uint16_t> &argRegs() const { return args; }

  private:
    std::map<const ir::Value *, std::uint16_t> regs;
    std::vector<Slot> init;
    std::vector<std::uint16_t> args;
    std::uint32_t next = 2;
    bool overflow = false;
};

/**
 * Order a parallel copy (all sources read before any destination is
 * written) into a sequential move list, breaking cycles through
 * @p scratch. Self-moves are dropped.
 */
std::vector<Move> scheduleParallelMoves(std::vector<Move> moves,
                                        std::uint16_t scratch);

} // namespace bc
} // namespace tfm

#endif // TRACKFM_INTERP_BYTECODE_HH
