/**
 * @file
 * IR interpreter: executes (transformed) modules against a TrackFM
 * runtime instance.
 *
 * The memory model mirrors the real system:
 *  - tagged (non-canonical) addresses reach memory only through guard /
 *    chunk.access instructions, which translate them to host pointers
 *    exactly as Fig. 4's generated code does;
 *  - a direct load/store of a tagged address traps, the interpreter's
 *    analogue of the general-protection fault a real non-canonical
 *    dereference raises — the safety net that makes missed guards loud;
 *  - untagged addresses (allocas, pre-transformation malloc) are host
 *    pointers accessed directly.
 */

#ifndef TRACKFM_INTERP_INTERPRETER_HH
#define TRACKFM_INTERP_INTERPRETER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.hh"
#include "passes/hot_alloc_pruning.hh"
#include "tfm/tfm_runtime.hh"

namespace tfm
{

/**
 * Execution engine selection. Both engines are bit-exact against each
 * other (outputs, heap contents, trap text, step counts, simulated
 * cycles, GuardStats); the bytecode engine is the fast default, the
 * tree-walking reference engine the trust anchor (and the only engine
 * the far-memory sanitizer runs on).
 */
enum class InterpEngine : std::uint8_t
{
    Reference, ///< tree-walking over the IR (lazy value lookups)
    Bytecode   ///< pre-decoded register VM with threaded dispatch
};

/** Outcome of one interpreted execution. */
struct RunResult
{
    bool trapped = false;
    std::string trapMessage;
    std::int64_t returnValue = 0;
    double returnFloat = 0.0;
    std::uint64_t instructionsExecuted = 0;
    /// Values passed to the print_i64 intrinsic, in order.
    std::vector<std::int64_t> output;
    /// Engine that actually ran: "bytecode" or "ref" (the sanitizer
    /// forces ref regardless of the requested engine).
    std::string engine;
    /// Host wall-clock time inside the engine (dispatch-rate metric;
    /// unrelated to the simulated cycle clock).
    double wallSeconds = 0.0;
    /// Guards resolved by the inline last-object cache probe without
    /// leaving the dispatch loop (bytecode engine only).
    std::uint64_t guardFastHits = 0;

    bool ok() const { return !trapped; }
};

/** Executes IR functions against a TfmRuntime. */
class Interpreter
{
  public:
    Interpreter(const ir::Module &module, TfmRuntime &runtime);
    ~Interpreter();

    /**
     * Run @p function_name with integer arguments.
     * Execution stops at `maxSteps` interpreted instructions (runaway
     * protection) and reports a trap.
     */
    RunResult run(const std::string &function_name,
                  const std::vector<std::int64_t> &args = {});

    /** Default step budget; adjustable for long-running programs. */
    std::uint64_t maxSteps = 200'000'000;

    /**
     * Engine for subsequent run() calls. Per-function compile
     * bailouts (non-canonical SSA) silently fall back to the
     * reference engine for that function only; enableSanitizer()
     * forces the reference engine for the whole run.
     */
    InterpEngine engine = InterpEngine::Bytecode;

    /** @name Allocation-site profiling (for HotAllocPruningPass)
     * @{ */
    /** Record per-allocation-site hotness during subsequent runs. */
    void enableAllocationProfiling();
    /** The profile collected so far. */
    AllocSiteProfile allocationProfile() const;
    /** @} */

    /** @name Far-memory sanitizer (tfmc's --sanitize=farmem)
     * @{ */
    /**
     * Validate every guard-mediated access during subsequent runs.
     * Evacuations poison outstanding host translations, so a deref
     * through a stale translation traps with the producing guard, the
     * arming/invalidating epochs, and the allocating call site; an
     * access that walks off the guarded object frame or outside the
     * backing far-heap allocation traps with the same context. Clean
     * programs run unchanged: a translation armed by a guard is valid
     * until the next runtime entry, and the transformed pipeline never
     * separates a guard from its uses by one.
     */
    void enableSanitizer();
    /** @} */

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace tfm

#endif // TRACKFM_INTERP_INTERPRETER_HH
