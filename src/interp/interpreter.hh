/**
 * @file
 * IR interpreter: executes (transformed) modules against a TrackFM
 * runtime instance.
 *
 * The memory model mirrors the real system:
 *  - tagged (non-canonical) addresses reach memory only through guard /
 *    chunk.access instructions, which translate them to host pointers
 *    exactly as Fig. 4's generated code does;
 *  - a direct load/store of a tagged address traps, the interpreter's
 *    analogue of the general-protection fault a real non-canonical
 *    dereference raises — the safety net that makes missed guards loud;
 *  - untagged addresses (allocas, pre-transformation malloc) are host
 *    pointers accessed directly.
 */

#ifndef TRACKFM_INTERP_INTERPRETER_HH
#define TRACKFM_INTERP_INTERPRETER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.hh"
#include "passes/hot_alloc_pruning.hh"
#include "tfm/tfm_runtime.hh"

namespace tfm
{

/** Outcome of one interpreted execution. */
struct RunResult
{
    bool trapped = false;
    std::string trapMessage;
    std::int64_t returnValue = 0;
    double returnFloat = 0.0;
    std::uint64_t instructionsExecuted = 0;
    /// Values passed to the print_i64 intrinsic, in order.
    std::vector<std::int64_t> output;

    bool ok() const { return !trapped; }
};

/** Executes IR functions against a TfmRuntime. */
class Interpreter
{
  public:
    Interpreter(const ir::Module &module, TfmRuntime &runtime);
    ~Interpreter();

    /**
     * Run @p function_name with integer arguments.
     * Execution stops at `maxSteps` interpreted instructions (runaway
     * protection) and reports a trap.
     */
    RunResult run(const std::string &function_name,
                  const std::vector<std::int64_t> &args = {});

    /** Default step budget; adjustable for long-running programs. */
    std::uint64_t maxSteps = 200'000'000;

    /** @name Allocation-site profiling (for HotAllocPruningPass)
     * @{ */
    /** Record per-allocation-site hotness during subsequent runs. */
    void enableAllocationProfiling();
    /** The profile collected so far. */
    AllocSiteProfile allocationProfile() const;
    /** @} */

    /** @name Far-memory sanitizer (tfmc's --sanitize=farmem)
     * @{ */
    /**
     * Validate every guard-mediated access during subsequent runs.
     * Evacuations poison outstanding host translations, so a deref
     * through a stale translation traps with the producing guard, the
     * arming/invalidating epochs, and the allocating call site; an
     * access that walks off the guarded object frame or outside the
     * backing far-heap allocation traps with the same context. Clean
     * programs run unchanged: a translation armed by a guard is valid
     * until the next runtime entry, and the transformed pipeline never
     * separates a guard from its uses by one.
     */
    void enableSanitizer();
    /** @} */

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace tfm

#endif // TRACKFM_INTERP_INTERPRETER_HH
