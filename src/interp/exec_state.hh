/**
 * @file
 * Shared interpreter implementation state (internal header).
 *
 * `Interpreter::Impl` is split across two translation units: the
 * tree-walking reference engine (interpreter.cc) and the pre-decoded
 * register bytecode engine (bytecode.cc). Both execute against the
 * state defined here — same runtime, same step counter, same output
 * vector, same profiling/sanitizer bookkeeping — so a program may mix
 * engines per function (bytecode compilation bails out conservatively)
 * and still behave bit-identically to either engine alone.
 *
 * Everything observable must match between engines: step counts,
 * simulated cycles, GuardStats, trap text, outputs, and heap contents.
 * Helpers used by both live here inline so trap messages and cost
 * charges have a single source of truth.
 */

#ifndef TRACKFM_INTERP_EXEC_STATE_HH
#define TRACKFM_INTERP_EXEC_STATE_HH

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "interp/bytecode.hh"
#include "interp/interpreter.hh"
#include "tfm/tagged_ptr.hh"

namespace tfm
{

struct Interpreter::Impl
{
    const ir::Module &module;
    TfmRuntime &rt;
    std::uint64_t steps = 0;
    std::uint64_t maxSteps = 0;
    std::vector<std::int64_t> output;
    /// Host allocations backing allocas and untransformed malloc.
    std::vector<std::unique_ptr<std::byte[]>> hostAllocations;

    /// @name Engine selection
    /// @{
    InterpEngine engine = InterpEngine::Bytecode;
    /// Lazily compiled bytecode for the whole module.
    bc::Module bcode;
    bool bcodeReady = false;
    /// Guards resolved by the inline last-object cache probe without
    /// leaving the dispatch loop (bytecode engine only).
    std::uint64_t guardFastHits = 0;
    /// @}

    /// @name Allocation-site profiling
    /// @{
    bool profiling = false;
    /// Allocation-call instruction -> module-wide ordinal.
    std::map<const ir::Instruction *, std::uint32_t> siteOrdinals;
    AllocSiteProfile profile;
    /// Far-heap interval -> profile index (start -> {end, index}).
    std::map<std::uint64_t, std::pair<std::uint64_t, std::size_t>>
        intervals;
    /// @}

    /// @name Far-memory sanitizer
    /// @{
    bool sanitizing = false;
    /// Memory-access instruction -> the guard-family instruction that
    /// produced its address (precomputed over the whole module).
    std::map<const ir::Instruction *, const ir::Instruction *> sanRoots;
    /// One live far-heap allocation, for bounds checks and trap text.
    struct SanAlloc
    {
        std::uint64_t end = 0; ///< one past the last allocated offset
        std::string desc;      ///< allocating call site
    };
    /// Live allocations keyed by their starting far-heap offset.
    std::map<std::uint64_t, SanAlloc> sanAllocs;
    /// @}

    Impl(const ir::Module &m, TfmRuntime &runtime)
        : module(m), rt(runtime)
    {}

    /// Defined in interpreter.cc (needs analysis/guard_safety.hh).
    void enableProfiling();
    void enableSanitizer();

    /** Record one far-heap allocation for profiling. */
    void
    recordAllocation(const ir::Instruction &call_inst,
                     std::uint64_t tagged_addr, std::uint64_t bytes)
    {
        if (!profiling)
            return;
        auto it = siteOrdinals.find(&call_inst);
        if (it == siteOrdinals.end())
            return;
        const std::size_t index = it->second;
        profile.sites[index].allocations++;
        profile.sites[index].bytesAllocated += bytes;
        const std::uint64_t offset = tfmOffsetOf(tagged_addr);
        intervals[offset] = {offset + bytes, index};
    }

    /// Observed-pattern classification threshold: an access within one
    /// cache line of the site's previous access reads as streaming.
    static constexpr std::uint64_t seqDeltaBytes = 64;
    /// Site index -> far-heap offset of the site's last access.
    std::map<std::size_t, std::uint64_t> lastSiteOffset;

    /** Attribute a guarded (or paged) access to its allocation site. */
    void
    recordAccess(std::uint64_t tagged_addr)
    {
        if (!profiling || intervals.empty())
            return;
        const std::uint64_t offset = tfmOffsetOf(tagged_addr);
        auto it = intervals.upper_bound(offset);
        if (it == intervals.begin())
            return;
        --it;
        if (offset >= it->second.first)
            return;
        const std::size_t index = it->second.second;
        auto &site = profile.sites[index];
        site.guardedAccesses++;
        // Dynamic access-pattern witness for the static analysis: a
        // near-sequential delta from the site's previous access counts
        // as streaming, anything farther as dependent/random.
        auto last = lastSiteOffset.find(index);
        if (last != lastSiteOffset.end()) {
            const std::uint64_t prev = last->second;
            const std::uint64_t delta =
                offset > prev ? offset - prev : prev - offset;
            if (delta <= seqDeltaBytes)
                site.seqAccesses++;
            else
                site.randAccesses++;
        }
        lastSiteOffset[index] = offset;
    }

    [[noreturn]] static void
    trap(const std::string &message)
    {
        throw TrapException{message};
    }

    void
    step()
    {
        if (++steps > maxSteps)
            trap("step limit exceeded (possible infinite loop)");
        rt.clock().advance(rt.costs().computeCycles);
    }

    std::uint64_t
    hostAlloc(std::uint64_t bytes)
    {
        hostAllocations.push_back(
            std::make_unique<std::byte[]>(bytes ? bytes : 1));
        return reinterpret_cast<std::uint64_t>(
            hostAllocations.back().get());
    }

    /** Per-call state of the reference engine. */
    struct Frame
    {
        std::map<const ir::Value *, Slot> values;
        /// Live chunk cursors created by chunk.begin in this frame.
        struct Cursor
        {
            std::uint64_t curObj = TfmRuntime::noObject;
            std::byte *window = nullptr;
        };
        std::map<const ir::Instruction *, Cursor> cursors;
        /// Armed state of epoch-arming guards (loop-invariant hoisting):
        /// the eviction epoch and host pointer captured when the arming
        /// guard last executed, consumed by guard.reval.
        struct Reval
        {
            std::uint64_t epoch = 0;
            std::byte *host = nullptr;
        };
        std::map<const ir::Instruction *, Reval> revalStates;
        /// Sanitizer: the latest host translation each guard-family
        /// instruction produced, as a frame window plus the far-heap
        /// offset that window maps.
        struct SanTransl
        {
            std::uint64_t frameStart = 0; ///< host addr of frame byte 0
            std::uint64_t frameEnd = 0;   ///< one past the frame
            std::uint64_t objStartOffset = 0; ///< far offset of byte 0
            std::uint64_t epoch = 0; ///< eviction epoch at translation
            bool pinned = false;     ///< chunk window: eviction-proof
        };
        std::map<const ir::Instruction *, SanTransl> sanTransl;
    };

    /// Defined in interpreter.cc (sanitizer runs on the ref engine).
    void sanRecord(Frame &frame, const ir::Instruction &producer,
                   std::uint64_t tagged_addr, const std::byte *host,
                   bool pinned);
    void sanRecordAlloc(const ir::Instruction &call_inst,
                        std::uint64_t tagged_addr, std::uint64_t bytes);
    const SanAlloc *sanAllocFor(std::uint64_t offset) const;
    void sanCheck(Frame &frame, const ir::Instruction &inst,
                  std::uint64_t addr, std::uint32_t bytes,
                  bool is_store);

    Slot
    valueOf(Frame &frame, const ir::Value *value)
    {
        if (value->isConstant()) {
            const auto *constant =
                static_cast<const ir::Constant *>(value);
            Slot slot;
            if (constant->type() == ir::Type::F64)
                slot.f = constant->floatValue();
            else
                slot.i =
                    static_cast<std::uint64_t>(constant->intValue());
            return slot;
        }
        auto it = frame.values.find(value);
        if (it == frame.values.end())
            trap("use of undefined value %" + value->name());
        return it->second;
    }

    /** Raw memory access; traps on tagged (unguarded) addresses. */
    void
    rawAccess(std::uint64_t addr, void *buffer, std::uint32_t bytes,
              bool is_store)
    {
        if (pgIsTagged(addr)) {
            // Paged-plane pointer (hybrid arbiter): the "hardware" maps
            // it through the page table — fault accounting in the paged
            // plane, data through the shared far heap. No guard runs.
            if (is_store)
                rt.pagedWrite(addr, buffer, bytes);
            else
                rt.pagedRead(addr, buffer, bytes);
            recordAccess(addr);
            return;
        }
        if (tfmIsTagged(addr)) {
            trap("general protection fault: unguarded access to "
                 "non-canonical address (missing TrackFM guard)");
        }
        if (addr == 0)
            trap("null pointer dereference");
        if (is_store)
            std::memcpy(reinterpret_cast<void *>(addr), buffer, bytes);
        else
            std::memcpy(buffer, reinterpret_cast<void *>(addr), bytes);
    }

    Slot
    loadFrom(std::uint64_t addr, ir::Type type)
    {
        Slot slot;
        const std::uint32_t bytes = ir::sizeOf(type);
        if (type == ir::Type::F64) {
            rawAccess(addr, &slot.f, bytes, false);
        } else {
            std::uint64_t raw = 0;
            rawAccess(addr, &raw, bytes, false);
            slot.i = raw;
        }
        return slot;
    }

    void
    storeTo(std::uint64_t addr, Slot slot, ir::Type type)
    {
        const std::uint32_t bytes = ir::sizeOf(type);
        if (type == ir::Type::F64)
            rawAccess(addr, &slot.f, bytes, true);
        else
            rawAccess(addr, &slot.i, bytes, true);
    }

    /**
     * Execute one interpreter intrinsic. @p arg lazily resolves call
     * operands (the reference engine looks values up on demand, so an
     * undefined operand of a later parameter must not trap before an
     * earlier one does).
     */
    template <typename ArgFn>
    Slot
    runBuiltin(Builtin builtin, const ir::Instruction &inst,
               ArgFn &&arg)
    {
        Slot result;
        switch (builtin) {
        case Builtin::RuntimeInit:
            // Hook inserted by RuntimeInitPass; the runtime in this
            // harness is constructed eagerly, so this is a marker.
            return result;
        case Builtin::TfmMalloc: {
            const std::uint64_t bytes = arg(0).i;
            result.i = rt.tfmMalloc(bytes);
            recordAllocation(inst, result.i, bytes);
            sanRecordAlloc(inst, result.i, bytes);
            return result;
        }
        case Builtin::TfmCalloc: {
            const std::uint64_t bytes = arg(0).i * arg(1).i;
            result.i = rt.tfmCalloc(arg(0).i, arg(1).i);
            recordAllocation(inst, result.i, bytes);
            sanRecordAlloc(inst, result.i, bytes);
            return result;
        }
        case Builtin::HostMalloc:
            // A pruned (hot, local-only) allocation, or an
            // untransformed program's host heap.
            result.i = hostAlloc(arg(0).i);
            return result;
        case Builtin::HostCalloc: {
            const std::uint64_t bytes = arg(0).i * arg(1).i;
            result.i = hostAlloc(bytes);
            std::memset(reinterpret_cast<void *>(result.i), 0, bytes);
            return result;
        }
        case Builtin::TfmRealloc: {
            const std::uint64_t old_addr = arg(0).i;
            result.i = rt.tfmRealloc(old_addr, arg(1).i);
            if (sanitizing && tfmIsTagged(old_addr))
                sanAllocs.erase(tfmOffsetOf(old_addr));
            sanRecordAlloc(inst, result.i, arg(1).i);
            return result;
        }
        case Builtin::TfmFree:
            if (sanitizing && tfmIsTagged(arg(0).i))
                sanAllocs.erase(tfmOffsetOf(arg(0).i));
            rt.tfmFree(arg(0).i);
            return result;
        case Builtin::HostFree:
            return result; // host arena frees at interpreter teardown
        case Builtin::PrintI64:
            output.push_back(static_cast<std::int64_t>(arg(0).i));
            return result;
        case Builtin::EvacuateAll:
            // Test/bench hook: force a full evacuation mid-program so
            // hoisted guards must take the revalidation-miss path.
            rt.runtime().evacuateAll();
            rt.evacuatePaged();
            return result;
        case Builtin::PgMalloc: {
            const std::uint64_t bytes = arg(0).i;
            result.i = rt.pagedMalloc(bytes);
            recordAllocation(inst, result.i, bytes);
            sanRecordAlloc(inst, result.i, bytes);
            return result;
        }
        case Builtin::PgCalloc: {
            const std::uint64_t bytes = arg(0).i * arg(1).i;
            result.i = rt.pagedCalloc(arg(0).i, arg(1).i);
            recordAllocation(inst, result.i, bytes);
            sanRecordAlloc(inst, result.i, bytes);
            return result;
        }
        case Builtin::PgFree:
            if (sanitizing && pgIsTagged(arg(0).i))
                sanAllocs.erase(tfmOffsetOf(arg(0).i));
            rt.pagedFree(arg(0).i);
            return result;
        case Builtin::None:
            break;
        }
        return result;
    }

    /** Defined in interpreter.cc: intrinsics plus user calls. */
    Slot callIntrinsicOrFunction(Frame &frame,
                                 const ir::Instruction &inst,
                                 int depth);

    /** The tree-walking reference engine (interpreter.cc). */
    Slot execFunctionRef(const ir::Function &function, const Slot *args,
                         std::size_t nargs, int depth);

    /** @name Bytecode engine (bytecode.cc)
     * @{ */
    /** Compile the module once (idempotent). */
    void ensureCompiled();
    /** Run one compiled function on the register VM. */
    Slot runBytecode(const bc::Function &fn, const Slot *args,
                     std::size_t nargs, int depth);
    /** @} */

    /** True when calls should prefer compiled bytecode. */
    bool
    useBytecode() const
    {
        return engine == InterpEngine::Bytecode && !sanitizing;
    }

    /**
     * Invoke @p function on whichever engine can run it: compiled
     * bytecode when available, the reference engine otherwise (engine
     * forced to ref, sanitizer active, or per-function compile
     * bailout). The only inter-frame interface is the argument/return
     * slots plus this shared Impl state, so frames may mix engines.
     */
    Slot
    callFunction(const ir::Function &function, const Slot *args,
                 std::size_t nargs, int depth)
    {
        if (useBytecode()) {
            auto it = bcode.functions.find(&function);
            if (it != bcode.functions.end() && it->second.ok)
                return runBytecode(it->second, args, nargs, depth);
        }
        return execFunctionRef(function, args, nargs, depth);
    }
};

} // namespace tfm

#endif // TRACKFM_INTERP_EXEC_STATE_HH
