/**
 * @file
 * The tree-walking reference engine, plus the Interpreter facade.
 *
 * This engine resolves every operand lazily through the frame's value
 * map, which makes it the semantic baseline the bytecode engine
 * (bytecode.cc) must match bit-exactly — and the only engine that can
 * execute IR the bytecode compiler bails out on (non-canonical SSA,
 * uses of undefined values) with faithful trap behavior. The
 * far-memory sanitizer runs exclusively here.
 */

#include "interp/exec_state.hh"

#include <chrono>

#include "analysis/guard_safety.hh"
#include "obs/obs.hh"

namespace tfm
{

void
Interpreter::Impl::enableProfiling()
{
    profiling = true;
    std::uint32_t ordinal = 0;
    for (const auto &function : module.allFunctions()) {
        for (const auto &block : function->basicBlocks()) {
            for (const auto &inst : block->instructions()) {
                if (inst->op() == ir::Opcode::Call &&
                    isAllocationCallee(inst->callee)) {
                    siteOrdinals[inst.get()] = ordinal;
                    AllocSiteProfile::Site site;
                    site.function = function->name();
                    site.ordinal = ordinal;
                    profile.sites.push_back(site);
                    ordinal++;
                }
            }
        }
    }
}

void
Interpreter::Impl::enableSanitizer()
{
    sanitizing = true;
    sanRoots.clear();
    for (const auto &function : module.allFunctions()) {
        for (const auto &block : function->basicBlocks()) {
            for (const auto &inst : block->instructions()) {
                const bool is_load = inst->op() == ir::Opcode::Load;
                const bool is_store = inst->op() == ir::Opcode::Store;
                if (!is_load && !is_store)
                    continue;
                const ir::Instruction *root = guardRootProducer(
                    inst->operand(is_load ? 0 : 1));
                if (root)
                    sanRoots[inst.get()] = root;
            }
        }
    }
}

/** Sanitizer bookkeeping for a guard-family translation. An untagged
 *  (custody-rejected) address erases the entry instead so the map
 *  always mirrors the producer's latest execution. */
void
Interpreter::Impl::sanRecord(Frame &frame,
                             const ir::Instruction &producer,
                             std::uint64_t tagged_addr,
                             const std::byte *host, bool pinned)
{
    if (!sanitizing)
        return;
    if (!tfmIsTagged(tagged_addr)) {
        frame.sanTransl.erase(&producer);
        return;
    }
    const auto &table = rt.runtime().stateTable();
    const std::uint64_t offset = tfmOffsetOf(tagged_addr);
    const std::uint64_t in_obj = table.offsetInObject(offset);
    Frame::SanTransl transl;
    transl.frameStart = reinterpret_cast<std::uint64_t>(host) - in_obj;
    transl.frameEnd =
        transl.frameStart + rt.runtime().config().objectSizeBytes;
    transl.objStartOffset = offset - in_obj;
    transl.epoch = rt.runtime().evictionEpoch();
    transl.pinned = pinned;
    frame.sanTransl[&producer] = transl;
}

/** Track a live far-heap allocation for the sanitizer. */
void
Interpreter::Impl::sanRecordAlloc(const ir::Instruction &call_inst,
                                  std::uint64_t tagged_addr,
                                  std::uint64_t bytes)
{
    if (!sanitizing || !(tfmIsTagged(tagged_addr) || pgIsTagged(tagged_addr)))
        return;
    SanAlloc alloc;
    alloc.end = tfmOffsetOf(tagged_addr) + bytes;
    alloc.desc = call_inst.callee;
    if (call_inst.debugLine > 0) {
        alloc.desc += " (line " + std::to_string(call_inst.debugLine) +
                      ":" + std::to_string(call_inst.debugCol) + ")";
    }
    sanAllocs[tfmOffsetOf(tagged_addr)] = std::move(alloc);
}

/** The live allocation covering @p offset, or null. */
const Interpreter::Impl::SanAlloc *
Interpreter::Impl::sanAllocFor(std::uint64_t offset) const
{
    auto it = sanAllocs.upper_bound(offset);
    if (it == sanAllocs.begin())
        return nullptr;
    --it;
    return offset < it->second.end ? &it->second : nullptr;
}

namespace
{

std::string
sanWhere(const ir::Instruction &inst)
{
    if (inst.debugLine <= 0)
        return std::string();
    return " at line " + std::to_string(inst.debugLine) + ":" +
           std::to_string(inst.debugCol);
}

} // anonymous namespace

/** Validate one guard-mediated memory access. */
void
Interpreter::Impl::sanCheck(Frame &frame, const ir::Instruction &inst,
                            std::uint64_t addr, std::uint32_t bytes,
                            bool is_store)
{
    if (tfmIsTagged(addr))
        return; // rawAccess raises the GP-fault analogue itself
    auto root_it = sanRoots.find(&inst);
    if (root_it == sanRoots.end())
        return; // address never flowed through a guard
    const ir::Instruction *root = root_it->second;
    auto transl_it = frame.sanTransl.find(root);
    if (transl_it == frame.sanTransl.end())
        return; // producer only ever saw untagged pointers
    const Frame::SanTransl &transl = transl_it->second;
    const std::string access =
        std::string(is_store ? "store" : "load") + sanWhere(inst);
    const SanAlloc *home = sanAllocFor(transl.objStartOffset);
    const std::string origin =
        home ? "; object allocated by " + home->desc : std::string();
    // A translation is valid until the next runtime entry; any
    // eviction/evacuation since arming poisons it.
    if (!transl.pinned &&
        transl.epoch != rt.runtime().evictionEpoch()) {
        trap("farmem-sanitizer: use-after-eviction: " + access +
             " dereferences a stale translation from %" + root->name() +
             " (guarded at epoch " + std::to_string(transl.epoch) +
             ", evacuation advanced the epoch to " +
             std::to_string(rt.runtime().evictionEpoch()) + ")" +
             origin);
    }
    if (addr < transl.frameStart || addr + bytes > transl.frameEnd) {
        trap("farmem-sanitizer: " + access +
             " escapes the guarded object frame of %" + root->name() +
             " (frame offset " +
             std::to_string(
                 static_cast<std::int64_t>(addr - transl.frameStart)) +
             ", frame is " +
             std::to_string(transl.frameEnd - transl.frameStart) +
             " bytes)" + origin);
    }
    const std::uint64_t mapped =
        transl.objStartOffset + (addr - transl.frameStart);
    const SanAlloc *alloc = sanAllocFor(mapped);
    if (!alloc || mapped + bytes > alloc->end) {
        trap("farmem-sanitizer: " + access +
             " maps to far-heap offset " + std::to_string(mapped) +
             " outside any live allocation (via %" + root->name() +
             ")" + origin);
    }
}

Slot
Interpreter::Impl::callIntrinsicOrFunction(Frame &frame,
                                           const ir::Instruction &inst,
                                           int depth)
{
    auto arg = [&](std::size_t index) {
        return valueOf(frame, inst.operand(index));
    };
    const Builtin builtin = builtinOf(inst.callee);
    if (builtin != Builtin::None)
        return runBuiltin(builtin, inst, arg);

    const ir::Function *target = module.findFunction(inst.callee);
    if (!target)
        trap("call to unknown function @" + inst.callee);
    if (depth > 200)
        trap("call depth limit exceeded");
    std::vector<Slot> call_args;
    for (std::size_t i = 0; i < inst.numOperands(); i++)
        call_args.push_back(arg(i));
    // Route through the engine dispatcher: a reference-engine frame
    // may call into a compiled callee and vice versa.
    return callFunction(*target, call_args.data(), call_args.size(),
                        depth + 1);
}

Slot
Interpreter::Impl::execFunctionRef(const ir::Function &function,
                                   const Slot *args, std::size_t nargs,
                                   int depth)
{
    Frame frame;
    // Release chunk pins owned by this frame (on return or trap).
    auto releaseCursors = [&] {
        for (auto &[begin, cursor] : frame.cursors) {
            (void)begin;
            if (cursor.curObj != TfmRuntime::noObject)
                rt.endChunk(cursor.curObj);
            cursor.curObj = TfmRuntime::noObject;
        }
    };
    if (nargs != function.arguments().size())
        trap("argument count mismatch calling @" + function.name());
    for (std::size_t i = 0; i < nargs; i++)
        frame.values[function.arguments()[i].get()] = args[i];

    const ir::BasicBlock *block = function.entry();
    const ir::BasicBlock *previous = nullptr;
    if (!block)
        trap("function @" + function.name() + " has no entry");

    // Hoisted out of the block loop so its capacity is reused across
    // block entries instead of reallocating per iteration.
    std::vector<std::pair<const ir::Value *, Slot>> phi_values;

    try {
        while (true) {
            // Phi nodes evaluate simultaneously on block entry.
            phi_values.clear();
            for (const auto &inst : block->instructions()) {
                if (inst->op() != ir::Opcode::Phi)
                    break;
                bool matched = false;
                for (const auto &[incoming, pred] : inst->incoming()) {
                    if (pred == previous) {
                        phi_values.emplace_back(
                            inst.get(), valueOf(frame, incoming));
                        matched = true;
                        break;
                    }
                }
                if (!matched)
                    trap("phi without incoming for predecessor");
                step();
            }
            for (const auto &[phi, slot] : phi_values)
                frame.values[phi] = slot;

            const ir::BasicBlock *next = nullptr;
            for (const auto &owned : block->instructions()) {
                const ir::Instruction &inst = *owned;
                if (inst.op() == ir::Opcode::Phi)
                    continue;
                step();
                Slot result;
                switch (inst.op()) {
                  case ir::Opcode::Alloca:
                    result.i = hostAlloc(
                        static_cast<std::uint64_t>(inst.imm));
                    break;
                  case ir::Opcode::Load: {
                    const std::uint64_t addr =
                        valueOf(frame, inst.operand(0)).i;
                    if (sanitizing) {
                        sanCheck(frame, inst, addr,
                                 ir::sizeOf(inst.type()), false);
                    }
                    result = loadFrom(addr, inst.type());
                    break;
                  }
                  case ir::Opcode::Store: {
                    const std::uint64_t addr =
                        valueOf(frame, inst.operand(1)).i;
                    const ir::Type stored_type =
                        inst.operand(0)->type() == ir::Type::F64
                            ? ir::Type::F64
                            : inst.operand(0)->type();
                    if (sanitizing) {
                        sanCheck(frame, inst, addr,
                                 ir::sizeOf(stored_type), true);
                    }
                    storeTo(addr, valueOf(frame, inst.operand(0)),
                            stored_type);
                    break;
                  }
                  case ir::Opcode::Gep:
                    result.i =
                        valueOf(frame, inst.operand(0)).i +
                        valueOf(frame, inst.operand(1)).i *
                            static_cast<std::uint64_t>(inst.imm);
                    break;
                  case ir::Opcode::Guard: {
                    const std::uint64_t addr =
                        valueOf(frame, inst.operand(0)).i;
                    if (tfmIsTagged(addr))
                        recordAccess(addr);
                    std::byte *host = inst.isWrite
                                          ? rt.guardWrite(addr)
                                          : rt.guardRead(addr);
                    if (inst.armsEpoch) {
                        frame.revalStates[&inst] = Frame::Reval{
                            rt.runtime().evictionEpoch(), host};
                    }
                    sanRecord(frame, inst, addr, host, false);
                    result.i = reinterpret_cast<std::uint64_t>(host);
                    break;
                  }
                  case ir::Opcode::GuardReval: {
                    const auto *armer =
                        static_cast<const ir::Instruction *>(
                            inst.operand(0));
                    const std::uint64_t addr =
                        valueOf(frame, inst.operand(1)).i;
                    auto armed_it = frame.revalStates.find(armer);
                    if (armed_it == frame.revalStates.end())
                        trap("guard.reval before its arming guard");
                    auto &armed = armed_it->second;
                    if (tfmIsTagged(addr) &&
                        rt.revalidate(addr, armed.epoch)) {
                        // Epoch unchanged since arming: the host
                        // pointer (and any dirty bit) is still live.
                        sanRecord(frame, inst, addr, armed.host,
                                  false);
                        result.i = reinterpret_cast<std::uint64_t>(
                            armed.host);
                        break;
                    }
                    // Evacuation since arming (or an untagged
                    // pointer): re-run the full guard and re-arm.
                    if (tfmIsTagged(addr))
                        recordAccess(addr);
                    std::byte *host = inst.isWrite
                                          ? rt.guardWrite(addr)
                                          : rt.guardRead(addr);
                    armed.epoch = rt.runtime().evictionEpoch();
                    armed.host = host;
                    sanRecord(frame, inst, addr, host, false);
                    result.i = reinterpret_cast<std::uint64_t>(host);
                    break;
                  }
                  case ir::Opcode::ChunkBegin: {
                    // (Re)arm the cursor for a fresh loop entry.
                    auto &cursor = frame.cursors[&inst];
                    if (cursor.curObj != TfmRuntime::noObject)
                        rt.endChunk(cursor.curObj);
                    cursor.curObj = TfmRuntime::noObject;
                    cursor.window = nullptr;
                    result.i = reinterpret_cast<std::uint64_t>(&inst);
                    break;
                  }
                  case ir::Opcode::ChunkAccess: {
                    const auto *begin =
                        static_cast<const ir::Instruction *>(
                            inst.operand(0));
                    auto cursor_it = frame.cursors.find(begin);
                    if (cursor_it == frame.cursors.end())
                        trap("chunk.access before chunk.begin");
                    auto &cursor = cursor_it->second;
                    const std::uint64_t addr =
                        valueOf(frame, inst.operand(1)).i;
                    if (!tfmIsTagged(addr)) {
                        // Custody check inside the chunk helper.
                        rt.clock().advance(
                            rt.costs().custodyRejectCycles);
                        if (sanitizing)
                            frame.sanTransl.erase(&inst);
                        result.i = addr;
                        break;
                    }
                    recordAccess(addr);
                    const auto &table = rt.runtime().stateTable();
                    const std::uint64_t offset = tfmOffsetOf(addr);
                    const std::uint64_t obj = table.objectOf(offset);
                    if (obj != cursor.curObj) {
                        std::byte *host = rt.localityGuard(
                            addr, cursor.curObj, inst.isWrite);
                        cursor.curObj = obj;
                        cursor.window =
                            host - table.offsetInObject(offset);
                    } else {
                        rt.boundaryCheck();
                    }
                    result.i = reinterpret_cast<std::uint64_t>(
                        cursor.window + table.offsetInObject(offset));
                    // Chunk windows stay pinned (eviction-proof)
                    // until the cursor moves or is released.
                    sanRecord(frame, inst, addr,
                              cursor.window +
                                  table.offsetInObject(offset),
                              true);
                    break;
                  }
                  case ir::Opcode::Prefetch: {
                    const std::uint64_t addr =
                        valueOf(frame, inst.operand(0)).i;
                    if (tfmIsTagged(addr)) {
                        rt.prefetchAhead(
                            addr, 1,
                            static_cast<std::uint32_t>(inst.imm));
                    }
                    break;
                  }
                  case ir::Opcode::Add:
                    result.i = valueOf(frame, inst.operand(0)).i +
                               valueOf(frame, inst.operand(1)).i;
                    break;
                  case ir::Opcode::Sub:
                    result.i = valueOf(frame, inst.operand(0)).i -
                               valueOf(frame, inst.operand(1)).i;
                    break;
                  case ir::Opcode::Mul:
                    result.i = valueOf(frame, inst.operand(0)).i *
                               valueOf(frame, inst.operand(1)).i;
                    break;
                  case ir::Opcode::SDiv: {
                    const auto divisor = static_cast<std::int64_t>(
                        valueOf(frame, inst.operand(1)).i);
                    if (divisor == 0)
                        trap("division by zero");
                    result.i = static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(
                            valueOf(frame, inst.operand(0)).i) /
                        divisor);
                    break;
                  }
                  case ir::Opcode::SRem: {
                    const auto divisor = static_cast<std::int64_t>(
                        valueOf(frame, inst.operand(1)).i);
                    if (divisor == 0)
                        trap("remainder by zero");
                    result.i = static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(
                            valueOf(frame, inst.operand(0)).i) %
                        divisor);
                    break;
                  }
                  case ir::Opcode::And:
                    result.i = valueOf(frame, inst.operand(0)).i &
                               valueOf(frame, inst.operand(1)).i;
                    break;
                  case ir::Opcode::Or:
                    result.i = valueOf(frame, inst.operand(0)).i |
                               valueOf(frame, inst.operand(1)).i;
                    break;
                  case ir::Opcode::Xor:
                    result.i = valueOf(frame, inst.operand(0)).i ^
                               valueOf(frame, inst.operand(1)).i;
                    break;
                  case ir::Opcode::Shl:
                    result.i = valueOf(frame, inst.operand(0)).i
                               << (valueOf(frame, inst.operand(1)).i &
                                   63);
                    break;
                  case ir::Opcode::LShr:
                    result.i = valueOf(frame, inst.operand(0)).i >>
                               (valueOf(frame, inst.operand(1)).i & 63);
                    break;
                  case ir::Opcode::FAdd:
                    result.f = valueOf(frame, inst.operand(0)).f +
                               valueOf(frame, inst.operand(1)).f;
                    break;
                  case ir::Opcode::FSub:
                    result.f = valueOf(frame, inst.operand(0)).f -
                               valueOf(frame, inst.operand(1)).f;
                    break;
                  case ir::Opcode::FMul:
                    result.f = valueOf(frame, inst.operand(0)).f *
                               valueOf(frame, inst.operand(1)).f;
                    break;
                  case ir::Opcode::FDiv:
                    result.f = valueOf(frame, inst.operand(0)).f /
                               valueOf(frame, inst.operand(1)).f;
                    break;
                  case ir::Opcode::ICmpEq:
                  case ir::Opcode::ICmpNe:
                  case ir::Opcode::ICmpSlt:
                  case ir::Opcode::ICmpSle:
                  case ir::Opcode::ICmpSgt:
                  case ir::Opcode::ICmpSge: {
                    const auto lhs = static_cast<std::int64_t>(
                        valueOf(frame, inst.operand(0)).i);
                    const auto rhs = static_cast<std::int64_t>(
                        valueOf(frame, inst.operand(1)).i);
                    bool truth = false;
                    switch (inst.op()) {
                      case ir::Opcode::ICmpEq:
                        truth = lhs == rhs;
                        break;
                      case ir::Opcode::ICmpNe:
                        truth = lhs != rhs;
                        break;
                      case ir::Opcode::ICmpSlt:
                        truth = lhs < rhs;
                        break;
                      case ir::Opcode::ICmpSle:
                        truth = lhs <= rhs;
                        break;
                      case ir::Opcode::ICmpSgt:
                        truth = lhs > rhs;
                        break;
                      default:
                        truth = lhs >= rhs;
                        break;
                    }
                    result.i = truth;
                    break;
                  }
                  case ir::Opcode::FCmpOlt:
                    result.i = valueOf(frame, inst.operand(0)).f <
                               valueOf(frame, inst.operand(1)).f;
                    break;
                  case ir::Opcode::Zext:
                  case ir::Opcode::PtrToInt:
                  case ir::Opcode::IntToPtr:
                    result.i = valueOf(frame, inst.operand(0)).i;
                    break;
                  case ir::Opcode::Trunc: {
                    const std::uint32_t bits =
                        ir::sizeOf(inst.type()) * 8;
                    const std::uint64_t mask =
                        bits >= 64 ? ~0ull : ((1ull << bits) - 1);
                    result.i =
                        valueOf(frame, inst.operand(0)).i & mask;
                    break;
                  }
                  case ir::Opcode::SIToFP:
                    result.f = static_cast<double>(
                        static_cast<std::int64_t>(
                            valueOf(frame, inst.operand(0)).i));
                    break;
                  case ir::Opcode::FPToSI:
                    result.i = static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(
                            valueOf(frame, inst.operand(0)).f));
                    break;
                  case ir::Opcode::Call:
                    result =
                        callIntrinsicOrFunction(frame, inst, depth);
                    break;
                  case ir::Opcode::Br:
                    next = inst.succ0;
                    break;
                  case ir::Opcode::CondBr:
                    next = valueOf(frame, inst.operand(0)).i
                               ? inst.succ0
                               : inst.succ1;
                    break;
                  case ir::Opcode::Ret: {
                    Slot returned;
                    if (inst.numOperands() > 0)
                        returned = valueOf(frame, inst.operand(0));
                    releaseCursors();
                    return returned;
                  }
                  case ir::Opcode::Phi:
                    break; // handled above
                }
                if (inst.type() != ir::Type::Void &&
                    !inst.name().empty()) {
                    frame.values[&inst] = result;
                }
            }
            if (!next)
                trap("block fell through without a terminator");
            previous = block;
            block = next;
        }
    } catch (TrapException &) {
        releaseCursors();
        throw;
    }
}

Interpreter::Interpreter(const ir::Module &module, TfmRuntime &runtime)
    : impl(std::make_unique<Impl>(module, runtime))
{}

Interpreter::~Interpreter() = default;

void
Interpreter::enableAllocationProfiling()
{
    impl->enableProfiling();
}

void
Interpreter::enableSanitizer()
{
    impl->enableSanitizer();
}

AllocSiteProfile
Interpreter::allocationProfile() const
{
    return impl->profile;
}

RunResult
Interpreter::run(const std::string &function_name,
                 const std::vector<std::int64_t> &args)
{
    RunResult result;
    impl->engine = engine;
    result.engine = impl->useBytecode() ? "bytecode" : "ref";
    const ir::Function *function =
        impl->module.findFunction(function_name);
    if (!function) {
        result.trapped = true;
        result.trapMessage = "no such function @" + function_name;
        return result;
    }
    impl->steps = 0;
    impl->maxSteps = maxSteps;
    impl->output.clear();
    impl->guardFastHits = 0;
    if (impl->useBytecode())
        impl->ensureCompiled();
    std::vector<Slot> slots;
    for (const std::int64_t value : args) {
        Slot slot;
        slot.i = static_cast<std::uint64_t>(value);
        slots.push_back(slot);
    }
    const auto wall_begin = std::chrono::steady_clock::now();
    try {
        const Slot returned = impl->callFunction(
            *function, slots.data(), slots.size(), 0);
        result.returnValue = static_cast<std::int64_t>(returned.i);
        result.returnFloat = returned.f;
    } catch (TrapException &trap_info) {
        result.trapped = true;
        result.trapMessage = trap_info.message;
    }
    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_begin)
            .count();
    result.instructionsExecuted = impl->steps;
    result.output = impl->output;
    result.guardFastHits = impl->guardFastHits;

    // Dispatch-rate observability: per-run instruction rate and inline
    // guard-cache hits, on the runtime's trace stream.
    Observability *obs = impl->rt.runtime().obs();
    if (obs && obs->trace().enabled()) {
        const std::uint64_t rate =
            result.wallSeconds > 0.0
                ? static_cast<std::uint64_t>(
                      static_cast<double>(result.instructionsExecuted) /
                      result.wallSeconds)
                : 0;
        const std::uint64_t now = impl->rt.clock().now();
        obs->trace().counter(impl->rt.runtime().obsStream(),
                             "interp.instRate", now, rate);
        obs->trace().counter(impl->rt.runtime().obsStream(),
                             "interp.guardFastHits", now,
                             result.guardFastHits);
    }
    return result;
}

} // namespace tfm
