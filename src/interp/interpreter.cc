#include "interpreter.hh"

#include <cstring>
#include <map>
#include <stdexcept>

#include "analysis/guard_safety.hh"
#include "ir/printer.hh"
#include "tfm/tagged_ptr.hh"

namespace tfm
{

namespace
{

/** Runtime value: integer/pointer or double. */
struct Slot
{
    std::uint64_t i = 0;
    double f = 0.0;
};

/** Thrown on traps; caught at the top of run(). */
struct TrapException
{
    std::string message;
};

} // anonymous namespace

struct Interpreter::Impl
{
    const ir::Module &module;
    TfmRuntime &rt;
    std::uint64_t steps = 0;
    std::uint64_t maxSteps = 0;
    std::vector<std::int64_t> output;
    /// Host allocations backing allocas and untransformed malloc.
    std::vector<std::unique_ptr<std::byte[]>> hostAllocations;

    /// @name Allocation-site profiling
    /// @{
    bool profiling = false;
    /// Allocation-call instruction -> module-wide ordinal.
    std::map<const ir::Instruction *, std::uint32_t> siteOrdinals;
    AllocSiteProfile profile;
    /// Far-heap interval -> profile index (start -> {end, index}).
    std::map<std::uint64_t, std::pair<std::uint64_t, std::size_t>>
        intervals;
    /// @}

    /// @name Far-memory sanitizer
    /// @{
    bool sanitizing = false;
    /// Memory-access instruction -> the guard-family instruction that
    /// produced its address (precomputed over the whole module).
    std::map<const ir::Instruction *, const ir::Instruction *> sanRoots;
    /// One live far-heap allocation, for bounds checks and trap text.
    struct SanAlloc
    {
        std::uint64_t end = 0; ///< one past the last allocated offset
        std::string desc;      ///< allocating call site
    };
    /// Live allocations keyed by their starting far-heap offset.
    std::map<std::uint64_t, SanAlloc> sanAllocs;
    /// @}

    Impl(const ir::Module &m, TfmRuntime &runtime) : module(m), rt(runtime)
    {}

    void
    enableProfiling()
    {
        profiling = true;
        std::uint32_t ordinal = 0;
        for (const auto &function : module.allFunctions()) {
            for (const auto &block : function->basicBlocks()) {
                for (const auto &inst : block->instructions()) {
                    if (inst->op() == ir::Opcode::Call &&
                        isAllocationCallee(inst->callee)) {
                        siteOrdinals[inst.get()] = ordinal;
                        AllocSiteProfile::Site site;
                        site.function = function->name();
                        site.ordinal = ordinal;
                        profile.sites.push_back(site);
                        ordinal++;
                    }
                }
            }
        }
    }

    void
    enableSanitizer()
    {
        sanitizing = true;
        sanRoots.clear();
        for (const auto &function : module.allFunctions()) {
            for (const auto &block : function->basicBlocks()) {
                for (const auto &inst : block->instructions()) {
                    const bool is_load =
                        inst->op() == ir::Opcode::Load;
                    const bool is_store =
                        inst->op() == ir::Opcode::Store;
                    if (!is_load && !is_store)
                        continue;
                    const ir::Instruction *root = guardRootProducer(
                        inst->operand(is_load ? 0 : 1));
                    if (root)
                        sanRoots[inst.get()] = root;
                }
            }
        }
    }

    /** Record one far-heap allocation for profiling. */
    void
    recordAllocation(const ir::Instruction &call_inst,
                     std::uint64_t tagged_addr, std::uint64_t bytes)
    {
        if (!profiling)
            return;
        auto it = siteOrdinals.find(&call_inst);
        if (it == siteOrdinals.end())
            return;
        const std::size_t index = it->second;
        profile.sites[index].allocations++;
        profile.sites[index].bytesAllocated += bytes;
        const std::uint64_t offset = tfmOffsetOf(tagged_addr);
        intervals[offset] = {offset + bytes, index};
    }

    /** Attribute a guarded access to its allocation site. */
    void
    recordAccess(std::uint64_t tagged_addr)
    {
        if (!profiling || intervals.empty())
            return;
        const std::uint64_t offset = tfmOffsetOf(tagged_addr);
        auto it = intervals.upper_bound(offset);
        if (it == intervals.begin())
            return;
        --it;
        if (offset < it->second.first)
            profile.sites[it->second.second].guardedAccesses++;
    }

    [[noreturn]] static void
    trap(const std::string &message)
    {
        throw TrapException{message};
    }

    void
    step()
    {
        if (++steps > maxSteps)
            trap("step limit exceeded (possible infinite loop)");
        rt.clock().advance(rt.costs().computeCycles);
    }

    std::uint64_t
    hostAlloc(std::uint64_t bytes)
    {
        hostAllocations.push_back(
            std::make_unique<std::byte[]>(bytes ? bytes : 1));
        return reinterpret_cast<std::uint64_t>(
            hostAllocations.back().get());
    }

    /** Per-call state. */
    struct Frame
    {
        std::map<const ir::Value *, Slot> values;
        /// Live chunk cursors created by chunk.begin in this frame.
        struct Cursor
        {
            std::uint64_t curObj = TfmRuntime::noObject;
            std::byte *window = nullptr;
        };
        std::map<const ir::Instruction *, Cursor> cursors;
        /// Armed state of epoch-arming guards (loop-invariant hoisting):
        /// the eviction epoch and host pointer captured when the arming
        /// guard last executed, consumed by guard.reval.
        struct Reval
        {
            std::uint64_t epoch = 0;
            std::byte *host = nullptr;
        };
        std::map<const ir::Instruction *, Reval> revalStates;
        /// Sanitizer: the latest host translation each guard-family
        /// instruction produced, as a frame window plus the far-heap
        /// offset that window maps.
        struct SanTransl
        {
            std::uint64_t frameStart = 0; ///< host addr of frame byte 0
            std::uint64_t frameEnd = 0;   ///< one past the frame
            std::uint64_t objStartOffset = 0; ///< far offset of byte 0
            std::uint64_t epoch = 0; ///< eviction epoch at translation
            bool pinned = false;     ///< chunk window: eviction-proof
        };
        std::map<const ir::Instruction *, SanTransl> sanTransl;
    };

    /** Sanitizer bookkeeping for a guard-family translation. An
     *  untagged (custody-rejected) address erases the entry instead so
     *  the map always mirrors the producer's latest execution. */
    void
    sanRecord(Frame &frame, const ir::Instruction &producer,
              std::uint64_t tagged_addr, const std::byte *host,
              bool pinned)
    {
        if (!sanitizing)
            return;
        if (!tfmIsTagged(tagged_addr)) {
            frame.sanTransl.erase(&producer);
            return;
        }
        const auto &table = rt.runtime().stateTable();
        const std::uint64_t offset = tfmOffsetOf(tagged_addr);
        const std::uint64_t in_obj = table.offsetInObject(offset);
        Frame::SanTransl transl;
        transl.frameStart =
            reinterpret_cast<std::uint64_t>(host) - in_obj;
        transl.frameEnd = transl.frameStart +
                          rt.runtime().config().objectSizeBytes;
        transl.objStartOffset = offset - in_obj;
        transl.epoch = rt.runtime().evictionEpoch();
        transl.pinned = pinned;
        frame.sanTransl[&producer] = transl;
    }

    /** Track a live far-heap allocation for the sanitizer. */
    void
    sanRecordAlloc(const ir::Instruction &call_inst,
                   std::uint64_t tagged_addr, std::uint64_t bytes)
    {
        if (!sanitizing || !tfmIsTagged(tagged_addr))
            return;
        SanAlloc alloc;
        alloc.end = tfmOffsetOf(tagged_addr) + bytes;
        alloc.desc = call_inst.callee;
        if (call_inst.debugLine > 0) {
            alloc.desc += " (line " +
                          std::to_string(call_inst.debugLine) + ":" +
                          std::to_string(call_inst.debugCol) + ")";
        }
        sanAllocs[tfmOffsetOf(tagged_addr)] = std::move(alloc);
    }

    /** The live allocation covering @p offset, or null. */
    const SanAlloc *
    sanAllocFor(std::uint64_t offset) const
    {
        auto it = sanAllocs.upper_bound(offset);
        if (it == sanAllocs.begin())
            return nullptr;
        --it;
        return offset < it->second.end ? &it->second : nullptr;
    }

    static std::string
    sanWhere(const ir::Instruction &inst)
    {
        if (inst.debugLine <= 0)
            return std::string();
        return " at line " + std::to_string(inst.debugLine) + ":" +
               std::to_string(inst.debugCol);
    }

    /** Validate one guard-mediated memory access. */
    void
    sanCheck(Frame &frame, const ir::Instruction &inst,
             std::uint64_t addr, std::uint32_t bytes, bool is_store)
    {
        if (tfmIsTagged(addr))
            return; // rawAccess raises the GP-fault analogue itself
        auto root_it = sanRoots.find(&inst);
        if (root_it == sanRoots.end())
            return; // address never flowed through a guard
        const ir::Instruction *root = root_it->second;
        auto transl_it = frame.sanTransl.find(root);
        if (transl_it == frame.sanTransl.end())
            return; // producer only ever saw untagged pointers
        const Frame::SanTransl &transl = transl_it->second;
        const std::string access =
            std::string(is_store ? "store" : "load") + sanWhere(inst);
        const SanAlloc *home = sanAllocFor(transl.objStartOffset);
        const std::string origin =
            home ? "; object allocated by " + home->desc
                 : std::string();
        // A translation is valid until the next runtime entry; any
        // eviction/evacuation since arming poisons it.
        if (!transl.pinned &&
            transl.epoch != rt.runtime().evictionEpoch()) {
            trap("farmem-sanitizer: use-after-eviction: " + access +
                 " dereferences a stale translation from %" +
                 root->name() + " (guarded at epoch " +
                 std::to_string(transl.epoch) +
                 ", evacuation advanced the epoch to " +
                 std::to_string(rt.runtime().evictionEpoch()) + ")" +
                 origin);
        }
        if (addr < transl.frameStart ||
            addr + bytes > transl.frameEnd) {
            trap("farmem-sanitizer: " + access +
                 " escapes the guarded object frame of %" +
                 root->name() + " (frame offset " +
                 std::to_string(static_cast<std::int64_t>(
                     addr - transl.frameStart)) +
                 ", frame is " +
                 std::to_string(transl.frameEnd - transl.frameStart) +
                 " bytes)" + origin);
        }
        const std::uint64_t mapped =
            transl.objStartOffset + (addr - transl.frameStart);
        const SanAlloc *alloc = sanAllocFor(mapped);
        if (!alloc || mapped + bytes > alloc->end) {
            trap("farmem-sanitizer: " + access +
                 " maps to far-heap offset " + std::to_string(mapped) +
                 " outside any live allocation (via %" + root->name() +
                 ")" + origin);
        }
    }

    Slot
    valueOf(Frame &frame, const ir::Value *value)
    {
        if (value->isConstant()) {
            const auto *constant =
                static_cast<const ir::Constant *>(value);
            Slot slot;
            if (constant->type() == ir::Type::F64)
                slot.f = constant->floatValue();
            else
                slot.i = static_cast<std::uint64_t>(constant->intValue());
            return slot;
        }
        auto it = frame.values.find(value);
        if (it == frame.values.end())
            trap("use of undefined value %" + value->name());
        return it->second;
    }

    /** Raw memory access; traps on tagged (unguarded) addresses. */
    void
    rawAccess(std::uint64_t addr, void *buffer, std::uint32_t bytes,
              bool is_store)
    {
        if (tfmIsTagged(addr)) {
            trap("general protection fault: unguarded access to "
                 "non-canonical address (missing TrackFM guard)");
        }
        if (addr == 0)
            trap("null pointer dereference");
        if (is_store)
            std::memcpy(reinterpret_cast<void *>(addr), buffer, bytes);
        else
            std::memcpy(buffer, reinterpret_cast<void *>(addr), bytes);
    }

    Slot
    loadFrom(std::uint64_t addr, ir::Type type)
    {
        Slot slot;
        const std::uint32_t bytes = ir::sizeOf(type);
        if (type == ir::Type::F64) {
            rawAccess(addr, &slot.f, bytes, false);
        } else {
            std::uint64_t raw = 0;
            rawAccess(addr, &raw, bytes, false);
            slot.i = raw;
        }
        return slot;
    }

    void
    storeTo(std::uint64_t addr, Slot slot, ir::Type type)
    {
        const std::uint32_t bytes = ir::sizeOf(type);
        if (type == ir::Type::F64)
            rawAccess(addr, &slot.f, bytes, true);
        else
            rawAccess(addr, &slot.i, bytes, true);
    }

    Slot
    callIntrinsicOrFunction(Frame &frame, const ir::Instruction &inst,
                            int depth)
    {
        const std::string &callee = inst.callee;
        auto arg = [&](std::size_t index) {
            return valueOf(frame, inst.operand(index));
        };

        Slot result;
        if (callee == "tfm_runtime_init") {
            // Hook inserted by RuntimeInitPass; the runtime in this
            // harness is constructed eagerly, so this is a marker.
            return result;
        }
        if (callee == "tfm_malloc") {
            const std::uint64_t bytes = arg(0).i;
            result.i = rt.tfmMalloc(bytes);
            recordAllocation(inst, result.i, bytes);
            sanRecordAlloc(inst, result.i, bytes);
            return result;
        }
        if (callee == "tfm_calloc") {
            const std::uint64_t bytes = arg(0).i * arg(1).i;
            result.i = rt.tfmCalloc(arg(0).i, arg(1).i);
            recordAllocation(inst, result.i, bytes);
            sanRecordAlloc(inst, result.i, bytes);
            return result;
        }
        if (callee == "host_malloc") {
            // A pruned (hot, local-only) allocation.
            result.i = hostAlloc(arg(0).i);
            return result;
        }
        if (callee == "host_calloc") {
            const std::uint64_t bytes = arg(0).i * arg(1).i;
            result.i = hostAlloc(bytes);
            std::memset(reinterpret_cast<void *>(result.i), 0, bytes);
            return result;
        }
        if (callee == "tfm_realloc") {
            const std::uint64_t old_addr = arg(0).i;
            result.i = rt.tfmRealloc(old_addr, arg(1).i);
            if (sanitizing && tfmIsTagged(old_addr))
                sanAllocs.erase(tfmOffsetOf(old_addr));
            sanRecordAlloc(inst, result.i, arg(1).i);
            return result;
        }
        if (callee == "tfm_free") {
            if (sanitizing && tfmIsTagged(arg(0).i))
                sanAllocs.erase(tfmOffsetOf(arg(0).i));
            rt.tfmFree(arg(0).i);
            return result;
        }
        if (callee == "malloc") {
            // Untransformed program: host heap.
            result.i = hostAlloc(arg(0).i);
            return result;
        }
        if (callee == "calloc") {
            const std::uint64_t bytes = arg(0).i * arg(1).i;
            result.i = hostAlloc(bytes);
            std::memset(reinterpret_cast<void *>(result.i), 0, bytes);
            return result;
        }
        if (callee == "free") {
            return result; // host arena frees at interpreter teardown
        }
        if (callee == "print_i64") {
            output.push_back(static_cast<std::int64_t>(arg(0).i));
            return result;
        }
        if (callee == "tfm_evacuate_all") {
            // Test/bench hook: force a full evacuation mid-program so
            // hoisted guards must take the revalidation-miss path.
            rt.runtime().evacuateAll();
            return result;
        }

        const ir::Function *target = module.findFunction(callee);
        if (!target)
            trap("call to unknown function @" + callee);
        if (depth > 200)
            trap("call depth limit exceeded");
        std::vector<Slot> call_args;
        for (std::size_t i = 0; i < inst.numOperands(); i++)
            call_args.push_back(arg(i));
        return execFunction(*target, call_args, depth + 1);
    }

    /** Release chunk pins owned by a frame. */
    void
    releaseCursors(Frame &frame)
    {
        for (auto &[begin, cursor] : frame.cursors) {
            (void)begin;
            if (cursor.curObj != TfmRuntime::noObject)
                rt.endChunk(cursor.curObj);
            cursor.curObj = TfmRuntime::noObject;
        }
    }

    Slot
    execFunction(const ir::Function &function,
                 const std::vector<Slot> &args, int depth)
    {
        Frame frame;
        if (args.size() != function.arguments().size())
            trap("argument count mismatch calling @" + function.name());
        for (std::size_t i = 0; i < args.size(); i++)
            frame.values[function.arguments()[i].get()] = args[i];

        const ir::BasicBlock *block = function.entry();
        const ir::BasicBlock *previous = nullptr;
        if (!block)
            trap("function @" + function.name() + " has no entry");

        try {
            while (true) {
                // Phi nodes evaluate simultaneously on block entry.
                std::vector<std::pair<const ir::Value *, Slot>> phi_values;
                for (const auto &inst : block->instructions()) {
                    if (inst->op() != ir::Opcode::Phi)
                        break;
                    bool matched = false;
                    for (const auto &[incoming, pred] : inst->incoming()) {
                        if (pred == previous) {
                            phi_values.emplace_back(
                                inst.get(), valueOf(frame, incoming));
                            matched = true;
                            break;
                        }
                    }
                    if (!matched)
                        trap("phi without incoming for predecessor");
                    step();
                }
                for (const auto &[phi, slot] : phi_values)
                    frame.values[phi] = slot;

                const ir::BasicBlock *next = nullptr;
                for (const auto &owned : block->instructions()) {
                    const ir::Instruction &inst = *owned;
                    if (inst.op() == ir::Opcode::Phi)
                        continue;
                    step();
                    Slot result;
                    switch (inst.op()) {
                      case ir::Opcode::Alloca:
                        result.i = hostAlloc(
                            static_cast<std::uint64_t>(inst.imm));
                        break;
                      case ir::Opcode::Load: {
                        const std::uint64_t addr =
                            valueOf(frame, inst.operand(0)).i;
                        if (sanitizing) {
                            sanCheck(frame, inst, addr,
                                     ir::sizeOf(inst.type()), false);
                        }
                        result = loadFrom(addr, inst.type());
                        break;
                      }
                      case ir::Opcode::Store: {
                        const std::uint64_t addr =
                            valueOf(frame, inst.operand(1)).i;
                        const ir::Type stored_type =
                            inst.operand(0)->type() == ir::Type::F64
                                ? ir::Type::F64
                                : inst.operand(0)->type();
                        if (sanitizing) {
                            sanCheck(frame, inst, addr,
                                     ir::sizeOf(stored_type), true);
                        }
                        storeTo(addr, valueOf(frame, inst.operand(0)),
                                stored_type);
                        break;
                      }
                      case ir::Opcode::Gep:
                        result.i =
                            valueOf(frame, inst.operand(0)).i +
                            valueOf(frame, inst.operand(1)).i *
                                static_cast<std::uint64_t>(inst.imm);
                        break;
                      case ir::Opcode::Guard: {
                        const std::uint64_t addr =
                            valueOf(frame, inst.operand(0)).i;
                        if (tfmIsTagged(addr))
                            recordAccess(addr);
                        std::byte *host = inst.isWrite
                                              ? rt.guardWrite(addr)
                                              : rt.guardRead(addr);
                        if (inst.armsEpoch) {
                            frame.revalStates[&inst] = Frame::Reval{
                                rt.runtime().evictionEpoch(), host};
                        }
                        sanRecord(frame, inst, addr, host, false);
                        result.i =
                            reinterpret_cast<std::uint64_t>(host);
                        break;
                      }
                      case ir::Opcode::GuardReval: {
                        const auto *armer =
                            static_cast<const ir::Instruction *>(
                                inst.operand(0));
                        const std::uint64_t addr =
                            valueOf(frame, inst.operand(1)).i;
                        auto armed_it = frame.revalStates.find(armer);
                        if (armed_it == frame.revalStates.end())
                            trap("guard.reval before its arming guard");
                        auto &armed = armed_it->second;
                        if (tfmIsTagged(addr) &&
                            rt.revalidate(addr, armed.epoch)) {
                            // Epoch unchanged since arming: the host
                            // pointer (and any dirty bit) is still live.
                            sanRecord(frame, inst, addr, armed.host,
                                      false);
                            result.i = reinterpret_cast<std::uint64_t>(
                                armed.host);
                            break;
                        }
                        // Evacuation since arming (or an untagged
                        // pointer): re-run the full guard and re-arm.
                        if (tfmIsTagged(addr))
                            recordAccess(addr);
                        std::byte *host = inst.isWrite
                                              ? rt.guardWrite(addr)
                                              : rt.guardRead(addr);
                        armed.epoch = rt.runtime().evictionEpoch();
                        armed.host = host;
                        sanRecord(frame, inst, addr, host, false);
                        result.i =
                            reinterpret_cast<std::uint64_t>(host);
                        break;
                      }
                      case ir::Opcode::ChunkBegin: {
                        // (Re)arm the cursor for a fresh loop entry.
                        auto &cursor = frame.cursors[&inst];
                        if (cursor.curObj != TfmRuntime::noObject)
                            rt.endChunk(cursor.curObj);
                        cursor.curObj = TfmRuntime::noObject;
                        cursor.window = nullptr;
                        result.i = reinterpret_cast<std::uint64_t>(&inst);
                        break;
                      }
                      case ir::Opcode::ChunkAccess: {
                        const auto *begin =
                            static_cast<const ir::Instruction *>(
                                inst.operand(0));
                        auto cursor_it = frame.cursors.find(begin);
                        if (cursor_it == frame.cursors.end())
                            trap("chunk.access before chunk.begin");
                        auto &cursor = cursor_it->second;
                        const std::uint64_t addr =
                            valueOf(frame, inst.operand(1)).i;
                        if (!tfmIsTagged(addr)) {
                            // Custody check inside the chunk helper.
                            rt.clock().advance(
                                rt.costs().custodyRejectCycles);
                            if (sanitizing)
                                frame.sanTransl.erase(&inst);
                            result.i = addr;
                            break;
                        }
                        recordAccess(addr);
                        const auto &table = rt.runtime().stateTable();
                        const std::uint64_t offset = tfmOffsetOf(addr);
                        const std::uint64_t obj = table.objectOf(offset);
                        if (obj != cursor.curObj) {
                            std::byte *host = rt.localityGuard(
                                addr, cursor.curObj, inst.isWrite);
                            cursor.curObj = obj;
                            cursor.window =
                                host - table.offsetInObject(offset);
                        } else {
                            rt.boundaryCheck();
                        }
                        result.i = reinterpret_cast<std::uint64_t>(
                            cursor.window +
                            table.offsetInObject(offset));
                        // Chunk windows stay pinned (eviction-proof)
                        // until the cursor moves or is released.
                        sanRecord(frame, inst, addr,
                                  cursor.window +
                                      table.offsetInObject(offset),
                                  true);
                        break;
                      }
                      case ir::Opcode::Prefetch: {
                        const std::uint64_t addr =
                            valueOf(frame, inst.operand(0)).i;
                        if (tfmIsTagged(addr)) {
                            rt.prefetchAhead(
                                addr, 1,
                                static_cast<std::uint32_t>(inst.imm));
                        }
                        break;
                      }
                      case ir::Opcode::Add:
                        result.i = valueOf(frame, inst.operand(0)).i +
                                   valueOf(frame, inst.operand(1)).i;
                        break;
                      case ir::Opcode::Sub:
                        result.i = valueOf(frame, inst.operand(0)).i -
                                   valueOf(frame, inst.operand(1)).i;
                        break;
                      case ir::Opcode::Mul:
                        result.i = valueOf(frame, inst.operand(0)).i *
                                   valueOf(frame, inst.operand(1)).i;
                        break;
                      case ir::Opcode::SDiv: {
                        const auto divisor = static_cast<std::int64_t>(
                            valueOf(frame, inst.operand(1)).i);
                        if (divisor == 0)
                            trap("division by zero");
                        result.i = static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(
                                valueOf(frame, inst.operand(0)).i) /
                            divisor);
                        break;
                      }
                      case ir::Opcode::SRem: {
                        const auto divisor = static_cast<std::int64_t>(
                            valueOf(frame, inst.operand(1)).i);
                        if (divisor == 0)
                            trap("remainder by zero");
                        result.i = static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(
                                valueOf(frame, inst.operand(0)).i) %
                            divisor);
                        break;
                      }
                      case ir::Opcode::And:
                        result.i = valueOf(frame, inst.operand(0)).i &
                                   valueOf(frame, inst.operand(1)).i;
                        break;
                      case ir::Opcode::Or:
                        result.i = valueOf(frame, inst.operand(0)).i |
                                   valueOf(frame, inst.operand(1)).i;
                        break;
                      case ir::Opcode::Xor:
                        result.i = valueOf(frame, inst.operand(0)).i ^
                                   valueOf(frame, inst.operand(1)).i;
                        break;
                      case ir::Opcode::Shl:
                        result.i = valueOf(frame, inst.operand(0)).i
                                   << (valueOf(frame, inst.operand(1)).i &
                                       63);
                        break;
                      case ir::Opcode::LShr:
                        result.i = valueOf(frame, inst.operand(0)).i >>
                                   (valueOf(frame, inst.operand(1)).i &
                                    63);
                        break;
                      case ir::Opcode::FAdd:
                        result.f = valueOf(frame, inst.operand(0)).f +
                                   valueOf(frame, inst.operand(1)).f;
                        break;
                      case ir::Opcode::FSub:
                        result.f = valueOf(frame, inst.operand(0)).f -
                                   valueOf(frame, inst.operand(1)).f;
                        break;
                      case ir::Opcode::FMul:
                        result.f = valueOf(frame, inst.operand(0)).f *
                                   valueOf(frame, inst.operand(1)).f;
                        break;
                      case ir::Opcode::FDiv:
                        result.f = valueOf(frame, inst.operand(0)).f /
                                   valueOf(frame, inst.operand(1)).f;
                        break;
                      case ir::Opcode::ICmpEq:
                      case ir::Opcode::ICmpNe:
                      case ir::Opcode::ICmpSlt:
                      case ir::Opcode::ICmpSle:
                      case ir::Opcode::ICmpSgt:
                      case ir::Opcode::ICmpSge: {
                        const auto lhs = static_cast<std::int64_t>(
                            valueOf(frame, inst.operand(0)).i);
                        const auto rhs = static_cast<std::int64_t>(
                            valueOf(frame, inst.operand(1)).i);
                        bool truth = false;
                        switch (inst.op()) {
                          case ir::Opcode::ICmpEq:
                            truth = lhs == rhs;
                            break;
                          case ir::Opcode::ICmpNe:
                            truth = lhs != rhs;
                            break;
                          case ir::Opcode::ICmpSlt:
                            truth = lhs < rhs;
                            break;
                          case ir::Opcode::ICmpSle:
                            truth = lhs <= rhs;
                            break;
                          case ir::Opcode::ICmpSgt:
                            truth = lhs > rhs;
                            break;
                          default:
                            truth = lhs >= rhs;
                            break;
                        }
                        result.i = truth;
                        break;
                      }
                      case ir::Opcode::FCmpOlt:
                        result.i = valueOf(frame, inst.operand(0)).f <
                                   valueOf(frame, inst.operand(1)).f;
                        break;
                      case ir::Opcode::Zext:
                      case ir::Opcode::PtrToInt:
                      case ir::Opcode::IntToPtr:
                        result.i = valueOf(frame, inst.operand(0)).i;
                        break;
                      case ir::Opcode::Trunc: {
                        const std::uint32_t bits =
                            ir::sizeOf(inst.type()) * 8;
                        const std::uint64_t mask =
                            bits >= 64 ? ~0ull : ((1ull << bits) - 1);
                        result.i =
                            valueOf(frame, inst.operand(0)).i & mask;
                        break;
                      }
                      case ir::Opcode::SIToFP:
                        result.f = static_cast<double>(
                            static_cast<std::int64_t>(
                                valueOf(frame, inst.operand(0)).i));
                        break;
                      case ir::Opcode::FPToSI:
                        result.i = static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(
                                valueOf(frame, inst.operand(0)).f));
                        break;
                      case ir::Opcode::Call:
                        result = callIntrinsicOrFunction(frame, inst,
                                                         depth);
                        break;
                      case ir::Opcode::Br:
                        next = inst.succ0;
                        break;
                      case ir::Opcode::CondBr:
                        next = valueOf(frame, inst.operand(0)).i
                                   ? inst.succ0
                                   : inst.succ1;
                        break;
                      case ir::Opcode::Ret: {
                        Slot returned;
                        if (inst.numOperands() > 0)
                            returned = valueOf(frame, inst.operand(0));
                        releaseCursors(frame);
                        return returned;
                      }
                      case ir::Opcode::Phi:
                        break; // handled above
                    }
                    if (inst.type() != ir::Type::Void &&
                        !inst.name().empty()) {
                        frame.values[&inst] = result;
                    }
                }
                if (!next)
                    trap("block fell through without a terminator");
                previous = block;
                block = next;
            }
        } catch (TrapException &) {
            releaseCursors(frame);
            throw;
        }
    }
};

Interpreter::Interpreter(const ir::Module &module, TfmRuntime &runtime)
    : impl(std::make_unique<Impl>(module, runtime))
{}

Interpreter::~Interpreter() = default;

void
Interpreter::enableAllocationProfiling()
{
    impl->enableProfiling();
}

void
Interpreter::enableSanitizer()
{
    impl->enableSanitizer();
}

AllocSiteProfile
Interpreter::allocationProfile() const
{
    return impl->profile;
}

RunResult
Interpreter::run(const std::string &function_name,
                 const std::vector<std::int64_t> &args)
{
    RunResult result;
    const ir::Function *function =
        impl->module.findFunction(function_name);
    if (!function) {
        result.trapped = true;
        result.trapMessage = "no such function @" + function_name;
        return result;
    }
    impl->steps = 0;
    impl->maxSteps = maxSteps;
    impl->output.clear();
    std::vector<Slot> slots;
    for (const std::int64_t value : args) {
        Slot slot;
        slot.i = static_cast<std::uint64_t>(value);
        slots.push_back(slot);
    }
    try {
        const Slot returned = impl->execFunction(*function, slots, 0);
        result.returnValue = static_cast<std::int64_t>(returned.i);
        result.returnFloat = returned.f;
    } catch (TrapException &trap_info) {
        result.trapped = true;
        result.trapMessage = trap_info.message;
    }
    result.instructionsExecuted = impl->steps;
    result.output = impl->output;
    return result;
}

} // namespace tfm
