/**
 * @file
 * Bytecode engine: per-function compiler and register-VM dispatch.
 *
 * Compilation proves, per function, that every operand is defined at
 * each use (dominance), that blocks are canonical (leading phis,
 * terminator last), and resolves every value to a register, every phi
 * to an edge move list, every call to a CallSite, and every statically
 * doomed instruction to a Trap with the reference engine's message.
 * Anything unprovable throws Bail and the function stays on the
 * reference engine — so the dispatch loop itself contains no lazy
 * "undefined value" checks at all.
 *
 * The dispatch loop is direct-threaded (computed goto) when the build
 * defines TFM_COMPUTED_GOTO on a GNU-compatible compiler, with a
 * portable switch fallback. The guard-level last-object cache is
 * probed inline (TfmRuntime::guardCacheFastPath), so a cache-hit
 * guard never leaves the engine.
 */

#include "interp/exec_state.hh"

#include <cstring>

#include "analysis/cfg.hh"
#include "analysis/dominators.hh"
#include "ir/instruction.hh"

namespace tfm
{

Builtin
builtinOf(const std::string &callee)
{
    if (callee == "tfm_runtime_init")
        return Builtin::RuntimeInit;
    if (callee == "tfm_malloc")
        return Builtin::TfmMalloc;
    if (callee == "tfm_calloc")
        return Builtin::TfmCalloc;
    if (callee == "host_malloc" || callee == "malloc")
        return Builtin::HostMalloc;
    if (callee == "host_calloc" || callee == "calloc")
        return Builtin::HostCalloc;
    if (callee == "tfm_realloc")
        return Builtin::TfmRealloc;
    if (callee == "tfm_free")
        return Builtin::TfmFree;
    if (callee == "free")
        return Builtin::HostFree;
    if (callee == "print_i64")
        return Builtin::PrintI64;
    if (callee == "tfm_evacuate_all")
        return Builtin::EvacuateAll;
    if (callee == "pg_malloc")
        return Builtin::PgMalloc;
    if (callee == "pg_calloc")
        return Builtin::PgCalloc;
    if (callee == "pg_free")
        return Builtin::PgFree;
    return Builtin::None;
}

namespace bc
{

namespace
{

/** Thrown during compilation: fall back to the reference engine. */
struct BailOut
{
    std::string reason;
};

/** Operands a builtin reads (the reference engine resolves lazily). */
std::size_t
builtinArgsUsed(Builtin builtin)
{
    switch (builtin) {
    case Builtin::TfmMalloc:
    case Builtin::HostMalloc:
    case Builtin::TfmFree:
    case Builtin::PrintI64:
    case Builtin::PgMalloc:
    case Builtin::PgFree:
        return 1;
    case Builtin::TfmCalloc:
    case Builtin::HostCalloc:
    case Builtin::TfmRealloc:
    case Builtin::PgCalloc:
        return 2;
    case Builtin::RuntimeInit:
    case Builtin::HostFree:
    case Builtin::EvacuateAll:
    case Builtin::None:
        break;
    }
    return 0;
}

class Compiler
{
  public:
    Compiler(const ir::Module &module, const ir::Function &function)
        : module(module), fn(function), cfg(function),
          domtree(function, cfg), ra(function)
    {}

    Function run();

  private:
    struct Pos
    {
        const ir::BasicBlock *block = nullptr;
        std::size_t index = 0;
    };

    void scanCanonicalForm() const;
    void indexFunction();
    void lowerBlock(const ir::BasicBlock *block);
    void lowerInst(const ir::Instruction &inst,
                   const ir::BasicBlock *block, std::size_t index);
    void lowerCall(const ir::Instruction &inst,
                   const ir::BasicBlock *block, std::size_t index);

    /** Bail unless @p value is provably defined at (block, index). */
    void requireDefined(const ir::Value *value,
                        const ir::BasicBlock *block,
                        std::size_t index) const;
    std::uint16_t operandReg(const ir::Instruction &inst,
                             std::size_t operand,
                             const ir::BasicBlock *block,
                             std::size_t index) const;
    std::uint32_t makeEdge(const ir::BasicBlock *from,
                           const ir::BasicBlock *to);
    std::uint32_t msgIndex(const std::string &message);
    void emitTrap(const std::string &message, bool charge_step,
                  const ir::Instruction *src);

    std::uint16_t
    dstReg(const ir::Instruction &inst) const
    {
        if (inst.type() != ir::Type::Void && !inst.name().empty())
            return ra.regOf(&inst);
        return RegAlloc::kSink;
    }

    const ir::Module &module;
    const ir::Function &fn;
    Cfg cfg;
    DominatorTree domtree;
    RegAlloc ra;
    Function out;
    std::vector<const ir::BasicBlock *> layout;
    std::map<const ir::Value *, Pos> position;
    std::map<const ir::Value *, std::uint32_t> cursorIndex;
    std::map<const ir::Value *, std::uint32_t> revalIndex;
    std::map<const ir::BasicBlock *, std::uint32_t> blockStart;
    std::vector<const ir::BasicBlock *> edgeTargets;
};

void
Compiler::scanCanonicalForm() const
{
    for (const ir::BasicBlock *block : layout) {
        const auto &insts = block->instructions();
        bool seen_non_phi = false;
        for (std::size_t i = 0; i < insts.size(); i++) {
            const ir::Instruction &inst = *insts[i];
            if (inst.op() == ir::Opcode::Phi) {
                if (seen_non_phi)
                    throw BailOut{"phi after non-phi instruction"};
            } else {
                seen_non_phi = true;
            }
            if (ir::isTerminator(inst.op()) && i + 1 != insts.size())
                throw BailOut{"terminator is not last in its block"};
        }
    }
}

void
Compiler::indexFunction()
{
    for (const ir::BasicBlock *block : layout) {
        const auto &insts = block->instructions();
        for (std::size_t i = 0; i < insts.size(); i++) {
            const ir::Instruction *inst = insts[i].get();
            position[inst] = Pos{block, i};
            if (inst->op() == ir::Opcode::ChunkBegin) {
                cursorIndex[inst] = static_cast<std::uint32_t>(
                    out.cursorOrigins.size());
                out.cursorOrigins.push_back(inst);
            }
            if (inst->op() == ir::Opcode::Guard && inst->armsEpoch)
                revalIndex[inst] = out.numRevals++;
        }
    }
}

void
Compiler::requireDefined(const ir::Value *value,
                         const ir::BasicBlock *block,
                         std::size_t index) const
{
    if (!value->isInstruction()) {
        // Constants and arguments are assigned up front; a miss means
        // the allocator overflowed (caught earlier) — keep the check
        // for safety.
        if (!ra.hasReg(value))
            throw BailOut{"operand without a register"};
        return;
    }
    if (!ra.hasReg(value))
        throw BailOut{"use of an unnamed instruction result"};
    auto it = position.find(value);
    if (it == position.end())
        throw BailOut{"use of a value from an unreachable block"};
    const Pos &def = it->second;
    if (def.block == block) {
        if (def.index >= index)
            throw BailOut{"use before definition in block"};
    } else if (!domtree.dominates(def.block, block)) {
        throw BailOut{"use not dominated by its definition"};
    }
}

std::uint16_t
Compiler::operandReg(const ir::Instruction &inst, std::size_t operand,
                     const ir::BasicBlock *block,
                     std::size_t index) const
{
    const ir::Value *value = inst.operand(operand);
    requireDefined(value, block, index);
    return ra.regOf(value);
}

std::uint32_t
Compiler::makeEdge(const ir::BasicBlock *from, const ir::BasicBlock *to)
{
    if (!to)
        throw BailOut{"null branch successor"};
    Edge edge;
    std::vector<Move> moves;
    for (const auto &owned : to->instructions()) {
        const ir::Instruction &phi = *owned;
        if (phi.op() != ir::Opcode::Phi)
            break;
        const ir::Value *incoming = nullptr;
        for (const auto &[value, pred] : phi.incoming()) {
            if (pred == from) {
                incoming = value;
                break;
            }
        }
        if (!incoming) {
            // The reference engine charges one step per matched phi,
            // then traps on the first unmatched one.
            edge.phiTrap = true;
            break;
        }
        // The incoming must be live at the end of `from`: defined in
        // `from` itself or in a dominator of it. (A phi of `to` used
        // as an incoming reads the previous iteration's value; its
        // block dominating `from` proves it has executed.)
        if (incoming->isInstruction()) {
            if (!ra.hasReg(incoming))
                throw BailOut{"phi incoming without a register"};
            auto it = position.find(incoming);
            if (it == position.end())
                throw BailOut{"phi incoming from unreachable block"};
            const Pos &def = it->second;
            if (def.block != from &&
                !domtree.dominates(def.block, from)) {
                throw BailOut{
                    "phi incoming not dominated by its definition"};
            }
        } else if (!ra.hasReg(incoming)) {
            throw BailOut{"phi incoming without a register"};
        }
        moves.push_back(Move{ra.regOf(&phi), ra.regOf(incoming)});
        edge.phiSteps++;
    }
    if (!edge.phiTrap)
        edge.moves = scheduleParallelMoves(std::move(moves),
                                           RegAlloc::kScratch);
    edgeTargets.push_back(to);
    out.edges.push_back(std::move(edge));
    return static_cast<std::uint32_t>(out.edges.size() - 1);
}

std::uint32_t
Compiler::msgIndex(const std::string &message)
{
    for (std::size_t i = 0; i < out.messages.size(); i++) {
        if (out.messages[i] == message)
            return static_cast<std::uint32_t>(i);
    }
    out.messages.push_back(message);
    return static_cast<std::uint32_t>(out.messages.size() - 1);
}

void
Compiler::emitTrap(const std::string &message, bool charge_step,
                   const ir::Instruction *src)
{
    Inst inst;
    inst.op = Op::Trap;
    inst.flags = charge_step ? kChargeStep : 0;
    inst.aux = msgIndex(message);
    inst.src = src;
    out.code.push_back(inst);
}

void
Compiler::lowerCall(const ir::Instruction &inst,
                    const ir::BasicBlock *block, std::size_t index)
{
    CallSite site;
    site.inst = &inst;
    site.builtin = builtinOf(inst.callee);
    if (site.builtin != Builtin::None) {
        const std::size_t used = builtinArgsUsed(site.builtin);
        if (inst.numOperands() < used)
            throw BailOut{"builtin call with too few arguments"};
        // Only the operands the builtin reads: the reference engine
        // resolves lazily, so a surplus undefined operand never traps.
        for (std::size_t i = 0; i < used; i++)
            site.args.push_back(operandReg(inst, i, block, index));
    } else {
        const ir::Function *target = module.findFunction(inst.callee);
        if (!target) {
            // Unknown callee traps before evaluating any argument.
            emitTrap("call to unknown function @" + inst.callee, true,
                     &inst);
            return;
        }
        for (std::size_t i = 0; i < inst.numOperands(); i++)
            site.args.push_back(operandReg(inst, i, block, index));
        if (inst.numOperands() != target->arguments().size()) {
            // Arguments are evaluated (and proven defined) first;
            // execFunction then rejects the count before any step.
            emitTrap("argument count mismatch calling @" +
                         target->name(),
                     true, &inst);
            return;
        }
        site.target = target;
    }
    Inst b;
    b.op = Op::Call;
    b.dst = dstReg(inst);
    b.aux = static_cast<std::uint32_t>(out.calls.size());
    b.src = &inst;
    out.calls.push_back(std::move(site));
    out.code.push_back(b);
}

void
Compiler::lowerInst(const ir::Instruction &inst,
                    const ir::BasicBlock *block, std::size_t index)
{
    Inst b;
    b.src = &inst;
    b.dst = dstReg(inst);
    auto binop = [&](Op op) {
        b.op = op;
        b.a = operandReg(inst, 0, block, index);
        b.b = operandReg(inst, 1, block, index);
        out.code.push_back(b);
    };
    auto unop = [&](Op op) {
        b.op = op;
        b.a = operandReg(inst, 0, block, index);
        out.code.push_back(b);
    };

    switch (inst.op()) {
    case ir::Opcode::Alloca:
        b.op = Op::Alloca;
        b.imm = inst.imm;
        out.code.push_back(b);
        return;
    case ir::Opcode::Load:
        b.a = operandReg(inst, 0, block, index);
        if (inst.type() == ir::Type::F64) {
            b.op = Op::LoadF;
        } else {
            b.op = Op::LoadI;
            b.aux = ir::sizeOf(inst.type());
        }
        out.code.push_back(b);
        return;
    case ir::Opcode::Store: {
        // Reference order: the address (operand 1) resolves first.
        b.b = operandReg(inst, 1, block, index);
        b.a = operandReg(inst, 0, block, index);
        const ir::Type stored = inst.operand(0)->type() == ir::Type::F64
                                    ? ir::Type::F64
                                    : inst.operand(0)->type();
        if (stored == ir::Type::F64) {
            b.op = Op::StoreF;
        } else {
            b.op = Op::StoreI;
            b.aux = ir::sizeOf(stored);
        }
        out.code.push_back(b);
        return;
    }
    case ir::Opcode::Gep:
        b.op = Op::Gep;
        b.a = operandReg(inst, 0, block, index);
        b.b = operandReg(inst, 1, block, index);
        b.imm = inst.imm;
        out.code.push_back(b);
        return;
    case ir::Opcode::Guard:
        b.op = inst.isWrite ? Op::GuardWrite : Op::GuardRead;
        b.a = operandReg(inst, 0, block, index);
        if (inst.armsEpoch) {
            b.flags |= kArmsEpoch;
            b.aux = revalIndex.at(&inst);
        }
        out.code.push_back(b);
        return;
    case ir::Opcode::GuardReval: {
        // Reference order: the pointer (operand 1) resolves before the
        // armed-state lookup can trap.
        b.a = operandReg(inst, 1, block, index);
        auto it = revalIndex.find(inst.operand(0));
        if (it == revalIndex.end()) {
            // Operand 0 is not a reachable epoch-arming guard of this
            // function, so the frame can never hold its armed state.
            emitTrap("guard.reval before its arming guard", true,
                     &inst);
            return;
        }
        b.op = Op::GuardReval;
        b.aux = it->second;
        if (inst.isWrite)
            b.flags |= kWrite;
        out.code.push_back(b);
        return;
    }
    case ir::Opcode::ChunkBegin:
        b.op = Op::ChunkBegin;
        b.aux = cursorIndex.at(&inst);
        // The cursor token the reference engine returns is the IR
        // instruction's address; both engines share the module, so the
        // value is identical either way.
        b.imm = static_cast<std::int64_t>(
            reinterpret_cast<std::uint64_t>(&inst));
        out.code.push_back(b);
        return;
    case ir::Opcode::ChunkAccess: {
        // Reference order: the cursor lookup traps before operand 1 is
        // even resolved.
        auto it = cursorIndex.find(inst.operand(0));
        if (it == cursorIndex.end()) {
            emitTrap("chunk.access before chunk.begin", true, &inst);
            return;
        }
        b.op = Op::ChunkAccess;
        b.aux = it->second;
        b.a = operandReg(inst, 1, block, index);
        if (inst.isWrite)
            b.flags |= kWrite;
        out.code.push_back(b);
        return;
    }
    case ir::Opcode::Prefetch:
        b.op = Op::Prefetch;
        b.a = operandReg(inst, 0, block, index);
        b.aux = static_cast<std::uint32_t>(inst.imm);
        out.code.push_back(b);
        return;
    case ir::Opcode::Add:
        binop(Op::Add);
        return;
    case ir::Opcode::Sub:
        binop(Op::Sub);
        return;
    case ir::Opcode::Mul:
        binop(Op::Mul);
        return;
    case ir::Opcode::SDiv:
        binop(Op::SDiv);
        return;
    case ir::Opcode::SRem:
        binop(Op::SRem);
        return;
    case ir::Opcode::And:
        binop(Op::And);
        return;
    case ir::Opcode::Or:
        binop(Op::Or);
        return;
    case ir::Opcode::Xor:
        binop(Op::Xor);
        return;
    case ir::Opcode::Shl:
        binop(Op::Shl);
        return;
    case ir::Opcode::LShr:
        binop(Op::LShr);
        return;
    case ir::Opcode::FAdd:
        binop(Op::FAdd);
        return;
    case ir::Opcode::FSub:
        binop(Op::FSub);
        return;
    case ir::Opcode::FMul:
        binop(Op::FMul);
        return;
    case ir::Opcode::FDiv:
        binop(Op::FDiv);
        return;
    case ir::Opcode::ICmpEq:
        binop(Op::ICmpEq);
        return;
    case ir::Opcode::ICmpNe:
        binop(Op::ICmpNe);
        return;
    case ir::Opcode::ICmpSlt:
        binop(Op::ICmpSlt);
        return;
    case ir::Opcode::ICmpSle:
        binop(Op::ICmpSle);
        return;
    case ir::Opcode::ICmpSgt:
        binop(Op::ICmpSgt);
        return;
    case ir::Opcode::ICmpSge:
        binop(Op::ICmpSge);
        return;
    case ir::Opcode::FCmpOlt:
        binop(Op::FCmpOlt);
        return;
    case ir::Opcode::Zext:
    case ir::Opcode::PtrToInt:
    case ir::Opcode::IntToPtr:
        unop(Op::CopyI);
        return;
    case ir::Opcode::Trunc: {
        const std::uint32_t bits = ir::sizeOf(inst.type()) * 8;
        const std::uint64_t mask =
            bits >= 64 ? ~0ull : ((1ull << bits) - 1);
        b.op = Op::TruncI;
        b.a = operandReg(inst, 0, block, index);
        b.imm = static_cast<std::int64_t>(mask);
        out.code.push_back(b);
        return;
    }
    case ir::Opcode::SIToFP:
        unop(Op::SIToFP);
        return;
    case ir::Opcode::FPToSI:
        unop(Op::FPToSI);
        return;
    case ir::Opcode::Call:
        lowerCall(inst, block, index);
        return;
    case ir::Opcode::Br:
        b.op = Op::Br;
        b.aux = makeEdge(block, inst.succ0);
        out.code.push_back(b);
        return;
    case ir::Opcode::CondBr:
        b.op = Op::CondBr;
        b.a = operandReg(inst, 0, block, index);
        b.aux = makeEdge(block, inst.succ0);
        b.imm = static_cast<std::int64_t>(makeEdge(block, inst.succ1));
        out.code.push_back(b);
        return;
    case ir::Opcode::Ret:
        if (inst.numOperands() > 0) {
            b.op = Op::Ret;
            b.a = operandReg(inst, 0, block, index);
        } else {
            b.op = Op::RetVoid;
        }
        out.code.push_back(b);
        return;
    case ir::Opcode::Phi:
        return; // handled on edges; skipped by lowerBlock
    }
}

void
Compiler::lowerBlock(const ir::BasicBlock *block)
{
    blockStart[block] =
        static_cast<std::uint32_t>(out.code.size());
    const auto &insts = block->instructions();
    bool terminated = false;
    for (std::size_t i = 0; i < insts.size(); i++) {
        const ir::Instruction &inst = *insts[i];
        if (inst.op() == ir::Opcode::Phi)
            continue;
        lowerInst(inst, block, i);
        terminated |= ir::isTerminator(inst.op());
    }
    if (!terminated) {
        // The reference engine executes the whole block (each charging
        // a step), then traps with no extra step.
        emitTrap("block fell through without a terminator", false,
                 nullptr);
    }
}

Function
Compiler::run()
{
    out.source = &fn;
    if (!fn.entry())
        throw BailOut{"function has no entry block"};
    if (!ra.ok())
        throw BailOut{"register file overflow"};

    for (const auto &block : fn.basicBlocks()) {
        if (cfg.reachable(block.get()))
            layout.push_back(block.get());
    }
    scanCanonicalForm();
    indexFunction();

    out.numRegs = ra.numRegs();
    out.initRegs = ra.initRegs();
    out.argRegs = ra.argRegs();
    // Entering the entry block, "previous" is null: a leading phi can
    // never match an incoming and traps before charging any step.
    const auto &entry_insts = fn.entry()->instructions();
    out.entryPhiTrap = !entry_insts.empty() &&
                       entry_insts.front()->op() == ir::Opcode::Phi;

    for (const ir::BasicBlock *block : layout)
        lowerBlock(block);
    for (std::size_t i = 0; i < out.edges.size(); i++)
        out.edges[i].target = blockStart.at(edgeTargets[i]);

    out.ok = true;
    return out;
}

} // anonymous namespace

Module
compileModule(const ir::Module &module)
{
    Module compiled;
    for (const auto &function : module.allFunctions()) {
        try {
            Compiler compiler(module, *function);
            compiled.functions[function.get()] = compiler.run();
        } catch (const BailOut &bail) {
            Function failed;
            failed.source = function.get();
            failed.bailReason = bail.reason;
            compiled.functions[function.get()] = std::move(failed);
        }
    }
    return compiled;
}

} // namespace bc

void
Interpreter::Impl::ensureCompiled()
{
    if (bcodeReady)
        return;
    bcode = bc::compileModule(module);
    bcodeReady = true;
}

#if defined(TFM_COMPUTED_GOTO) && (defined(__GNUC__) || defined(__clang__))
#define TFM_USE_THREADED_DISPATCH 1
#endif

// One interpreter step: runaway protection plus the per-instruction
// compute-cycle charge (identical to the reference engine's step()).
#define VM_STEP()                                                      \
    do {                                                               \
        if (++steps > maxSteps)                                        \
            trap("step limit exceeded (possible infinite loop)");      \
        clk.advance(stepCycles);                                       \
    } while (0)

#ifdef TFM_USE_THREADED_DISPATCH
#define VM_CASE(n) L_##n:
#define VM_NEXT()                                                      \
    do {                                                               \
        ++in;                                                          \
        goto *kDispatch[static_cast<int>(in->op)];                     \
    } while (0)
#define VM_JUMP(p)                                                     \
    do {                                                               \
        in = (p);                                                      \
        goto *kDispatch[static_cast<int>(in->op)];                     \
    } while (0)
#else
#define VM_CASE(n) case bc::Op::n:
#define VM_NEXT()                                                      \
    do {                                                               \
        ++in;                                                          \
        goto dispatch;                                                 \
    } while (0)
#define VM_JUMP(p)                                                     \
    do {                                                               \
        in = (p);                                                      \
        goto dispatch;                                                 \
    } while (0)
#endif

Slot
Interpreter::Impl::runBytecode(const bc::Function &F, const Slot *args,
                               std::size_t nargs, int depth)
{
    const ir::Function &source = *F.source;
    if (nargs != source.arguments().size())
        trap("argument count mismatch calling @" + source.name());
    if (F.entryPhiTrap)
        trap("phi without incoming for predecessor");

    std::vector<Slot> regs = F.initRegs;
    Slot *const R = regs.data();
    for (std::size_t i = 0; i < nargs; i++)
        R[F.argRegs[i]] = args[i];

    /// Chunk cursor state, by compile-time slot (live == the map entry
    /// the reference engine creates when chunk.begin executes).
    struct Cursor
    {
        bool live = false;
        std::uint64_t curObj = TfmRuntime::noObject;
        std::byte *window = nullptr;
    };
    std::vector<Cursor> cursors(F.cursorOrigins.size());
    /// Armed state of epoch-arming guards, by compile-time slot.
    struct Reval
    {
        bool armed = false;
        std::uint64_t epoch = 0;
        std::byte *host = nullptr;
    };
    std::vector<Reval> revals(F.numRevals);

    CycleClock &clk = rt.clock();
    const std::uint64_t stepCycles = rt.costs().computeCycles;
    const bc::Inst *const code = F.code.data();
    const bc::Inst *in = code;

    auto release = [&] {
        for (Cursor &cursor : cursors) {
            if (cursor.live && cursor.curObj != TfmRuntime::noObject)
                rt.endChunk(cursor.curObj);
            cursor.curObj = TfmRuntime::noObject;
        }
    };
    // Take a CFG edge: charge one step per phi (reference parity),
    // trap if a phi had no incoming for this predecessor, then apply
    // the pre-scheduled parallel copies.
    auto takeEdge = [&](std::uint32_t index) -> const bc::Inst * {
        const bc::Edge &edge = F.edges[index];
        for (std::uint32_t k = 0; k < edge.phiSteps; k++)
            step();
        if (edge.phiTrap)
            trap("phi without incoming for predecessor");
        for (const bc::Move &move : edge.moves)
            R[move.dst] = R[move.src];
        return code + edge.target;
    };

    try {
#ifdef TFM_USE_THREADED_DISPATCH
        // Label table in exact bc::Op order.
        static const void *const kDispatch[] = {
            &&L_Alloca,  &&L_LoadI,    &&L_LoadF,       &&L_StoreI,
            &&L_StoreF,  &&L_Gep,      &&L_GuardRead,   &&L_GuardWrite,
            &&L_GuardReval, &&L_ChunkBegin, &&L_ChunkAccess,
            &&L_Prefetch, &&L_Add,     &&L_Sub,         &&L_Mul,
            &&L_SDiv,    &&L_SRem,     &&L_And,         &&L_Or,
            &&L_Xor,     &&L_Shl,      &&L_LShr,        &&L_FAdd,
            &&L_FSub,    &&L_FMul,     &&L_FDiv,        &&L_ICmpEq,
            &&L_ICmpNe,  &&L_ICmpSlt,  &&L_ICmpSle,     &&L_ICmpSgt,
            &&L_ICmpSge, &&L_FCmpOlt,  &&L_CopyI,       &&L_TruncI,
            &&L_SIToFP,  &&L_FPToSI,   &&L_Call,        &&L_Br,
            &&L_CondBr,  &&L_Ret,      &&L_RetVoid,     &&L_Trap,
        };
        goto *kDispatch[static_cast<int>(in->op)];
#else
    dispatch:
        switch (in->op) {
#endif

        VM_CASE(Alloca)
        {
            VM_STEP();
            R[in->dst] = Slot{
                hostAlloc(static_cast<std::uint64_t>(in->imm)), 0.0};
            VM_NEXT();
        }
        VM_CASE(LoadI)
        {
            VM_STEP();
            std::uint64_t raw = 0;
            rawAccess(R[in->a].i, &raw, in->aux, false);
            R[in->dst] = Slot{raw, 0.0};
            VM_NEXT();
        }
        VM_CASE(LoadF)
        {
            VM_STEP();
            Slot slot;
            rawAccess(R[in->a].i, &slot.f, sizeof(double), false);
            R[in->dst] = slot;
            VM_NEXT();
        }
        VM_CASE(StoreI)
        {
            VM_STEP();
            std::uint64_t raw = R[in->a].i;
            rawAccess(R[in->b].i, &raw, in->aux, true);
            VM_NEXT();
        }
        VM_CASE(StoreF)
        {
            VM_STEP();
            double value = R[in->a].f;
            rawAccess(R[in->b].i, &value, sizeof(double), true);
            VM_NEXT();
        }
        VM_CASE(Gep)
        {
            VM_STEP();
            R[in->dst] =
                Slot{R[in->a].i +
                         R[in->b].i * static_cast<std::uint64_t>(in->imm),
                     0.0};
            VM_NEXT();
        }
        VM_CASE(GuardRead)
        {
            VM_STEP();
            const std::uint64_t addr = R[in->a].i;
            if (profiling && tfmIsTagged(addr))
                recordAccess(addr);
            // Inline last-object cache probe: a hit is pure pointer
            // arithmetic plus the hit accounting, no runtime call.
            std::byte *host = rt.guardCacheFastPath(addr, false);
            if (host)
                guardFastHits++;
            else
                host = rt.guardRead(addr);
            if (in->flags & bc::kArmsEpoch) {
                revals[in->aux] =
                    Reval{true, rt.runtime().evictionEpoch(), host};
            }
            R[in->dst] =
                Slot{reinterpret_cast<std::uint64_t>(host), 0.0};
            VM_NEXT();
        }
        VM_CASE(GuardWrite)
        {
            VM_STEP();
            const std::uint64_t addr = R[in->a].i;
            if (profiling && tfmIsTagged(addr))
                recordAccess(addr);
            std::byte *host = rt.guardCacheFastPath(addr, true);
            if (host)
                guardFastHits++;
            else
                host = rt.guardWrite(addr);
            if (in->flags & bc::kArmsEpoch) {
                revals[in->aux] =
                    Reval{true, rt.runtime().evictionEpoch(), host};
            }
            R[in->dst] =
                Slot{reinterpret_cast<std::uint64_t>(host), 0.0};
            VM_NEXT();
        }
        VM_CASE(GuardReval)
        {
            VM_STEP();
            const std::uint64_t addr = R[in->a].i;
            Reval &armed = revals[in->aux];
            if (!armed.armed)
                trap("guard.reval before its arming guard");
            std::byte *host;
            if (tfmIsTagged(addr) && rt.revalidate(addr, armed.epoch)) {
                // Epoch unchanged since arming: the host pointer (and
                // any dirty bit) is still live.
                host = armed.host;
            } else {
                // Evacuation since arming (or an untagged pointer):
                // re-run the full guard and re-arm.
                if (profiling && tfmIsTagged(addr))
                    recordAccess(addr);
                host = (in->flags & bc::kWrite) ? rt.guardWrite(addr)
                                                : rt.guardRead(addr);
                armed.epoch = rt.runtime().evictionEpoch();
                armed.host = host;
            }
            R[in->dst] =
                Slot{reinterpret_cast<std::uint64_t>(host), 0.0};
            VM_NEXT();
        }
        VM_CASE(ChunkBegin)
        {
            VM_STEP();
            Cursor &cursor = cursors[in->aux];
            if (cursor.live && cursor.curObj != TfmRuntime::noObject)
                rt.endChunk(cursor.curObj);
            cursor.live = true;
            cursor.curObj = TfmRuntime::noObject;
            cursor.window = nullptr;
            R[in->dst] =
                Slot{static_cast<std::uint64_t>(in->imm), 0.0};
            VM_NEXT();
        }
        VM_CASE(ChunkAccess)
        {
            VM_STEP();
            Cursor &cursor = cursors[in->aux];
            if (!cursor.live)
                trap("chunk.access before chunk.begin");
            const std::uint64_t addr = R[in->a].i;
            if (!tfmIsTagged(addr)) {
                // Custody check inside the chunk helper.
                clk.advance(rt.costs().custodyRejectCycles);
                R[in->dst] = Slot{addr, 0.0};
                VM_NEXT();
            }
            if (profiling)
                recordAccess(addr);
            const auto &table = rt.runtime().stateTable();
            const std::uint64_t offset = tfmOffsetOf(addr);
            const std::uint64_t obj = table.objectOf(offset);
            if (obj != cursor.curObj) {
                std::byte *host = rt.localityGuard(
                    addr, cursor.curObj, (in->flags & bc::kWrite) != 0);
                cursor.curObj = obj;
                cursor.window = host - table.offsetInObject(offset);
            } else {
                rt.boundaryCheck();
            }
            R[in->dst] = Slot{reinterpret_cast<std::uint64_t>(
                                  cursor.window +
                                  table.offsetInObject(offset)),
                              0.0};
            VM_NEXT();
        }
        VM_CASE(Prefetch)
        {
            VM_STEP();
            const std::uint64_t addr = R[in->a].i;
            if (tfmIsTagged(addr))
                rt.prefetchAhead(addr, 1, in->aux);
            VM_NEXT();
        }
        VM_CASE(Add)
        {
            VM_STEP();
            R[in->dst] = Slot{R[in->a].i + R[in->b].i, 0.0};
            VM_NEXT();
        }
        VM_CASE(Sub)
        {
            VM_STEP();
            R[in->dst] = Slot{R[in->a].i - R[in->b].i, 0.0};
            VM_NEXT();
        }
        VM_CASE(Mul)
        {
            VM_STEP();
            R[in->dst] = Slot{R[in->a].i * R[in->b].i, 0.0};
            VM_NEXT();
        }
        VM_CASE(SDiv)
        {
            VM_STEP();
            const auto divisor =
                static_cast<std::int64_t>(R[in->b].i);
            if (divisor == 0)
                trap("division by zero");
            R[in->dst] = Slot{
                static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(R[in->a].i) / divisor),
                0.0};
            VM_NEXT();
        }
        VM_CASE(SRem)
        {
            VM_STEP();
            const auto divisor =
                static_cast<std::int64_t>(R[in->b].i);
            if (divisor == 0)
                trap("remainder by zero");
            R[in->dst] = Slot{
                static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(R[in->a].i) % divisor),
                0.0};
            VM_NEXT();
        }
        VM_CASE(And)
        {
            VM_STEP();
            R[in->dst] = Slot{R[in->a].i & R[in->b].i, 0.0};
            VM_NEXT();
        }
        VM_CASE(Or)
        {
            VM_STEP();
            R[in->dst] = Slot{R[in->a].i | R[in->b].i, 0.0};
            VM_NEXT();
        }
        VM_CASE(Xor)
        {
            VM_STEP();
            R[in->dst] = Slot{R[in->a].i ^ R[in->b].i, 0.0};
            VM_NEXT();
        }
        VM_CASE(Shl)
        {
            VM_STEP();
            R[in->dst] = Slot{R[in->a].i << (R[in->b].i & 63), 0.0};
            VM_NEXT();
        }
        VM_CASE(LShr)
        {
            VM_STEP();
            R[in->dst] = Slot{R[in->a].i >> (R[in->b].i & 63), 0.0};
            VM_NEXT();
        }
        VM_CASE(FAdd)
        {
            VM_STEP();
            R[in->dst] = Slot{0, R[in->a].f + R[in->b].f};
            VM_NEXT();
        }
        VM_CASE(FSub)
        {
            VM_STEP();
            R[in->dst] = Slot{0, R[in->a].f - R[in->b].f};
            VM_NEXT();
        }
        VM_CASE(FMul)
        {
            VM_STEP();
            R[in->dst] = Slot{0, R[in->a].f * R[in->b].f};
            VM_NEXT();
        }
        VM_CASE(FDiv)
        {
            VM_STEP();
            R[in->dst] = Slot{0, R[in->a].f / R[in->b].f};
            VM_NEXT();
        }
        VM_CASE(ICmpEq)
        {
            VM_STEP();
            R[in->dst] =
                Slot{static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(R[in->a].i) ==
                         static_cast<std::int64_t>(R[in->b].i)),
                     0.0};
            VM_NEXT();
        }
        VM_CASE(ICmpNe)
        {
            VM_STEP();
            R[in->dst] =
                Slot{static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(R[in->a].i) !=
                         static_cast<std::int64_t>(R[in->b].i)),
                     0.0};
            VM_NEXT();
        }
        VM_CASE(ICmpSlt)
        {
            VM_STEP();
            R[in->dst] =
                Slot{static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(R[in->a].i) <
                         static_cast<std::int64_t>(R[in->b].i)),
                     0.0};
            VM_NEXT();
        }
        VM_CASE(ICmpSle)
        {
            VM_STEP();
            R[in->dst] =
                Slot{static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(R[in->a].i) <=
                         static_cast<std::int64_t>(R[in->b].i)),
                     0.0};
            VM_NEXT();
        }
        VM_CASE(ICmpSgt)
        {
            VM_STEP();
            R[in->dst] =
                Slot{static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(R[in->a].i) >
                         static_cast<std::int64_t>(R[in->b].i)),
                     0.0};
            VM_NEXT();
        }
        VM_CASE(ICmpSge)
        {
            VM_STEP();
            R[in->dst] =
                Slot{static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(R[in->a].i) >=
                         static_cast<std::int64_t>(R[in->b].i)),
                     0.0};
            VM_NEXT();
        }
        VM_CASE(FCmpOlt)
        {
            VM_STEP();
            R[in->dst] = Slot{
                static_cast<std::uint64_t>(R[in->a].f < R[in->b].f),
                0.0};
            VM_NEXT();
        }
        VM_CASE(CopyI)
        {
            VM_STEP();
            R[in->dst] = Slot{R[in->a].i, 0.0};
            VM_NEXT();
        }
        VM_CASE(TruncI)
        {
            VM_STEP();
            R[in->dst] = Slot{
                R[in->a].i & static_cast<std::uint64_t>(in->imm), 0.0};
            VM_NEXT();
        }
        VM_CASE(SIToFP)
        {
            VM_STEP();
            R[in->dst] =
                Slot{0, static_cast<double>(
                            static_cast<std::int64_t>(R[in->a].i))};
            VM_NEXT();
        }
        VM_CASE(FPToSI)
        {
            VM_STEP();
            R[in->dst] = Slot{static_cast<std::uint64_t>(
                                  static_cast<std::int64_t>(R[in->a].f)),
                              0.0};
            VM_NEXT();
        }
        VM_CASE(Call)
        {
            VM_STEP();
            const bc::CallSite &site = F.calls[in->aux];
            Slot result;
            if (!site.target) {
                result = runBuiltin(site.builtin, *site.inst,
                                    [&](std::size_t k) {
                                        return R[site.args[k]];
                                    });
            } else {
                if (depth > 200)
                    trap("call depth limit exceeded");
                Slot small[8];
                std::vector<Slot> big;
                const std::size_t n = site.args.size();
                Slot *ap = small;
                if (n > 8) {
                    big.resize(n);
                    ap = big.data();
                }
                for (std::size_t k = 0; k < n; k++)
                    ap[k] = R[site.args[k]];
                result = callFunction(*site.target, ap, n, depth + 1);
            }
            R[in->dst] = result;
            VM_NEXT();
        }
        VM_CASE(Br)
        {
            VM_STEP();
            VM_JUMP(takeEdge(in->aux));
        }
        VM_CASE(CondBr)
        {
            VM_STEP();
            VM_JUMP(takeEdge(
                R[in->a].i ? in->aux
                           : static_cast<std::uint32_t>(in->imm)));
        }
        VM_CASE(Ret)
        {
            VM_STEP();
            const Slot returned = R[in->a];
            release();
            return returned;
        }
        VM_CASE(RetVoid)
        {
            VM_STEP();
            release();
            return Slot{};
        }
        VM_CASE(Trap)
        {
            if (in->flags & bc::kChargeStep)
                VM_STEP();
            trap(F.messages[in->aux]);
        }

#ifndef TFM_USE_THREADED_DISPATCH
        }
        trap("bytecode dispatch fell through"); // unreachable
#endif
    } catch (TrapException &) {
        release();
        throw;
    }
}

} // namespace tfm
