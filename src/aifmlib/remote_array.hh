/**
 * @file
 * AIFM-style remote array: the data structure from the paper's
 * Listing 1, with a locality-aware iterator.
 */

#ifndef TRACKFM_AIFMLIB_REMOTE_ARRAY_HH
#define TRACKFM_AIFMLIB_REMOTE_ARRAY_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "aifm_runtime.hh"

namespace tfm
{

/**
 * Fixed-size array of T in far memory.
 *
 * Element accessors require a DerefScope, as AIFM's API does. The
 * iterator localizes one object at a time and serves elements from the
 * pinned window — the hand-written equivalent of what TrackFM's loop
 * chunking derives automatically.
 */
template <typename T>
class RemoteArray
{
  public:
    RemoteArray(AifmRuntime &rt, std::size_t count)
        : _rt(rt), _count(count),
          base(rt.runtime().allocate(count * sizeof(T)))
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "far-memory elements must be trivially copyable");
        TFM_ASSERT(rt.runtime().stateTable().objectSize() % sizeof(T) == 0,
                   "element size must divide the object size (pad T)");
    }

    std::size_t size() const { return _count; }

    /** Scoped element read (Listing 1's array.at(scope, i)). */
    T
    at(const DerefScope &scope, std::size_t index) const
    {
        (void)scope;
        T value;
        std::memcpy(&value, _rt.deref(elemOffset(index), false), sizeof(T));
        return value;
    }

    /** Scoped element write. */
    void
    set(const DerefScope &scope, std::size_t index, const T &value)
    {
        (void)scope;
        std::memcpy(_rt.deref(elemOffset(index), true), &value, sizeof(T));
    }

    /** Unmetered initialization. */
    void
    init(std::size_t index, const T &value)
    {
        _rt.runtime().rawWrite(elemOffset(index), &value, sizeof(T));
    }

    /** Unmetered verification read. */
    T
    peek(std::size_t index) const
    {
        T value;
        _rt.runtime().rawRead(elemOffset(index), &value, sizeof(T));
        return value;
    }

    /**
     * Library iterator: sequential scan with object-window reuse.
     *
     * The data-structure developer knows the object size, so in-window
     * element accesses are raw (about one cycle of pointer bump), and
     * the runtime is only called at object boundaries. Demand misses at
     * boundaries train the stride prefetcher.
     */
    class Iterator
    {
      public:
        Iterator(RemoteArray &array, const DerefScope &scope, bool for_write)
            : arr(array), writeMode(for_write)
        {
            (void)scope;
            refill();
        }

        Iterator(const Iterator &) = delete;
        Iterator &operator=(const Iterator &) = delete;

        ~Iterator()
        {
            if (curObj != noObj)
                arr._rt.runtime().unpinObject(curObj);
        }

        T
        read()
        {
            T value;
            std::memcpy(&value, window + inWindow, sizeof(T));
            step();
            return value;
        }

        void
        write(const T &value)
        {
            std::memcpy(window + inWindow, &value, sizeof(T));
            step();
        }

      private:
        void
        step()
        {
            arr._rt.clock().advance(1);
            index++;
            inWindow += sizeof(T);
            if (inWindow >= windowLen && index < arr._count)
                refill();
        }

        void
        refill()
        {
            const std::uint64_t offset = arr.elemOffset(index);
            window = arr._rt.deref(offset, writeMode);
            auto &runtime = arr._rt.runtime();
            const auto &table = runtime.stateTable();
            const std::uint64_t next = table.objectOf(offset);
            // The scope pins the window object so localize() calls for
            // later objects cannot evacuate it underneath the iterator.
            runtime.pinObject(next);
            if (curObj != noObj)
                runtime.unpinObject(curObj);
            curObj = next;
            const std::uint64_t in_obj = table.offsetInObject(offset);
            window -= in_obj;
            inWindow = in_obj;
            windowLen = table.objectSize();
        }

        static constexpr std::uint64_t noObj = ~0ull;

        RemoteArray &arr;
        bool writeMode;
        std::size_t index = 0;
        std::byte *window = nullptr;
        std::uint64_t inWindow = 0;
        std::uint64_t windowLen = 0;
        std::uint64_t curObj = noObj;
    };

    Iterator
    begin(const DerefScope &scope, bool for_write = false)
    {
        return Iterator(*this, scope, for_write);
    }

  private:
    std::uint64_t
    elemOffset(std::size_t index) const
    {
        return base + index * sizeof(T);
    }

    AifmRuntime &_rt;
    std::size_t _count;
    std::uint64_t base;

    friend class Iterator;
};

} // namespace tfm

#endif // TRACKFM_AIFMLIB_REMOTE_ARRAY_HH
