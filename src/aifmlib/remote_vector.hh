/**
 * @file
 * AIFM-style growable remote vector.
 */

#ifndef TRACKFM_AIFMLIB_REMOTE_VECTOR_HH
#define TRACKFM_AIFMLIB_REMOTE_VECTOR_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "aifm_runtime.hh"
#include "sim/logging.hh"

namespace tfm
{

/**
 * Dynamic array of T in far memory with amortized doubling growth.
 *
 * Growth copies through the runtime at object granularity and charges
 * streaming-copy cycles, modelling AIFM's log-structured reallocation.
 */
template <typename T>
class RemoteVector
{
  public:
    explicit RemoteVector(AifmRuntime &rt, std::size_t initial_capacity = 16)
        : _rt(rt), cap(initial_capacity == 0 ? 16 : initial_capacity)
    {
        base = rt.runtime().allocate(cap * sizeof(T));
    }

    std::size_t size() const { return count; }
    std::size_t capacity() const { return cap; }
    bool empty() const { return count == 0; }

    void
    pushBack(const DerefScope &scope, const T &value)
    {
        if (count == cap)
            grow();
        std::memcpy(_rt.deref(elemOffset(count), true), &value, sizeof(T));
        (void)scope;
        count++;
    }

    T
    at(const DerefScope &scope, std::size_t index) const
    {
        (void)scope;
        TFM_ASSERT(index < count, "RemoteVector index out of range");
        T value;
        std::memcpy(&value, _rt.deref(elemOffset(index), false), sizeof(T));
        return value;
    }

    void
    set(const DerefScope &scope, std::size_t index, const T &value)
    {
        (void)scope;
        TFM_ASSERT(index < count, "RemoteVector index out of range");
        std::memcpy(_rt.deref(elemOffset(index), true), &value, sizeof(T));
    }

    /** Unmetered append for initialization. */
    void
    initPushBack(const T &value)
    {
        if (count == cap)
            grow();
        _rt.runtime().rawWrite(elemOffset(count), &value, sizeof(T));
        count++;
    }

  private:
    std::uint64_t
    elemOffset(std::size_t index) const
    {
        return base + index * sizeof(T);
    }

    void
    grow()
    {
        const std::size_t new_cap = cap * 2;
        auto &runtime = _rt.runtime();
        const std::uint64_t fresh = runtime.allocate(new_cap * sizeof(T));
        // Move payload through the runtime's raw path and charge a
        // streaming copy (the data may be partially remote).
        const std::size_t bytes = count * sizeof(T);
        if (bytes > 0) {
            std::vector<std::byte> tmp(bytes);
            runtime.rawRead(base, tmp.data(), bytes);
            runtime.rawWrite(fresh, tmp.data(), bytes);
            runtime.clock().advance(bytes / 16 + 1);
        }
        runtime.deallocate(base);
        base = fresh;
        cap = new_cap;
    }

    AifmRuntime &_rt;
    std::size_t cap;
    std::size_t count = 0;
    std::uint64_t base = 0;
};

} // namespace tfm

#endif // TRACKFM_AIFMLIB_REMOTE_VECTOR_HH
