/**
 * @file
 * AIFM-style remote hash map (the "remote HashMap" the paper cites as
 * the best-case library experience).
 *
 * Open addressing with linear probing over a far-memory bucket array.
 * Keys and values are fixed-size PODs; the memcached comparison uses
 * variable-size payloads through the generic backend instead.
 */

#ifndef TRACKFM_AIFMLIB_REMOTE_HASHMAP_HH
#define TRACKFM_AIFMLIB_REMOTE_HASHMAP_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <type_traits>

#include "aifm_runtime.hh"
#include "sim/logging.hh"

namespace tfm
{

/**
 * Fixed-capacity open-addressing hash map in far memory.
 *
 * @tparam K trivially copyable key
 * @tparam V trivially copyable value
 */
template <typename K, typename V>
class RemoteHashMap
{
  public:
    RemoteHashMap(AifmRuntime &rt, std::size_t capacity)
        : _rt(rt), cap(roundUpPow2(capacity))
    {
        // Slots are padded to a power-of-two stride so a slot never
        // straddles an object boundary.
        base = rt.runtime().allocate(cap * slotStride());
        // Empty slots are all-zero with state == empty.
        const Slot empty_slot{};
        for (std::size_t i = 0; i < cap; i++)
            rt.runtime().rawWrite(slotOffset(i), &empty_slot, sizeof(Slot));
    }

    std::size_t capacity() const { return cap; }
    std::size_t size() const { return count; }

    /** Insert or update; charges hash + probe accesses. */
    void
    put(const DerefScope &scope, const K &key, const V &value)
    {
        (void)scope;
        TFM_ASSERT(count < cap, "RemoteHashMap is full");
        _rt.clock().advance(_rt.costs().computeCycles * 8); // hashing
        std::size_t slot = hashOf(key) & (cap - 1);
        while (true) {
            Slot s = loadSlot(slot, false);
            if (s.state != Slot::full) {
                s.state = Slot::full;
                s.key = key;
                s.value = value;
                storeSlot(slot, s);
                count++;
                return;
            }
            if (keyEq(s.key, key)) {
                s.value = value;
                storeSlot(slot, s);
                return;
            }
            slot = (slot + 1) & (cap - 1);
        }
    }

    /** Lookup; nullopt when absent. */
    std::optional<V>
    get(const DerefScope &scope, const K &key)
    {
        (void)scope;
        _rt.clock().advance(_rt.costs().computeCycles * 8);
        std::size_t slot = hashOf(key) & (cap - 1);
        while (true) {
            const Slot s = loadSlot(slot, false);
            if (s.state == Slot::empty)
                return std::nullopt;
            if (s.state == Slot::full && keyEq(s.key, key))
                return s.value;
            slot = (slot + 1) & (cap - 1);
        }
    }

    /** Remove; true when the key was present. */
    bool
    erase(const DerefScope &scope, const K &key)
    {
        (void)scope;
        _rt.clock().advance(_rt.costs().computeCycles * 8);
        std::size_t slot = hashOf(key) & (cap - 1);
        while (true) {
            Slot s = loadSlot(slot, false);
            if (s.state == Slot::empty)
                return false;
            if (s.state == Slot::full && keyEq(s.key, key)) {
                s.state = Slot::tombstone;
                storeSlot(slot, s);
                count--;
                return true;
            }
            slot = (slot + 1) & (cap - 1);
        }
    }

    /** Unmetered insert for initialization. */
    void
    initPut(const K &key, const V &value)
    {
        TFM_ASSERT(count < cap, "RemoteHashMap is full");
        std::size_t slot = hashOf(key) & (cap - 1);
        while (true) {
            Slot s{};
            _rt.runtime().rawRead(slotOffset(slot), &s, sizeof(Slot));
            if (s.state != Slot::full) {
                s.state = Slot::full;
                s.key = key;
                s.value = value;
                _rt.runtime().rawWrite(slotOffset(slot), &s, sizeof(Slot));
                count++;
                return;
            }
            if (keyEq(s.key, key)) {
                s.value = value;
                _rt.runtime().rawWrite(slotOffset(slot), &s, sizeof(Slot));
                return;
            }
            slot = (slot + 1) & (cap - 1);
        }
    }

  private:
    struct Slot
    {
        static constexpr std::uint8_t empty = 0;
        static constexpr std::uint8_t full = 1;
        static constexpr std::uint8_t tombstone = 2;

        std::uint8_t state = empty;
        K key{};
        V value{};
    };

    static std::size_t
    roundUpPow2(std::size_t n)
    {
        std::size_t p = 16;
        while (p < n)
            p <<= 1;
        return p;
    }

    static std::uint64_t
    hashOf(const K &key)
    {
        // FNV-1a over the key bytes.
        const auto *bytes = reinterpret_cast<const unsigned char *>(&key);
        std::uint64_t h = 0xcbf29ce484222325ull;
        for (std::size_t i = 0; i < sizeof(K); i++)
            h = (h ^ bytes[i]) * 0x100000001b3ull;
        return h;
    }

    static bool
    keyEq(const K &a, const K &b)
    {
        return std::memcmp(&a, &b, sizeof(K)) == 0;
    }

    static constexpr std::size_t
    slotStride()
    {
        std::size_t p = 16;
        while (p < sizeof(Slot))
            p <<= 1;
        return p;
    }

    std::uint64_t
    slotOffset(std::size_t slot) const
    {
        return base + slot * slotStride();
    }

    Slot
    loadSlot(std::size_t slot, bool for_write)
    {
        Slot s;
        std::memcpy(&s, _rt.deref(slotOffset(slot), for_write), sizeof(Slot));
        return s;
    }

    void
    storeSlot(std::size_t slot, const Slot &s)
    {
        std::memcpy(_rt.deref(slotOffset(slot), true), &s, sizeof(Slot));
    }

    AifmRuntime &_rt;
    std::size_t cap;
    std::size_t count = 0;
    std::uint64_t base = 0;
};

} // namespace tfm

#endif // TRACKFM_AIFMLIB_REMOTE_HASHMAP_HH
