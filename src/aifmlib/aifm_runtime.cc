#include "aifm_runtime.hh"

namespace tfm
{

void
AifmRuntime::exportStats(StatSet &set) const
{
    set.add("aifm.derefs", _stats.derefs);
    set.add("aifm.misses", _stats.misses);
    set.add("aifm.scope_enters", _stats.scopeEnters);
    rt.exportStats(set);
}

} // namespace tfm
