/**
 * @file
 * AIFM-style remote linked list — the paper's second motivating data
 * structure ("a remote linked list ... might use an AIFM object size
 * of 64 B to constitute a single linked list node", section 2).
 *
 * Each node is its own far-memory allocation, so a traversal is a
 * pointer chase across objects: the worst case for paging and the
 * pattern the paper's future-work section (recursive data structures)
 * targets.
 */

#ifndef TRACKFM_AIFMLIB_REMOTE_LIST_HH
#define TRACKFM_AIFMLIB_REMOTE_LIST_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "aifm_runtime.hh"
#include "sim/logging.hh"

namespace tfm
{

/**
 * Singly linked list of T in far memory.
 *
 * @tparam T trivially copyable element
 */
template <typename T>
class RemoteList
{
  public:
    explicit RemoteList(AifmRuntime &rt) : _rt(rt)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "far-memory elements must be trivially copyable");
    }

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }

    /** Prepend an element (O(1), one node allocation). */
    void
    pushFront(const DerefScope &scope, const T &value)
    {
        (void)scope;
        const std::uint64_t node = _rt.runtime().allocate(sizeof(Node));
        Node fresh;
        fresh.next = head;
        fresh.value = value;
        std::memcpy(_rt.deref(node, true), &fresh, sizeof(Node));
        head = node;
        count++;
    }

    /** Remove and return the first element. */
    T
    popFront(const DerefScope &scope)
    {
        (void)scope;
        TFM_ASSERT(count > 0, "popFront on an empty RemoteList");
        Node node;
        std::memcpy(&node, _rt.deref(head, false), sizeof(Node));
        _rt.runtime().deallocate(head);
        head = node.next;
        count--;
        return node.value;
    }

    /** Read the first element without removing it. */
    T
    front(const DerefScope &scope) const
    {
        (void)scope;
        TFM_ASSERT(count > 0, "front on an empty RemoteList");
        Node node;
        std::memcpy(&node, _rt.deref(head, false), sizeof(Node));
        return node.value;
    }

    /**
     * Traverse the whole list, calling @p visit on each element —
     * a pointer chase with one dereference per node.
     */
    template <typename Visitor>
    void
    forEach(const DerefScope &scope, Visitor &&visit) const
    {
        (void)scope;
        std::uint64_t cursor = head;
        while (cursor != nil) {
            Node node;
            std::memcpy(&node, _rt.deref(cursor, false), sizeof(Node));
            visit(node.value);
            cursor = node.next;
        }
    }

    /** Find the first element equal to @p value (by bytes). */
    bool
    contains(const DerefScope &scope, const T &value) const
    {
        bool found = false;
        forEach(scope, [&](const T &element) {
            found |= std::memcmp(&element, &value, sizeof(T)) == 0;
        });
        return found;
    }

    /** Unmetered prepend for initialization. */
    void
    initPushFront(const T &value)
    {
        const std::uint64_t node = _rt.runtime().allocate(sizeof(Node));
        Node fresh;
        fresh.next = head;
        fresh.value = value;
        _rt.runtime().rawWrite(node, &fresh, sizeof(Node));
        head = node;
        count++;
    }

  private:
    static constexpr std::uint64_t nil = ~0ull;

    struct Node
    {
        std::uint64_t next = nil;
        T value{};
    };

    AifmRuntime &_rt;
    std::uint64_t head = nil;
    std::size_t count = 0;
};

} // namespace tfm

#endif // TRACKFM_AIFMLIB_REMOTE_LIST_HH
