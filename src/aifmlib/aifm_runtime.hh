/**
 * @file
 * AIFM library-mode runtime: the programmer-integrated baseline
 * (Ruan et al., OSDI '20) that TrackFM is compared against in Fig. 14.
 *
 * Unlike TrackFM, nothing is automatic here: the programmer picks a
 * remote data structure (RemoteArray, RemoteVector, RemoteHashMap),
 * annotates it with an object size, and brackets accesses with
 * DerefScope objects. In exchange there are no custody checks and no
 * guards — just a cheap smart-pointer indirection on the hit path and a
 * runtime call on the miss path.
 */

#ifndef TRACKFM_AIFMLIB_AIFM_RUNTIME_HH
#define TRACKFM_AIFMLIB_AIFM_RUNTIME_HH

#include <cstdint>

#include "obs/obs.hh"
#include "runtime/far_mem_runtime.hh"

namespace tfm
{

/** AIFM-side access counters. */
struct AifmStats
{
    std::uint64_t derefs = 0;      ///< smart-pointer hits
    std::uint64_t misses = 0;      ///< dereferences that called the runtime
    std::uint64_t scopeEnters = 0; ///< DerefScope constructions
};

/**
 * Thin wrapper adding AIFM's access-cost accounting to the shared
 * far-memory runtime.
 */
class AifmRuntime
{
  public:
    AifmRuntime(const RuntimeConfig &config, const CostParams &cost_params)
        : rt(tagged(config), cost_params)
    {}

    FarMemRuntime &runtime() { return rt; }
    const CostParams &costs() const { return rt.costs(); }
    CycleClock &clock() { return rt.clock(); }
    AifmStats &stats() { return _stats; }
    const AifmStats &stats() const { return _stats; }

    /**
     * Dereference a far offset inside a scope: cheap indirection when
     * local, runtime call (possibly remote fetch) when not.
     *
     * @return host pointer to the byte at @p offset.
     */
    std::byte *
    deref(std::uint64_t offset, bool for_write)
    {
        std::byte *fast = rt.tryFast(offset, for_write);
        if (fast) {
            rt.clock().advance(costs().smartPtrDerefCycles);
            _stats.derefs++;
            return fast;
        }
        // Miss path: same runtime localize call TrackFM's slow path
        // uses, minus the guard dispatch around it.
        rt.clock().advance(costs().slowPathReadCycles);
        _stats.misses++;
        if (Observability *obs = rt.obs();
            obs && obs->trace().enabled()) {
            obs->trace().instant(rt.obsStream(), TrackApp, "aifm.miss",
                                 "runtime", rt.clock().now());
        }
        return rt.localize(offset, for_write);
    }

    void exportStats(StatSet &set) const;

  private:
    /** Label this stack's observability stream as the AIFM baseline's. */
    static RuntimeConfig
    tagged(RuntimeConfig config)
    {
        config.obsKind = "aifm";
        return config;
    }

    FarMemRuntime rt;
    AifmStats _stats;
};

/**
 * RAII dereference scope (Listing 1 in the paper). While a scope is
 * alive the evacuator will not reclaim objects dereferenced through it;
 * in this single-threaded reproduction that invariant is structural, so
 * the scope only charges its entry cost and anchors the API shape.
 */
class DerefScope
{
  public:
    explicit DerefScope(AifmRuntime &rt) : _rt(rt)
    {
        _rt.clock().advance(_rt.costs().derefScopeCycles);
        _rt.stats().scopeEnters++;
    }

    DerefScope(const DerefScope &) = delete;
    DerefScope &operator=(const DerefScope &) = delete;

    AifmRuntime &runtime() const { return _rt; }

  private:
    AifmRuntime &_rt;
};

} // namespace tfm

#endif // TRACKFM_AIFMLIB_AIFM_RUNTIME_HH
