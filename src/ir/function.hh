/**
 * @file
 * IR functions and modules.
 */

#ifndef TRACKFM_IR_FUNCTION_HH
#define TRACKFM_IR_FUNCTION_HH

#include <memory>
#include <string>
#include <vector>

#include "basic_block.hh"
#include "value.hh"

namespace tfm::ir
{

/** A function: arguments plus a list of basic blocks (entry first). */
class Function
{
  public:
    Function(std::string name, Type return_type)
        : _name(std::move(name)), retType(return_type)
    {}

    const std::string &name() const { return _name; }
    Type returnType() const { return retType; }

    Argument *
    addArgument(Type type, std::string arg_name)
    {
        args.push_back(std::make_unique<Argument>(
            type, std::move(arg_name),
            static_cast<unsigned>(args.size())));
        return args.back().get();
    }

    const std::vector<std::unique_ptr<Argument>> &
    arguments() const
    {
        return args;
    }

    BasicBlock *
    addBlock(std::string block_name)
    {
        blocks.push_back(
            std::make_unique<BasicBlock>(std::move(block_name), this));
        return blocks.back().get();
    }

    const std::vector<std::unique_ptr<BasicBlock>> &
    basicBlocks() const
    {
        return blocks;
    }

    BasicBlock *entry() const
    {
        return blocks.empty() ? nullptr : blocks.front().get();
    }

    BasicBlock *
    findBlock(const std::string &block_name) const
    {
        for (const auto &block : blocks) {
            if (block->name() == block_name)
                return block.get();
        }
        return nullptr;
    }

    /**
     * Remove the given blocks from the function (they must not be
     * referenced by surviving branches or phis).
     *
     * @return true when anything was removed.
     */
    bool
    eraseBlocks(const std::vector<const BasicBlock *> &victims)
    {
        bool changed = false;
        for (std::size_t i = 0; i < blocks.size(); i++) {
            bool doomed = false;
            for (const BasicBlock *victim : victims)
                doomed |= (blocks[i].get() == victim);
            if (doomed) {
                blocks.erase(blocks.begin() +
                             static_cast<std::ptrdiff_t>(i));
                i--;
                changed = true;
            }
        }
        return changed;
    }

    /** Total instruction count (IR size metric for section 4.6). */
    std::size_t
    instructionCount() const
    {
        std::size_t count = 0;
        for (const auto &block : blocks)
            count += block->instructions().size();
        return count;
    }

    /**
     * Keep track of constants owned by this function (pass-created
     * literals live here so their lifetime covers all uses).
     */
    Constant *
    makeConstant(Type type, std::int64_t value)
    {
        constants.push_back(std::make_unique<Constant>(type, value));
        return constants.back().get();
    }

    Constant *
    makeFloatConstant(double value)
    {
        constants.push_back(std::make_unique<Constant>(value));
        return constants.back().get();
    }

  private:
    std::string _name;
    Type retType;
    std::vector<std::unique_ptr<Argument>> args;
    std::vector<std::unique_ptr<BasicBlock>> blocks;
    std::vector<std::unique_ptr<Constant>> constants;
};

/** A module: a set of functions. */
class Module
{
  public:
    Function *
    addFunction(std::string name, Type return_type)
    {
        functions.push_back(
            std::make_unique<Function>(std::move(name), return_type));
        return functions.back().get();
    }

    const std::vector<std::unique_ptr<Function>> &
    allFunctions() const
    {
        return functions;
    }

    Function *
    findFunction(const std::string &name) const
    {
        for (const auto &function : functions) {
            if (function->name() == name)
                return function.get();
        }
        return nullptr;
    }

    /** Total instruction count across functions. */
    std::size_t
    instructionCount() const
    {
        std::size_t count = 0;
        for (const auto &function : functions)
            count += function->instructionCount();
        return count;
    }

  private:
    std::vector<std::unique_ptr<Function>> functions;
};

} // namespace tfm::ir

#endif // TRACKFM_IR_FUNCTION_HH
