/**
 * @file
 * Basic blocks: ordered instruction sequences ending in a terminator.
 */

#ifndef TRACKFM_IR_BASIC_BLOCK_HH
#define TRACKFM_IR_BASIC_BLOCK_HH

#include <memory>
#include <string>
#include <vector>

#include "instruction.hh"

namespace tfm::ir
{

class Function;

/** A basic block. Owns its instructions. */
class BasicBlock
{
  public:
    BasicBlock(std::string name, Function *parent)
        : _name(std::move(name)), _parent(parent)
    {}

    const std::string &name() const { return _name; }
    Function *parent() const { return _parent; }

    const std::vector<std::unique_ptr<Instruction>> &
    instructions() const
    {
        return insts;
    }

    bool empty() const { return insts.empty(); }

    Instruction *
    terminator() const
    {
        if (insts.empty() || !isTerminator(insts.back()->op()))
            return nullptr;
        return insts.back().get();
    }

    /** Append an instruction (takes ownership). */
    Instruction *
    append(std::unique_ptr<Instruction> inst)
    {
        inst->setParent(this);
        insts.push_back(std::move(inst));
        return insts.back().get();
    }

    /** Insert before position @p index. */
    Instruction *
    insertAt(std::size_t index, std::unique_ptr<Instruction> inst)
    {
        inst->setParent(this);
        auto it = insts.begin() + static_cast<std::ptrdiff_t>(index);
        return insts.insert(it, std::move(inst))->get();
    }

    /** Index of an instruction in this block (or size() if absent). */
    std::size_t
    indexOf(const Instruction *inst) const
    {
        for (std::size_t i = 0; i < insts.size(); i++) {
            if (insts[i].get() == inst)
                return i;
        }
        return insts.size();
    }

    /** Remove (and destroy) the instruction at @p index. */
    void
    removeAt(std::size_t index)
    {
        insts.erase(insts.begin() + static_cast<std::ptrdiff_t>(index));
    }

    /** Successor blocks from the terminator. */
    std::vector<BasicBlock *>
    successors() const
    {
        std::vector<BasicBlock *> out;
        const Instruction *term = terminator();
        if (!term)
            return out;
        if (term->succ0)
            out.push_back(term->succ0);
        if (term->succ1)
            out.push_back(term->succ1);
        return out;
    }

  private:
    std::string _name;
    Function *_parent;
    std::vector<std::unique_ptr<Instruction>> insts;
};

} // namespace tfm::ir

#endif // TRACKFM_IR_BASIC_BLOCK_HH
