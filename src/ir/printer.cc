#include "printer.hh"

#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace tfm::ir
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Alloca:
        return "alloca";
      case Opcode::Load:
        return "load";
      case Opcode::Store:
        return "store";
      case Opcode::Gep:
        return "gep";
      case Opcode::Add:
        return "add";
      case Opcode::Sub:
        return "sub";
      case Opcode::Mul:
        return "mul";
      case Opcode::SDiv:
        return "sdiv";
      case Opcode::SRem:
        return "srem";
      case Opcode::And:
        return "and";
      case Opcode::Or:
        return "or";
      case Opcode::Xor:
        return "xor";
      case Opcode::Shl:
        return "shl";
      case Opcode::LShr:
        return "lshr";
      case Opcode::FAdd:
        return "fadd";
      case Opcode::FSub:
        return "fsub";
      case Opcode::FMul:
        return "fmul";
      case Opcode::FDiv:
        return "fdiv";
      case Opcode::ICmpEq:
        return "icmp.eq";
      case Opcode::ICmpNe:
        return "icmp.ne";
      case Opcode::ICmpSlt:
        return "icmp.slt";
      case Opcode::ICmpSle:
        return "icmp.sle";
      case Opcode::ICmpSgt:
        return "icmp.sgt";
      case Opcode::ICmpSge:
        return "icmp.sge";
      case Opcode::FCmpOlt:
        return "fcmp.olt";
      case Opcode::Zext:
        return "zext";
      case Opcode::Trunc:
        return "trunc";
      case Opcode::PtrToInt:
        return "ptrtoint";
      case Opcode::IntToPtr:
        return "inttoptr";
      case Opcode::SIToFP:
        return "sitofp";
      case Opcode::FPToSI:
        return "fptosi";
      case Opcode::Br:
        return "br";
      case Opcode::CondBr:
        return "condbr";
      case Opcode::Phi:
        return "phi";
      case Opcode::Call:
        return "call";
      case Opcode::Ret:
        return "ret";
      case Opcode::Guard:
        return "guard";
      case Opcode::GuardReval:
        return "guard.reval";
      case Opcode::ChunkBegin:
        return "chunk.begin";
      case Opcode::ChunkAccess:
        return "chunk.access";
      case Opcode::Prefetch:
        return "prefetch";
    }
    return "?";
}

namespace
{

std::string
valueRef(const Value *value)
{
    TFM_ASSERT(value != nullptr, "printing a null operand");
    if (value->isConstant()) {
        const auto *constant = static_cast<const Constant *>(value);
        if (constant->type() == Type::F64) {
            std::ostringstream os;
            os << "f" << constant->floatValue();
            return os.str();
        }
        return std::to_string(constant->intValue());
    }
    return "%" + value->name();
}

void
printInstruction(const Instruction &inst, std::ostream &os)
{
    os << "  ";
    if (inst.type() != Type::Void && !inst.name().empty())
        os << "%" << inst.name() << " = ";
    os << opcodeName(inst.op());

    switch (inst.op()) {
      case Opcode::Alloca:
        os << " " << inst.imm;
        break;
      case Opcode::Load:
        os << " " << typeName(inst.type()) << ", "
           << valueRef(inst.operand(0));
        break;
      case Opcode::Store:
        os << " " << valueRef(inst.operand(0)) << ", "
           << valueRef(inst.operand(1));
        break;
      case Opcode::Gep:
        os << " " << valueRef(inst.operand(0)) << ", "
           << valueRef(inst.operand(1)) << ", " << inst.imm;
        break;
      case Opcode::Phi: {
        os << " " << typeName(inst.type());
        for (const auto &[value, block] : inst.incoming()) {
            os << " [ " << valueRef(value) << ", " << block->name()
               << " ]";
        }
        break;
      }
      case Opcode::Br:
        os << " " << inst.succ0->name();
        break;
      case Opcode::CondBr:
        os << " " << valueRef(inst.operand(0)) << ", "
           << inst.succ0->name() << ", " << inst.succ1->name();
        break;
      case Opcode::Call: {
        os << " " << typeName(inst.type()) << " @" << inst.callee << "(";
        for (std::size_t i = 0; i < inst.numOperands(); i++) {
            if (i)
                os << ", ";
            os << valueRef(inst.operand(i));
        }
        os << ")";
        break;
      }
      case Opcode::Ret:
        if (inst.numOperands() > 0)
            os << " " << valueRef(inst.operand(0));
        break;
      case Opcode::Guard:
        os << (inst.isWrite ? ".w" : ".r") << " "
           << valueRef(inst.operand(0));
        if (inst.armsEpoch)
            os << ", epoch";
        break;
      case Opcode::GuardReval:
        os << (inst.isWrite ? ".w" : ".r") << " "
           << valueRef(inst.operand(0)) << ", "
           << valueRef(inst.operand(1));
        break;
      case Opcode::ChunkBegin:
        os << " " << valueRef(inst.operand(0)) << ", " << inst.imm;
        break;
      case Opcode::ChunkAccess:
        os << (inst.isWrite ? ".w" : ".r") << " "
           << valueRef(inst.operand(0)) << ", "
           << valueRef(inst.operand(1));
        break;
      case Opcode::Prefetch:
        os << " " << valueRef(inst.operand(0)) << ", " << inst.imm;
        break;
      case Opcode::Zext:
      case Opcode::Trunc:
      case Opcode::PtrToInt:
      case Opcode::IntToPtr:
      case Opcode::SIToFP:
      case Opcode::FPToSI:
        os << " " << valueRef(inst.operand(0)) << " to "
           << typeName(inst.type());
        break;
      default:
        // Binary operations.
        for (std::size_t i = 0; i < inst.numOperands(); i++)
            os << (i ? ", " : " ") << valueRef(inst.operand(i));
        break;
    }
    os << "\n";
}

} // anonymous namespace

void
printFunction(const Function &function, std::ostream &os)
{
    os << "func @" << function.name() << "(";
    for (std::size_t i = 0; i < function.arguments().size(); i++) {
        const auto &arg = function.arguments()[i];
        if (i)
            os << ", ";
        os << "%" << arg->name() << ": " << typeName(arg->type());
    }
    os << ") -> " << typeName(function.returnType()) << " {\n";
    for (const auto &block : function.basicBlocks()) {
        os << block->name() << ":\n";
        for (const auto &inst : block->instructions())
            printInstruction(*inst, os);
    }
    os << "}\n";
}

void
printModule(const Module &module, std::ostream &os)
{
    bool first = true;
    for (const auto &function : module.allFunctions()) {
        if (!first)
            os << "\n";
        first = false;
        printFunction(*function, os);
    }
}

std::string
moduleToString(const Module &module)
{
    std::ostringstream os;
    printModule(module, os);
    return os.str();
}

} // namespace tfm::ir
