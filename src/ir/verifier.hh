/**
 * @file
 * Structural verifier for IR modules; run after parsing and after every
 * transformation pass in debug flows.
 */

#ifndef TRACKFM_IR_VERIFIER_HH
#define TRACKFM_IR_VERIFIER_HH

#include <string>

#include "function.hh"

namespace tfm::ir
{

/**
 * Check module invariants:
 *  - every block ends in exactly one terminator (and only one);
 *  - phis appear only at the start of a block and their incoming
 *    blocks are actual predecessors;
 *  - operands are non-null;
 *  - branch targets belong to the same function.
 *
 * @return empty string when valid, else a diagnostic.
 */
std::string verifyModule(const Module &module);

/** Verify one function. */
std::string verifyFunction(const Function &function);

} // namespace tfm::ir

#endif // TRACKFM_IR_VERIFIER_HH
