/**
 * @file
 * Textual IR printer (inverse of the parser).
 */

#ifndef TRACKFM_IR_PRINTER_HH
#define TRACKFM_IR_PRINTER_HH

#include <iosfwd>
#include <string>

#include "function.hh"

namespace tfm::ir
{

/** Print a whole module in parseable textual form. */
void printModule(const Module &module, std::ostream &os);

/** Print one function. */
void printFunction(const Function &function, std::ostream &os);

/** Render a module to a string (round-trip tests). */
std::string moduleToString(const Module &module);

} // namespace tfm::ir

#endif // TRACKFM_IR_PRINTER_HH
