/**
 * @file
 * Scalar type system for the TrackFM compiler IR.
 *
 * The IR is deliberately small — the subset of LLVM types the TrackFM
 * passes actually reason about: integers, one float type, and opaque
 * pointers (middle-end pointer rewriting never needs pointee types).
 */

#ifndef TRACKFM_IR_TYPE_HH
#define TRACKFM_IR_TYPE_HH

#include <cstdint>

namespace tfm::ir
{

/** Scalar IR types. */
enum class Type : std::uint8_t
{
    Void,
    I1,
    I8,
    I16,
    I32,
    I64,
    F64,
    Ptr
};

/** Size in bytes when stored in memory. */
constexpr std::uint32_t
sizeOf(Type type)
{
    switch (type) {
      case Type::Void:
        return 0;
      case Type::I1:
      case Type::I8:
        return 1;
      case Type::I16:
        return 2;
      case Type::I32:
        return 4;
      case Type::I64:
      case Type::F64:
      case Type::Ptr:
        return 8;
    }
    return 0;
}

/** Textual name used by the parser and printer. */
const char *typeName(Type type);

/** Parse a type name; returns false on failure. */
bool typeFromName(const char *name, Type &out);

constexpr bool
isInteger(Type type)
{
    return type == Type::I1 || type == Type::I8 || type == Type::I16 ||
           type == Type::I32 || type == Type::I64;
}

} // namespace tfm::ir

#endif // TRACKFM_IR_TYPE_HH
