/**
 * @file
 * Convenience builder for constructing IR programmatically (tests,
 * examples, and the transformation passes all use it).
 */

#ifndef TRACKFM_IR_BUILDER_HH
#define TRACKFM_IR_BUILDER_HH

#include <memory>
#include <string>

#include "function.hh"

namespace tfm::ir
{

/** Appends instructions to a current basic block. */
class IRBuilder
{
  public:
    explicit IRBuilder(Function *function)
        : fn(function), block(function->entry())
    {}

    void setBlock(BasicBlock *basic_block) { block = basic_block; }
    BasicBlock *currentBlock() const { return block; }
    Function *function() const { return fn; }

    Constant *
    constI64(std::int64_t value)
    {
        return fn->makeConstant(Type::I64, value);
    }

    Constant *constF64(double value) { return fn->makeFloatConstant(value); }

    Instruction *
    alloca_(std::int64_t bytes, const std::string &name)
    {
        auto inst = make(Opcode::Alloca, Type::Ptr, name);
        inst->imm = bytes;
        return append(std::move(inst));
    }

    Instruction *
    load(Type type, Value *ptr, const std::string &name)
    {
        auto inst = make(Opcode::Load, type, name);
        inst->addOperand(ptr);
        return append(std::move(inst));
    }

    Instruction *
    store(Value *value, Value *ptr)
    {
        auto inst = make(Opcode::Store, Type::Void, "");
        inst->addOperand(value);
        inst->addOperand(ptr);
        return append(std::move(inst));
    }

    Instruction *
    gep(Value *base, Value *index, std::int64_t stride,
        const std::string &name)
    {
        auto inst = make(Opcode::Gep, Type::Ptr, name);
        inst->addOperand(base);
        inst->addOperand(index);
        inst->imm = stride;
        return append(std::move(inst));
    }

    Instruction *
    binary(Opcode op, Value *lhs, Value *rhs, const std::string &name)
    {
        Type type = lhs->type();
        if (op >= Opcode::ICmpEq && op <= Opcode::FCmpOlt)
            type = Type::I1;
        auto inst = make(op, type, name);
        inst->addOperand(lhs);
        inst->addOperand(rhs);
        return append(std::move(inst));
    }

    Instruction *
    cast(Opcode op, Value *value, Type to, const std::string &name)
    {
        auto inst = make(op, to, name);
        inst->addOperand(value);
        return append(std::move(inst));
    }

    Instruction *
    phi(Type type, const std::string &name)
    {
        return append(make(Opcode::Phi, type, name));
    }

    Instruction *
    call(const std::string &callee, Type return_type,
         std::vector<Value *> call_args, const std::string &name)
    {
        auto inst = make(Opcode::Call, return_type, name);
        inst->callee = callee;
        for (Value *arg : call_args)
            inst->addOperand(arg);
        return append(std::move(inst));
    }

    Instruction *
    br(BasicBlock *target)
    {
        auto inst = make(Opcode::Br, Type::Void, "");
        inst->succ0 = target;
        return append(std::move(inst));
    }

    Instruction *
    condBr(Value *condition, BasicBlock *if_true, BasicBlock *if_false)
    {
        auto inst = make(Opcode::CondBr, Type::Void, "");
        inst->addOperand(condition);
        inst->succ0 = if_true;
        inst->succ1 = if_false;
        return append(std::move(inst));
    }

    Instruction *
    ret(Value *value = nullptr)
    {
        auto inst = make(Opcode::Ret, Type::Void, "");
        if (value)
            inst->addOperand(value);
        return append(std::move(inst));
    }

    /** Create an unattached instruction (for insertion by passes). */
    static std::unique_ptr<Instruction>
    make(Opcode op, Type type, const std::string &name)
    {
        return std::make_unique<Instruction>(op, type, name);
    }

  private:
    Instruction *
    append(std::unique_ptr<Instruction> inst)
    {
        return block->append(std::move(inst));
    }

    Function *fn;
    BasicBlock *block;
};

} // namespace tfm::ir

#endif // TRACKFM_IR_BUILDER_HH
