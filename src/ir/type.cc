#include "type.hh"

#include <cstring>

namespace tfm::ir
{

const char *
typeName(Type type)
{
    switch (type) {
      case Type::Void:
        return "void";
      case Type::I1:
        return "i1";
      case Type::I8:
        return "i8";
      case Type::I16:
        return "i16";
      case Type::I32:
        return "i32";
      case Type::I64:
        return "i64";
      case Type::F64:
        return "f64";
      case Type::Ptr:
        return "ptr";
    }
    return "?";
}

bool
typeFromName(const char *name, Type &out)
{
    static const struct
    {
        const char *name;
        Type type;
    } table[] = {
        {"void", Type::Void}, {"i1", Type::I1},   {"i8", Type::I8},
        {"i16", Type::I16},   {"i32", Type::I32}, {"i64", Type::I64},
        {"f64", Type::F64},   {"ptr", Type::Ptr},
    };
    for (const auto &entry : table) {
        if (std::strcmp(name, entry.name) == 0) {
            out = entry.type;
            return true;
        }
    }
    return false;
}

} // namespace tfm::ir
