#include "parser.hh"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

namespace tfm::ir
{

namespace
{

/** Whitespace/comment-aware cursor over one line. */
class LineCursor
{
  public:
    explicit LineCursor(const std::string &line) : text(line) {}

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            pos++;
        }
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos >= text.size() || text[pos] == ';';
    }

    /** Consume a literal string if present. */
    bool
    eat(const std::string &literal)
    {
        skipSpace();
        if (text.compare(pos, literal.size(), literal) == 0) {
            pos += literal.size();
            return true;
        }
        return false;
    }

    char
    peek()
    {
        skipSpace();
        return pos < text.size() ? text[pos] : '\0';
    }

    /** Read an identifier [A-Za-z0-9_.]+ . */
    std::string
    ident()
    {
        skipSpace();
        std::size_t start = pos;
        while (pos < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '_' || text[pos] == '.')) {
            pos++;
        }
        return text.substr(start, pos - start);
    }

    /** Read a possibly signed integer or f-prefixed float literal. */
    std::string
    number()
    {
        skipSpace();
        std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == 'f'))
            pos++;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == '-' ||
                text[pos] == 'e' || text[pos] == '+')) {
            pos++;
        }
        return text.substr(start, pos - start);
    }

    /** Current offset into the line (for column reporting). */
    std::size_t position() const { return pos; }

  private:
    const std::string &text;
    std::size_t pos = 0;
};

/** Parser state for one module. */
class ModuleParser
{
  public:
    explicit ModuleParser(const std::string &text) : input(text) {}

    ParseResult
    run()
    {
        auto module = std::make_unique<Module>();
        std::istringstream stream(input);
        std::string line;
        while (std::getline(stream, line)) {
            lineNo++;
            LineCursor cursor(line);
            if (cursor.atEnd())
                continue;
            if (cursor.eat("func")) {
                if (!parseFunctionHeader(cursor, *module))
                    return fail();
                continue;
            }
            if (cursor.eat("}")) {
                if (!finishFunction())
                    return fail();
                continue;
            }
            if (!fn) {
                error = "statement outside a function";
                return fail();
            }
            // Block label: "name:" with nothing else before the colon.
            {
                LineCursor probe(line);
                const std::string label = probe.ident();
                if (!label.empty() && probe.eat(":")) {
                    block = getBlock(label);
                    declaredBlocks.push_back(block);
                    continue;
                }
            }
            if (!block) {
                error = "instruction before any block label";
                return fail();
            }
            if (!parseInstruction(cursor))
                return fail();
        }
        if (fn) {
            error = "unterminated function (missing '}')";
            return fail();
        }
        ParseResult result;
        result.module = std::move(module);
        return result;
    }

  private:
    ParseResult
    fail()
    {
        ParseResult result;
        result.error = error.empty() ? "parse error" : error;
        result.errorLine = lineNo;
        return result;
    }

    bool
    parseFunctionHeader(LineCursor &cursor, Module &module)
    {
        if (!cursor.eat("@")) {
            error = "expected '@' after func";
            return false;
        }
        const std::string name = cursor.ident();
        if (!cursor.eat("(")) {
            error = "expected '(' in function header";
            return false;
        }
        struct Arg
        {
            std::string name;
            Type type;
        };
        std::vector<Arg> parsed_args;
        if (!cursor.eat(")")) {
            while (true) {
                if (!cursor.eat("%")) {
                    error = "expected '%' argument name";
                    return false;
                }
                Arg arg;
                arg.name = cursor.ident();
                if (!cursor.eat(":")) {
                    error = "expected ':' after argument name";
                    return false;
                }
                if (!typeFromName(cursor.ident().c_str(), arg.type)) {
                    error = "unknown argument type";
                    return false;
                }
                parsed_args.push_back(arg);
                if (cursor.eat(")"))
                    break;
                if (!cursor.eat(",")) {
                    error = "expected ',' or ')' in argument list";
                    return false;
                }
            }
        }
        if (!cursor.eat("->")) {
            error = "expected '->' before return type";
            return false;
        }
        Type ret_type;
        if (!typeFromName(cursor.ident().c_str(), ret_type)) {
            error = "unknown return type";
            return false;
        }
        if (!cursor.eat("{")) {
            error = "expected '{' to open function body";
            return false;
        }
        fn = module.addFunction(name, ret_type);
        block = nullptr;
        values.clear();
        blocks.clear();
        declaredBlocks.clear();
        fixups.clear();
        for (const Arg &arg : parsed_args)
            values[arg.name] = fn->addArgument(arg.type, arg.name);
        return true;
    }

    bool
    finishFunction()
    {
        // Resolve forward value references (phis and cross-block uses).
        for (const auto &fixup : fixups) {
            auto it = values.find(fixup.name);
            if (it == values.end()) {
                error = "undefined value %" + fixup.name;
                return false;
            }
            if (fixup.phiIncoming >= 0) {
                fixup.inst->incoming()[static_cast<std::size_t>(
                                           fixup.phiIncoming)]
                    .first = it->second;
            } else {
                fixup.inst->setOperand(
                    static_cast<std::size_t>(fixup.operandIndex),
                    it->second);
            }
        }
        // Every referenced block must have been declared.
        for (const auto &[name, referenced] : blocks) {
            bool declared = false;
            for (const BasicBlock *candidate : declaredBlocks)
                declared |= (candidate == referenced);
            if (!declared) {
                error = "undefined block label " + name;
                return false;
            }
        }
        fn = nullptr;
        block = nullptr;
        return true;
    }

    BasicBlock *
    getBlock(const std::string &name)
    {
        auto it = blocks.find(name);
        if (it != blocks.end())
            return it->second;
        BasicBlock *fresh = fn->addBlock(name);
        blocks[name] = fresh;
        return fresh;
    }

    /**
     * Parse a value reference. Returns nullptr for a forward reference
     * (a fixup is recorded against @p inst / @p operand_index, or as a
     * phi incoming when @p phi_incoming >= 0).
     */
    Value *
    parseValue(LineCursor &cursor, Instruction *inst, int operand_index,
               int phi_incoming = -1)
    {
        if (cursor.eat("%")) {
            const std::string name = cursor.ident();
            auto it = values.find(name);
            if (it != values.end())
                return it->second;
            fixups.push_back({inst, operand_index, phi_incoming, name});
            return nullptr;
        }
        const std::string literal = cursor.number();
        if (literal.empty()) {
            error = "expected value";
            return nullptr;
        }
        if (literal[0] == 'f') {
            return fn->makeFloatConstant(
                std::strtod(literal.c_str() + 1, nullptr));
        }
        return fn->makeConstant(
            Type::I64,
            static_cast<std::int64_t>(
                std::strtoll(literal.c_str(), nullptr, 10)));
    }

    /** Add an operand, registering a fixup when forward-referenced. */
    bool
    addOperand(LineCursor &cursor, Instruction *inst)
    {
        const int index = static_cast<int>(inst->numOperands());
        inst->addOperand(nullptr);
        Value *value = parseValue(cursor, inst, index);
        if (value)
            inst->setOperand(static_cast<std::size_t>(index), value);
        else if (!error.empty())
            return false;
        return true;
    }

    bool
    parseInstruction(LineCursor &cursor)
    {
        cursor.skipSpace();
        const int column = static_cast<int>(cursor.position()) + 1;
        std::string result_name;
        // Look ahead for "%name =".
        if (cursor.peek() == '%') {
            cursor.eat("%");
            result_name = cursor.ident();
            if (!cursor.eat("=")) {
                error = "expected '=' after result name";
                return false;
            }
        }
        const std::string mnemonic = cursor.ident();
        // Guard / chunk.access carry a .r/.w suffix inside the ident.
        std::string op_name = mnemonic;
        bool is_write = false;
        if (op_name == "guard.r" || op_name == "guard.w" ||
            op_name == "guard.reval.r" || op_name == "guard.reval.w" ||
            op_name == "chunk.access.r" || op_name == "chunk.access.w") {
            is_write = op_name.back() == 'w';
            op_name = op_name.substr(0, op_name.size() - 2);
        }

        Opcode op;
        if (!opcodeFromName(op_name, op)) {
            error = "unknown opcode '" + mnemonic + "'";
            return false;
        }

        Type type = Type::Void;
        auto inst = std::make_unique<Instruction>(op, type, result_name);
        inst->isWrite = is_write;
        Instruction *raw = inst.get();
        raw->debugLine = lineNo;
        raw->debugCol = column;

        switch (op) {
          case Opcode::Alloca:
            raw->imm = std::strtoll(cursor.number().c_str(), nullptr, 10);
            setType(raw, Type::Ptr);
            break;
          case Opcode::Load: {
            Type loaded;
            if (!typeFromName(cursor.ident().c_str(), loaded)) {
                error = "expected type after load";
                return false;
            }
            if (!cursor.eat(",")) {
                error = "expected ',' in load";
                return false;
            }
            if (!addOperand(cursor, raw))
                return false;
            setType(raw, loaded);
            break;
          }
          case Opcode::Store:
            if (!addOperand(cursor, raw))
                return false;
            if (!cursor.eat(",")) {
                error = "expected ',' in store";
                return false;
            }
            if (!addOperand(cursor, raw))
                return false;
            break;
          case Opcode::Gep:
            if (!addOperand(cursor, raw))
                return false;
            if (!cursor.eat(",")) {
                error = "expected ',' in gep";
                return false;
            }
            if (!addOperand(cursor, raw))
                return false;
            if (!cursor.eat(",")) {
                error = "expected stride in gep";
                return false;
            }
            raw->imm = std::strtoll(cursor.number().c_str(), nullptr, 10);
            setType(raw, Type::Ptr);
            break;
          case Opcode::Phi: {
            Type phi_type;
            if (!typeFromName(cursor.ident().c_str(), phi_type)) {
                error = "expected type after phi";
                return false;
            }
            setType(raw, phi_type);
            while (cursor.eat("[")) {
                const int incoming_index =
                    static_cast<int>(raw->incoming().size());
                raw->incoming().emplace_back(nullptr, nullptr);
                Value *value =
                    parseValue(cursor, raw, -1, incoming_index);
                if (!value && !error.empty())
                    return false;
                if (value) {
                    raw->incoming()[static_cast<std::size_t>(
                                        incoming_index)]
                        .first = value;
                }
                if (!cursor.eat(",")) {
                    error = "expected ',' in phi incoming";
                    return false;
                }
                raw->incoming()[static_cast<std::size_t>(incoming_index)]
                    .second = getBlock(cursor.ident());
                if (!cursor.eat("]")) {
                    error = "expected ']' in phi incoming";
                    return false;
                }
                cursor.eat(","); // optional separator between entries
            }
            break;
          }
          case Opcode::Br:
            raw->succ0 = getBlock(cursor.ident());
            break;
          case Opcode::CondBr:
            if (!addOperand(cursor, raw))
                return false;
            if (!cursor.eat(",")) {
                error = "expected ',' in condbr";
                return false;
            }
            raw->succ0 = getBlock(cursor.ident());
            if (!cursor.eat(",")) {
                error = "expected second target in condbr";
                return false;
            }
            raw->succ1 = getBlock(cursor.ident());
            break;
          case Opcode::Call: {
            Type call_type;
            if (!typeFromName(cursor.ident().c_str(), call_type)) {
                error = "expected return type after call";
                return false;
            }
            setType(raw, call_type);
            if (!cursor.eat("@")) {
                error = "expected '@callee'";
                return false;
            }
            raw->callee = cursor.ident();
            if (!cursor.eat("(")) {
                error = "expected '(' in call";
                return false;
            }
            if (!cursor.eat(")")) {
                while (true) {
                    if (!addOperand(cursor, raw))
                        return false;
                    if (cursor.eat(")"))
                        break;
                    if (!cursor.eat(",")) {
                        error = "expected ',' or ')' in call";
                        return false;
                    }
                }
            }
            break;
          }
          case Opcode::Ret:
            if (!cursor.atEnd()) {
                if (!addOperand(cursor, raw))
                    return false;
            }
            break;
          case Opcode::Guard:
            if (!addOperand(cursor, raw))
                return false;
            // Optional ", epoch" marks a hoisted (epoch-arming) guard.
            if (cursor.eat(",")) {
                if (cursor.ident() != "epoch") {
                    error = "expected 'epoch' after ',' in guard";
                    return false;
                }
                raw->armsEpoch = true;
            }
            setType(raw, Type::Ptr);
            break;
          case Opcode::GuardReval:
            if (!addOperand(cursor, raw))
                return false;
            if (!cursor.eat(",")) {
                error = "expected ',' in guard.reval";
                return false;
            }
            if (!addOperand(cursor, raw))
                return false;
            setType(raw, Type::Ptr);
            break;
          case Opcode::ChunkBegin:
            if (!addOperand(cursor, raw))
                return false;
            if (!cursor.eat(",")) {
                error = "expected element size in chunk.begin";
                return false;
            }
            raw->imm = std::strtoll(cursor.number().c_str(), nullptr, 10);
            setType(raw, Type::Ptr);
            break;
          case Opcode::ChunkAccess:
            if (!addOperand(cursor, raw))
                return false;
            if (!cursor.eat(",")) {
                error = "expected ',' in chunk.access";
                return false;
            }
            if (!addOperand(cursor, raw))
                return false;
            setType(raw, Type::Ptr);
            break;
          case Opcode::Prefetch:
            if (!addOperand(cursor, raw))
                return false;
            if (!cursor.eat(",")) {
                error = "expected depth in prefetch";
                return false;
            }
            raw->imm = std::strtoll(cursor.number().c_str(), nullptr, 10);
            break;
          case Opcode::Zext:
          case Opcode::Trunc:
          case Opcode::PtrToInt:
          case Opcode::IntToPtr:
          case Opcode::SIToFP:
          case Opcode::FPToSI: {
            if (!addOperand(cursor, raw))
                return false;
            if (!cursor.eat("to")) {
                error = "expected 'to' in cast";
                return false;
            }
            Type to;
            if (!typeFromName(cursor.ident().c_str(), to)) {
                error = "expected type in cast";
                return false;
            }
            setType(raw, to);
            break;
          }
          default: {
            // Binary operations: "op lhs, rhs".
            if (!addOperand(cursor, raw))
                return false;
            if (!cursor.eat(",")) {
                error = "expected ',' in binary op";
                return false;
            }
            if (!addOperand(cursor, raw))
                return false;
            const bool is_compare =
                op >= Opcode::ICmpEq && op <= Opcode::FCmpOlt;
            const bool is_float = op >= Opcode::FAdd && op <= Opcode::FDiv;
            setType(raw, is_compare ? Type::I1
                                    : (is_float ? Type::F64 : Type::I64));
            break;
          }
        }

        if (!result_name.empty())
            values[result_name] = raw;
        block->append(std::move(inst));
        return true;
    }

    static void
    setType(Instruction *inst, Type type)
    {
        inst->setType(type);
    }

    static bool
    opcodeFromName(const std::string &name, Opcode &out)
    {
        static const struct
        {
            const char *name;
            Opcode op;
        } table[] = {
            {"alloca", Opcode::Alloca},
            {"load", Opcode::Load},
            {"store", Opcode::Store},
            {"gep", Opcode::Gep},
            {"add", Opcode::Add},
            {"sub", Opcode::Sub},
            {"mul", Opcode::Mul},
            {"sdiv", Opcode::SDiv},
            {"srem", Opcode::SRem},
            {"and", Opcode::And},
            {"or", Opcode::Or},
            {"xor", Opcode::Xor},
            {"shl", Opcode::Shl},
            {"lshr", Opcode::LShr},
            {"fadd", Opcode::FAdd},
            {"fsub", Opcode::FSub},
            {"fmul", Opcode::FMul},
            {"fdiv", Opcode::FDiv},
            {"icmp.eq", Opcode::ICmpEq},
            {"icmp.ne", Opcode::ICmpNe},
            {"icmp.slt", Opcode::ICmpSlt},
            {"icmp.sle", Opcode::ICmpSle},
            {"icmp.sgt", Opcode::ICmpSgt},
            {"icmp.sge", Opcode::ICmpSge},
            {"fcmp.olt", Opcode::FCmpOlt},
            {"zext", Opcode::Zext},
            {"trunc", Opcode::Trunc},
            {"ptrtoint", Opcode::PtrToInt},
            {"inttoptr", Opcode::IntToPtr},
            {"sitofp", Opcode::SIToFP},
            {"fptosi", Opcode::FPToSI},
            {"br", Opcode::Br},
            {"condbr", Opcode::CondBr},
            {"phi", Opcode::Phi},
            {"call", Opcode::Call},
            {"ret", Opcode::Ret},
            {"guard", Opcode::Guard},
            {"guard.reval", Opcode::GuardReval},
            {"chunk.begin", Opcode::ChunkBegin},
            {"chunk.access", Opcode::ChunkAccess},
            {"prefetch", Opcode::Prefetch},
        };
        for (const auto &entry : table) {
            if (name == entry.name) {
                out = entry.op;
                return true;
            }
        }
        return false;
    }

    const std::string &input;
    int lineNo = 0;
    std::string error;
    Function *fn = nullptr;
    BasicBlock *block = nullptr;
    std::map<std::string, Value *> values;
    std::map<std::string, BasicBlock *> blocks;
    std::vector<BasicBlock *> declaredBlocks;

    struct Fixup
    {
        Instruction *inst;
        int operandIndex;
        int phiIncoming;
        std::string name;
    };
    std::vector<Fixup> fixups;
};

} // anonymous namespace

ParseResult
parseModule(const std::string &text)
{
    ModuleParser parser(text);
    return parser.run();
}

} // namespace tfm::ir
