/**
 * @file
 * IR instructions, including the TrackFM pseudo-instructions that the
 * transformation passes introduce (guard, chunk.begin, chunk.access,
 * prefetch) — the IR-level counterparts of Figures 4 and 5.
 */

#ifndef TRACKFM_IR_INSTRUCTION_HH
#define TRACKFM_IR_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "value.hh"

namespace tfm::ir
{

class BasicBlock;

/** Instruction opcodes. */
enum class Opcode : std::uint8_t
{
    // Memory
    Alloca, ///< stack allocation; imm = bytes
    Load,   ///< result = *(type *)op0
    Store,  ///< *(op1 type *) = op0
    Gep,    ///< result = op0 + op1 * imm (imm = element stride bytes)

    // Integer arithmetic / bitwise
    Add,
    Sub,
    Mul,
    SDiv,
    SRem,
    And,
    Or,
    Xor,
    Shl,
    LShr,

    // Floating point
    FAdd,
    FSub,
    FMul,
    FDiv,

    // Comparisons (integer, signed)
    ICmpEq,
    ICmpNe,
    ICmpSlt,
    ICmpSle,
    ICmpSgt,
    ICmpSge,
    // Floating compare
    FCmpOlt,

    // Conversions
    Zext,
    Trunc,
    PtrToInt,
    IntToPtr,
    SIToFP,
    FPToSI,

    // Control flow
    Br,     ///< unconditional; succ0
    CondBr, ///< op0 ? succ0 : succ1
    Phi,
    Call,   ///< calleeName(operands...)
    Ret,    ///< optional op0

    // TrackFM pseudo-instructions (inserted by passes)
    Guard,       ///< result ptr = guard(op0); isWrite selects r/w path
    GuardReval,  ///< result ptr = guard.reval(op0 arming guard, op1 ptr)
    ChunkBegin,  ///< result cursor = chunk.begin(op0 base); imm = elem size
    ChunkAccess, ///< result ptr = chunk.access(op0 cursor, op1 rawptr)
    Prefetch     ///< prefetch(op0 ptr); imm = depth
};

/** Does this opcode terminate a basic block? */
constexpr bool
isTerminator(Opcode op)
{
    return op == Opcode::Br || op == Opcode::CondBr || op == Opcode::Ret;
}

/** Is this a pure (side-effect-free, dead-code-removable) opcode? */
constexpr bool
isPure(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::SDiv:
      case Opcode::SRem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::ICmpEq:
      case Opcode::ICmpNe:
      case Opcode::ICmpSlt:
      case Opcode::ICmpSle:
      case Opcode::ICmpSgt:
      case Opcode::ICmpSge:
      case Opcode::FCmpOlt:
      case Opcode::Zext:
      case Opcode::Trunc:
      case Opcode::PtrToInt:
      case Opcode::IntToPtr:
      case Opcode::SIToFP:
      case Opcode::FPToSI:
      case Opcode::Gep:
      case Opcode::Phi:
        return true;
      default:
        return false;
    }
}

/**
 * Is operand @p index of @p op a token reference — an instruction
 * consumed by identity (the arming guard of a guard.reval, the
 * chunk.begin cursor of a chunk.access) rather than by value? Token
 * operands are never read through the value table: the interpreter's
 * reference engine casts them directly and the bytecode compiler
 * resolves them to frame state indices at compile time.
 */
constexpr bool
isTokenOperand(Opcode op, std::size_t index)
{
    return (op == Opcode::GuardReval || op == Opcode::ChunkAccess) &&
           index == 0;
}

/** Textual mnemonic. */
const char *opcodeName(Opcode op);

/**
 * A single IR instruction.
 *
 * One concrete class covers all opcodes (operand list + a small set of
 * opcode-specific fields); this keeps pass code simple at the cost of a
 * few unused fields per instruction.
 */
class Instruction : public Value
{
  public:
    Instruction(Opcode op, Type type, std::string name)
        : Value(Kind::Instruction, type, std::move(name)), _op(op)
    {}

    Opcode op() const { return _op; }

    /** @name Operands
     * @{ */
    const std::vector<Value *> &operands() const { return _operands; }
    Value *operand(std::size_t i) const { return _operands[i]; }
    std::size_t numOperands() const { return _operands.size(); }
    void addOperand(Value *value) { _operands.push_back(value); }
    void setOperand(std::size_t i, Value *value) { _operands[i] = value; }

    /** Replace every use of @p from in this instruction with @p to. */
    void
    replaceUsesOf(Value *from, Value *to)
    {
        for (auto &operand : _operands) {
            if (operand == from)
                operand = to;
        }
        for (auto &[value, block] : _incoming) {
            if (value == from)
                value = to;
        }
    }
    /** @} */

    /** @name Opcode-specific fields
     * @{ */
    /// Gep stride, alloca size, chunk element size, prefetch depth.
    std::int64_t imm = 0;
    /// Call target.
    std::string callee;
    /// Branch successors.
    BasicBlock *succ0 = nullptr;
    BasicBlock *succ1 = nullptr;
    /// Phi incoming (value, predecessor) pairs.
    std::vector<std::pair<Value *, BasicBlock *>> &incoming()
    {
        return _incoming;
    }
    const std::vector<std::pair<Value *, BasicBlock *>> &
    incoming() const
    {
        return _incoming;
    }
    /// Guard/ChunkAccess: write access (store) vs read (load).
    bool isWrite = false;
    /** @} */

    /** @name Pass annotations
     * @{ */
    /// Set by GuardAnalysis on loads/stores that must be guarded.
    bool needsGuard = false;
    /// Guard only: records the eviction epoch after executing so a
    /// paired GuardReval can revalidate it (loop-invariant hoisting).
    bool armsEpoch = false;
    /** @} */

    /** @name Debug info
     * @{ */
    /// 1-based source position recorded by the textual-IR parser so
    /// verifier errors and safety diagnostics can point at the source
    /// line; 0 when the instruction was created by a pass.
    std::int32_t debugLine = 0;
    std::int32_t debugCol = 0;
    /** @} */

    BasicBlock *parent() const { return _parent; }
    void setParent(BasicBlock *block) { _parent = block; }

  private:
    Opcode _op;
    std::vector<Value *> _operands;
    std::vector<std::pair<Value *, BasicBlock *>> _incoming;
    BasicBlock *_parent = nullptr;
};

} // namespace tfm::ir

#endif // TRACKFM_IR_INSTRUCTION_HH
