/**
 * @file
 * Value hierarchy for the TrackFM compiler IR: constants, function
 * arguments, and instructions (defined in instruction.hh).
 */

#ifndef TRACKFM_IR_VALUE_HH
#define TRACKFM_IR_VALUE_HH

#include <cstdint>
#include <string>

#include "type.hh"

namespace tfm::ir
{

/** Base of everything that can appear as an operand. */
class Value
{
  public:
    enum class Kind : std::uint8_t
    {
        Constant,
        Argument,
        Instruction
    };

    Value(Kind kind, Type type, std::string name)
        : _kind(kind), _type(type), _name(std::move(name))
    {}

    virtual ~Value() = default;

    Kind kind() const { return _kind; }
    Type type() const { return _type; }
    const std::string &name() const { return _name; }
    void setName(std::string name) { _name = std::move(name); }

    /**
     * Re-type a value. Only the parser and type-refining passes use
     * this; the type of a value is otherwise fixed at construction.
     */
    void setType(Type type) { _type = type; }

    bool isConstant() const { return _kind == Kind::Constant; }
    bool isInstruction() const { return _kind == Kind::Instruction; }

  private:
    Kind _kind;
    Type _type;
    std::string _name;
};

/** Integer or floating literal. */
class Constant : public Value
{
  public:
    Constant(Type type, std::int64_t value)
        : Value(Kind::Constant, type, ""), ival(value), fval(0)
    {}

    Constant(double value)
        : Value(Kind::Constant, Type::F64, ""), ival(0), fval(value)
    {}

    std::int64_t intValue() const { return ival; }
    double floatValue() const { return fval; }

  private:
    std::int64_t ival;
    double fval;
};

/** Formal function parameter. */
class Argument : public Value
{
  public:
    Argument(Type type, std::string name, unsigned index)
        : Value(Kind::Argument, type, std::move(name)), _index(index)
    {}

    unsigned index() const { return _index; }

  private:
    unsigned _index;
};

} // namespace tfm::ir

#endif // TRACKFM_IR_VALUE_HH
