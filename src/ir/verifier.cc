#include "verifier.hh"

#include <map>
#include <set>

namespace tfm::ir
{

namespace
{

std::string
blockError(const Function &function, const BasicBlock &block,
           const std::string &message)
{
    return "function @" + function.name() + ", block " + block.name() +
           ": " + message;
}

} // anonymous namespace

std::string
verifyFunction(const Function &function)
{
    if (function.basicBlocks().empty())
        return "function @" + function.name() + " has no blocks";

    std::set<const BasicBlock *> owned;
    for (const auto &block : function.basicBlocks())
        owned.insert(block.get());

    // Predecessor map for phi checking.
    std::map<const BasicBlock *, std::set<const BasicBlock *>> preds;
    for (const auto &block : function.basicBlocks()) {
        for (const BasicBlock *succ : block->successors())
            preds[succ].insert(block.get());
    }

    for (const auto &block : function.basicBlocks()) {
        const auto &insts = block->instructions();
        if (insts.empty())
            return blockError(function, *block, "empty block");
        if (!block->terminator())
            return blockError(function, *block, "missing terminator");

        bool seen_non_phi = false;
        for (std::size_t i = 0; i < insts.size(); i++) {
            const Instruction &inst = *insts[i];
            if (isTerminator(inst.op()) && i + 1 != insts.size()) {
                return blockError(function, *block,
                                  "terminator before end of block");
            }
            if (inst.op() == Opcode::Phi) {
                if (seen_non_phi) {
                    return blockError(function, *block,
                                      "phi after non-phi instruction");
                }
                for (const auto &[value, incoming_block] :
                     inst.incoming()) {
                    if (!value || !incoming_block) {
                        return blockError(function, *block,
                                          "phi with null incoming");
                    }
                    if (!preds[block.get()].count(incoming_block)) {
                        return blockError(
                            function, *block,
                            "phi incoming from non-predecessor " +
                                incoming_block->name());
                    }
                }
            } else {
                seen_non_phi = true;
            }
            for (const Value *operand : inst.operands()) {
                if (!operand) {
                    return blockError(function, *block,
                                      "null operand in " +
                                          std::string(opcodeName(
                                              inst.op())));
                }
            }
            // Structural checks for the TrackFM pseudo-instructions: a
            // malformed pass rewrite should fail here, not as an
            // interpreter trap.
            switch (inst.op()) {
              case Opcode::Guard:
                if (inst.numOperands() != 1) {
                    return blockError(function, *block,
                                      "guard must have 1 operand");
                }
                break;
              case Opcode::GuardReval: {
                if (inst.numOperands() != 2) {
                    return blockError(function, *block,
                                      "guard.reval must have 2 operands");
                }
                const Value *armer = inst.operand(0);
                const auto *armer_inst =
                    armer->isInstruction()
                        ? static_cast<const Instruction *>(armer)
                        : nullptr;
                if (!armer_inst || armer_inst->op() != Opcode::Guard ||
                    !armer_inst->armsEpoch) {
                    return blockError(function, *block,
                                      "guard.reval operand 0 must be an "
                                      "epoch-arming guard");
                }
                break;
              }
              case Opcode::ChunkBegin:
                if (inst.numOperands() != 1) {
                    return blockError(function, *block,
                                      "chunk.begin must have 1 operand");
                }
                break;
              case Opcode::ChunkAccess: {
                if (inst.numOperands() != 2) {
                    return blockError(function, *block,
                                      "chunk.access must have 2 operands");
                }
                const Value *cursor = inst.operand(0);
                const auto *cursor_inst =
                    cursor->isInstruction()
                        ? static_cast<const Instruction *>(cursor)
                        : nullptr;
                if (!cursor_inst ||
                    cursor_inst->op() != Opcode::ChunkBegin) {
                    return blockError(function, *block,
                                      "chunk.access operand 0 must be a "
                                      "chunk.begin cursor");
                }
                break;
              }
              case Opcode::Prefetch:
                if (inst.numOperands() != 1) {
                    return blockError(function, *block,
                                      "prefetch must have 1 operand");
                }
                break;
              default:
                break;
            }
            if (inst.succ0 && !owned.count(inst.succ0)) {
                return blockError(function, *block,
                                  "branch to foreign block");
            }
            if (inst.succ1 && !owned.count(inst.succ1)) {
                return blockError(function, *block,
                                  "branch to foreign block");
            }
        }
    }
    return "";
}

std::string
verifyModule(const Module &module)
{
    for (const auto &function : module.allFunctions()) {
        const std::string error = verifyFunction(*function);
        if (!error.empty())
            return error;
    }
    return "";
}

} // namespace tfm::ir
