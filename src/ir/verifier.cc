#include "verifier.hh"

#include <map>
#include <set>

namespace tfm::ir
{

namespace
{

std::string
blockError(const Function &function, const BasicBlock &block,
           const std::string &message)
{
    return "function @" + function.name() + ", block " + block.name() +
           ": " + message;
}

/** Like blockError, but pointing at the offending instruction: its
 *  parser-recorded line:col when available, else its block index. */
std::string
instError(const Function &function, const BasicBlock &block,
          const Instruction &inst, const std::string &message)
{
    std::string where;
    if (inst.debugLine > 0) {
        where = " (line " + std::to_string(inst.debugLine) + ":" +
                std::to_string(inst.debugCol) + ")";
    } else {
        where = " (instruction #" +
                std::to_string(block.indexOf(&inst)) + ")";
    }
    return blockError(function, block, message + where);
}

/**
 * Does instruction @p a dominate instruction @p b? Self-contained
 * (the IR library cannot depend on the analysis library): same-block
 * order compare, otherwise a DFS from the entry that refuses to enter
 * a's block — if it still reaches b's block, some path avoids a.
 */
bool
instructionDominates(const Function &function, const Instruction *a,
                     const Instruction *b)
{
    const BasicBlock *a_block = a->parent();
    const BasicBlock *b_block = b->parent();
    if (!a_block || !b_block)
        return false;
    if (a_block == b_block)
        return a_block->indexOf(a) < b_block->indexOf(b);
    const BasicBlock *entry = function.entry();
    if (b_block == entry)
        return false;
    std::set<const BasicBlock *> seen;
    std::vector<const BasicBlock *> stack;
    if (entry != a_block) {
        seen.insert(entry);
        stack.push_back(entry);
    }
    while (!stack.empty()) {
        const BasicBlock *current = stack.back();
        stack.pop_back();
        for (const BasicBlock *succ : current->successors()) {
            if (succ == a_block || seen.count(succ))
                continue;
            if (succ == b_block)
                return false;
            seen.insert(succ);
            stack.push_back(succ);
        }
    }
    return true;
}

} // anonymous namespace

std::string
verifyFunction(const Function &function)
{
    if (function.basicBlocks().empty())
        return "function @" + function.name() + " has no blocks";

    std::set<const BasicBlock *> owned;
    for (const auto &block : function.basicBlocks())
        owned.insert(block.get());

    // Predecessor map for phi checking.
    std::map<const BasicBlock *, std::set<const BasicBlock *>> preds;
    for (const auto &block : function.basicBlocks()) {
        for (const BasicBlock *succ : block->successors())
            preds[succ].insert(block.get());
    }

    for (const auto &block : function.basicBlocks()) {
        const auto &insts = block->instructions();
        if (insts.empty())
            return blockError(function, *block, "empty block");
        if (!block->terminator())
            return blockError(function, *block, "missing terminator");

        bool seen_non_phi = false;
        for (std::size_t i = 0; i < insts.size(); i++) {
            const Instruction &inst = *insts[i];
            if (isTerminator(inst.op()) && i + 1 != insts.size()) {
                return instError(function, *block, inst,
                                 "terminator before end of block");
            }
            if (inst.op() == Opcode::Phi) {
                if (seen_non_phi) {
                    return instError(function, *block, inst,
                                     "phi after non-phi instruction");
                }
                for (const auto &[value, incoming_block] :
                     inst.incoming()) {
                    if (!value || !incoming_block) {
                        return instError(function, *block, inst,
                                         "phi with null incoming");
                    }
                    if (!preds[block.get()].count(incoming_block)) {
                        return instError(
                            function, *block, inst,
                            "phi incoming from non-predecessor " +
                                incoming_block->name());
                    }
                }
            } else {
                seen_non_phi = true;
            }
            for (const Value *operand : inst.operands()) {
                if (!operand) {
                    return instError(function, *block, inst,
                                     "null operand in " +
                                         std::string(opcodeName(
                                             inst.op())));
                }
            }
            // Structural checks for the TrackFM pseudo-instructions: a
            // malformed pass rewrite should fail here, not as an
            // interpreter trap.
            switch (inst.op()) {
              case Opcode::Guard:
                if (inst.numOperands() != 1) {
                    return instError(function, *block, inst,
                                     "guard must have 1 operand");
                }
                break;
              case Opcode::GuardReval: {
                if (inst.numOperands() != 2) {
                    return instError(function, *block, inst,
                                     "guard.reval must have 2 operands");
                }
                const Value *armer = inst.operand(0);
                const auto *armer_inst =
                    armer->isInstruction()
                        ? static_cast<const Instruction *>(armer)
                        : nullptr;
                if (!armer_inst || armer_inst->op() != Opcode::Guard ||
                    !armer_inst->armsEpoch) {
                    return instError(function, *block, inst,
                                     "guard.reval operand 0 must be an "
                                     "epoch-arming guard");
                }
                break;
              }
              case Opcode::ChunkBegin:
                if (inst.numOperands() != 1) {
                    return instError(function, *block, inst,
                                     "chunk.begin must have 1 operand");
                }
                break;
              case Opcode::ChunkAccess: {
                if (inst.numOperands() != 2) {
                    return instError(function, *block, inst,
                                     "chunk.access must have 2 operands");
                }
                const Value *cursor = inst.operand(0);
                const auto *cursor_inst =
                    cursor->isInstruction()
                        ? static_cast<const Instruction *>(cursor)
                        : nullptr;
                if (!cursor_inst ||
                    cursor_inst->op() != Opcode::ChunkBegin) {
                    return instError(function, *block, inst,
                                     "chunk.access operand 0 must be a "
                                     "chunk.begin cursor");
                }
                break;
              }
              case Opcode::Prefetch:
                if (inst.numOperands() != 1) {
                    return instError(function, *block, inst,
                                     "prefetch must have 1 operand");
                }
                break;
              default:
                break;
            }
            if (inst.succ0 && !owned.count(inst.succ0)) {
                return blockError(function, *block,
                                  "branch to foreign block");
            }
            if (inst.succ1 && !owned.count(inst.succ1)) {
                return blockError(function, *block,
                                  "branch to foreign block");
            }
        }
    }

    // Revalidation soundness: every guard.reval's arming guard must
    // dominate it (a reval reached before its armer executed would
    // compare against a stale or uninitialized epoch), and the armer's
    // result name must be unambiguous — duplicate epoch-arming guards
    // sharing one name mean the textual IR shadowed the armer the
    // reval meant to reference.
    std::map<std::string, int> armers_by_name;
    for (const auto &block : function.basicBlocks()) {
        for (const auto &inst : block->instructions()) {
            if (inst->op() == Opcode::Guard && inst->armsEpoch &&
                !inst->name().empty())
                armers_by_name[inst->name()]++;
        }
    }
    for (const auto &block : function.basicBlocks()) {
        for (const auto &inst : block->instructions()) {
            if (inst->op() != Opcode::GuardReval)
                continue;
            const auto *armer = static_cast<const Instruction *>(
                inst->operand(0));
            if (!armer->name().empty() &&
                armers_by_name[armer->name()] > 1) {
                return instError(
                    function, *block, *inst,
                    "guard.reval arming guard %" + armer->name() +
                        " is ambiguous: multiple epoch-arming guards "
                        "share that name");
            }
            if (!instructionDominates(function, armer, inst.get())) {
                return instError(
                    function, *block, *inst,
                    "guard.reval arming guard %" + armer->name() +
                        " does not dominate the revalidation");
            }
        }
    }
    return "";
}

std::string
verifyModule(const Module &module)
{
    for (const auto &function : module.allFunctions()) {
        const std::string error = verifyFunction(*function);
        if (!error.empty())
            return error;
    }
    return "";
}

} // namespace tfm::ir
