/**
 * @file
 * Parser for the textual IR form (see printer.cc for the grammar by
 * example). Programs shipped as text stand in for the LLVM bitcode the
 * real TrackFM consumes.
 */

#ifndef TRACKFM_IR_PARSER_HH
#define TRACKFM_IR_PARSER_HH

#include <memory>
#include <string>

#include "function.hh"

namespace tfm::ir
{

/** Outcome of parsing: a module or a diagnostic. */
struct ParseResult
{
    std::unique_ptr<Module> module;
    std::string error; ///< empty on success
    int errorLine = 0;

    bool ok() const { return module != nullptr; }
};

/** Parse IR text into a module. */
ParseResult parseModule(const std::string &text);

} // namespace tfm::ir

#endif // TRACKFM_IR_PARSER_HH
