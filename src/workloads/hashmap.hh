/**
 * @file
 * Zipf-driven hashmap microbenchmark (Figures 9 and 13 of the paper).
 *
 * Models the paper's STL unordered_map experiment: 4-byte integer keys
 * and values in a hash table that dominates the working set, plus a
 * separate heap-allocated trace array holding the sampled key sequence
 * (the paper's 190 MB trace array). Lookups have high temporal locality
 * (zipf skew 1.02) but essentially no spatial locality, making the
 * workload maximally sensitive to object size and I/O amplification.
 */

#ifndef TRACKFM_WORKLOADS_HASHMAP_HH
#define TRACKFM_WORKLOADS_HASHMAP_HH

#include <cstdint>

#include "backend.hh"

namespace tfm
{

/** Hashmap experiment parameters. */
struct HashmapParams
{
    /// Number of distinct keys resident in the table.
    std::uint64_t numKeys = 100000;
    /// Lookups in the measurement window.
    std::uint64_t numOps = 500000;
    /// Zipf skew of the key popularity distribution.
    double zipfSkew = 1.02;
    std::uint64_t seed = 42;
};

/** Result of one run. */
struct HashmapResult
{
    BackendSnapshot delta;
    std::uint64_t hits = 0;
    std::uint64_t probes = 0;

    double
    throughputMopsPerSec(double cpu_ghz) const
    {
        if (delta.cycles == 0)
            return 0.0;
        const double seconds =
            static_cast<double>(delta.cycles) / (cpu_ghz * 1e9);
        return static_cast<double>(hits) / 1e6 / seconds;
    }
};

/**
 * Open-addressing hash table + key trace, both in far memory.
 *
 * Table slots are 16 bytes ({state, key, value, pad}); capacity is
 * 2x numKeys rounded to a power of two.
 */
class HashmapWorkload
{
  public:
    HashmapWorkload(MemBackend &backend, const HashmapParams &params);

    /** Total far-memory footprint (table + trace). */
    std::uint64_t workingSetBytes() const;

    /** Run all lookups from the trace. */
    HashmapResult run();

    /**
     * Serving-style single probe for @p key (metered, charges the hash
     * plus the probe chain). Returns true on hit; @p probes_out, when
     * non-null, receives the probe count. The per-request op the
     * traffic scheduler dispatches.
     */
    bool lookup(std::uint32_t key, std::uint64_t *probes_out = nullptr);

    /** Expected number of hits (all trace keys are present). */
    std::uint64_t expectedHits() const { return params.numOps; }

  private:
    struct Slot
    {
        std::uint32_t state; // 0 empty, 1 full
        std::uint32_t key;
        std::uint32_t value;
        std::uint32_t pad;
    };
    static_assert(sizeof(Slot) == 16, "slot must pack to 16 bytes");

    static std::uint64_t hashKey(std::uint32_t key);

    MemBackend &b;
    HashmapParams params;
    std::uint64_t capacity;
    std::uint64_t tableAddr = 0;
    std::uint64_t traceAddr = 0;
};

} // namespace tfm

#endif // TRACKFM_WORKLOADS_HASHMAP_HH
