/**
 * @file
 * Implementations of the five NAS-style kernels.
 */

#include "nas.hh"

#include <cmath>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace tfm
{

namespace
{

/**
 * Helper charging the "redundant load" pattern the unoptimized NOELLE
 * pipeline produces: the same address is re-loaded @p extra times, each
 * re-load carrying its own guard (cheap fast paths, but they add up —
 * Fig. 17b).
 */
void
redundantReloads(MemBackend &b, std::uint64_t addr, std::size_t len,
                 int extra)
{
    std::uint8_t scratch[16];
    TFM_ASSERT(len <= sizeof(scratch), "reload window too wide");
    for (int i = 0; i < extra; i++)
        b.read(addr, scratch, len, AccessHint::Sequential);
}

/// Redundant loads per FT butterfly without pre-optimization: sized so
/// the naive variant issues ~6x the memory instructions of TFM/O1
/// (8 useful accesses -> ~48 total), matching the paper's measurement.
constexpr int ftRedundantLoads = 40;
/// Likewise for SP: ~4x (5 useful accesses per sweep step -> ~20).
constexpr int spRedundantLoads = 15;

/** CG: conjugate-gradient iterations over a CSR matrix. */
class CgKernel : public NasKernel
{
  public:
    CgKernel(MemBackend &backend, const NasParams &params)
        : b(backend), n(static_cast<std::uint64_t>(params.scale) * 1024),
          nnzPerRow(8), iterations(params.iterations)
    {
        const std::uint64_t nnz = n * nnzPerRow;
        rowptrAddr = b.alloc((n + 1) * 4);
        colidxAddr = b.alloc(nnz * 4);
        valuesAddr = b.alloc(nnz * 8);
        xAddr = b.alloc(n * 8);
        yAddr = b.alloc(n * 8);

        Rng rng(params.seed);
        for (std::uint64_t row = 0; row <= n; row++) {
            b.initT<std::uint32_t>(rowptrAddr + row * 4,
                                   static_cast<std::uint32_t>(
                                       row * nnzPerRow));
        }
        for (std::uint64_t i = 0; i < nnz; i++) {
            b.initT<std::uint32_t>(
                colidxAddr + i * 4,
                static_cast<std::uint32_t>(rng.below(n)));
            b.initT<double>(valuesAddr + i * 8,
                            rng.uniform() * 2.0 - 1.0);
        }
        for (std::uint64_t i = 0; i < n; i++) {
            b.initT<double>(xAddr + i * 8, 1.0);
            b.initT<double>(yAddr + i * 8, 0.0);
        }
        b.dropCaches();
    }

    std::string name() const override { return "CG"; }

    std::uint64_t
    workingSetBytes() const override
    {
        return (n + 1) * 4 + n * nnzPerRow * (4 + 8) + 2 * n * 8;
    }

    NasResult
    run() override
    {
        NasResult result;
        const BackendSnapshot before = snapshot(b);
        double norm = 0.0;
        for (std::uint32_t it = 0; it < iterations; it++) {
            // y = A * x : sequential scans of colidx/values, random
            // gathers from x.
            auto cols = b.stream(colidxAddr, 4, n * nnzPerRow,
                                 StreamMode::Read);
            auto vals = b.stream(valuesAddr, 8, n * nnzPerRow,
                                 StreamMode::Read);
            auto out = b.stream(yAddr, 8, n, StreamMode::Write);
            for (std::uint64_t row = 0; row < n; row++) {
                double acc = 0.0;
                for (std::uint32_t k = 0; k < nnzPerRow; k++) {
                    std::uint32_t col;
                    double a;
                    cols->read(&col);
                    vals->read(&a);
                    const double xv = b.readT<double>(xAddr + col * 8ull,
                                                      AccessHint::Random);
                    acc += a * xv;
                    b.compute(2);
                }
                out->write(&acc);
            }
            // norm = dot(y, y); x = y / norm (two sequential passes).
            norm = 0.0;
            {
                auto yin = b.stream(yAddr, 8, n, StreamMode::Read);
                for (std::uint64_t i = 0; i < n; i++) {
                    double v;
                    yin->read(&v);
                    norm += v * v;
                    b.compute(2);
                }
            }
            const double inv = 1.0 / std::sqrt(norm + 1e-30);
            {
                auto yin = b.stream(yAddr, 8, n, StreamMode::Read);
                auto xout = b.stream(xAddr, 8, n, StreamMode::Write);
                for (std::uint64_t i = 0; i < n; i++) {
                    double v;
                    yin->read(&v);
                    const double scaled = v * inv;
                    xout->write(&scaled);
                    b.compute(1);
                }
            }
        }
        result.checksum = norm;
        result.delta = deltaSince(before, snapshot(b));
        return result;
    }

  private:
    MemBackend &b;
    std::uint64_t n;
    std::uint32_t nnzPerRow;
    std::uint32_t iterations;
    std::uint64_t rowptrAddr = 0, colidxAddr = 0, valuesAddr = 0;
    std::uint64_t xAddr = 0, yAddr = 0;
};

/** FT: 3D FFT-like butterfly passes along all three dimensions. */
class FtKernel : public NasKernel
{
  public:
    FtKernel(MemBackend &backend, const NasParams &params)
        : b(backend), nx(params.scale), ny(params.scale), nz(params.scale),
          iterations(params.iterations), preOptimized(params.preOptimized)
    {
        TFM_ASSERT((nx & (nx - 1)) == 0, "FT grid must be a power of two");
        gridAddr = b.alloc(cells() * 16); // complex<double>
        Rng rng(params.seed);
        for (std::uint64_t i = 0; i < cells(); i++) {
            b.initT<double>(gridAddr + i * 16, rng.uniform());
            b.initT<double>(gridAddr + i * 16 + 8, rng.uniform());
        }
        b.dropCaches();
    }

    std::string name() const override { return "FT"; }

    std::uint64_t workingSetBytes() const override { return cells() * 16; }

    NasResult
    run() override
    {
        NasResult result;
        const BackendSnapshot before = snapshot(b);
        for (std::uint32_t it = 0; it < iterations; it++) {
            fftDim(nx, 1, ny * nz, nx);              // x lines
            fftDim(ny, nx, nx * nz, ny);             // y lines
            fftDim(nz, nx * ny, nx * ny, nz);        // z lines
        }
        // Checksum: first cell magnitude.
        const double re = b.peekT<double>(gridAddr);
        const double im = b.peekT<double>(gridAddr + 8);
        result.checksum = re * re + im * im;
        result.delta = deltaSince(before, snapshot(b));
        return result;
    }

  private:
    std::uint64_t
    cells() const
    {
        return static_cast<std::uint64_t>(nx) * ny * nz;
    }

    /**
     * Butterfly passes over every line along one dimension. Element
     * addressing within a line uses @p stride; lines are enumerated
     * densely over the remaining dimensions.
     */
    void
    fftDim(std::uint32_t m, std::uint64_t stride, std::uint64_t lines,
           std::uint32_t line_len)
    {
        (void)line_len;
        const int extra_loads = preOptimized ? 0 : ftRedundantLoads;
        for (std::uint64_t line = 0; line < lines; line++) {
            const std::uint64_t base = lineBase(line, m, stride);
            // log2(m) butterfly stages with temporal reuse in the line.
            for (std::uint32_t span = 1; span < m; span <<= 1) {
                for (std::uint32_t i = 0; i < m; i += span * 2) {
                    for (std::uint32_t j = 0; j < span; j++) {
                        const std::uint64_t a =
                            base + (i + j) * stride * 16;
                        const std::uint64_t c =
                            base + (i + j + span) * stride * 16;
                        double ar = b.readT<double>(a, AccessHint::Random);
                        double ai =
                            b.readT<double>(a + 8, AccessHint::Random);
                        double cr = b.readT<double>(c, AccessHint::Random);
                        double ci =
                            b.readT<double>(c + 8, AccessHint::Random);
                        redundantReloads(b, a, 8, extra_loads);
                        b.compute(10); // twiddle multiply
                        const double sr = ar + cr, si = ai + ci;
                        const double dr = ar - cr, di = ai - ci;
                        b.writeT<double>(a, sr, AccessHint::Random);
                        b.writeT<double>(a + 8, si, AccessHint::Random);
                        b.writeT<double>(c, dr, AccessHint::Random);
                        b.writeT<double>(c + 8, di, AccessHint::Random);
                    }
                }
            }
        }
    }

    std::uint64_t
    lineBase(std::uint64_t line, std::uint32_t m, std::uint64_t stride)
    {
        // Enumerate line origins so that all cells() elements are
        // covered: origins are the indices whose coordinate along the
        // transformed dimension is zero.
        const std::uint64_t per_line = m;
        const std::uint64_t total = cells();
        const std::uint64_t num_lines = total / per_line;
        (void)num_lines;
        if (stride == 1)
            return gridAddr + line * per_line * 16;
        // For strided dims: line index decomposes into (block, offset).
        const std::uint64_t block = line / stride;
        const std::uint64_t offset = line % stride;
        return gridAddr + (block * stride * per_line + offset) * 16;
    }

    MemBackend &b;
    std::uint32_t nx, ny, nz;
    std::uint32_t iterations;
    bool preOptimized;
    std::uint64_t gridAddr = 0;
};

/** IS: integer bucket sort. */
class IsKernel : public NasKernel
{
  public:
    IsKernel(MemBackend &backend, const NasParams &params)
        : b(backend),
          n(static_cast<std::uint64_t>(params.scale) * 8192),
          // NAS IS uses a bucket range comparable to the key count
          // (class D: 2^27 keys over 2^23 buckets); a large histogram
          // is what makes the ranking scatter far-memory-bound.
          maxKey(n / 2), iterations(params.iterations)
    {
        keysAddr = b.alloc(n * 4);
        ranksAddr = b.alloc(n * 4);
        histAddr = b.alloc(maxKey * 4);
        Rng rng(params.seed);
        for (std::uint64_t i = 0; i < n; i++) {
            b.initT<std::uint32_t>(
                keysAddr + i * 4,
                static_cast<std::uint32_t>(rng.below(maxKey)));
        }
        b.dropCaches();
    }

    std::string name() const override { return "IS"; }

    std::uint64_t
    workingSetBytes() const override
    {
        return n * 8 + maxKey * 4;
    }

    NasResult
    run() override
    {
        NasResult result;
        const BackendSnapshot before = snapshot(b);
        for (std::uint32_t it = 0; it < iterations; it++) {
            // Histogram: sequential key scan, random histogram bumps
            // (the histogram is small and stays hot).
            for (std::uint64_t k = 0; k < maxKey; k++)
                b.initT<std::uint32_t>(histAddr + k * 4, 0);
            {
                auto keys = b.stream(keysAddr, 4, n, StreamMode::Read);
                for (std::uint64_t i = 0; i < n; i++) {
                    std::uint32_t key;
                    keys->read(&key);
                    const std::uint64_t at = histAddr + key * 4ull;
                    const auto count = b.readT<std::uint32_t>(
                        at, AccessHint::Random);
                    b.writeT<std::uint32_t>(at, count + 1,
                                            AccessHint::Random);
                }
            }
            // Prefix sum over the histogram (sequential).
            {
                std::uint32_t running = 0;
                auto in = b.stream(histAddr, 4, maxKey, StreamMode::Read);
                for (std::uint64_t k = 0; k < maxKey; k++) {
                    std::uint32_t count;
                    in->read(&count);
                    b.compute(1);
                    b.writeT<std::uint32_t>(histAddr + k * 4, running,
                                            AccessHint::Sequential);
                    running += count;
                }
            }
            // Rank: sequential key scan, random scatter of ranks.
            {
                auto keys = b.stream(keysAddr, 4, n, StreamMode::Read);
                for (std::uint64_t i = 0; i < n; i++) {
                    std::uint32_t key;
                    keys->read(&key);
                    const std::uint64_t at = histAddr + key * 4ull;
                    const auto rank = b.readT<std::uint32_t>(
                        at, AccessHint::Random);
                    b.writeT<std::uint32_t>(at, rank + 1,
                                            AccessHint::Random);
                    b.writeT<std::uint32_t>(ranksAddr + i * 4, rank,
                                            AccessHint::Sequential);
                }
            }
        }
        // Checksum: rank of the last key.
        result.checksum = static_cast<double>(
            b.peekT<std::uint32_t>(ranksAddr + (n - 1) * 4));
        result.delta = deltaSince(before, snapshot(b));
        return result;
    }

  private:
    MemBackend &b;
    std::uint64_t n;
    std::uint64_t maxKey;
    std::uint32_t iterations;
    std::uint64_t keysAddr = 0, ranksAddr = 0, histAddr = 0;
};

/** MG: multigrid V-cycle with 7-point stencil smoothing. */
class MgKernel : public NasKernel
{
  public:
    MgKernel(MemBackend &backend, const NasParams &params)
        : b(backend), n(params.scale), iterations(params.iterations)
    {
        fineAddr = b.alloc(cells(n) * 8);
        coarseAddr = b.alloc(cells(n / 2) * 8);
        Rng rng(params.seed);
        for (std::uint64_t i = 0; i < cells(n); i++)
            b.initT<double>(fineAddr + i * 8, rng.uniform());
        for (std::uint64_t i = 0; i < cells(n / 2); i++)
            b.initT<double>(coarseAddr + i * 8, 0.0);
        b.dropCaches();
    }

    std::string name() const override { return "MG"; }

    std::uint64_t
    workingSetBytes() const override
    {
        return (cells(n) + cells(n / 2)) * 8;
    }

    NasResult
    run() override
    {
        NasResult result;
        const BackendSnapshot before = snapshot(b);
        double residual = 0.0;
        for (std::uint32_t it = 0; it < iterations; it++) {
            residual = smooth(fineAddr, n);
            restrictTo(fineAddr, n, coarseAddr, n / 2);
            smooth(coarseAddr, n / 2);
            prolongate(coarseAddr, n / 2, fineAddr, n);
        }
        result.checksum = residual;
        result.delta = deltaSince(before, snapshot(b));
        return result;
    }

  private:
    static std::uint64_t
    cells(std::uint32_t dim)
    {
        return static_cast<std::uint64_t>(dim) * dim * dim;
    }

    std::uint64_t
    cellAddr(std::uint64_t base, std::uint32_t dim, std::uint32_t x,
             std::uint32_t y, std::uint32_t z)
    {
        return base +
               ((static_cast<std::uint64_t>(z) * dim + y) * dim + x) * 8;
    }

    /** One Jacobi sweep with the 7-point stencil; returns the residual. */
    double
    smooth(std::uint64_t base, std::uint32_t dim)
    {
        double residual = 0.0;
        for (std::uint32_t z = 1; z + 1 < dim; z++) {
            for (std::uint32_t y = 1; y + 1 < dim; y++) {
                for (std::uint32_t x = 1; x + 1 < dim; x++) {
                    const double center = b.readT<double>(
                        cellAddr(base, dim, x, y, z),
                        AccessHint::Sequential);
                    const double west = b.readT<double>(
                        cellAddr(base, dim, x - 1, y, z),
                        AccessHint::Sequential);
                    const double east = b.readT<double>(
                        cellAddr(base, dim, x + 1, y, z),
                        AccessHint::Sequential);
                    const double north = b.readT<double>(
                        cellAddr(base, dim, x, y - 1, z),
                        AccessHint::Random);
                    const double south = b.readT<double>(
                        cellAddr(base, dim, x, y + 1, z),
                        AccessHint::Random);
                    const double up = b.readT<double>(
                        cellAddr(base, dim, x, y, z - 1),
                        AccessHint::Random);
                    const double down = b.readT<double>(
                        cellAddr(base, dim, x, y, z + 1),
                        AccessHint::Random);
                    b.compute(8);
                    const double updated =
                        (west + east + north + south + up + down) / 6.0;
                    residual += std::abs(updated - center);
                    b.writeT<double>(cellAddr(base, dim, x, y, z), updated,
                                     AccessHint::Sequential);
                }
            }
        }
        return residual;
    }

    void
    restrictTo(std::uint64_t fine, std::uint32_t fine_dim,
               std::uint64_t coarse, std::uint32_t coarse_dim)
    {
        for (std::uint32_t z = 0; z < coarse_dim; z++) {
            for (std::uint32_t y = 0; y < coarse_dim; y++) {
                for (std::uint32_t x = 0; x < coarse_dim; x++) {
                    const double v = b.readT<double>(
                        cellAddr(fine, fine_dim, x * 2, y * 2, z * 2),
                        AccessHint::Random);
                    b.compute(2);
                    b.writeT<double>(
                        cellAddr(coarse, coarse_dim, x, y, z), v,
                        AccessHint::Sequential);
                }
            }
        }
    }

    void
    prolongate(std::uint64_t coarse, std::uint32_t coarse_dim,
               std::uint64_t fine, std::uint32_t fine_dim)
    {
        for (std::uint32_t z = 0; z < coarse_dim; z++) {
            for (std::uint32_t y = 0; y < coarse_dim; y++) {
                for (std::uint32_t x = 0; x < coarse_dim; x++) {
                    const double v = b.readT<double>(
                        cellAddr(coarse, coarse_dim, x, y, z),
                        AccessHint::Sequential);
                    b.compute(2);
                    const double old = b.readT<double>(
                        cellAddr(fine, fine_dim, x * 2, y * 2, z * 2),
                        AccessHint::Random);
                    b.writeT<double>(
                        cellAddr(fine, fine_dim, x * 2, y * 2, z * 2),
                        old + 0.5 * v, AccessHint::Random);
                }
            }
        }
    }

    MemBackend &b;
    std::uint32_t n;
    std::uint32_t iterations;
    std::uint64_t fineAddr = 0, coarseAddr = 0;
};

/** SP: scalar penta-diagonal line solves along each dimension. */
class SpKernel : public NasKernel
{
  public:
    SpKernel(MemBackend &backend, const NasParams &params)
        : b(backend), n(params.scale), iterations(params.iterations),
          preOptimized(params.preOptimized)
    {
        rhsAddr = b.alloc(cells() * 8);
        lhsAddr = b.alloc(cells() * 8);
        factorAddr = b.alloc(cells() * 8);
        Rng rng(params.seed);
        for (std::uint64_t i = 0; i < cells(); i++) {
            b.initT<double>(rhsAddr + i * 8, rng.uniform());
            b.initT<double>(lhsAddr + i * 8, 2.0 + rng.uniform());
            b.initT<double>(factorAddr + i * 8, 0.0);
        }
        b.dropCaches();
    }

    std::string name() const override { return "SP"; }

    std::uint64_t workingSetBytes() const override { return cells() * 24; }

    NasResult
    run() override
    {
        NasResult result;
        const BackendSnapshot before = snapshot(b);
        for (std::uint32_t it = 0; it < iterations; it++) {
            solveDim(1);           // x lines (contiguous)
            solveDim(n);           // y lines
            solveDim(n * n);       // z lines
        }
        result.checksum = b.peekT<double>(rhsAddr);
        result.delta = deltaSince(before, snapshot(b));
        return result;
    }

  private:
    std::uint64_t
    cells() const
    {
        return static_cast<std::uint64_t>(n) * n * n;
    }

    void
    solveDim(std::uint64_t stride)
    {
        const int extra_loads = preOptimized ? 0 : spRedundantLoads;
        const std::uint64_t lines = cells() / n;
        for (std::uint64_t line = 0; line < lines; line++) {
            const std::uint64_t base = lineBase(line, stride);
            // Forward elimination.
            for (std::uint32_t i = 1; i < n; i++) {
                const std::uint64_t cur = base + i * stride * 8;
                const std::uint64_t prev = base + (i - 1) * stride * 8;
                const double l = b.readT<double>(lhsAddr + cur,
                                                 AccessHint::Random);
                const double rp = b.readT<double>(rhsAddr + prev,
                                                  AccessHint::Random);
                const double r = b.readT<double>(rhsAddr + cur,
                                                 AccessHint::Random);
                redundantReloads(b, lhsAddr + cur, 8, extra_loads);
                b.compute(6);
                const double f = 1.0 / l;
                b.writeT<double>(factorAddr + cur, f, AccessHint::Random);
                b.writeT<double>(rhsAddr + cur, r - f * rp,
                                 AccessHint::Random);
            }
            // Back substitution.
            for (std::uint32_t i = n - 1; i > 0; i--) {
                const std::uint64_t cur = base + i * stride * 8;
                const std::uint64_t prev = base + (i - 1) * stride * 8;
                const double f = b.readT<double>(factorAddr + cur,
                                                 AccessHint::Random);
                const double r = b.readT<double>(rhsAddr + cur,
                                                 AccessHint::Random);
                const double rp = b.readT<double>(rhsAddr + prev,
                                                  AccessHint::Random);
                redundantReloads(b, rhsAddr + cur, 8, extra_loads);
                b.compute(4);
                b.writeT<double>(rhsAddr + prev, rp - f * r,
                                 AccessHint::Random);
            }
        }
    }

    std::uint64_t
    lineBase(std::uint64_t line, std::uint64_t stride)
    {
        if (stride == 1)
            return line * n * 8;
        const std::uint64_t block = line / stride;
        const std::uint64_t offset = line % stride;
        return (block * stride * n + offset) * 8;
    }

    MemBackend &b;
    std::uint32_t n;
    std::uint32_t iterations;
    bool preOptimized;
    std::uint64_t rhsAddr = 0, lhsAddr = 0, factorAddr = 0;
};

} // anonymous namespace

std::unique_ptr<NasKernel>
makeNasKernel(const std::string &name, MemBackend &backend,
              const NasParams &params)
{
    if (name == "cg")
        return std::make_unique<CgKernel>(backend, params);
    if (name == "ft")
        return std::make_unique<FtKernel>(backend, params);
    if (name == "is")
        return std::make_unique<IsKernel>(backend, params);
    if (name == "mg")
        return std::make_unique<MgKernel>(backend, params);
    if (name == "sp")
        return std::make_unique<SpKernel>(backend, params);
    TFM_FATAL("unknown NAS kernel name");
}

} // namespace tfm
