#include "kmeans.hh"

#include <algorithm>
#include <cmath>

#include "sim/rng.hh"

namespace tfm
{

KMeansWorkload::KMeansWorkload(MemBackend &backend,
                               const KMeansParams &parameters)
    : b(backend), params(parameters)
{
    pointsAddr = b.alloc(params.numPoints * params.dims * sizeof(float));
    assignAddr = b.alloc(params.numPoints * sizeof(std::int32_t));
    normAddr = b.alloc(params.numPoints * params.dims * sizeof(float));

    Rng rng(params.seed);
    for (std::uint64_t p = 0; p < params.numPoints; p++) {
        for (std::uint32_t d = 0; d < params.dims; d++) {
            const auto v = static_cast<float>(rng.uniform() * 100.0);
            b.initT<float>(pointsAddr + (p * params.dims + d) * 4, v);
            b.initT<float>(normAddr + (p * params.dims + d) * 4, v * v);
        }
        b.initT<std::int32_t>(assignAddr + p * 4, -1);
    }

    // Initial centroids: a deterministic sample of the points.
    centroids.resize(static_cast<std::size_t>(params.clusters) *
                     params.dims);
    for (std::uint32_t c = 0; c < params.clusters; c++) {
        const std::uint64_t p =
            (params.numPoints / params.clusters) * c;
        for (std::uint32_t d = 0; d < params.dims; d++) {
            centroids[c * params.dims + d] =
                b.peekT<float>(pointsAddr + (p * params.dims + d) * 4);
        }
    }
    b.dropCaches();
}

std::uint64_t
KMeansWorkload::workingSetBytes() const
{
    return params.numPoints * params.dims * 4 + params.numPoints * 4 +
           params.numPoints * params.dims * 4;
}

void
KMeansWorkload::assignStep(std::vector<std::uint64_t> &sizes)
{
    std::vector<float> features(params.dims);
    for (std::uint64_t p = 0; p < params.numPoints; p++) {
        // Inner loop over this point's features: a fresh short stream
        // per point. This is the paper's nested-loop pathology: the
        // loop covers far less than one object, so chunking it means
        // one locality-invariant guard per handful of elements.
        {
            auto row = b.stream(pointsAddr + p * params.dims * 4,
                                sizeof(float), params.dims,
                                StreamMode::Read);
            for (std::uint32_t d = 0; d < params.dims; d++)
                row->read(&features[d]);
        }
        // Distance to each centroid (centroids are CPU-local).
        int best = 0;
        double best_dist = 1e300;
        for (std::uint32_t c = 0; c < params.clusters; c++) {
            double dist = 0;
            for (std::uint32_t d = 0; d < params.dims; d++) {
                const double delta = static_cast<double>(features[d]) -
                                     centroids[c * params.dims + d];
                dist += delta * delta;
            }
            b.compute(params.dims * 2);
            if (dist < best_dist) {
                best_dist = dist;
                best = static_cast<int>(c);
            }
        }
        b.writeT<std::int32_t>(assignAddr + p * 4, best,
                               AccessHint::Sequential);
        sizes[static_cast<std::size_t>(best)]++;
    }
}

void
KMeansWorkload::normCachePass()
{
    // A long high-density sweep (4-byte elements over the whole
    // cache): exactly the loop shape the cost model keeps chunked.
    const std::uint64_t count = params.numPoints * params.dims;
    for (std::uint32_t pass = 0; pass < 1; pass++) {
        auto in = b.stream(normAddr, sizeof(float), count,
                           StreamMode::Read);
        float acc = 0;
        for (std::uint64_t i = 0; i < count; i++) {
            float v;
            in->read(&v);
            acc += v;
            b.compute(1);
        }
        // Keep the accumulator alive so the sweep cannot be elided.
        if (acc == 0.12345f)
            b.compute(1);
    }
}

KMeansResult
KMeansWorkload::run()
{
    KMeansResult result;
    result.clusterSizes.assign(params.clusters, 0);
    const BackendSnapshot before = snapshot(b);
    for (std::uint32_t it = 0; it < params.iterations; it++) {
        std::fill(result.clusterSizes.begin(), result.clusterSizes.end(),
                  0ull);
        assignStep(result.clusterSizes);
        normCachePass();
    }
    result.delta = deltaSince(before, snapshot(b));
    return result;
}

} // namespace tfm
