/**
 * @file
 * Configuration and factory for memory-system backends.
 */

#ifndef TRACKFM_WORKLOADS_BACKEND_CONFIG_HH
#define TRACKFM_WORKLOADS_BACKEND_CONFIG_HH

#include <cstdint>
#include <memory>
#include <string>

#include "backend.hh"
#include "sim/cost_params.hh"
#include "tfm/chunk_policy.hh"

namespace tfm
{

/** Which memory system to instantiate. */
enum class SystemKind
{
    Local,    ///< everything in local DRAM
    TrackFm,  ///< compiler-based far memory (this paper)
    Fastswap, ///< kernel-based far memory baseline
    Aifm      ///< library-based far memory baseline
};

/** Backend construction parameters. */
struct BackendConfig
{
    SystemKind kind = SystemKind::TrackFm;
    /// Far heap = application working set (plus allocator slack).
    std::uint64_t farHeapBytes = 64ull << 20;
    /// Local memory available to the application's data.
    std::uint64_t localMemBytes = 16ull << 20;
    /// TrackFM/AIFM object size (ignored by Local/Fastswap).
    std::uint32_t objectSizeBytes = 4096;
    /// Enable the runtime stride prefetcher (TrackFM/AIFM).
    bool prefetchEnabled = true;
    std::uint32_t prefetchDepth = 8;
    /// Kernel swap readahead for Fastswap. Off by default: Fastswap's
    /// frontswap/RDMA path fetches faulted pages individually, and the
    /// paper's results show kernel-side prefetching far weaker than
    /// the compiler-informed kind ("post hoc inferences based on
    /// run-time page faults").
    bool kernelReadahead = false;
    /// TrackFM loop-chunking policy.
    ChunkPolicy chunkPolicy = ChunkPolicy::CostModel;
    /// Optional per-instance trace stream label. When several backends
    /// coexist in one process (multi-tenant serving), each needs its
    /// own named track; empty falls back to the runtime's default
    /// stream name ("trackfm", "fastswap", ...).
    std::string obsLabel;
};

/** Instantiate a backend. */
std::unique_ptr<MemBackend> makeBackend(const BackendConfig &config,
                                        const CostParams &costs);

class TfmRuntime;

/**
 * A backend view over an externally-owned TrackFM runtime, for serving
 * tenants that share one far-memory runtime across worker threads
 * (DESIGN.md §4k). Metered accesses route through the guard layer of
 * @p runtime, which dispatches per-thread (bound workers use the MT
 * guard paths); sequential streams always use the naive one-guard-per-
 * element transformation, since loop chunking pins frames and is
 * single-thread-only. The caller keeps ownership of @p runtime and is
 * responsible for its lifetime outliving every view.
 */
std::unique_ptr<MemBackend> makeSharedBackend(TfmRuntime &runtime);

/** Human-readable system name ("TrackFM", "Fastswap", ...). */
const char *systemName(SystemKind kind);

} // namespace tfm

#endif // TRACKFM_WORKLOADS_BACKEND_CONFIG_HH
