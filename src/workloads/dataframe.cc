#include "dataframe.hh"

#include <algorithm>

#include "sim/rng.hh"

namespace tfm
{

DataframeWorkload::DataframeWorkload(MemBackend &backend,
                                     const DataframeParams &parameters)
    : b(backend), params(parameters)
{
    const std::uint64_t n = params.numRows;
    pickupAddr = b.alloc(n * 8);
    pickupHourAddr = b.alloc(n * 4);
    dropoffAddr = b.alloc(n * 8);
    passengerAddr = b.alloc(n * 4);
    distanceAddr = b.alloc(n * 4);
    fareAddr = b.alloc(n * 4);
    vendorAddr = b.alloc(n * 4);

    Rng rng(params.seed);
    const std::uint64_t groups =
        (n + params.rowGroupSize - 1) / params.rowGroupSize;
    groupAddrs.reserve(groups);

    std::int64_t group_sum = 0;
    std::uint64_t group_addr = 0;
    for (std::uint64_t i = 0; i < n; i++) {
        const std::int64_t pickup =
            1400000000 + static_cast<std::int64_t>(rng.below(86400 * 30));
        const std::int64_t duration =
            120 + static_cast<std::int64_t>(rng.below(3600));
        const auto passengers =
            static_cast<std::int32_t>(1 + rng.below(6));
        const auto distance_hmi =
            static_cast<std::int32_t>(20 + rng.below(2500));
        const auto fare_cents = static_cast<std::int32_t>(
            250 + distance_hmi * 2 + rng.below(500));
        const auto vendor = static_cast<std::int32_t>(rng.below(2));

        b.initT<std::int64_t>(pickupAddr + i * 8, pickup);
        b.initT<std::int32_t>(pickupHourAddr + i * 4,
                              static_cast<std::int32_t>(
                                  (pickup / 3600) % 24));
        b.initT<std::int64_t>(dropoffAddr + i * 8, pickup + duration);
        b.initT<std::int32_t>(passengerAddr + i * 4, passengers);
        b.initT<std::int32_t>(distanceAddr + i * 4, distance_hmi);
        b.initT<std::int32_t>(fareAddr + i * 4, fare_cents);
        b.initT<std::int32_t>(vendorAddr + i * 4, vendor);

        // Per-row-group duration arrays: one small heap allocation per
        // group (the paper's aggregation over small collections of
        // table rows).
        const std::uint32_t in_group = i % params.rowGroupSize;
        if (in_group == 0) {
            group_addr = b.alloc(params.rowGroupSize * 8);
            groupAddrs.push_back(group_addr);
        }
        b.initT<std::int64_t>(group_addr + in_group * 8, duration);

        // Reference answers.
        if (passengers >= 4)
            reference.tripsWithManyPassengers++;
        if (distance_hmi > 1000)
            reference.longTrips++;
        reference.totalFareByHour[(pickup / 3600) % 24] += fare_cents;
        group_sum += duration;
    }
    reference.groupAggregate = group_sum;
    b.dropCaches();
}

std::uint64_t
DataframeWorkload::workingSetBytes() const
{
    return params.numRows * (8 + 4 + 8 + 4 + 4 + 4 + 4) +
           groupAddrs.size() * params.rowGroupSize * 8;
}

std::uint64_t
DataframeWorkload::passengerQuery()
{
    std::uint64_t count = 0;
    auto col = b.stream(passengerAddr, 4, params.numRows, StreamMode::Read);
    for (std::uint64_t i = 0; i < params.numRows; i++) {
        std::int32_t passengers;
        col->read(&passengers);
        b.compute(6); // predicate + histogram arithmetic
        if (passengers >= 4)
            count++;
    }
    return count;
}

std::uint64_t
DataframeWorkload::distanceQuery()
{
    std::uint64_t count = 0;
    auto col = b.stream(distanceAddr, 4, params.numRows, StreamMode::Read);
    for (std::uint64_t i = 0; i < params.numRows; i++) {
        std::int32_t distance;
        col->read(&distance);
        b.compute(6);
        if (distance > 1000)
            count++;
    }
    return count;
}

void
DataframeWorkload::fareByHourQuery(std::int64_t out[24])
{
    auto hour = b.stream(pickupHourAddr, 4, params.numRows,
                         StreamMode::Read);
    auto fare = b.stream(fareAddr, 4, params.numRows, StreamMode::Read);
    for (std::uint64_t i = 0; i < params.numRows; i++) {
        std::int32_t h;
        std::int32_t f;
        hour->read(&h);
        fare->read(&f);
        b.compute(8); // bucket select + accumulate
        out[h] += f;
    }
}

std::int64_t
DataframeWorkload::groupAggregationQuery()
{
    // Many tiny loops over per-group collections: each group opens a
    // fresh stream of rowGroupSize 8-byte elements. With the All
    // chunking policy every group pays a locality-invariant guard for a
    // handful of elements (Fig. 15's pathology); the cost model rejects
    // chunking here (density 512 < break-even).
    std::int64_t total = 0;
    const std::uint64_t n = params.numRows;
    std::uint64_t row = 0;
    for (const std::uint64_t addr : groupAddrs) {
        const std::uint32_t count = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(params.rowGroupSize, n - row));
        auto group = b.stream(addr, 8, count, StreamMode::Read);
        for (std::uint32_t i = 0; i < count; i++) {
            std::int64_t duration;
            group->read(&duration);
            b.compute(6);
            total += duration;
        }
        row += count;
    }
    return total;
}

std::int64_t
DataframeWorkload::pointQuery(std::uint64_t row)
{
    b.compute(20); // predicate evaluation + reduce
    const auto passengers =
        b.readT<std::int32_t>(passengerAddr + row * 4,
                              AccessHint::Random);
    const auto distance =
        b.readT<std::int32_t>(distanceAddr + row * 4,
                              AccessHint::Random);
    const auto fare =
        b.readT<std::int32_t>(fareAddr + row * 4, AccessHint::Random);
    return static_cast<std::int64_t>(fare) + distance * passengers;
}

DataframeResult
DataframeWorkload::run()
{
    DataframeResult result;
    const BackendSnapshot before = snapshot(b);
    result.answers.tripsWithManyPassengers = passengerQuery();
    result.answers.longTrips = distanceQuery();
    fareByHourQuery(result.answers.totalFareByHour);
    result.answers.groupAggregate = groupAggregationQuery();
    result.delta = deltaSince(before, snapshot(b));
    return result;
}

} // namespace tfm
