/**
 * @file
 * Concrete MemBackend implementations for the four memory systems and
 * the backend factory.
 */

#include "backend_config.hh"

#include <cstring>
#include <vector>

#include "aifmlib/aifm_runtime.hh"
#include "fastswap/fastswap_runtime.hh"
#include "runtime/region_allocator.hh"
#include "sim/cycle_clock.hh"
#include "sim/logging.hh"
#include "tfm/chunk.hh"
#include "tfm/cost_model.hh"
#include "tfm/tfm_runtime.hh"

namespace tfm
{

namespace
{

/**
 * Local-only backend: a plain heap with per-access base charges. The
 * normalization line in every "slowdown vs. local" figure.
 */
class LocalBackend : public MemBackend
{
  public:
    LocalBackend(const BackendConfig &config, const CostParams &cost_params)
        : costs(cost_params),
          mem(config.farHeapBytes),
          alloc_(config.farHeapBytes, 4096)
    {}

    std::string name() const override { return "Local"; }

    std::uint64_t
    alloc(std::uint64_t bytes) override
    {
        clock.advance(costs.allocCycles);
        const std::uint64_t offset = alloc_.allocate(bytes);
        TFM_ASSERT(offset != RegionAllocator::badOffset,
                   "local heap exhausted");
        return offset;
    }

    void
    dealloc(std::uint64_t addr) override
    {
        clock.advance(costs.allocCycles);
        alloc_.deallocate(addr);
    }

    void
    read(std::uint64_t addr, void *dst, std::size_t len,
         AccessHint hint) override
    {
        chargeBase(hint);
        std::memcpy(dst, mem.data() + addr, len);
    }

    void
    write(std::uint64_t addr, const void *src, std::size_t len,
          AccessHint hint) override
    {
        chargeBase(hint);
        std::memcpy(mem.data() + addr, src, len);
    }

    class Stream : public SeqStream
    {
      public:
        Stream(LocalBackend &backend, std::uint64_t addr,
               std::uint32_t elem_size)
            : b(backend), cur(addr), elemSize(elem_size)
        {}

        void
        read(void *dst) override
        {
            b.clock.advance(b.costs.seqAccessCycles);
            std::memcpy(dst, b.mem.data() + cur, elemSize);
            cur += elemSize;
        }

        void
        write(const void *src) override
        {
            b.clock.advance(b.costs.seqAccessCycles);
            std::memcpy(b.mem.data() + cur, src, elemSize);
            cur += elemSize;
        }

      private:
        LocalBackend &b;
        std::uint64_t cur;
        std::uint32_t elemSize;
    };

    std::unique_ptr<SeqStream>
    stream(std::uint64_t addr, std::uint32_t elem_size, std::uint64_t count,
           StreamMode mode) override
    {
        (void)count;
        (void)mode;
        return std::make_unique<Stream>(*this, addr, elem_size);
    }

    void compute(std::uint64_t c) override { clock.advance(c); }

    void
    initWrite(std::uint64_t addr, const void *src, std::size_t len) override
    {
        std::memcpy(mem.data() + addr, src, len);
    }

    void
    initRead(std::uint64_t addr, void *dst, std::size_t len) override
    {
        std::memcpy(dst, mem.data() + addr, len);
    }

    void dropCaches() override {}

    std::uint64_t cycles() const override { return clock.now(); }
    std::uint64_t farEvents() const override { return 0; }
    std::uint64_t guardEvents() const override { return 0; }
    std::uint64_t bytesFetched() const override { return 0; }
    std::uint64_t bytesTransferred() const override { return 0; }

    StatSet
    stats() const override
    {
        StatSet set;
        set.add("clock.cycles", clock.now());
        return set;
    }

  private:
    void
    chargeBase(AccessHint hint)
    {
        clock.advance(hint == AccessHint::Sequential ? costs.seqAccessCycles
                                                     : costs.randAccessCycles);
    }

    CostParams costs;
    CycleClock clock;
    std::vector<std::byte> mem;
    RegionAllocator alloc_;
};

/**
 * TrackFM backend: the compiler-transformed program. Handles are tagged
 * pointers; every metered access goes through a guard; sequential
 * streams are chunked according to the configured policy.
 */
class TrackFmBackend : public MemBackend
{
  public:
    TrackFmBackend(const BackendConfig &config, const CostParams &cost_params)
        : cfg(config), rt(runtimeConfig(config), cost_params),
          model()
    {}

    std::string name() const override { return "TrackFM"; }

    std::uint64_t alloc(std::uint64_t bytes) override
    {
        return rt.tfmMalloc(bytes);
    }

    void dealloc(std::uint64_t addr) override { rt.tfmFree(addr); }

    void
    read(std::uint64_t addr, void *dst, std::size_t len,
         AccessHint hint) override
    {
        chargeBase(hint);
        rt.readGuarded(addr, dst, len);
    }

    void
    write(std::uint64_t addr, const void *src, std::size_t len,
          AccessHint hint) override
    {
        chargeBase(hint);
        rt.writeGuarded(addr, src, len);
    }

    /** Naive transformation: one guard per element access. */
    class GuardedStream : public SeqStream
    {
      public:
        GuardedStream(TrackFmBackend &backend, std::uint64_t addr,
                      std::uint32_t elem_size)
            : b(backend), cur(addr), elemSize(elem_size)
        {}

        void
        read(void *dst) override
        {
            b.rt.clock().advance(b.rt.costs().guardedSeqAccessCycles);
            b.rt.readGuarded(cur, dst, elemSize);
            cur += elemSize;
        }

        void
        write(const void *src) override
        {
            b.rt.clock().advance(b.rt.costs().guardedSeqAccessCycles);
            b.rt.writeGuarded(cur, src, elemSize);
            cur += elemSize;
        }

      private:
        TrackFmBackend &b;
        std::uint64_t cur;
        std::uint32_t elemSize;
    };

    /** Chunked transformation: Fig. 5's rewritten loop body. */
    class ChunkedStream : public SeqStream
    {
      public:
        ChunkedStream(TrackFmBackend &backend, std::uint64_t addr,
                      std::uint32_t elem_size, bool for_write)
            : b(backend), cursor(backend.rt, addr, elem_size, for_write)
        {}

        void
        read(void *dst) override
        {
            // The chunked loop body still carries a per-iteration
            // branch, so its base cost is the non-vectorized one.
            b.rt.clock().advance(b.rt.costs().guardedSeqAccessCycles);
            cursor.read(dst);
        }

        void
        write(const void *src) override
        {
            b.rt.clock().advance(b.rt.costs().guardedSeqAccessCycles);
            cursor.write(src);
        }

      private:
        TrackFmBackend &b;
        ChunkCursorRaw cursor;
    };

    std::unique_ptr<SeqStream>
    stream(std::uint64_t addr, std::uint32_t elem_size, std::uint64_t count,
           StreamMode mode) override
    {
        bool chunk = false;
        switch (cfg.chunkPolicy) {
          case ChunkPolicy::None:
            chunk = false;
            break;
          case ChunkPolicy::All:
            chunk = true;
            break;
          case ChunkPolicy::CostModel:
            // Density must clear the section 3.4 break-even AND the
            // loop must span at least one whole object — the paper's
            // profiler filters out loops "with a small iteration
            // space", whose locality guard could never amortize.
            chunk = model.shouldChunk(cfg.objectSizeBytes, elem_size) &&
                    count * elem_size >= cfg.objectSizeBytes;
            break;
        }
        if (chunk) {
            // Compiler-directed prefetch for the detected induction
            // stride (section 4.3).
            if (cfg.prefetchEnabled)
                rt.prefetchAhead(addr, 1, cfg.prefetchDepth);
            return std::make_unique<ChunkedStream>(
                *this, addr, elem_size, mode == StreamMode::Write);
        }
        return std::make_unique<GuardedStream>(*this, addr, elem_size);
    }

    void compute(std::uint64_t c) override { rt.clock().advance(c); }

    void
    initWrite(std::uint64_t addr, const void *src, std::size_t len) override
    {
        rt.rawWrite(addr, src, len);
    }

    void
    initRead(std::uint64_t addr, void *dst, std::size_t len) override
    {
        rt.rawRead(addr, dst, len);
    }

    void dropCaches() override { rt.runtime().evacuateAll(); }

    std::uint64_t cycles() const override { return rt.runtime().clock().now(); }

    std::uint64_t
    farEvents() const override
    {
        // Guard events that actually reached the remote node, the
        // analogue of Fastswap's major faults (Figs. 14b / 16b).
        const GuardStats &g = rt.guardStats();
        return g.slowRemoteReads + g.slowRemoteWrites +
               g.localityRemotes;
    }

    std::uint64_t
    guardEvents() const override
    {
        return rt.guardStats().guardTotal();
    }

    std::uint64_t
    bytesFetched() const override
    {
        return netStats().bytesFetched;
    }

    std::uint64_t
    bytesTransferred() const override
    {
        return netStats().totalBytes();
    }

    StatSet
    stats() const override
    {
        StatSet set;
        rt.exportStats(set);
        return set;
    }

    TfmRuntime &tfmRuntime() { return rt; }

  private:
    static RuntimeConfig
    runtimeConfig(const BackendConfig &config)
    {
        RuntimeConfig rc;
        rc.farHeapBytes = config.farHeapBytes;
        rc.localMemBytes = config.localMemBytes;
        rc.objectSizeBytes = config.objectSizeBytes;
        rc.prefetchEnabled = config.prefetchEnabled;
        rc.prefetchDepth = config.prefetchDepth;
        rc.obsLabel = config.obsLabel;
        return rc;
    }

    NetStats
    netStats() const
    {
        // Through the RemoteBackend interface, never the link
        // directly: behind --replay the backend reconstructs these
        // numbers from the recorded net stream.
        return const_cast<TrackFmBackend *>(this)
            ->rt.runtime()
            .backend()
            .netStats();
    }

    void
    chargeBase(AccessHint hint)
    {
        rt.clock().advance(hint == AccessHint::Sequential
                               ? rt.costs().guardedSeqAccessCycles
                               : rt.costs().randAccessCycles);
    }

    BackendConfig cfg;
    mutable TfmRuntime rt;
    ChunkCostModel model;
};

/** Fastswap backend: kernel swap on the unmodified program. */
class FastswapBackend : public MemBackend
{
  public:
    FastswapBackend(const BackendConfig &config, const CostParams &cost_params)
        : fs(fastswapConfig(config), cost_params)
    {}

    std::string name() const override { return "Fastswap"; }

    std::uint64_t alloc(std::uint64_t bytes) override
    {
        return fs.allocate(bytes);
    }

    void dealloc(std::uint64_t addr) override { fs.deallocate(addr); }

    void
    read(std::uint64_t addr, void *dst, std::size_t len,
         AccessHint hint) override
    {
        chargeBase(hint);
        fs.readBytes(addr, dst, len);
    }

    void
    write(std::uint64_t addr, const void *src, std::size_t len,
          AccessHint hint) override
    {
        chargeBase(hint);
        fs.writeBytes(addr, src, len);
    }

    class Stream : public SeqStream
    {
      public:
        Stream(FastswapBackend &backend, std::uint64_t addr,
               std::uint32_t elem_size)
            : b(backend), cur(addr), elemSize(elem_size)
        {}

        void
        read(void *dst) override
        {
            b.fs.clock().advance(b.fs.costs().seqAccessCycles);
            b.fs.readBytes(cur, dst, elemSize);
            cur += elemSize;
        }

        void
        write(const void *src) override
        {
            b.fs.clock().advance(b.fs.costs().seqAccessCycles);
            b.fs.writeBytes(cur, src, elemSize);
            cur += elemSize;
        }

      private:
        FastswapBackend &b;
        std::uint64_t cur;
        std::uint32_t elemSize;
    };

    std::unique_ptr<SeqStream>
    stream(std::uint64_t addr, std::uint32_t elem_size, std::uint64_t count,
           StreamMode mode) override
    {
        (void)count;
        (void)mode;
        return std::make_unique<Stream>(*this, addr, elem_size);
    }

    void compute(std::uint64_t c) override { fs.clock().advance(c); }

    void
    initWrite(std::uint64_t addr, const void *src, std::size_t len) override
    {
        fs.rawWrite(addr, src, len);
    }

    void
    initRead(std::uint64_t addr, void *dst, std::size_t len) override
    {
        fs.rawRead(addr, dst, len);
    }

    void dropCaches() override { fs.evacuateAll(); }

    std::uint64_t cycles() const override { return fs.clock().now(); }

    std::uint64_t
    farEvents() const override
    {
        return fs.stats().majorFaults;
    }

    std::uint64_t guardEvents() const override { return 0; }

    std::uint64_t
    bytesFetched() const override
    {
        return fs.netStats().bytesFetched;
    }

    std::uint64_t
    bytesTransferred() const override
    {
        return fs.netStats().totalBytes();
    }

    StatSet
    stats() const override
    {
        StatSet set;
        fs.exportStats(set);
        return set;
    }

  private:
    static FastswapConfig
    fastswapConfig(const BackendConfig &config)
    {
        FastswapConfig fc;
        fc.farHeapBytes = config.farHeapBytes;
        fc.localMemBytes = config.localMemBytes;
        fc.readaheadEnabled = config.kernelReadahead;
        fc.readaheadPages = config.prefetchDepth;
        fc.obsLabel = config.obsLabel;
        return fc;
    }

    void
    chargeBase(AccessHint hint)
    {
        fs.clock().advance(hint == AccessHint::Sequential
                               ? fs.costs().seqAccessCycles
                               : fs.costs().randAccessCycles);
    }

    mutable FastswapRuntime fs;
};

/**
 * AIFM backend: the library-ported program. Every access is bracketed
 * by (amortized) deref scopes; sequential streams use library iterators
 * with object-window reuse.
 */
class AifmBackend : public MemBackend
{
  public:
    AifmBackend(const BackendConfig &config, const CostParams &cost_params)
        : rt(runtimeConfig(config), cost_params)
    {}

    std::string name() const override { return "AIFM"; }

    std::uint64_t alloc(std::uint64_t bytes) override
    {
        return rt.runtime().allocate(bytes);
    }

    void dealloc(std::uint64_t addr) override
    {
        rt.runtime().deallocate(addr);
    }

    void
    read(std::uint64_t addr, void *dst, std::size_t len,
         AccessHint hint) override
    {
        chargeBase(hint);
        piecewise(addr, dst, nullptr, len, false);
    }

    void
    write(std::uint64_t addr, const void *src, std::size_t len,
          AccessHint hint) override
    {
        chargeBase(hint);
        piecewise(addr, nullptr, src, len, true);
    }

    /** Library iterator stream with a pinned object window. */
    class Stream : public SeqStream
    {
      public:
        Stream(AifmBackend &backend, std::uint64_t addr,
               std::uint32_t elem_size, bool for_write)
            : b(backend), cur(addr), elemSize(elem_size),
              writeMode(for_write)
        {
            refill();
        }

        ~Stream() override
        {
            if (curObj != noObj)
                b.rt.runtime().unpinObject(curObj);
        }

        void
        read(void *dst) override
        {
            b.rt.clock().advance(b.rt.costs().aifmIteratorCycles);
            if (needRefill)
                refill();
            std::memcpy(dst, window + inWindow, elemSize);
            step();
        }

        void
        write(const void *src) override
        {
            b.rt.clock().advance(b.rt.costs().aifmIteratorCycles);
            if (needRefill)
                refill();
            std::memcpy(window + inWindow, src, elemSize);
            step();
        }

      private:
        void
        step()
        {
            cur += elemSize;
            inWindow += elemSize;
            // Lazy refill so a finished loop never walks off the array.
            if (inWindow >= windowLen)
                needRefill = true;
        }

        void
        refill()
        {
            needRefill = false;
            window = b.rt.deref(cur, writeMode);
            auto &runtime = b.rt.runtime();
            const auto &table = runtime.stateTable();
            const std::uint64_t next = table.objectOf(cur);
            runtime.pinObject(next);
            if (curObj != noObj)
                runtime.unpinObject(curObj);
            curObj = next;
            const std::uint64_t in_obj = table.offsetInObject(cur);
            window -= in_obj;
            inWindow = in_obj;
            windowLen = table.objectSize();
        }

        static constexpr std::uint64_t noObj = ~0ull;

        AifmBackend &b;
        std::uint64_t cur;
        std::uint32_t elemSize;
        bool writeMode;
        std::byte *window = nullptr;
        std::uint64_t inWindow = 0;
        std::uint64_t windowLen = 0;
        std::uint64_t curObj = noObj;
        bool needRefill = false;
    };

    std::unique_ptr<SeqStream>
    stream(std::uint64_t addr, std::uint32_t elem_size, std::uint64_t count,
           StreamMode mode) override
    {
        (void)count;
        return std::make_unique<Stream>(*this, addr, elem_size,
                                        mode == StreamMode::Write);
    }

    void compute(std::uint64_t c) override { rt.clock().advance(c); }

    void
    initWrite(std::uint64_t addr, const void *src, std::size_t len) override
    {
        rt.runtime().rawWrite(addr, src, len);
    }

    void
    initRead(std::uint64_t addr, void *dst, std::size_t len) override
    {
        rt.runtime().rawRead(addr, dst, len);
    }

    void dropCaches() override { rt.runtime().evacuateAll(); }

    std::uint64_t cycles() const override { return rt.runtime().clock().now(); }

    std::uint64_t farEvents() const override { return rt.stats().misses; }

    std::uint64_t guardEvents() const override { return 0; }

    std::uint64_t
    bytesFetched() const override
    {
        return netStats().bytesFetched;
    }

    std::uint64_t
    bytesTransferred() const override
    {
        return netStats().totalBytes();
    }

    StatSet
    stats() const override
    {
        StatSet set;
        rt.exportStats(set);
        return set;
    }

  private:
    static RuntimeConfig
    runtimeConfig(const BackendConfig &config)
    {
        RuntimeConfig rc;
        rc.farHeapBytes = config.farHeapBytes;
        rc.localMemBytes = config.localMemBytes;
        rc.objectSizeBytes = config.objectSizeBytes;
        rc.prefetchEnabled = config.prefetchEnabled;
        rc.prefetchDepth = config.prefetchDepth;
        rc.obsLabel = config.obsLabel;
        return rc;
    }

    const NetStats &
    netStats() const
    {
        return const_cast<AifmBackend *>(this)->rt.runtime().net().stats();
    }

    void
    piecewise(std::uint64_t addr, void *dst, const void *src,
              std::size_t len, bool for_write)
    {
        const auto &table = rt.runtime().stateTable();
        std::size_t done = 0;
        while (done < len) {
            const std::uint64_t at = addr + done;
            const std::uint64_t in_obj = table.offsetInObject(at);
            const std::size_t piece = std::min<std::size_t>(
                len - done, table.objectSize() - in_obj);
            std::byte *data = rt.deref(at, for_write);
            if (for_write) {
                std::memcpy(data,
                            static_cast<const std::byte *>(src) + done,
                            piece);
            } else {
                std::memcpy(static_cast<std::byte *>(dst) + done, data,
                            piece);
            }
            done += piece;
        }
    }

    void
    chargeBase(AccessHint hint)
    {
        rt.clock().advance(hint == AccessHint::Sequential
                               ? rt.costs().seqAccessCycles
                               : rt.costs().randAccessCycles);
    }

    mutable AifmRuntime rt;
};

/**
 * TrackFM backend view over a shared, externally-owned runtime: the
 * multi-tenant serving shape, where N tenants' accesses contend in one
 * frame cache and on one remote link. Guard dispatch is per-thread (a
 * bound TfmRuntime::Worker takes the MT paths), so one view can be
 * driven from any worker. Streams are always the naive guarded kind:
 * chunking pins frames across calls, which is single-thread-only.
 */
class SharedTfmBackend : public MemBackend
{
  public:
    explicit SharedTfmBackend(TfmRuntime &runtime) : rt(runtime) {}

    std::string name() const override { return "TrackFM-shared"; }

    std::uint64_t alloc(std::uint64_t bytes) override
    {
        return rt.tfmMalloc(bytes);
    }

    void dealloc(std::uint64_t addr) override { rt.tfmFree(addr); }

    void
    read(std::uint64_t addr, void *dst, std::size_t len,
         AccessHint hint) override
    {
        chargeBase(hint);
        rt.readGuarded(addr, dst, len);
    }

    void
    write(std::uint64_t addr, const void *src, std::size_t len,
          AccessHint hint) override
    {
        chargeBase(hint);
        rt.writeGuarded(addr, src, len);
    }

    class SharedStream : public SeqStream
    {
      public:
        SharedStream(TfmRuntime &runtime, std::uint64_t addr,
                     std::uint32_t elem_size)
            : rt(runtime), cur(addr), elemSize(elem_size)
        {}

        void
        read(void *dst) override
        {
            rt.clock().advance(rt.costs().guardedSeqAccessCycles);
            rt.readGuarded(cur, dst, elemSize);
            cur += elemSize;
        }

        void
        write(const void *src) override
        {
            rt.clock().advance(rt.costs().guardedSeqAccessCycles);
            rt.writeGuarded(cur, src, elemSize);
            cur += elemSize;
        }

      private:
        TfmRuntime &rt;
        std::uint64_t cur;
        std::uint32_t elemSize;
    };

    std::unique_ptr<SeqStream>
    stream(std::uint64_t addr, std::uint32_t elem_size, std::uint64_t,
           StreamMode) override
    {
        return std::make_unique<SharedStream>(rt, addr, elem_size);
    }

    void compute(std::uint64_t c) override { rt.clock().advance(c); }

    void
    initWrite(std::uint64_t addr, const void *src, std::size_t len) override
    {
        rt.rawWrite(addr, src, len);
    }

    void
    initRead(std::uint64_t addr, void *dst, std::size_t len) override
    {
        rt.rawRead(addr, dst, len);
    }

    void dropCaches() override { rt.runtime().evacuateAll(); }

    std::uint64_t cycles() const override { return rt.runtime().clock().now(); }

    std::uint64_t
    farEvents() const override
    {
        const GuardStats g = rt.mergedGuardStats();
        return g.slowRemoteReads + g.slowRemoteWrites + g.localityRemotes;
    }

    std::uint64_t
    guardEvents() const override
    {
        return rt.mergedGuardStats().guardTotal();
    }

    std::uint64_t
    bytesFetched() const override
    {
        return backendNetStats().bytesFetched;
    }

    std::uint64_t
    bytesTransferred() const override
    {
        return backendNetStats().totalBytes();
    }

    StatSet
    stats() const override
    {
        StatSet set;
        rt.exportStats(set);
        return set;
    }

  private:
    NetStats
    backendNetStats() const
    {
        return const_cast<SharedTfmBackend *>(this)
            ->rt.runtime()
            .backend()
            .netStats();
    }

    void
    chargeBase(AccessHint hint)
    {
        rt.clock().advance(hint == AccessHint::Sequential
                               ? rt.costs().guardedSeqAccessCycles
                               : rt.costs().randAccessCycles);
    }

    TfmRuntime &rt;
};

} // anonymous namespace

std::unique_ptr<MemBackend>
makeBackend(const BackendConfig &config, const CostParams &costs)
{
    switch (config.kind) {
      case SystemKind::Local:
        return std::make_unique<LocalBackend>(config, costs);
      case SystemKind::TrackFm:
        return std::make_unique<TrackFmBackend>(config, costs);
      case SystemKind::Fastswap:
        return std::make_unique<FastswapBackend>(config, costs);
      case SystemKind::Aifm:
        return std::make_unique<AifmBackend>(config, costs);
    }
    TFM_PANIC("unknown backend kind");
}

std::unique_ptr<MemBackend>
makeSharedBackend(TfmRuntime &runtime)
{
    return std::make_unique<SharedTfmBackend>(runtime);
}

const char *
systemName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::Local:
        return "Local";
      case SystemKind::TrackFm:
        return "TrackFM";
      case SystemKind::Fastswap:
        return "Fastswap";
      case SystemKind::Aifm:
        return "AIFM";
    }
    return "?";
}

BackendSnapshot
snapshot(const MemBackend &backend)
{
    BackendSnapshot s;
    s.cycles = backend.cycles();
    s.farEvents = backend.farEvents();
    s.guardEvents = backend.guardEvents();
    s.bytesFetched = backend.bytesFetched();
    s.bytesTransferred = backend.bytesTransferred();
    return s;
}

BackendSnapshot
deltaSince(const BackendSnapshot &a, const BackendSnapshot &b)
{
    BackendSnapshot d;
    d.cycles = b.cycles - a.cycles;
    d.farEvents = b.farEvents - a.farEvents;
    d.guardEvents = b.guardEvents - a.guardEvents;
    d.bytesFetched = b.bytesFetched - a.bytesFetched;
    d.bytesTransferred = b.bytesTransferred - a.bytesTransferred;
    return d;
}

} // namespace tfm
