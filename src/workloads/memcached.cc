#include "memcached.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"
#include "sim/usr_dist.hh"
#include "sim/zipf.hh"

namespace tfm
{

std::uint64_t
MemcachedWorkload::hashKey(std::uint64_t key)
{
    std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

MemcachedWorkload::MemcachedWorkload(MemBackend &backend,
                                     const MemcachedParams &parameters)
    : b(backend), params(parameters)
{
    numBuckets = 16;
    while (numBuckets < params.numKeys * 2)
        numBuckets <<= 1;
    indexAddr = b.alloc(numBuckets * sizeof(Bucket));
    const Bucket empty{0, 0};
    for (std::uint64_t i = 0; i < numBuckets; i++)
        b.initWrite(indexAddr + i * sizeof(Bucket), &empty, sizeof(Bucket));
    footprint = numBuckets * sizeof(Bucket);

    // Populate items with USR-style sizes (unmetered setup). Values are
    // a repeating byte derived from the key so gets can be verified.
    UsrSizeDist sizes(params.seed);
    std::vector<std::uint8_t> value(512);
    for (std::uint64_t k = 0; k < params.numKeys; k++) {
        const KvSize s = sizes.next();
        const std::uint64_t item_bytes =
            sizeof(ItemHeader) + s.keyBytes + s.valueBytes;
        const std::uint64_t item = b.alloc(item_bytes);
        footprint += item_bytes;
        const ItemHeader header{k, s.keyBytes, s.valueBytes};
        b.initWrite(item, &header, sizeof(header));
        for (std::uint32_t i = 0; i < s.valueBytes; i++)
            value[i] = static_cast<std::uint8_t>(k * 131 + i);
        b.initWrite(item + sizeof(ItemHeader) + s.keyBytes, value.data(),
                    s.valueBytes);

        std::uint64_t slot = hashKey(k) & (numBuckets - 1);
        while (true) {
            Bucket bucket;
            b.initRead(indexAddr + slot * sizeof(Bucket), &bucket,
                       sizeof(bucket));
            if (bucket.itemAddr == 0) {
                const Bucket fresh{item, hashKey(k)};
                b.initWrite(indexAddr + slot * sizeof(Bucket), &fresh,
                            sizeof(fresh));
                break;
            }
            slot = (slot + 1) & (numBuckets - 1);
        }
    }

    keySampler = std::make_unique<ZipfGenerator>(
        params.numKeys, params.zipfSkew, params.seed);
    b.dropCaches();
}

int
MemcachedWorkload::get(std::uint64_t key, void *value_out,
                       std::uint32_t max_len)
{
    b.compute(12); // request parsing + hashing
    const std::uint64_t fingerprint = hashKey(key);
    std::uint64_t slot = fingerprint & (numBuckets - 1);
    while (true) {
        Bucket bucket;
        b.read(indexAddr + slot * sizeof(Bucket), &bucket, sizeof(bucket),
               AccessHint::Random);
        if (bucket.itemAddr == 0)
            return -1;
        if (bucket.keyFingerprint == fingerprint) {
            ItemHeader header;
            b.read(bucket.itemAddr, &header, sizeof(header),
                   AccessHint::Random);
            if (header.key == key) {
                const std::uint32_t len =
                    std::min(header.valueLen, max_len);
                b.read(bucket.itemAddr + sizeof(ItemHeader) +
                           header.keyLen,
                       value_out, len, AccessHint::Random);
                return static_cast<int>(len);
            }
        }
        slot = (slot + 1) & (numBuckets - 1);
    }
}

void
MemcachedWorkload::set(std::uint64_t key, const void *value,
                       std::uint32_t value_len)
{
    b.compute(12);
    const std::uint64_t fingerprint = hashKey(key);
    std::uint64_t slot = fingerprint & (numBuckets - 1);
    while (true) {
        Bucket bucket;
        b.read(indexAddr + slot * sizeof(Bucket), &bucket, sizeof(bucket),
               AccessHint::Random);
        if (bucket.itemAddr == 0) {
            // Fresh item.
            const std::uint32_t key_len = 16;
            const std::uint64_t item =
                b.alloc(sizeof(ItemHeader) + key_len + value_len);
            const ItemHeader header{key, key_len, value_len};
            b.write(item, &header, sizeof(header), AccessHint::Random);
            b.write(item + sizeof(ItemHeader) + key_len, value, value_len,
                    AccessHint::Random);
            const Bucket fresh{item, fingerprint};
            b.write(indexAddr + slot * sizeof(Bucket), &fresh,
                    sizeof(fresh), AccessHint::Random);
            return;
        }
        if (bucket.keyFingerprint == fingerprint) {
            ItemHeader header;
            b.read(bucket.itemAddr, &header, sizeof(header),
                   AccessHint::Random);
            if (header.key == key) {
                // Update in place when it fits, else reallocate.
                if (value_len <= header.valueLen) {
                    header.valueLen = value_len;
                    b.write(bucket.itemAddr, &header, sizeof(header),
                            AccessHint::Random);
                    b.write(bucket.itemAddr + sizeof(ItemHeader) +
                                header.keyLen,
                            value, value_len, AccessHint::Random);
                } else {
                    b.dealloc(bucket.itemAddr);
                    const std::uint64_t item = b.alloc(
                        sizeof(ItemHeader) + header.keyLen + value_len);
                    const ItemHeader fresh_header{key, header.keyLen,
                                                  value_len};
                    b.write(item, &fresh_header, sizeof(fresh_header),
                            AccessHint::Random);
                    b.write(item + sizeof(ItemHeader) + header.keyLen,
                            value, value_len, AccessHint::Random);
                    Bucket updated = bucket;
                    updated.itemAddr = item;
                    b.write(indexAddr + slot * sizeof(Bucket), &updated,
                            sizeof(updated), AccessHint::Random);
                }
                return;
            }
        }
        slot = (slot + 1) & (numBuckets - 1);
    }
}

MemcachedResult
MemcachedWorkload::run()
{
    MemcachedResult result;
    std::uint8_t value[512];
    const BackendSnapshot before = snapshot(b);
    for (std::uint64_t i = 0; i < params.numGets; i++) {
        const std::uint64_t key = keySampler->next();
        const int len = get(key, value, sizeof(value));
        if (len >= 0) {
            result.hits++;
            result.valueBytesRead += static_cast<std::uint64_t>(len);
            // Spot-check payload integrity on a sample of gets.
            if ((result.hits & 1023u) == 0 && len > 0) {
                TFM_ASSERT(value[0] ==
                               static_cast<std::uint8_t>(key * 131),
                           "memcached value corrupted");
            }
        }
    }
    result.delta = deltaSince(before, snapshot(b));
    return result;
}

} // namespace tfm
