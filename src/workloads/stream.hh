/**
 * @file
 * STREAM-style sequential kernels (McCalpin) — the microbenchmark the
 * paper uses for Figures 7, 10, 11 and 12.
 *
 * "Sum"  : one guarded read per iteration   (sum += a[i])
 * "Copy" : one read and one write           (b[i] = a[i])
 * "Triad": two reads and one write          (c[i] = a[i] + s * b[i])
 *
 * Element size is configurable (4 or 8 bytes): the paper's arrays hold
 * small integers, and at 4 KB objects the 4-byte case sits above the
 * chunking break-even density while the 8-byte case sits below it.
 */

#ifndef TRACKFM_WORKLOADS_STREAM_HH
#define TRACKFM_WORKLOADS_STREAM_HH

#include <cstdint>

#include "backend.hh"

namespace tfm
{

/** Result of one STREAM kernel run. */
struct StreamResult
{
    BackendSnapshot delta;   ///< counters over the measurement window
    std::int64_t checksum = 0; ///< for correctness verification
    std::uint64_t bytesTouched = 0;

    /** Far-memory bandwidth in MB/s of simulated time (Fig. 10). */
    double bandwidthMBps(double cpu_ghz) const;
};

/**
 * STREAM working set: two or three integer arrays on one backend.
 */
class StreamWorkload
{
  public:
    /**
     * @param backend memory system under test
     * @param elements elements per array
     * @param arrays 2 for sum/copy, 3 to also run triad
     * @param element_bytes 4 (int32) or 8 (int64)
     */
    StreamWorkload(MemBackend &backend, std::uint64_t elements,
                   int arrays = 2, std::uint32_t element_bytes = 8);

    /** Array footprint in bytes across all arrays. */
    std::uint64_t workingSetBytes() const;

    /** sum += a[i]; returns the measured window. */
    StreamResult runSum(int passes = 1);

    /** b[i] = a[i]. */
    StreamResult runCopy(int passes = 1);

    /** c[i] = a[i] + s * b[i]. */
    StreamResult runTriad(int passes = 1, std::int64_t scale = 3);

    /** Expected sum of one pass over the source array. */
    std::int64_t expectedSum() const;

    /** Verify the copy destination matches the source (unmetered). */
    bool verifyCopy();

    std::uint64_t elements() const { return n; }
    std::uint32_t elementBytes() const { return elemBytes; }

  private:
    /// Element value pattern: a[i] = i % 1000 - 500 (fits in i32).
    static std::int64_t
    valueAt(std::uint64_t i)
    {
        return static_cast<std::int64_t>(i % 1000) - 500;
    }

    std::int64_t readElem(SeqStream &stream);
    void writeElem(SeqStream &stream, std::int64_t value);
    void initElem(std::uint64_t base, std::uint64_t index,
                  std::int64_t value);
    std::int64_t peekElem(std::uint64_t base, std::uint64_t index);

    MemBackend &b;
    std::uint64_t n;
    int numArrays;
    std::uint32_t elemBytes;
    std::uint64_t srcAddr = 0;
    std::uint64_t dstAddr = 0;
    std::uint64_t thirdAddr = 0;
};

} // namespace tfm

#endif // TRACKFM_WORKLOADS_STREAM_HH
