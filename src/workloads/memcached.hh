/**
 * @file
 * Memcached-style in-memory key-value store (Figure 16 of the paper).
 *
 * Get-dominated workload with USR key/value sizes (tiny values, small
 * keys), zipf-distributed key popularity, and a hash index over
 * individually heap-allocated items — the fine-grained, low-spatial-
 * locality pattern that makes kernel paging suffer 4 KB I/O
 * amplification.
 */

#ifndef TRACKFM_WORKLOADS_MEMCACHED_HH
#define TRACKFM_WORKLOADS_MEMCACHED_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "backend.hh"
#include "sim/zipf.hh"

namespace tfm
{

/** Memcached experiment parameters. */
struct MemcachedParams
{
    std::uint64_t numKeys = 100000;
    std::uint64_t numGets = 500000;
    double zipfSkew = 1.02;
    std::uint64_t seed = 13;
};

/** Result of one run. */
struct MemcachedResult
{
    BackendSnapshot delta;
    std::uint64_t hits = 0;
    std::uint64_t valueBytesRead = 0;

    double
    throughputKopsPerSec(double cpu_ghz) const
    {
        if (delta.cycles == 0)
            return 0.0;
        const double seconds =
            static_cast<double>(delta.cycles) / (cpu_ghz * 1e9);
        return static_cast<double>(hits) / 1e3 / seconds;
    }
};

/**
 * A get-oriented KV store: a bucketed hash index whose entries point at
 * per-item heap allocations (header + key bytes + value bytes).
 */
class MemcachedWorkload
{
  public:
    MemcachedWorkload(MemBackend &backend, const MemcachedParams &params);

    std::uint64_t workingSetBytes() const { return footprint; }

    /** Run the get trace. */
    MemcachedResult run();

    /** Set (insert or update) — used by tests and the KV example. */
    void set(std::uint64_t key, const void *value,
             std::uint32_t value_len);

    /** Metered get; returns value length or -1 when absent. */
    int get(std::uint64_t key, void *value_out, std::uint32_t max_len);

  private:
    /// Item header preceding key/value payload in its heap allocation.
    struct ItemHeader
    {
        std::uint64_t key;
        std::uint32_t keyLen;
        std::uint32_t valueLen;
    };

    /// One hash-index bucket entry (padded to 16 bytes).
    struct Bucket
    {
        std::uint64_t itemAddr; ///< 0 when empty
        std::uint64_t keyFingerprint;
    };

    static std::uint64_t hashKey(std::uint64_t key);

    MemBackend &b;
    MemcachedParams params;
    std::uint64_t numBuckets;
    std::uint64_t indexAddr = 0;
    std::uint64_t footprint = 0;
    /// Client-side key sampler; every run() draws a fresh trace, as a
    /// real load generator would.
    std::unique_ptr<ZipfGenerator> keySampler;
};

} // namespace tfm

#endif // TRACKFM_WORKLOADS_MEMCACHED_HH
