#include "stream.hh"

#include "sim/logging.hh"

namespace tfm
{

double
StreamResult::bandwidthMBps(double cpu_ghz) const
{
    if (delta.cycles == 0)
        return 0.0;
    const double seconds =
        static_cast<double>(delta.cycles) / (cpu_ghz * 1e9);
    return static_cast<double>(bytesTouched) / 1e6 / seconds;
}

StreamWorkload::StreamWorkload(MemBackend &backend, std::uint64_t elements,
                               int arrays, std::uint32_t element_bytes)
    : b(backend), n(elements), numArrays(arrays), elemBytes(element_bytes)
{
    TFM_ASSERT(arrays == 2 || arrays == 3, "stream uses 2 or 3 arrays");
    TFM_ASSERT(element_bytes == 4 || element_bytes == 8,
               "stream elements are 4 or 8 bytes");
    srcAddr = b.alloc(n * elemBytes);
    dstAddr = b.alloc(n * elemBytes);
    if (arrays == 3)
        thirdAddr = b.alloc(n * elemBytes);
    for (std::uint64_t i = 0; i < n; i++) {
        initElem(srcAddr, i, valueAt(i));
        initElem(dstAddr, i, 0);
        if (arrays == 3)
            initElem(thirdAddr, i, 0);
    }
    b.dropCaches();
}

std::int64_t
StreamWorkload::readElem(SeqStream &stream)
{
    if (elemBytes == 4) {
        std::int32_t value;
        stream.read(&value);
        return value;
    }
    std::int64_t value;
    stream.read(&value);
    return value;
}

void
StreamWorkload::writeElem(SeqStream &stream, std::int64_t value)
{
    if (elemBytes == 4) {
        const auto narrow = static_cast<std::int32_t>(value);
        stream.write(&narrow);
        return;
    }
    stream.write(&value);
}

void
StreamWorkload::initElem(std::uint64_t base, std::uint64_t index,
                         std::int64_t value)
{
    if (elemBytes == 4) {
        b.initT<std::int32_t>(base + index * 4,
                              static_cast<std::int32_t>(value));
    } else {
        b.initT<std::int64_t>(base + index * 8, value);
    }
}

std::int64_t
StreamWorkload::peekElem(std::uint64_t base, std::uint64_t index)
{
    if (elemBytes == 4)
        return b.peekT<std::int32_t>(base + index * 4);
    return b.peekT<std::int64_t>(base + index * 8);
}

std::uint64_t
StreamWorkload::workingSetBytes() const
{
    return static_cast<std::uint64_t>(numArrays) * n * elemBytes;
}

std::int64_t
StreamWorkload::expectedSum() const
{
    std::int64_t sum = 0;
    for (std::uint64_t i = 0; i < n; i++)
        sum += valueAt(i);
    return sum;
}

StreamResult
StreamWorkload::runSum(int passes)
{
    StreamResult result;
    const BackendSnapshot before = snapshot(b);
    std::int64_t sum = 0;
    for (int p = 0; p < passes; p++) {
        auto src = b.stream(srcAddr, elemBytes, n, StreamMode::Read);
        for (std::uint64_t i = 0; i < n; i++)
            sum += readElem(*src);
    }
    result.delta = deltaSince(before, snapshot(b));
    result.checksum = sum;
    result.bytesTouched =
        static_cast<std::uint64_t>(passes) * n * elemBytes;
    return result;
}

StreamResult
StreamWorkload::runCopy(int passes)
{
    StreamResult result;
    const BackendSnapshot before = snapshot(b);
    std::int64_t last = 0;
    for (int p = 0; p < passes; p++) {
        auto src = b.stream(srcAddr, elemBytes, n, StreamMode::Read);
        auto dst = b.stream(dstAddr, elemBytes, n, StreamMode::Write);
        for (std::uint64_t i = 0; i < n; i++) {
            const std::int64_t value = readElem(*src);
            writeElem(*dst, value);
            last = value;
        }
    }
    result.delta = deltaSince(before, snapshot(b));
    result.checksum = last;
    result.bytesTouched =
        static_cast<std::uint64_t>(passes) * 2 * n * elemBytes;
    return result;
}

StreamResult
StreamWorkload::runTriad(int passes, std::int64_t scale)
{
    TFM_ASSERT(numArrays == 3, "triad needs a third array");
    StreamResult result;
    const BackendSnapshot before = snapshot(b);
    std::int64_t last = 0;
    for (int p = 0; p < passes; p++) {
        auto a = b.stream(srcAddr, elemBytes, n, StreamMode::Read);
        auto bb = b.stream(dstAddr, elemBytes, n, StreamMode::Read);
        auto c = b.stream(thirdAddr, elemBytes, n, StreamMode::Write);
        for (std::uint64_t i = 0; i < n; i++) {
            const std::int64_t va = readElem(*a);
            const std::int64_t vb = readElem(*bb);
            const std::int64_t vc = va + scale * vb;
            b.compute(1);
            writeElem(*c, vc);
            last = vc;
        }
    }
    result.delta = deltaSince(before, snapshot(b));
    result.checksum = last;
    result.bytesTouched =
        static_cast<std::uint64_t>(passes) * 3 * n * elemBytes;
    return result;
}

bool
StreamWorkload::verifyCopy()
{
    for (std::uint64_t i = 0; i < n; i++) {
        if (peekElem(srcAddr, i) != peekElem(dstAddr, i))
            return false;
    }
    return true;
}

} // namespace tfm
