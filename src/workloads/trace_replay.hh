/**
 * @file
 * Trace-driven workload replayer.
 *
 * Many far-memory studies (including AIFM's and Fastswap's) drive the
 * system from recorded or synthesized access traces. This replayer
 * executes a sequence of {read, write, stream} operations against any
 * MemBackend, and ships generators for the standard mixes (uniform,
 * zipfian, sequential, strided, and a locality-phased mix), so new
 * experiments can be composed without writing workload code.
 */

#ifndef TRACKFM_WORKLOADS_TRACE_REPLAY_HH
#define TRACKFM_WORKLOADS_TRACE_REPLAY_HH

#include <cstdint>
#include <vector>

#include "backend.hh"

namespace tfm
{

/** One trace operation. */
struct TraceOp
{
    enum class Kind : std::uint8_t
    {
        Read,       ///< random-hint read of `size` bytes at `offset`
        Write,      ///< random-hint write
        StreamRead, ///< sequential stream of `count` elements of `size`
        StreamWrite
    };

    Kind kind = Kind::Read;
    std::uint64_t offset = 0; ///< byte offset within the trace arena
    std::uint32_t size = 8;   ///< access/element size in bytes
    std::uint64_t count = 1;  ///< elements (streams only)
};

/** Replay statistics. */
struct TraceReplayResult
{
    BackendSnapshot delta;
    std::uint64_t operations = 0;
    std::uint64_t bytesAccessed = 0;
    /// XOR/sum fingerprint over all data read; equal across backends
    /// for equal traces.
    std::uint64_t checksum = 0;
};

/**
 * Owns one far-memory arena on a backend and replays traces against it.
 */
class TraceReplayer
{
  public:
    /**
     * @param backend the memory system under test
     * @param arena_bytes the arena every trace offset indexes into
     */
    TraceReplayer(MemBackend &backend, std::uint64_t arena_bytes);

    /** Replay a trace; offsets are clamped into the arena. */
    TraceReplayResult replay(const std::vector<TraceOp> &trace);

    std::uint64_t arenaBytes() const { return arenaSize; }

    /** @name Trace generators
     * @{ */
    /** Uniform random single-word accesses, `write_percent`% writes. */
    static std::vector<TraceOp> uniform(std::uint64_t operations,
                                        std::uint64_t arena_bytes,
                                        int write_percent,
                                        std::uint64_t seed);

    /** Zipf-popular blocks of `block_bytes` (hot-set workloads). */
    static std::vector<TraceOp> zipfian(std::uint64_t operations,
                                        std::uint64_t arena_bytes,
                                        std::uint32_t block_bytes,
                                        double skew, std::uint64_t seed);

    /** Whole-arena sequential sweeps (STREAM-like). */
    static std::vector<TraceOp> sequentialSweeps(int sweeps,
                                                 std::uint64_t arena_bytes,
                                                 std::uint32_t elem_bytes,
                                                 bool writes);

    /**
     * Phased mix: alternating sequential-sweep and random-burst phases
     * (the locality phase changes that stress prefetcher training).
     */
    static std::vector<TraceOp> phased(int phases,
                                       std::uint64_t ops_per_phase,
                                       std::uint64_t arena_bytes,
                                       std::uint64_t seed);
    /** @} */

  private:
    MemBackend &b;
    std::uint64_t arenaSize;
    std::uint64_t arenaAddr;
};

} // namespace tfm

#endif // TRACKFM_WORKLOADS_TRACE_REPLAY_HH
