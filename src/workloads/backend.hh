/**
 * @file
 * The pluggable memory-system interface the application benchmarks are
 * written against.
 *
 * Every workload in src/workloads runs unmodified on four backends:
 *
 *  - Local:    all memory local (the "local-only" normalization line);
 *  - TrackFM:  compiler-transformed program — every heap access goes
 *              through a guard, sequential loops may be chunked and
 *              prefetched per the compiler's cost model;
 *  - Fastswap: unmodified program on kernel swap — page faults;
 *  - AIFM:     programmer-ported program using remote data structures.
 *
 * This mirrors the paper's methodology: one source program, four memory
 * systems, identical access patterns.
 */

#ifndef TRACKFM_WORKLOADS_BACKEND_HH
#define TRACKFM_WORKLOADS_BACKEND_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "sim/stats.hh"

namespace tfm
{

/** Locality hint for the base (CPU-side) cost of one access. */
enum class AccessHint
{
    Sequential, ///< streaming, vectorizable access
    Random      ///< dependent or randomly addressed access
};

/** Direction of a sequential stream. */
enum class StreamMode
{
    Read,
    Write
};

/**
 * A sequential element stream: the backend-specific best implementation
 * of "for (i = 0; i < n; i++) use(a[i])".
 */
class SeqStream
{
  public:
    virtual ~SeqStream() = default;
    /** Read the current element into @p dst and advance. */
    virtual void read(void *dst) = 0;
    /** Write the current element from @p src and advance. */
    virtual void write(const void *src) = 0;
};

/** Abstract memory system. Addresses are backend-specific handles. */
class MemBackend
{
  public:
    virtual ~MemBackend() = default;

    virtual std::string name() const = 0;

    /** @name Allocation
     * @{ */
    virtual std::uint64_t alloc(std::uint64_t bytes) = 0;
    virtual void dealloc(std::uint64_t addr) = 0;
    /** @} */

    /** @name Metered access
     * @{ */
    virtual void read(std::uint64_t addr, void *dst, std::size_t len,
                      AccessHint hint) = 0;
    virtual void write(std::uint64_t addr, const void *src, std::size_t len,
                       AccessHint hint) = 0;
    /**
     * Open a sequential stream of @p count elements of @p elem_size
     * bytes starting at @p addr.
     */
    virtual std::unique_ptr<SeqStream> stream(std::uint64_t addr,
                                              std::uint32_t elem_size,
                                              std::uint64_t count,
                                              StreamMode mode) = 0;
    /** Charge @p cycles of pure compute (no memory system involvement). */
    virtual void compute(std::uint64_t cycles) = 0;
    /** @} */

    /** @name Unmetered initialization / verification
     * @{ */
    virtual void initWrite(std::uint64_t addr, const void *src,
                           std::size_t len) = 0;
    virtual void initRead(std::uint64_t addr, void *dst,
                          std::size_t len) = 0;
    /** @} */

    /** Push all cached state remote so measurement starts cold. */
    virtual void dropCaches() = 0;

    /** @name Measurement
     * @{ */
    /** Simulated cycles elapsed on this backend's clock. */
    virtual std::uint64_t cycles() const = 0;
    /**
     * Far-memory events: TrackFM slow-path + locality guards, Fastswap
     * major faults, AIFM misses, 0 for local (Figs. 14b / 16b).
     */
    virtual std::uint64_t farEvents() const = 0;
    /** All guard events including fast paths (TrackFM; 0 elsewhere). */
    virtual std::uint64_t guardEvents() const = 0;
    /** Payload bytes fetched from the remote node. */
    virtual std::uint64_t bytesFetched() const = 0;
    /** Total payload bytes moved in either direction. */
    virtual std::uint64_t bytesTransferred() const = 0;
    /** Full statistics export. */
    virtual StatSet stats() const = 0;
    /** @} */

    /** @name Typed sugar
     * @{ */
    template <typename T>
    T
    readT(std::uint64_t addr, AccessHint hint)
    {
        T value;
        read(addr, &value, sizeof(T), hint);
        return value;
    }

    template <typename T>
    void
    writeT(std::uint64_t addr, const T &value, AccessHint hint)
    {
        write(addr, &value, sizeof(T), hint);
    }

    template <typename T>
    void
    initT(std::uint64_t addr, const T &value)
    {
        initWrite(addr, &value, sizeof(T));
    }

    template <typename T>
    T
    peekT(std::uint64_t addr)
    {
        T value;
        initRead(addr, &value, sizeof(T));
        return value;
    }
    /** @} */
};

/** Point-in-time counters for windowed measurement. */
struct BackendSnapshot
{
    std::uint64_t cycles = 0;
    std::uint64_t farEvents = 0;
    std::uint64_t guardEvents = 0;
    std::uint64_t bytesFetched = 0;
    std::uint64_t bytesTransferred = 0;
};

/** Capture current counters. */
BackendSnapshot snapshot(const MemBackend &backend);

/** Counter deltas between two snapshots (b - a). */
BackendSnapshot deltaSince(const BackendSnapshot &a,
                           const BackendSnapshot &b);

} // namespace tfm

#endif // TRACKFM_WORKLOADS_BACKEND_HH
