/**
 * @file
 * Columnar dataframe analytics workload — the paper's NYC-taxi Kaggle
 * application (Figures 14 and 15), ported from the AIFM evaluation.
 *
 * The dataset is synthesized with the same column structure as the
 * NYC taxi-trip table (the Kaggle original is not redistributable);
 * every query is a column scan or filter with the paper's key property:
 * almost no temporal locality, very high spatial locality. The
 * aggregation query additionally iterates over many small row groups,
 * providing the low-density loops Figure 15 needs.
 */

#ifndef TRACKFM_WORKLOADS_DATAFRAME_HH
#define TRACKFM_WORKLOADS_DATAFRAME_HH

#include <cstdint>
#include <vector>

#include "backend.hh"

namespace tfm
{

/** Dataframe experiment parameters. */
struct DataframeParams
{
    std::uint64_t numRows = 200000;
    /// Rows per vendor row-group in the aggregation query.
    std::uint32_t rowGroupSize = 16;
    std::uint64_t seed = 23;
};

/** Aggregate results of the full query suite (for verification). */
struct DataframeAnswers
{
    std::uint64_t tripsWithManyPassengers = 0;
    std::uint64_t longTrips = 0;
    std::int64_t totalFareByHour[24] = {};
    std::int64_t groupAggregate = 0;
};

/** Result of one run. */
struct DataframeResult
{
    BackendSnapshot delta;
    DataframeAnswers answers;
};

/**
 * A taxi-trip table in far memory, column-major.
 *
 * Columns: pickup time (i64 seconds), dropoff time (i64), passenger
 * count (i32), trip distance (i32, hundredths of a mile), fare (i32,
 * cents), vendor (i32). The fare/distance/passenger columns are 4-byte
 * (high chunking density); the group aggregation walks 8-byte values in
 * tiny per-vendor groups (low density + short trip counts).
 */
class DataframeWorkload
{
  public:
    DataframeWorkload(MemBackend &backend, const DataframeParams &params);

    std::uint64_t workingSetBytes() const;

    /** Run the four-query suite once. */
    DataframeResult run();

    /**
     * Serving-style point query: fetch one trip's passenger count,
     * distance, and fare (three random 4-byte column reads) and reduce
     * them. The per-request analytics op the traffic scheduler
     * dispatches; @p row must be below numRows.
     */
    std::int64_t pointQuery(std::uint64_t row);

    /** Reference answers computed CPU-side during generation. */
    const DataframeAnswers &expected() const { return reference; }

  private:
    /** Q1: histogram passenger counts (4-byte column scan). */
    std::uint64_t passengerQuery();
    /** Q2: filter trips longer than 10 miles (4-byte column scan). */
    std::uint64_t distanceQuery();
    /** Q3: total fare by pickup hour (two 4-byte parallel scans over
     *  the parsed hour column and the fare column). */
    void fareByHourQuery(std::int64_t out[24]);
    /** Q4: per-vendor row-group aggregation (many tiny 8-byte loops). */
    std::int64_t groupAggregationQuery();

    MemBackend &b;
    DataframeParams params;
    std::uint64_t pickupAddr = 0;
    std::uint64_t pickupHourAddr = 0; ///< parsed pickup hour (i32)
    std::uint64_t dropoffAddr = 0;
    std::uint64_t passengerAddr = 0;
    std::uint64_t distanceAddr = 0;
    std::uint64_t fareAddr = 0;
    std::uint64_t vendorAddr = 0;
    /// Per-row-group 8-byte duration values for the aggregation query,
    /// one small allocation per group.
    std::vector<std::uint64_t> groupAddrs;
    DataframeAnswers reference;
};

} // namespace tfm

#endif // TRACKFM_WORKLOADS_DATAFRAME_HH
