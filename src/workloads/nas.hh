/**
 * @file
 * Serial NAS-style kernels (Table 3 / Figure 17 of the paper).
 *
 * Five kernels with the access-pattern structure of the NAS Parallel
 * Benchmarks' C++ serial versions the paper evaluates:
 *
 *  - CG: conjugate-gradient iterations over a CSR sparse matrix —
 *        sequential matrix scans plus random gathers from the x vector;
 *  - FT: 3D FFT — per-line butterfly passes along all three dimensions
 *        (contiguous, nx-strided, nx*ny-strided) with strong temporal
 *        reuse inside a line and deeply nested tight loops;
 *  - IS: integer bucket sort — sequential key scan, small histogram,
 *        then a random scatter into the ranked output;
 *  - MG: multigrid V-cycle — 7-point stencil smoothing at several
 *        resolutions;
 *  - SP: scalar penta-diagonal solver — forward/backward line sweeps
 *        over multiple coefficient arrays.
 *
 * Each kernel takes a `preOptimized` flag modelling the paper's
 * Figure 17b experiment: without pre-optimization (the default NOELLE
 * pipeline) the generated code performs redundant loads that each carry
 * a guard; with the O1 pipeline those loads are eliminated (the paper
 * measured 6x fewer memory instructions for FT and 4x for SP).
 */

#ifndef TRACKFM_WORKLOADS_NAS_HH
#define TRACKFM_WORKLOADS_NAS_HH

#include <cstdint>
#include <memory>
#include <string>

#include "backend.hh"

namespace tfm
{

/** NAS kernel parameters. */
struct NasParams
{
    /// Problem scale knob; each kernel maps it to its own dimensions.
    std::uint32_t scale = 16;
    std::uint32_t iterations = 1;
    /// Run the "TFM/O1" variant: redundant loads eliminated.
    bool preOptimized = false;
    std::uint64_t seed = 31;
};

/** Result of one kernel run. */
struct NasResult
{
    BackendSnapshot delta;
    double checksum = 0.0;
};

/** Common kernel interface. */
class NasKernel
{
  public:
    virtual ~NasKernel() = default;
    virtual std::string name() const = 0;
    virtual std::uint64_t workingSetBytes() const = 0;
    virtual NasResult run() = 0;
};

/** Instantiate a kernel by its NAS name ("cg", "ft", "is", "mg", "sp"). */
std::unique_ptr<NasKernel> makeNasKernel(const std::string &name,
                                         MemBackend &backend,
                                         const NasParams &params);

} // namespace tfm

#endif // TRACKFM_WORKLOADS_NAS_HH
