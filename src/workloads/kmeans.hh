/**
 * @file
 * k-means clustering workload (Figure 8 / Figure 15 companion).
 *
 * Reproduces the structure that makes indiscriminate loop chunking
 * harmful in the paper: many nested inner loops with a tiny iteration
 * space (one point's features at a time — far less than one object per
 * loop entry, so a locality-invariant guard can never amortize), plus
 * long high-density sweeps (4-byte norm-cache passes, 1024 elements
 * per object) that selective chunking still wins on.
 */

#ifndef TRACKFM_WORKLOADS_KMEANS_HH
#define TRACKFM_WORKLOADS_KMEANS_HH

#include <cstdint>
#include <vector>

#include "backend.hh"

namespace tfm
{

/** k-means experiment parameters. */
struct KMeansParams
{
    std::uint64_t numPoints = 50000;
    std::uint32_t dims = 8;       ///< features per point (float32)
    std::uint32_t clusters = 8;
    std::uint32_t iterations = 2;
    std::uint64_t seed = 11;
};

/** Result of one run. */
struct KMeansResult
{
    BackendSnapshot delta;
    /// Final per-cluster population (for cross-backend verification).
    std::vector<std::uint64_t> clusterSizes;
};

/**
 * Lloyd's algorithm over far-memory point data.
 *
 * Per iteration:
 *  1. assignment: for every point, an inner loop over its features per
 *     centroid (nested loops with a tiny iteration space);
 *  2. norm-cache passes: long sequential sweeps over a 4-byte cache
 *     (the high-density loops selective chunking targets).
 *
 * Inner feature loops open a fresh stream per point, so the backend's
 * chunking policy is exercised exactly as the compiler's would be: the
 * All policy pays one locality guard per tiny loop, the CostModel
 * policy falls back to plain guards there (iteration space below one
 * object) while still chunking the long 4-byte sweeps.
 */
class KMeansWorkload
{
  public:
    KMeansWorkload(MemBackend &backend, const KMeansParams &params);

    std::uint64_t workingSetBytes() const;

    KMeansResult run();

  private:
    void assignStep(std::vector<std::uint64_t> &sizes);
    void normCachePass();

    MemBackend &b;
    KMeansParams params;
    std::uint64_t pointsAddr = 0;  ///< numPoints * dims float32
    std::uint64_t assignAddr = 0;  ///< numPoints int32
    std::uint64_t normAddr = 0;    ///< numPoints * dims float32 cache
    std::vector<double> centroids; ///< small, stays in local memory
};

} // namespace tfm

#endif // TRACKFM_WORKLOADS_KMEANS_HH
