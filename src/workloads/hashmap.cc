#include "hashmap.hh"

#include "sim/logging.hh"
#include "sim/zipf.hh"

namespace tfm
{

std::uint64_t
HashmapWorkload::hashKey(std::uint32_t key)
{
    // Finalizer from splitmix64; good avalanche for sequential keys.
    std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

HashmapWorkload::HashmapWorkload(MemBackend &backend,
                                 const HashmapParams &parameters)
    : b(backend), params(parameters)
{
    capacity = 16;
    while (capacity < params.numKeys * 2)
        capacity <<= 1;
    tableAddr = b.alloc(capacity * sizeof(Slot));
    traceAddr = b.alloc(params.numOps * sizeof(std::uint32_t));

    // Populate the table (unmetered: setup phase).
    const Slot empty{0, 0, 0, 0};
    for (std::uint64_t i = 0; i < capacity; i++)
        b.initWrite(tableAddr + i * sizeof(Slot), &empty, sizeof(Slot));
    for (std::uint64_t k = 0; k < params.numKeys; k++) {
        std::uint64_t slot = hashKey(static_cast<std::uint32_t>(k)) &
                             (capacity - 1);
        while (true) {
            Slot s;
            b.initRead(tableAddr + slot * sizeof(Slot), &s, sizeof(Slot));
            if (s.state == 0) {
                const Slot fresh{1, static_cast<std::uint32_t>(k),
                                 static_cast<std::uint32_t>(k * 2 + 1), 0};
                b.initWrite(tableAddr + slot * sizeof(Slot), &fresh,
                            sizeof(Slot));
                break;
            }
            slot = (slot + 1) & (capacity - 1);
        }
    }

    // Generate and store the access trace (the paper keeps the sampled
    // key sequence in a heap array of its own).
    ZipfGenerator zipf(params.numKeys, params.zipfSkew, params.seed);
    for (std::uint64_t i = 0; i < params.numOps; i++) {
        const auto key = static_cast<std::uint32_t>(zipf.next());
        b.initWrite(traceAddr + i * 4, &key, sizeof(key));
    }
    b.dropCaches();
}

std::uint64_t
HashmapWorkload::workingSetBytes() const
{
    return capacity * sizeof(Slot) + params.numOps * 4;
}

bool
HashmapWorkload::lookup(std::uint32_t key, std::uint64_t *probes_out)
{
    b.compute(8); // hash computation
    std::uint64_t slot = hashKey(key) & (capacity - 1);
    std::uint64_t probes = 0;
    bool hit = false;
    while (true) {
        Slot s;
        b.read(tableAddr + slot * sizeof(Slot), &s, sizeof(Slot),
               AccessHint::Random);
        probes++;
        if (s.state == 0)
            break;
        if (s.key == key) {
            TFM_ASSERT(s.value == key * 2 + 1, "hashmap value corrupted");
            hit = true;
            break;
        }
        slot = (slot + 1) & (capacity - 1);
    }
    if (probes_out)
        *probes_out += probes;
    return hit;
}

HashmapResult
HashmapWorkload::run()
{
    HashmapResult result;
    const BackendSnapshot before = snapshot(b);

    auto trace = b.stream(traceAddr, sizeof(std::uint32_t), params.numOps,
                          StreamMode::Read);
    for (std::uint64_t i = 0; i < params.numOps; i++) {
        std::uint32_t key;
        trace->read(&key);
        b.compute(8); // hash computation
        std::uint64_t slot = hashKey(key) & (capacity - 1);
        while (true) {
            Slot s;
            b.read(tableAddr + slot * sizeof(Slot), &s, sizeof(Slot),
                   AccessHint::Random);
            result.probes++;
            if (s.state == 0)
                break;
            if (s.key == key) {
                TFM_ASSERT(s.value == key * 2 + 1,
                           "hashmap value corrupted");
                result.hits++;
                break;
            }
            slot = (slot + 1) & (capacity - 1);
        }
    }

    result.delta = deltaSince(before, snapshot(b));
    return result;
}

} // namespace tfm
