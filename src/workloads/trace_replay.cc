#include "trace_replay.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/zipf.hh"

namespace tfm
{

TraceReplayer::TraceReplayer(MemBackend &backend, std::uint64_t arena_bytes)
    : b(backend), arenaSize(arena_bytes)
{
    TFM_ASSERT(arena_bytes >= 4096, "trace arena too small");
    arenaAddr = b.alloc(arena_bytes);
    // Deterministic arena contents so checksums are comparable.
    for (std::uint64_t i = 0; i < arena_bytes / 8; i++) {
        b.initT<std::uint64_t>(arenaAddr + i * 8,
                               i * 0x9e3779b97f4a7c15ull);
    }
    b.dropCaches();
}

TraceReplayResult
TraceReplayer::replay(const std::vector<TraceOp> &trace)
{
    TraceReplayResult result;
    const BackendSnapshot before = snapshot(b);
    std::uint8_t buffer[512];

    for (const TraceOp &op : trace) {
        const std::uint32_t size = std::min<std::uint32_t>(
            op.size ? op.size : 8, sizeof(buffer));
        // Clamp into the arena, aligned to the access size.
        const std::uint64_t span = arenaSize - size;
        const std::uint64_t offset =
            std::min(op.offset, span) / size * size;

        switch (op.kind) {
          case TraceOp::Kind::Read: {
            b.read(arenaAddr + offset, buffer, size,
                   AccessHint::Random);
            for (std::uint32_t i = 0; i < size; i++)
                result.checksum += buffer[i];
            result.bytesAccessed += size;
            break;
          }
          case TraceOp::Kind::Write: {
            for (std::uint32_t i = 0; i < size; i++)
                buffer[i] = static_cast<std::uint8_t>(
                    result.checksum + i + op.offset);
            b.write(arenaAddr + offset, buffer, size,
                    AccessHint::Random);
            result.bytesAccessed += size;
            break;
          }
          case TraceOp::Kind::StreamRead:
          case TraceOp::Kind::StreamWrite: {
            const bool writes = op.kind == TraceOp::Kind::StreamWrite;
            const std::uint64_t max_count = (arenaSize - offset) / size;
            const std::uint64_t count =
                std::min(op.count ? op.count : 1, max_count);
            auto stream =
                b.stream(arenaAddr + offset, size, count,
                         writes ? StreamMode::Write : StreamMode::Read);
            for (std::uint64_t i = 0; i < count; i++) {
                if (writes) {
                    for (std::uint32_t k = 0; k < size; k++)
                        buffer[k] = static_cast<std::uint8_t>(i + k);
                    stream->write(buffer);
                } else {
                    stream->read(buffer);
                    result.checksum += buffer[0];
                }
            }
            result.bytesAccessed += count * size;
            break;
          }
        }
        result.operations++;
    }

    result.delta = deltaSince(before, snapshot(b));
    return result;
}

std::vector<TraceOp>
TraceReplayer::uniform(std::uint64_t operations, std::uint64_t arena_bytes,
                       int write_percent, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<TraceOp> trace;
    trace.reserve(operations);
    for (std::uint64_t i = 0; i < operations; i++) {
        TraceOp op;
        op.kind = (rng.below(100) <
                   static_cast<std::uint64_t>(write_percent))
                      ? TraceOp::Kind::Write
                      : TraceOp::Kind::Read;
        op.offset = rng.below(arena_bytes);
        op.size = 8;
        trace.push_back(op);
    }
    return trace;
}

std::vector<TraceOp>
TraceReplayer::zipfian(std::uint64_t operations, std::uint64_t arena_bytes,
                       std::uint32_t block_bytes, double skew,
                       std::uint64_t seed)
{
    const std::uint64_t blocks = arena_bytes / block_bytes;
    ZipfGenerator zipf(blocks, skew, seed);
    Rng rng(seed + 1);
    std::vector<TraceOp> trace;
    trace.reserve(operations);
    for (std::uint64_t i = 0; i < operations; i++) {
        TraceOp op;
        op.kind = TraceOp::Kind::Read;
        op.offset =
            zipf.next() * block_bytes + rng.below(block_bytes);
        op.size = 8;
        trace.push_back(op);
    }
    return trace;
}

std::vector<TraceOp>
TraceReplayer::sequentialSweeps(int sweeps, std::uint64_t arena_bytes,
                                std::uint32_t elem_bytes, bool writes)
{
    std::vector<TraceOp> trace;
    for (int i = 0; i < sweeps; i++) {
        TraceOp op;
        op.kind = writes ? TraceOp::Kind::StreamWrite
                         : TraceOp::Kind::StreamRead;
        op.offset = 0;
        op.size = elem_bytes;
        op.count = arena_bytes / elem_bytes;
        trace.push_back(op);
    }
    return trace;
}

std::vector<TraceOp>
TraceReplayer::phased(int phases, std::uint64_t ops_per_phase,
                      std::uint64_t arena_bytes, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<TraceOp> trace;
    for (int phase = 0; phase < phases; phase++) {
        if (phase % 2 == 0) {
            // Sequential phase: one sweep over a random half.
            TraceOp op;
            op.kind = TraceOp::Kind::StreamRead;
            op.size = 8;
            op.count = std::min<std::uint64_t>(ops_per_phase,
                                               arena_bytes / 16);
            op.offset = rng.below(arena_bytes / 2);
            trace.push_back(op);
        } else {
            // Random burst.
            for (std::uint64_t i = 0; i < ops_per_phase; i++) {
                TraceOp op;
                op.kind = rng.below(4) == 0 ? TraceOp::Kind::Write
                                            : TraceOp::Kind::Read;
                op.offset = rng.below(arena_bytes);
                op.size = 8;
                trace.push_back(op);
            }
        }
    }
    return trace;
}

} // namespace tfm
