#include "trace_reader.hh"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <variant>

namespace tfm
{

namespace
{

/** Generic JSON value for the subset TraceSink emits. */
struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue
{
    std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
                 JsonObject>
        v = nullptr;

    const JsonValue *
    get(const std::string &key) const
    {
        const auto *obj = std::get_if<JsonObject>(&v);
        if (!obj)
            return nullptr;
        const auto it = obj->find(key);
        return it == obj->end() ? nullptr : &it->second;
    }

    double
    number(double fallback = 0.0) const
    {
        const auto *d = std::get_if<double>(&v);
        return d ? *d : fallback;
    }

    std::string
    str() const
    {
        const auto *s = std::get_if<std::string>(&v);
        return s ? *s : std::string{};
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    bool
    parse(JsonValue &out, std::string &error)
    {
        if (!value(out)) {
            std::ostringstream os;
            os << err << " at byte " << pos;
            error = os.str();
            return false;
        }
        skipWs();
        if (pos != s.size()) {
            error = "trailing garbage after JSON document";
            return false;
        }
        return true;
    }

  private:
    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            pos++;
    }

    bool
    fail(const char *what)
    {
        if (err.empty())
            err = what;
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (s.compare(pos, n, word) != 0)
            return fail("bad literal");
        pos += n;
        return true;
    }

    bool
    value(JsonValue &out)
    {
        skipWs();
        if (pos >= s.size())
            return fail("unexpected end of input");
        switch (s[pos]) {
          case '{':
            return object(out);
          case '[':
            return array(out);
          case '"': {
            std::string str;
            if (!string(str))
                return false;
            out.v = std::move(str);
            return true;
          }
          case 't':
            out.v = true;
            return literal("true");
          case 'f':
            out.v = false;
            return literal("false");
          case 'n':
            out.v = nullptr;
            return literal("null");
          default:
            return number(out);
        }
    }

    bool
    object(JsonValue &out)
    {
        JsonObject obj;
        pos++; // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            pos++;
            out.v = std::move(obj);
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!string(key))
                return fail("expected object key");
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':'");
            pos++;
            JsonValue val;
            if (!value(val))
                return false;
            obj.emplace(std::move(key), std::move(val));
            skipWs();
            if (pos >= s.size())
                return fail("unterminated object");
            if (s[pos] == ',') {
                pos++;
                continue;
            }
            if (s[pos] == '}') {
                pos++;
                out.v = std::move(obj);
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(JsonValue &out)
    {
        JsonArray arr;
        pos++; // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            pos++;
            out.v = std::move(arr);
            return true;
        }
        while (true) {
            JsonValue val;
            if (!value(val))
                return false;
            arr.push_back(std::move(val));
            skipWs();
            if (pos >= s.size())
                return fail("unterminated array");
            if (s[pos] == ',') {
                pos++;
                continue;
            }
            if (s[pos] == ']') {
                pos++;
                out.v = std::move(arr);
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    string(std::string &out)
    {
        if (pos >= s.size() || s[pos] != '"')
            return fail("expected string");
        pos++;
        out.clear();
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos++];
            if (c == '\\') {
                if (pos >= s.size())
                    return fail("bad escape");
                const char esc = s[pos++];
                switch (esc) {
                  case 'n':
                    c = '\n';
                    break;
                  case 't':
                    c = '\t';
                    break;
                  case '"':
                  case '\\':
                  case '/':
                    c = esc;
                    break;
                  case 'u':
                    // Skip the four hex digits; non-ASCII escapes never
                    // appear in traces we emit.
                    pos += 4;
                    c = '?';
                    break;
                  default:
                    return fail("unknown escape");
                }
            }
            out.push_back(c);
        }
        if (pos >= s.size())
            return fail("unterminated string");
        pos++; // closing quote
        return true;
    }

    bool
    number(JsonValue &out)
    {
        const std::size_t start = pos;
        if (pos < s.size() && (s[pos] == '-' || s[pos] == '+'))
            pos++;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '-' || s[pos] == '+')) {
            pos++;
        }
        if (pos == start)
            return fail("expected number");
        out.v = std::stod(s.substr(start, pos - start));
        return true;
    }

    const std::string &s;
    std::size_t pos = 0;
    std::string err;
};

std::uint64_t
asU64(const JsonValue *value)
{
    if (!value)
        return 0;
    const double d = value->number();
    return d <= 0 ? 0 : static_cast<std::uint64_t>(std::llround(d));
}

} // anonymous namespace

bool
parseTrace(const std::string &json, ParsedTrace &out, std::string &error)
{
    JsonValue root;
    Parser parser(json);
    if (!parser.parse(root, error))
        return false;

    const JsonValue *events = root.get("traceEvents");
    const JsonArray *arr =
        events ? std::get_if<JsonArray>(&events->v) : nullptr;
    if (!arr) {
        error = "missing traceEvents array";
        return false;
    }

    out.events.clear();
    out.events.reserve(arr->size());
    for (const JsonValue &ev : *arr) {
        ParsedEvent parsed;
        if (const JsonValue *name = ev.get("name"))
            parsed.name = name->str();
        if (const JsonValue *cat = ev.get("cat"))
            parsed.cat = cat->str();
        if (const JsonValue *ph = ev.get("ph")) {
            const std::string p = ph->str();
            parsed.ph = p.empty() ? '?' : p[0];
        }
        parsed.pid = static_cast<std::uint32_t>(asU64(ev.get("pid")));
        parsed.tid = static_cast<std::uint32_t>(asU64(ev.get("tid")));
        parsed.ts = asU64(ev.get("ts"));
        parsed.dur = asU64(ev.get("dur"));
        if (const JsonValue *args = ev.get("args")) {
            if (const auto *obj = std::get_if<JsonObject>(&args->v)) {
                for (const auto &[key, val] : *obj) {
                    if (std::holds_alternative<double>(val.v))
                        parsed.args[key] = asU64(&val);
                }
            }
        }
        out.events.push_back(std::move(parsed));
    }

    out.dropped = 0;
    if (const JsonValue *other = root.get("otherData"))
        out.dropped = asU64(other->get("dropped"));
    return true;
}

bool
loadTraceFile(const std::string &path, ParsedTrace &out, std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseTrace(buffer.str(), out, error);
}

} // namespace tfm
