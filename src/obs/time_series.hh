/**
 * @file
 * Epoch-aligned time-series sampler.
 *
 * Snapshots slow-moving state (frame-cache occupancy, dirty-buffer
 * depth, cumulative bytes on wire) once per simulated epoch. Hot paths
 * ask `due()` — one compare against the stream's next-epoch cycle — and
 * only on a hit pay for the snapshot, so a disabled or between-epochs
 * sampler costs one branch. Samples are aligned to epoch boundaries
 * (epochStart = floor(now / epoch) * epoch); if the simulation jumps
 * several epochs between calls the skipped epochs simply have no row,
 * keeping the series sparse rather than backfilled.
 */

#ifndef TRACKFM_OBS_TIME_SERIES_HH
#define TRACKFM_OBS_TIME_SERIES_HH

#include <cstdint>
#include <vector>

namespace tfm
{

/** One recorded (stream, epoch, metric, value) point. */
struct SeriesPoint
{
    std::uint32_t stream = 0;
    std::uint64_t epochStart = 0; ///< aligned epoch boundary
    std::uint64_t at = 0;         ///< exact cycle the snapshot was taken
    const char *name = "";
    std::uint64_t value = 0;
};

class TimeSeriesSampler
{
  public:
    /** @p epoch_cycles == 0 disables sampling. */
    explicit TimeSeriesSampler(std::uint64_t epoch_cycles = 0)
        : epoch(epoch_cycles)
    {}

    std::uint64_t epochCycles() const { return epoch; }
    bool enabled() const { return epoch != 0; }

    /** Should @p stream snapshot at time @p now? */
    bool
    due(std::uint32_t stream, std::uint64_t now) const
    {
        if (epoch == 0)
            return false;
        return stream >= nextEpoch.size() || now >= nextEpoch[stream];
    }

    /**
     * Record one metric of the current snapshot. Call `advance()` once
     * after the last metric of a snapshot.
     */
    void
    record(std::uint32_t stream, std::uint64_t now, const char *name,
           std::uint64_t value)
    {
        points.push_back(
            {stream, alignedEpoch(now), now, name, value});
    }

    /** Close @p stream's snapshot: next sample is due next epoch. */
    void
    advance(std::uint32_t stream, std::uint64_t now)
    {
        if (epoch == 0)
            return;
        if (stream >= nextEpoch.size())
            nextEpoch.resize(stream + 1, 0);
        nextEpoch[stream] = alignedEpoch(now) + epoch;
    }

    std::uint64_t
    alignedEpoch(std::uint64_t now) const
    {
        return epoch == 0 ? now : now - now % epoch;
    }

    const std::vector<SeriesPoint> &all() const { return points; }
    std::size_t size() const { return points.size(); }
    void clear() { points.clear(); }

  private:
    std::uint64_t epoch;
    std::vector<std::uint64_t> nextEpoch; ///< per-stream next due cycle
    std::vector<SeriesPoint> points;
};

} // namespace tfm

#endif // TRACKFM_OBS_TIME_SERIES_HH
