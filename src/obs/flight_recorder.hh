/**
 * @file
 * Deterministic flight recorder: a compact binary log of every runtime
 * nondeterminism source, recorded at its choke point and re-injectable
 * for bit-exact replay.
 *
 * The simulation is a closed system: network arrival scheduling,
 * frame-cache victim selection, prefetcher issue decisions, and
 * cluster failure/re-replication all flow through a handful of narrow
 * interfaces (NetworkModel, RemoteBackend, the evacuator). Recording
 * those streams therefore captures everything a run did that its
 * inputs do not already pin down; replaying them reproduces the run
 * bit-exactly — same outputs, same cycle counts, same GuardStats, same
 * far-heap checksum, same trap text — and any divergence (a corrupted
 * log, a code or config change) is pinpointed at the first mismatching
 * event rather than surfacing as a mystery diff at the end.
 *
 * Event model. Every event belongs to a *stream*: one (runtime
 * instance, category) pair, where the categories are net, backend,
 * cluster, evac, and prefetch. Events carry a per-stream sequence
 * number, the simulated cycle at which they were recorded, and up to
 * four 64-bit arguments. During replay the *consumed* streams
 * (backend, evac, prefetch) are popped in order and each event is
 * verified against what the replayed run is about to do; the *context*
 * streams (net, cluster) document link traffic and shard deaths for
 * offline inspection (`tfm-stat replay`) and are covered by the log
 * checksum but not re-consumed — the ReplayBackend stands in for the
 * whole remote tier, links included.
 *
 * Modes. Record-full keeps every event; record-ring ("flight
 * recorder") keeps only the last N so a long run can be instrumented
 * with bounded memory and the tail dumped on a trap. Replay loads a
 * saved log and verifies/re-injects.
 *
 * On-disk format (all fields little-endian host layout):
 *   header  (40 B): magic "TFMFREC\0", u32 version, u32 flags
 *                   (bit 0: ring dump), u64 wall-clock timestamp,
 *                   u64 event count, u64 ring capacity
 *   events  (48 B each): u16 stream, u16 kind, u32 seq, u64 cycle,
 *                   u64 arg[4]
 *   trailer (16 B): u64 FNV-1a checksum over the event bytes,
 *                   end magic "TFMFREND"
 * The wall timestamp is the only nondeterministic byte range: two
 * recordings of the same run are byte-identical from offset 24 on.
 */

#ifndef TRACKFM_OBS_FLIGHT_RECORDER_HH
#define TRACKFM_OBS_FLIGHT_RECORDER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace tfm
{

class Observability;
class StatSet;

/** Nondeterminism categories; one stream per (instance, category). */
enum class FrCat : std::uint16_t
{
    Net = 0,      ///< per-message link scheduling (context)
    Backend = 1,  ///< fetch/writeback completions (consumed)
    Cluster = 2,  ///< shard failure / re-replication (context)
    Evac = 3,     ///< frame-cache victim + epoch decisions (consumed)
    Prefetch = 4, ///< prefetcher issue decisions (consumed)
};

/// Streams per registered runtime instance (room for future categories).
constexpr std::uint16_t frCatSlots = 8;

/** Event kinds, namespaced by category. */
enum class FrKind : std::uint16_t
{
    // FrCat::Net — one event per link message.
    NetFetch = 1,     ///< {bytes, payloads, arrival, shard}
    NetWriteback = 2, ///< {bytes, payloads, drained, shard}

    // FrCat::Backend — one event (or batch header + segments) per op.
    BackendFetch = 10,        ///< {offset, len, endCycle}
    BackendFetchAsync = 11,   ///< {offset, len, arrival, endCycle}
    BackendFetchBatch = 12,   ///< {segCount, lastArrival, endCycle}
    BackendFetchSeg = 13,     ///< {offset, len, arrival}
    BackendWriteback = 14,    ///< {offset, len, endCycle}
    BackendWritebackBatch = 15, ///< {segCount, endCycle}
    BackendWritebackSeg = 16, ///< {offset, len}
    /// {degradedReads, reReplicatedBytes, shardFailures, degradedWrites}
    /// — a clusterStats() query's answer, re-injected on replay.
    BackendClusterStats = 17,

    // FrCat::Cluster — failure-plan outcomes.
    ClusterShardFail = 20,   ///< {shard}
    ClusterReReplicate = 21, ///< {stripesMoved, bytesMoved, stripesLost}

    // FrCat::Evac.
    EvacVictim = 30, ///< {frame, objId, dirty, epoch}

    // FrCat::Prefetch — one event per demand miss.
    PrefetchDecision = 40, ///< {objId, stride (int64), depth}
};

/** One recorded event (fixed 48-byte wire layout). */
struct FrEvent
{
    std::uint16_t stream = 0; ///< instance * frCatSlots + category
    std::uint16_t kind = 0;   ///< FrKind
    std::uint32_t seq = 0;    ///< per-stream sequence number
    std::uint64_t cycle = 0;  ///< simulated cycle at the choke point
    std::uint64_t arg[4] = {0, 0, 0, 0};
};

static_assert(sizeof(FrEvent) == 48, "FrEvent wire layout drifted");

/** A loaded (or to-be-saved) log: header fields plus the events. */
struct FrLog
{
    std::uint32_t version = 0;
    std::uint32_t flags = 0; ///< bit 0: ring-buffer dump (tail only)
    std::uint64_t wallTime = 0;
    std::uint64_t ringCapacity = 0;
    std::vector<FrEvent> events;
};

/// Current on-disk schema version.
constexpr std::uint32_t frSchemaVersion = 1;

/** Human-readable stream name, e.g. "backend#0". */
std::string frStreamName(std::uint16_t stream);

/** Human-readable kind name, e.g. "backend.fetch". */
const char *frKindName(std::uint16_t kind);

/** One-line rendering of an event (divergence reports, tooling). */
std::string frEventToString(const FrEvent &e);

/**
 * Write @p log to @p path (header + events + checksummed trailer).
 * @return false with @p error set on I/O failure.
 */
bool saveFrLog(const std::string &path, const FrLog &log,
               std::string &error);

/**
 * Load and validate a log: magic, schema version, size, per-stream
 * sequence continuity, and the FNV-1a trailer checksum. A truncated
 * file fails loudly, naming the last valid (stream, seq) so the reader
 * knows exactly how much of the recording survived.
 */
bool loadFrLog(const std::string &path, FrLog &log, std::string &error);

/**
 * Thrown (under DivergencePolicy::Throw) when a replayed run's next
 * action does not match the recorded stream: carries the first
 * mismatching event's stream and sequence number plus a rendered
 * expected-vs-actual report.
 */
class ReplayDivergence : public std::runtime_error
{
  public:
    ReplayDivergence(std::uint16_t stream_id, std::uint32_t sequence,
                     const std::string &what)
        : std::runtime_error(what), stream(stream_id), seq(sequence)
    {}

    std::uint16_t stream; ///< diverging stream id (frStreamName()able)
    std::uint32_t seq;    ///< first mismatching sequence number
};

/**
 * The recorder/replayer. One instance serves a whole process (all
 * runtime instances it constructs); choke points call record() with
 * the event they are about to act on, and the same call verifies and
 * re-injects during replay.
 */
class FlightRecorder
{
  public:
    enum class Mode
    {
        Record, ///< append events (full log or bounded ring)
        Replay  ///< consume a loaded log, verifying each event
    };

    /** What record() does when a replayed event mismatches. */
    enum class DivergencePolicy
    {
        Throw, ///< throw ReplayDivergence (tfmc, tests)
        Abort  ///< print the report to stderr and _Exit(3) (benches)
    };

    /** Full-log recorder (@p ring_capacity 0) or bounded ring. */
    explicit FlightRecorder(std::size_t ring_capacity = 0);

    /** Load @p path for replay; null (with @p error set) on failure. */
    static std::unique_ptr<FlightRecorder>
    loadForReplay(const std::string &path, std::string &error);

    Mode mode() const { return mode_; }
    bool replaying() const { return mode_ == Mode::Replay; }
    bool ring() const { return ringCap_ != 0; }
    std::size_t ringCapacity() const { return ringCap_; }

    void setDivergencePolicy(DivergencePolicy policy) { policy_ = policy; }

    /**
     * Register one runtime instance; returns its instance id. Runtimes
     * are constructed in a deterministic order, so ids line up between
     * the recording and replaying processes.
     */
    std::uint16_t registerInstance();

    /**
     * The choke-point call. Recording: append the event. Replaying:
     * pop the stream's next event, verify kind, cycle, and the first
     * @p check_args arguments (the action's inputs), then copy the
     * recorded arguments back into @p args — re-injecting the recorded
     * outcome (arrival cycles, completion times) into the caller.
     * Context streams (net, cluster) are record-only: their choke
     * points never execute during replay.
     */
    void record(std::uint16_t instance, FrCat cat, FrKind kind,
                std::uint64_t cycle, std::uint64_t (&args)[4],
                int check_args);

    /** record() for emit-and-forget sites with no out-args. */
    void
    note(std::uint16_t instance, FrCat cat, FrKind kind,
         std::uint64_t cycle, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
         std::uint64_t a2 = 0, std::uint64_t a3 = 0)
    {
        std::uint64_t args[4] = {a0, a1, a2, a3};
        record(instance, cat, kind, cycle, args, 4);
    }

    /**
     * Replay epilogue: every consumed stream must be fully drained, or
     * the replayed run did measurably less than the recording — a
     * divergence reported at the first unconsumed event.
     */
    void finishReplay();

    /** Total events currently held (ring: at most the capacity). */
    std::size_t size() const { return events_.size(); }

    /** Events dropped out of the ring (0 in full-log mode). */
    std::uint64_t ringDropped() const { return ringDropped_; }

    /** Events consumed so far across all streams (replay mode). */
    std::uint64_t consumed() const { return consumed_; }

    /**
     * Replay progress as a log position: one past the highest global
     * log index consumed so far. Context events (net, cluster) are
     * emitted *before* the consumed backend event of the operation
     * that caused them, so the log prefix below this frontier is
     * exactly what the recording run had emitted at the same point —
     * the basis for ReplayBackend's snapshot-consistent stats
     * reconstruction.
     */
    std::uint64_t consumedFrontier() const { return frontier_; }

    /** Per-category event counts over the held/loaded log. */
    std::uint64_t categoryCount(FrCat cat) const;

    /** The held (record) or loaded (replay) events, oldest first. */
    std::vector<FrEvent> snapshot() const;

    /** Write the current contents to @p path (ring: the tail dump). */
    bool save(const std::string &path, std::string &error) const;

    /**
     * Mirror the recorder's state into a trace: "record.*"/"replay.*"
     * counter samples (per category + total) and one schema-version
     * metadata event, so --trace and --record/--replay compose.
     */
    void exportTrace(Observability &sink, std::uint32_t stream,
                     std::uint64_t now) const;

    /** "record.events"/"replay.consumed"-style counters. */
    void exportStats(StatSet &set) const;

  private:
    explicit FlightRecorder(FrLog &&loaded);

    /** Replay-side verification of one choke-point event. */
    void verify(std::uint16_t stream, FrKind kind, std::uint64_t cycle,
                std::uint64_t (&args)[4], int check_args);

    [[noreturn]] void diverge(std::uint16_t stream, std::uint32_t seq,
                              const std::string &detail);

    Mode mode_ = Mode::Record;
    DivergencePolicy policy_ = DivergencePolicy::Throw;
    std::size_t ringCap_ = 0;
    std::uint16_t nextInstance_ = 0;

    /// Record mode: the held events (deque so the ring pops cheaply).
    std::deque<FrEvent> events_;
    std::uint64_t ringDropped_ = 0;
    /// Next sequence number per stream id.
    std::vector<std::uint32_t> nextSeq_;

    /// Replay mode: the loaded log and per-stream cursors.
    FrLog log_;
    std::vector<std::vector<std::size_t>> streamEvents_;
    std::vector<std::size_t> cursor_;
    std::uint64_t consumed_ = 0;
    std::uint64_t frontier_ = 0;
};

namespace obs
{

/**
 * Process-wide default recorder, mirroring obs::defaultSink(): the
 * bench-level --record/--replay flags install one before main() runs
 * and every runtime constructed without an explicit recorder picks it
 * up. Null in normal operation — recording off costs one pointer check
 * at the (already cold) choke points and nothing on guard fast paths.
 */
FlightRecorder *defaultRecorder();
void setDefaultRecorder(FlightRecorder *recorder);

} // namespace obs

} // namespace tfm

#endif // TRACKFM_OBS_FLIGHT_RECORDER_HH
