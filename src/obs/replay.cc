#include "replay.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tfm
{

namespace
{

/// Batch headers check only the segment count; arrivals/completions
/// are outcomes, re-injected by the recorder during replay.
constexpr int kCheckBatchHeader = 1;
/// Per-segment and single-op events check {offset, len}.
constexpr int kCheckOffsetLen = 2;

} // anonymous namespace

void
RecordingBackend::fetch(std::uint64_t offset, std::byte *dst,
                        std::size_t len)
{
    const std::uint64_t start = clock_.now();
    inner_->fetch(offset, dst, len);
    rec_.note(instance_, FrCat::Backend, FrKind::BackendFetch, start,
              offset, len, clock_.now());
}

std::uint64_t
RecordingBackend::fetchAsync(std::uint64_t offset, std::byte *dst,
                             std::size_t len)
{
    const std::uint64_t start = clock_.now();
    const std::uint64_t arrival = inner_->fetchAsync(offset, dst, len);
    rec_.note(instance_, FrCat::Backend, FrKind::BackendFetchAsync, start,
              offset, len, arrival, clock_.now());
    return arrival;
}

std::uint64_t
RecordingBackend::fetchBatchAsync(const std::vector<RemoteFetchSeg> &segs,
                                  std::vector<std::uint64_t> *arrivals)
{
    const std::uint64_t start = clock_.now();
    std::vector<std::uint64_t> local;
    std::vector<std::uint64_t> &out = arrivals ? *arrivals : local;
    const std::uint64_t last = inner_->fetchBatchAsync(segs, &out);
    rec_.note(instance_, FrCat::Backend, FrKind::BackendFetchBatch, start,
              segs.size(), last, clock_.now());
    for (std::size_t i = 0; i < segs.size(); i++) {
        rec_.note(instance_, FrCat::Backend, FrKind::BackendFetchSeg,
                  start, segs[i].offset, segs[i].len, out[i]);
    }
    return last;
}

void
RecordingBackend::writeback(std::uint64_t offset, const std::byte *src,
                            std::size_t len)
{
    const std::uint64_t start = clock_.now();
    inner_->writeback(offset, src, len);
    rec_.note(instance_, FrCat::Backend, FrKind::BackendWriteback, start,
              offset, len, clock_.now());
}

void
RecordingBackend::writebackBatch(const std::vector<RemoteWriteSeg> &segs)
{
    const std::uint64_t start = clock_.now();
    inner_->writebackBatch(segs);
    rec_.note(instance_, FrCat::Backend, FrKind::BackendWritebackBatch,
              start, segs.size(), clock_.now());
    for (const RemoteWriteSeg &seg : segs) {
        rec_.note(instance_, FrCat::Backend, FrKind::BackendWritebackSeg,
                  start, seg.offset, seg.len);
    }
}

ReplayBackend::ReplayBackend(CycleClock &clock, const CostParams &costs,
                             std::uint64_t capacityBytes,
                             FlightRecorder &recorder,
                             std::uint16_t instance)
    : clock_(clock), costs_(costs), net_(clock, costs_),
      node_(capacityBytes), rec_(recorder), instance_(instance)
{}

void
ReplayBackend::fetch(std::uint64_t offset, std::byte *dst, std::size_t len)
{
    std::uint64_t args[4] = {offset, len, 0, 0};
    rec_.record(instance_, FrCat::Backend, FrKind::BackendFetch,
                clock_.now(), args, kCheckOffsetLen);
    node_.rawRead(offset, dst, len);
    clock_.advanceTo(args[2]);
}

std::uint64_t
ReplayBackend::fetchAsync(std::uint64_t offset, std::byte *dst,
                          std::size_t len)
{
    std::uint64_t args[4] = {offset, len, 0, 0};
    rec_.record(instance_, FrCat::Backend, FrKind::BackendFetchAsync,
                clock_.now(), args, kCheckOffsetLen);
    node_.rawRead(offset, dst, len);
    clock_.advanceTo(args[3]);
    return args[2];
}

std::uint64_t
ReplayBackend::fetchBatchAsync(const std::vector<RemoteFetchSeg> &segs,
                               std::vector<std::uint64_t> *arrivals)
{
    const std::uint64_t start = clock_.now();
    std::uint64_t header[4] = {segs.size(), 0, 0, 0};
    rec_.record(instance_, FrCat::Backend, FrKind::BackendFetchBatch,
                start, header, kCheckBatchHeader);
    if (arrivals) {
        arrivals->clear();
        arrivals->reserve(segs.size());
    }
    for (const RemoteFetchSeg &seg : segs) {
        std::uint64_t args[4] = {seg.offset, seg.len, 0, 0};
        rec_.record(instance_, FrCat::Backend, FrKind::BackendFetchSeg,
                    start, args, kCheckOffsetLen);
        node_.rawRead(seg.offset, seg.dst, seg.len);
        if (arrivals)
            arrivals->push_back(args[2]);
    }
    clock_.advanceTo(header[2]);
    return header[1];
}

void
ReplayBackend::writeback(std::uint64_t offset, const std::byte *src,
                         std::size_t len)
{
    std::uint64_t args[4] = {offset, len, 0, 0};
    rec_.record(instance_, FrCat::Backend, FrKind::BackendWriteback,
                clock_.now(), args, kCheckOffsetLen);
    node_.rawWrite(offset, src, len);
    clock_.advanceTo(args[2]);
}

void
ReplayBackend::writebackBatch(const std::vector<RemoteWriteSeg> &segs)
{
    const std::uint64_t start = clock_.now();
    std::uint64_t header[4] = {segs.size(), 0, 0, 0};
    rec_.record(instance_, FrCat::Backend, FrKind::BackendWritebackBatch,
                start, header, kCheckBatchHeader);
    for (const RemoteWriteSeg &seg : segs) {
        std::uint64_t args[4] = {seg.offset, seg.len, 0, 0};
        rec_.record(instance_, FrCat::Backend,
                    FrKind::BackendWritebackSeg, start, args,
                    kCheckOffsetLen);
        node_.rawWrite(seg.offset, seg.src, seg.len);
    }
    clock_.advanceTo(header[1]);
}

ClusterStats
RecordingBackend::clusterStats() const
{
    const ClusterStats stats = inner_->clusterStats();
    rec_.note(instance_, FrCat::Backend, FrKind::BackendClusterStats,
              clock_.now(), stats.degradedReads, stats.reReplicatedBytes,
              stats.shardFailures, stats.degradedWrites);
    return stats;
}

NetStats
ReplayBackend::netStatsFiltered(std::int64_t shard) const
{
    // Reconstructed from the recorded net stream up to the consumed
    // frontier: net events precede the consumed backend event of the
    // operation that sent them, so the log prefix below the frontier
    // is exactly the traffic the recording run had put on the wire at
    // the same point — a mid-run query (snapshot/delta measurement)
    // reports the same numbers it did while recording. Not resettable
    // mid-run (resetStats() on the dummy link is a no-op for these
    // numbers).
    NetStats stats;
    const std::vector<FrEvent> events = rec_.snapshot();
    const std::size_t frontier = static_cast<std::size_t>(
        std::min<std::uint64_t>(rec_.consumedFrontier(), events.size()));
    const std::uint16_t wanted = static_cast<std::uint16_t>(
        instance_ * frCatSlots +
        static_cast<std::uint16_t>(FrCat::Net));
    for (std::size_t i = 0; i < frontier; i++) {
        const FrEvent &e = events[i];
        if (e.stream != wanted)
            continue;
        if (shard >= 0 &&
            e.arg[3] != static_cast<std::uint64_t>(shard))
            continue;
        if (e.kind == static_cast<std::uint16_t>(FrKind::NetFetch)) {
            stats.bytesFetched += e.arg[0];
            stats.fetchMessages++;
            stats.fetchPayloads += e.arg[1];
            if (e.arg[1] >= 2)
                stats.fetchBatches++;
            stats.maxFetchBatch =
                std::max(stats.maxFetchBatch, e.arg[1]);
        } else if (e.kind ==
                   static_cast<std::uint16_t>(FrKind::NetWriteback)) {
            stats.bytesWrittenBack += e.arg[0];
            stats.writebackMessages++;
            stats.writebackPayloads += e.arg[1];
            if (e.arg[1] >= 2)
                stats.writebackBatches++;
            stats.maxWritebackBatch =
                std::max(stats.maxWritebackBatch, e.arg[1]);
        }
    }
    return stats;
}

NetStats
ReplayBackend::netStats() const
{
    return netStatsFiltered(-1);
}

NetStats
ReplayBackend::shardNetStats(std::uint32_t shard) const
{
    return netStatsFiltered(static_cast<std::int64_t>(shard));
}

std::uint32_t
ReplayBackend::shardCount() const
{
    const std::uint16_t wanted = static_cast<std::uint16_t>(
        instance_ * frCatSlots +
        static_cast<std::uint16_t>(FrCat::Net));
    std::uint64_t top = 0;
    for (const FrEvent &e : rec_.snapshot()) {
        if (e.stream == wanted)
            top = std::max(top, e.arg[3]);
    }
    return static_cast<std::uint32_t>(top + 1);
}

ClusterStats
ReplayBackend::clusterStats() const
{
    std::uint64_t args[4] = {0, 0, 0, 0};
    rec_.record(instance_, FrCat::Backend, FrKind::BackendClusterStats,
                clock_.now(), args, 0);
    ClusterStats stats;
    stats.degradedReads = args[0];
    stats.reReplicatedBytes = args[1];
    stats.shardFailures = args[2];
    stats.degradedWrites = args[3];
    return stats;
}

RemoteStats
ReplayBackend::remoteStats() const
{
    // The remote node mirrors the link: requests == messages served.
    const NetStats net = netStats();
    RemoteStats stats;
    stats.fetchRequests = net.fetchMessages;
    stats.writebackRequests = net.writebackMessages;
    stats.fetchPayloads = net.fetchPayloads;
    stats.writebackPayloads = net.writebackPayloads;
    return stats;
}

void
ReplayBackend::exportStats(StatSet &) const
{
    // The runtime exports the recorder's replay.* counters itself.
}

} // namespace tfm
