/**
 * @file
 * The replay driver: backend decorators pairing with flight_recorder.hh.
 *
 * RecordingBackend wraps the real remote tier (single node or sharded
 * cluster) and logs every operation's inputs and outcome — completion
 * cycles and per-segment arrival cycles — onto the backend stream.
 *
 * ReplayBackend *replaces* the remote tier: it owns a flat data store
 * (so payload bytes are served exactly as a real backend would serve
 * them) but takes every timing decision from the recorded stream,
 * verifying the replayed run's requests against the log as it goes.
 * Together with the evacuator and prefetcher decision feeds in
 * FarMemRuntime, this makes a replayed run bit-exact: the clock
 * advances to the recorded completion cycles instead of being
 * re-derived from link state, so even a changed network model cannot
 * silently alter a replay — it diverges loudly instead.
 *
 * Both classes live in src/obs with the recorder, but are compiled
 * into the cluster library (they implement RemoteBackend, which obs
 * cannot depend on).
 */

#ifndef TRACKFM_OBS_REPLAY_HH
#define TRACKFM_OBS_REPLAY_HH

#include <memory>

#include "cluster/remote_backend.hh"
#include "obs/flight_recorder.hh"
#include "sim/cost_params.hh"

namespace tfm
{

/**
 * Record-mode decorator: forwards every operation to the wrapped
 * backend, then logs {inputs, completion cycle, arrivals} onto this
 * instance's backend stream. The event's cycle field is the operation's
 * *start* cycle — the same cycle at which replay verification runs.
 */
class RecordingBackend final : public RemoteBackend
{
  public:
    RecordingBackend(std::unique_ptr<RemoteBackend> inner,
                     CycleClock &clock, FlightRecorder &recorder,
                     std::uint16_t instance)
        : inner_(std::move(inner)), clock_(clock), rec_(recorder),
          instance_(instance)
    {}

    std::uint64_t capacity() const override { return inner_->capacity(); }
    void fetch(std::uint64_t offset, std::byte *dst,
               std::size_t len) override;
    std::uint64_t fetchAsync(std::uint64_t offset, std::byte *dst,
                             std::size_t len) override;
    std::uint64_t
    fetchBatchAsync(const std::vector<RemoteFetchSeg> &segs,
                    std::vector<std::uint64_t> *arrivals) override;
    void writeback(std::uint64_t offset, const std::byte *src,
                   std::size_t len) override;
    void writebackBatch(const std::vector<RemoteWriteSeg> &segs) override;

    void
    rawWrite(std::uint64_t offset, const std::byte *src,
             std::size_t len) override
    {
        inner_->rawWrite(offset, src, len);
    }

    void
    rawRead(std::uint64_t offset, std::byte *dst,
            std::size_t len) const override
    {
        inner_->rawRead(offset, dst, len);
    }

    NetStats netStats() const override { return inner_->netStats(); }
    RemoteStats remoteStats() const override
    {
        return inner_->remoteStats();
    }
    NetStats shardNetStats(std::uint32_t shard) const override
    {
        return inner_->shardNetStats(shard);
    }
    /** Forwards, and logs the answer so a replayed query re-injects it. */
    ClusterStats clusterStats() const override;
    std::uint32_t shardCount() const override
    {
        return inner_->shardCount();
    }
    NetworkModel &link(std::uint32_t shard) override
    {
        return inner_->link(shard);
    }
    RemoteNode &node(std::uint32_t shard) override
    {
        return inner_->node(shard);
    }

    void
    attachObs(Observability *sink, std::uint32_t stream) override
    {
        inner_->attachObs(sink, stream);
    }

    void
    attachRecorder(FlightRecorder *recorder,
                   std::uint16_t instance) override
    {
        inner_->attachRecorder(recorder, instance);
    }

    void exportStats(StatSet &set) const override
    {
        inner_->exportStats(set);
    }

    const char *kind() const override { return inner_->kind(); }

    RemoteBackend &inner() { return *inner_; }

  private:
    std::unique_ptr<RemoteBackend> inner_;
    CycleClock &clock_;
    FlightRecorder &rec_;
    std::uint16_t instance_;
};

/**
 * Replay-mode backend: a flat store fed by the recorded backend
 * stream. Data moves for real (fetches copy out of the store,
 * writebacks copy in), timing is re-injected from the log, and every
 * request is verified against the recording. Link-level statistics are
 * reconstructed from the recorded net stream, so end-of-run bandwidth
 * tables still report the original run's traffic.
 */
class ReplayBackend final : public RemoteBackend
{
  public:
    ReplayBackend(CycleClock &clock, const CostParams &costs,
                  std::uint64_t capacityBytes, FlightRecorder &recorder,
                  std::uint16_t instance);

    std::uint64_t capacity() const override { return node_.capacity(); }
    void fetch(std::uint64_t offset, std::byte *dst,
               std::size_t len) override;
    std::uint64_t fetchAsync(std::uint64_t offset, std::byte *dst,
                             std::size_t len) override;
    std::uint64_t
    fetchBatchAsync(const std::vector<RemoteFetchSeg> &segs,
                    std::vector<std::uint64_t> *arrivals) override;
    void writeback(std::uint64_t offset, const std::byte *src,
                   std::size_t len) override;
    void writebackBatch(const std::vector<RemoteWriteSeg> &segs) override;

    void
    rawWrite(std::uint64_t offset, const std::byte *src,
             std::size_t len) override
    {
        node_.rawWrite(offset, src, len);
    }

    void
    rawRead(std::uint64_t offset, std::byte *dst,
            std::size_t len) const override
    {
        node_.rawRead(offset, dst, len);
    }

    /** Aggregated from the recorded net stream (context events). */
    NetStats netStats() const override;
    RemoteStats remoteStats() const override;
    /** Reconstructed per-shard from the net events' shard argument. */
    NetStats shardNetStats(std::uint32_t shard) const override;
    /** Re-injected from the recorded snapshot (a consumed event). */
    ClusterStats clusterStats() const override;

    /** Reconstructed: 1 + the highest shard the net stream mentions. */
    std::uint32_t shardCount() const override;
    NetworkModel &link(std::uint32_t) override { return net_; }
    RemoteNode &node(std::uint32_t) override { return node_; }

    void attachObs(Observability *, std::uint32_t) override {}
    void exportStats(StatSet &set) const override;
    const char *kind() const override { return "replay"; }

  private:
    /** netStats() restricted to one shard (@p shard < 0: all shards). */
    NetStats netStatsFiltered(std::int64_t shard) const;

    CycleClock &clock_;
    CostParams costs_; ///< the dummy link needs a stable reference
    NetworkModel net_; ///< interface-only; never charged during replay
    RemoteNode node_;
    FlightRecorder &rec_;
    std::uint16_t instance_;
};

} // namespace tfm

#endif // TRACKFM_OBS_REPLAY_HH
