/**
 * @file
 * The unified observability layer: one object bundling the structured
 * event tracer, the latency/size histograms, and the epoch time-series
 * sampler, shared by every runtime (FarMem/Tfm/Aifm/Fastswap) plus the
 * network and remote-node models underneath them.
 *
 * Design rules (see DESIGN.md "Observability"):
 *  - Always compiled in. Instrumented code holds an `Observability *`
 *    that is nullptr by default; every hot-path emission site is
 *    guarded by that single null check and nothing else.
 *  - Never charges simulated cycles: observability is outside the cost
 *    model, so enabling a trace cannot change any figure.
 *  - Each runtime instance registers a *stream* (rendered as a process
 *    in Perfetto) and emits onto fixed tracks (threads) within it, so
 *    timestamps are monotone per (stream, track) even when one bench
 *    sweeps many runtimes whose clocks all start at zero.
 */

#ifndef TRACKFM_OBS_OBS_HH
#define TRACKFM_OBS_OBS_HH

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <utility>

#include "histogram.hh"
#include "time_series.hh"
#include "trace_event.hh"

namespace tfm
{

class StatSet;

/** Fixed tracks ("threads") within one runtime's trace stream. */
enum ObsTrack : std::uint32_t
{
    TrackApp = 0,    ///< the application thread: guards, demand fetches
    TrackNetIn = 1,  ///< inbound link: fetch messages
    TrackNetOut = 2, ///< outbound link: writeback messages
    TrackRemote = 3  ///< remote node: requests served
};

namespace obs
{

/**
 * Track-id base for shard @p shard of a cluster backend: the fixed
 * tracks above are followed by one (net-in, net-out, remote) triple
 * per shard, so NetworkModel/RemoteNode emission sites shifted by this
 * base render each shard as its own set of tracks.
 */
constexpr std::uint32_t
shardTrackBase(std::uint32_t shard)
{
    return TrackRemote + shard * 3;
}

} // namespace obs

/** Observability layer configuration. */
struct ObsConfig
{
    /// Collect trace events (spans/instants/counters) into the sink.
    bool trace = true;
    /// Trace buffer bound; further events are counted as dropped.
    std::size_t traceMaxEvents = 1u << 20;
    /// Time-series snapshot epoch in simulated cycles; 0 disables.
    std::uint64_t epochCycles = 0;
};

/**
 * One observability domain: a trace sink, the standard histogram set,
 * and the time-series sampler. Typically owned by the bench / test and
 * attached to runtimes through RuntimeConfig::obs (or the process-wide
 * default installed by the --trace bench flag).
 */
class Observability
{
  public:
    explicit Observability(const ObsConfig &config = ObsConfig{});

    const ObsConfig &config() const { return cfg; }
    TraceSink &trace() { return sink; }
    const TraceSink &trace() const { return sink; }
    TimeSeriesSampler &series() { return sampler; }
    const TimeSeriesSampler &series() const { return sampler; }

    /**
     * Allocate a stream id for one runtime instance and label it in the
     * trace. @p kind is e.g. "trackfm", "fastswap".
     */
    std::uint32_t registerStream(const char *kind);

    /**
     * Name the (net-in, net-out, remote) track triple of cluster shard
     * @p shard on @p stream ("shard3-in", ...), so per-shard traffic is
     * legible in trace viewers. No-op when tracing is disabled.
     */
    void registerShardTracks(std::uint32_t stream, std::uint32_t shard);

    /** @name Standard histograms
     *  Maintained by the instrumented subsystems whenever attached.
     * @{ */
    Histogram fetchLatency;     ///< inbound message issue -> arrival
    Histogram writebackLatency; ///< outbound message start -> drained
    Histogram fetchBatch;       ///< payloads per inbound message
    Histogram writebackBatch;   ///< payloads per outbound message
    Histogram demandFetch;      ///< localize() blocking-miss cycles
    Histogram prefetchWait;     ///< residual wait joining in-flight fetch
    Histogram wbResidency;      ///< cycles a dirty object sat buffered
    Histogram interMissDist;    ///< |obj-id delta| between demand misses
    Histogram faultLatency;     ///< fastswap major-fault cycles
    /** @} */

    /** Is a time-series snapshot due for @p stream at @p now? */
    bool
    seriesDue(std::uint32_t stream, std::uint64_t now) const
    {
        return sampler.due(stream, now);
    }

    /**
     * Take one epoch snapshot: records every (name, value) pair in the
     * series and mirrors each as a counter event in the trace.
     */
    void counterSample(
        std::uint32_t stream, std::uint64_t now,
        std::initializer_list<std::pair<const char *, std::uint64_t>>
            values);

    /** Histogram summaries under "obs.*" names. */
    void exportStats(StatSet &set) const;

    /** Serialize the trace (Chrome trace_event JSON). */
    void writeTrace(std::ostream &os) const;

  private:
    ObsConfig cfg;
    TraceSink sink;
    TimeSeriesSampler sampler;
    std::uint32_t nextStream = 0;
};

namespace obs
{

/**
 * Process-wide default sink picked up by runtimes whose config carries
 * no explicit Observability. Installed by the bench-level --trace flag
 * (bench_util.hh) so every existing bench can emit traces without
 * per-bench changes; null in normal operation.
 */
Observability *defaultSink();
void setDefaultSink(Observability *sink);

} // namespace obs

} // namespace tfm

#endif // TRACKFM_OBS_OBS_HH
