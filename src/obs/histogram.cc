#include "histogram.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "sim/stats.hh"

namespace tfm
{

std::uint64_t
Histogram::percentile(double p) const
{
    if (_count == 0)
        return 0;
    p = std::clamp(p, 0.0, 100.0);
    if (p >= 100.0)
        return _max; // the maximum is tracked exactly
    // Rank of the sample that answers the query, 1-based.
    const auto target = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(_count)));
    const std::uint64_t rank = std::max<std::uint64_t>(target, 1);

    std::uint64_t cumulative = 0;
    for (int b = 0; b < numBuckets; b++) {
        if (buckets[b] == 0)
            continue;
        if (cumulative + buckets[b] < rank) {
            cumulative += buckets[b];
            continue;
        }
        // The rank-th sample lies in this bucket. Clamp the bucket's
        // nominal range to the observed min/max so single-valued
        // distributions come out exact.
        const std::uint64_t lo = std::max(bucketLo(b), _min);
        const std::uint64_t hi = std::min(bucketHi(b), _max);
        if (hi <= lo)
            return lo;
        const double within =
            static_cast<double>(rank - cumulative - 1) /
            static_cast<double>(buckets[b]);
        return lo + static_cast<std::uint64_t>(
                        within * static_cast<double>(hi - lo));
    }
    return _max;
}

void
Histogram::exportStats(StatSet &set, const char *prefix) const
{
    const std::string base(prefix);
    set.add(base + ".count", _count);
    set.add(base + ".p50", percentile(50));
    set.add(base + ".p90", percentile(90));
    set.add(base + ".p99", percentile(99));
    set.add(base + ".max", max());
}

void
Histogram::exportSloStats(StatSet &set, const char *prefix) const
{
    const std::string base(prefix);
    set.add(base + ".count", _count);
    set.add(base + ".p50", percentile(50));
    set.add(base + ".p99", percentile(99));
    set.add(base + ".p999", percentile(99.9));
    set.add(base + ".mean",
            static_cast<std::uint64_t>(std::llround(mean())));
    set.add(base + ".max", max());
}

} // namespace tfm
