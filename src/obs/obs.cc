#include "obs.hh"

#include <cstdio>
#include <ostream>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace tfm
{

Observability::Observability(const ObsConfig &config)
    : cfg(config),
      sink(config.trace ? config.traceMaxEvents : 0),
      sampler(config.epochCycles)
{}

std::uint32_t
Observability::registerStream(const char *kind)
{
    const std::uint32_t id = nextStream++;
    if (sink.enabled()) {
        char label[64];
        std::snprintf(label, sizeof(label), "%s #%u", kind, id);
        sink.setProcessName(id, label);
        sink.setThreadName(id, TrackApp, "app");
        sink.setThreadName(id, TrackNetIn, "net-in");
        sink.setThreadName(id, TrackNetOut, "net-out");
        sink.setThreadName(id, TrackRemote, "remote");
    }
    return id;
}

void
Observability::registerShardTracks(std::uint32_t stream,
                                   std::uint32_t shard)
{
    if (!sink.enabled())
        return;
    const std::uint32_t base = obs::shardTrackBase(shard);
    char label[32];
    std::snprintf(label, sizeof(label), "shard%u-in", shard);
    sink.setThreadName(stream, base + TrackNetIn, label);
    std::snprintf(label, sizeof(label), "shard%u-out", shard);
    sink.setThreadName(stream, base + TrackNetOut, label);
    std::snprintf(label, sizeof(label), "shard%u-remote", shard);
    sink.setThreadName(stream, base + TrackRemote, label);
}

void
Observability::counterSample(
    std::uint32_t stream, std::uint64_t now,
    std::initializer_list<std::pair<const char *, std::uint64_t>> values)
{
    for (const auto &[name, value] : values) {
        sampler.record(stream, now, name, value);
        if (sink.enabled())
            sink.counter(stream, name, now, value);
    }
    sampler.advance(stream, now);
}

void
Observability::exportStats(StatSet &set) const
{
    fetchLatency.exportStats(set, "obs.fetch_latency");
    writebackLatency.exportStats(set, "obs.writeback_latency");
    fetchBatch.exportStats(set, "obs.fetch_batch");
    writebackBatch.exportStats(set, "obs.writeback_batch");
    demandFetch.exportStats(set, "obs.demand_fetch");
    prefetchWait.exportStats(set, "obs.prefetch_wait");
    wbResidency.exportStats(set, "obs.wb_residency");
    interMissDist.exportStats(set, "obs.inter_miss_dist");
    faultLatency.exportStats(set, "obs.fault_latency");
    set.add("obs.trace_events", sink.size());
    set.add("obs.trace_dropped", sink.dropped());
    set.add("obs.series_points", sampler.size());
}

void
Observability::writeTrace(std::ostream &os) const
{
    if (sink.dropped() > 0) {
        TFM_WARN("trace buffer full: dropped %zu events (raise "
                 "ObsConfig::traceMaxEvents)",
                 sink.dropped());
    }
    sink.write(os);
}

namespace obs
{

namespace
{
Observability *defaultSink_ = nullptr;
} // anonymous namespace

Observability *
defaultSink()
{
    return defaultSink_;
}

void
setDefaultSink(Observability *sink)
{
    defaultSink_ = sink;
}

} // namespace obs

} // namespace tfm
