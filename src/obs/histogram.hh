/**
 * @file
 * Log2-bucketed latency/size histogram.
 *
 * The paper's evaluation is distributional (fetch latency tails, batch
 * size mixes, I/O amplification over time), so end-of-run scalar
 * counters are not enough to judge a data-plane change. This histogram
 * records into power-of-two buckets — one increment and a count-leading-
 * zeros per sample — and reconstructs approximate percentiles by linear
 * interpolation inside the hit bucket, clamped to the observed min/max
 * so degenerate distributions (all samples equal) report exactly.
 */

#ifndef TRACKFM_OBS_HISTOGRAM_HH
#define TRACKFM_OBS_HISTOGRAM_HH

#include <cstdint>
#include <limits>

namespace tfm
{

class StatSet;

/**
 * Fixed-size log2 histogram over uint64 samples.
 *
 * Bucket 0 holds the value 0; bucket k (k >= 1) holds the range
 * [2^(k-1), 2^k - 1]. 65 buckets cover the full uint64 domain.
 */
class Histogram
{
  public:
    static constexpr int numBuckets = 65;

    /** Bucket index for @p value. */
    static int
    bucketOf(std::uint64_t value)
    {
        return value == 0 ? 0 : 64 - __builtin_clzll(value);
    }

    /** Smallest value mapped to @p bucket. */
    static std::uint64_t
    bucketLo(int bucket)
    {
        return bucket == 0 ? 0 : 1ull << (bucket - 1);
    }

    /** Largest value mapped to @p bucket. */
    static std::uint64_t
    bucketHi(int bucket)
    {
        if (bucket == 0)
            return 0;
        if (bucket == numBuckets - 1)
            return std::numeric_limits<std::uint64_t>::max();
        return (1ull << bucket) - 1;
    }

    void
    record(std::uint64_t value)
    {
        buckets[bucketOf(value)]++;
        _count++;
        _sum += value;
        if (value < _min)
            _min = value;
        if (value > _max)
            _max = value;
    }

    std::uint64_t count() const { return _count; }
    std::uint64_t sum() const { return _sum; }
    std::uint64_t min() const { return _count ? _min : 0; }
    std::uint64_t max() const { return _count ? _max : 0; }
    std::uint64_t bucketCount(int bucket) const { return buckets[bucket]; }

    double
    mean() const
    {
        return _count == 0 ? 0.0
                           : static_cast<double>(_sum) /
                                 static_cast<double>(_count);
    }

    /**
     * Approximate percentile; @p p in [0, 100]. Exact when the hit
     * bucket degenerates to one observed value, otherwise linear
     * interpolation across the bucket's observed sub-range.
     */
    std::uint64_t percentile(double p) const;

    void reset() { *this = Histogram{}; }

    /**
     * Fold @p other into this histogram: bucket-wise counter addition,
     * so merged percentiles carry the same log2-bucket accuracy as if
     * every sample had been recorded here. Used by tfm-stat to combine
     * per-shard (or per-node) distributions into cluster-wide tails.
     */
    void
    merge(const Histogram &other)
    {
        for (int i = 0; i < numBuckets; i++)
            buckets[i] += other.buckets[i];
        _count += other._count;
        _sum += other._sum;
        if (other._count) {
            if (other._min < _min)
                _min = other._min;
            if (other._max > _max)
                _max = other._max;
        }
    }

    /** Add count/p50/p90/p99/max under "<prefix>...." names. */
    void exportStats(StatSet &set, const char *prefix) const;

    /**
     * SLO-reporting flavor: count/p50/p99/p999/mean/max. Serving tails
     * are judged at p99.9, which the standard export omits; the mean
     * is rounded to the nearest integer sample unit.
     */
    void exportSloStats(StatSet &set, const char *prefix) const;

  private:
    std::uint64_t buckets[numBuckets] = {};
    std::uint64_t _count = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _min = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t _max = 0;
};

} // namespace tfm

#endif // TRACKFM_OBS_HISTOGRAM_HH
