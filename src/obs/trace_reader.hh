/**
 * @file
 * Loader for Chrome trace_event JSON files produced by TraceSink.
 *
 * A small recursive-descent JSON parser (objects, arrays, strings,
 * numbers, bools, null) plus an extractor that maps the generic parse
 * back onto TraceEvent-shaped records. Shared by the tfm-stat CLI and
 * the observability tests; tools/validate_trace.py is the independent
 * well-formedness check.
 */

#ifndef TRACKFM_OBS_TRACE_READER_HH
#define TRACKFM_OBS_TRACE_READER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tfm
{

/** One parsed trace event (strings owned, unlike TraceEvent). */
struct ParsedEvent
{
    std::string name;
    std::string cat;
    char ph = '?';
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;
    std::map<std::string, std::uint64_t> args;
};

/** A loaded trace file. */
struct ParsedTrace
{
    std::vector<ParsedEvent> events;
    std::uint64_t dropped = 0; ///< otherData.dropped, when present
};

/**
 * Parse @p json as a Chrome trace. Returns false (with @p error set)
 * on malformed JSON or a missing traceEvents array.
 */
bool parseTrace(const std::string &json, ParsedTrace &out,
                std::string &error);

/** Read and parse a trace file. */
bool loadTraceFile(const std::string &path, ParsedTrace &out,
                   std::string &error);

} // namespace tfm

#endif // TRACKFM_OBS_TRACE_READER_HH
