#include "flight_recorder.hh"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>

#include "obs/obs.hh"
#include "sim/stats.hh"

namespace tfm
{

namespace
{

constexpr char kMagic[8] = {'T', 'F', 'M', 'F', 'R', 'E', 'C', '\0'};
constexpr char kEndMagic[8] = {'T', 'F', 'M', 'F', 'R', 'E', 'N', 'D'};
constexpr std::size_t kHeaderBytes = 40;
constexpr std::size_t kTrailerBytes = 16;
constexpr std::uint32_t kRingFlag = 1u << 0;

/** FNV-1a over the serialized event bytes. */
std::uint64_t
fnv1a(const void *data, std::size_t len,
      std::uint64_t hash = 1469598103934665603ull)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; i++) {
        hash ^= bytes[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

const char *
catName(std::uint16_t cat)
{
    switch (static_cast<FrCat>(cat)) {
      case FrCat::Net:
        return "net";
      case FrCat::Backend:
        return "backend";
      case FrCat::Cluster:
        return "cluster";
      case FrCat::Evac:
        return "evac";
      case FrCat::Prefetch:
        return "prefetch";
      default:
        return "unknown";
    }
}

/** Streams that replay actually consumes (the rest are context). */
bool
consumedCat(std::uint16_t cat)
{
    switch (static_cast<FrCat>(cat)) {
      case FrCat::Backend:
      case FrCat::Evac:
      case FrCat::Prefetch:
        return true;
      default:
        return false;
    }
}

} // anonymous namespace

std::string
frStreamName(std::uint16_t stream)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%s#%u",
                  catName(stream % frCatSlots), stream / frCatSlots);
    return buffer;
}

const char *
frKindName(std::uint16_t kind)
{
    switch (static_cast<FrKind>(kind)) {
      case FrKind::NetFetch:
        return "net.fetch";
      case FrKind::NetWriteback:
        return "net.writeback";
      case FrKind::BackendFetch:
        return "backend.fetch";
      case FrKind::BackendFetchAsync:
        return "backend.fetch-async";
      case FrKind::BackendFetchBatch:
        return "backend.fetch-batch";
      case FrKind::BackendFetchSeg:
        return "backend.fetch-seg";
      case FrKind::BackendWriteback:
        return "backend.writeback";
      case FrKind::BackendWritebackBatch:
        return "backend.writeback-batch";
      case FrKind::BackendWritebackSeg:
        return "backend.writeback-seg";
      case FrKind::BackendClusterStats:
        return "backend.cluster-stats";
      case FrKind::ClusterShardFail:
        return "cluster.shard-fail";
      case FrKind::ClusterReReplicate:
        return "cluster.re-replicate";
      case FrKind::EvacVictim:
        return "evac.victim";
      case FrKind::PrefetchDecision:
        return "prefetch.decision";
      default:
        return "unknown";
    }
}

std::string
frEventToString(const FrEvent &e)
{
    char buffer[192];
    std::snprintf(buffer, sizeof(buffer),
                  "%s seq %" PRIu32 " kind %s cycle %" PRIu64
                  " args [%" PRIu64 ", %" PRIu64 ", %" PRIu64 ", %" PRIu64
                  "]",
                  frStreamName(e.stream).c_str(), e.seq,
                  frKindName(e.kind), e.cycle, e.arg[0], e.arg[1],
                  e.arg[2], e.arg[3]);
    return buffer;
}

bool
saveFrLog(const std::string &path, const FrLog &log, std::string &error)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        error = "cannot open '" + path + "' for writing";
        return false;
    }

    unsigned char header[kHeaderBytes] = {};
    std::memcpy(header, kMagic, 8);
    const std::uint32_t version = frSchemaVersion;
    const std::uint64_t count = log.events.size();
    std::memcpy(header + 8, &version, 4);
    std::memcpy(header + 12, &log.flags, 4);
    std::memcpy(header + 16, &log.wallTime, 8);
    std::memcpy(header + 24, &count, 8);
    std::memcpy(header + 32, &log.ringCapacity, 8);
    os.write(reinterpret_cast<const char *>(header), kHeaderBytes);

    std::uint64_t checksum = fnv1a(nullptr, 0);
    if (!log.events.empty()) {
        os.write(reinterpret_cast<const char *>(log.events.data()),
                 static_cast<std::streamsize>(count * sizeof(FrEvent)));
        checksum = fnv1a(log.events.data(), count * sizeof(FrEvent));
    }

    unsigned char trailer[kTrailerBytes];
    std::memcpy(trailer, &checksum, 8);
    std::memcpy(trailer + 8, kEndMagic, 8);
    os.write(reinterpret_cast<const char *>(trailer), kTrailerBytes);
    if (!os) {
        error = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

bool
loadFrLog(const std::string &path, FrLog &log, std::string &error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(is)),
                            std::istreambuf_iterator<char>());

    if (bytes.size() < kHeaderBytes) {
        error = "'" + path + "' is not a flight-recorder log (only " +
                std::to_string(bytes.size()) + " bytes)";
        return false;
    }
    if (std::memcmp(bytes.data(), kMagic, 8) != 0) {
        error = "'" + path + "' is not a flight-recorder log (bad magic)";
        return false;
    }
    std::uint64_t count = 0;
    std::memcpy(&log.version, bytes.data() + 8, 4);
    std::memcpy(&log.flags, bytes.data() + 12, 4);
    std::memcpy(&log.wallTime, bytes.data() + 16, 8);
    std::memcpy(&count, bytes.data() + 24, 8);
    std::memcpy(&log.ringCapacity, bytes.data() + 32, 8);

    if (log.version != frSchemaVersion) {
        error = "'" + path + "': schema version mismatch: log is v" +
                std::to_string(log.version) + ", this tool reads v" +
                std::to_string(frSchemaVersion);
        return false;
    }

    const std::size_t avail = bytes.size() - kHeaderBytes;
    const std::size_t wholeEvents =
        std::min<std::size_t>(count, avail / sizeof(FrEvent));
    log.events.resize(wholeEvents);
    if (wholeEvents) {
        std::memcpy(log.events.data(), bytes.data() + kHeaderBytes,
                    wholeEvents * sizeof(FrEvent));
    }

    const std::size_t expected =
        kHeaderBytes + count * sizeof(FrEvent) + kTrailerBytes;
    if (bytes.size() < expected) {
        error = "'" + path + "' is truncated: header promises " +
                std::to_string(count) + " events (" +
                std::to_string(expected) + " bytes), file has " +
                std::to_string(bytes.size()) + "; last valid event: ";
        error += log.events.empty()
                     ? "none"
                     : frStreamName(log.events.back().stream) + " seq " +
                           std::to_string(log.events.back().seq);
        return false;
    }

    const char *trailer =
        bytes.data() + kHeaderBytes + count * sizeof(FrEvent);
    std::uint64_t storedChecksum = 0;
    std::memcpy(&storedChecksum, trailer, 8);
    if (std::memcmp(trailer + 8, kEndMagic, 8) != 0) {
        error = "'" + path + "': bad trailer magic (corrupted log)";
        return false;
    }
    const std::uint64_t checksum =
        fnv1a(log.events.data(), count * sizeof(FrEvent));
    if (checksum != storedChecksum) {
        char rendered[64];
        std::snprintf(rendered, sizeof(rendered),
                      "stored %016" PRIx64 ", computed %016" PRIx64,
                      storedChecksum, checksum);
        error = "'" + path + "': checksum mismatch (" + rendered +
                "): log is corrupted";
        return false;
    }

    // Per-stream sequence continuity. A full log starts every stream at
    // 0; a ring dump starts wherever the ring's tail happens to begin,
    // but must still be gap-free within each stream.
    std::vector<std::uint32_t> next;
    std::vector<bool> seen;
    for (std::size_t i = 0; i < log.events.size(); i++) {
        const FrEvent &e = log.events[i];
        if (e.stream >= next.size()) {
            next.resize(e.stream + 1, 0);
            seen.resize(e.stream + 1, false);
        }
        const bool fresh = !seen[e.stream];
        seen[e.stream] = true;
        if (fresh && (log.flags & kRingFlag))
            next[e.stream] = e.seq;
        else if (fresh && e.seq != 0) {
            error = "'" + path + "': stream " + frStreamName(e.stream) +
                    " starts at seq " + std::to_string(e.seq) +
                    ", expected 0";
            return false;
        }
        if (e.seq != next[e.stream]) {
            error = "'" + path + "': sequence gap on stream " +
                    frStreamName(e.stream) + ": event " +
                    std::to_string(i) + " has seq " +
                    std::to_string(e.seq) + ", expected " +
                    std::to_string(next[e.stream]);
            return false;
        }
        next[e.stream]++;
    }
    return true;
}

FlightRecorder::FlightRecorder(std::size_t ring_capacity)
    : mode_(Mode::Record), ringCap_(ring_capacity)
{}

FlightRecorder::FlightRecorder(FrLog &&loaded)
    : mode_(Mode::Replay), log_(std::move(loaded))
{
    for (std::size_t i = 0; i < log_.events.size(); i++) {
        const std::uint16_t stream = log_.events[i].stream;
        if (stream >= streamEvents_.size()) {
            streamEvents_.resize(stream + 1);
            cursor_.resize(stream + 1, 0);
        }
        streamEvents_[stream].push_back(i);
    }
}

std::unique_ptr<FlightRecorder>
FlightRecorder::loadForReplay(const std::string &path, std::string &error)
{
    FrLog log;
    if (!loadFrLog(path, log, error))
        return nullptr;
    if (log.flags & kRingFlag) {
        error = "'" + path + "' is a ring-buffer tail dump; only full " +
                "logs can be replayed";
        return nullptr;
    }
    return std::unique_ptr<FlightRecorder>(
        new FlightRecorder(std::move(log)));
}

std::uint16_t
FlightRecorder::registerInstance()
{
    return nextInstance_++;
}

void
FlightRecorder::record(std::uint16_t instance, FrCat cat, FrKind kind,
                       std::uint64_t cycle, std::uint64_t (&args)[4],
                       int check_args)
{
    const std::uint16_t stream = static_cast<std::uint16_t>(
        instance * frCatSlots + static_cast<std::uint16_t>(cat));
    if (mode_ == Mode::Replay) {
        verify(stream, kind, cycle, args, check_args);
        return;
    }
    if (stream >= nextSeq_.size())
        nextSeq_.resize(stream + 1, 0);
    FrEvent e;
    e.stream = stream;
    e.kind = static_cast<std::uint16_t>(kind);
    e.seq = nextSeq_[stream]++;
    e.cycle = cycle;
    for (int i = 0; i < 4; i++)
        e.arg[i] = args[i];
    if (ringCap_ && events_.size() >= ringCap_) {
        events_.pop_front();
        ringDropped_++;
    }
    events_.push_back(e);
}

void
FlightRecorder::verify(std::uint16_t stream, FrKind kind,
                       std::uint64_t cycle, std::uint64_t (&args)[4],
                       int check_args)
{
    if (stream >= streamEvents_.size() ||
        cursor_[stream] >= streamEvents_[stream].size()) {
        FrEvent actual;
        actual.stream = stream;
        actual.kind = static_cast<std::uint16_t>(kind);
        actual.seq = stream < cursor_.size()
                         ? static_cast<std::uint32_t>(cursor_[stream])
                         : 0;
        actual.cycle = cycle;
        for (int i = 0; i < 4; i++)
            actual.arg[i] = args[i];
        diverge(stream, actual.seq,
                "log exhausted on stream " + frStreamName(stream) +
                    ": replayed run attempted an unrecorded event\n"
                    "  actual:   " +
                    frEventToString(actual));
    }
    const FrEvent &expected =
        log_.events[streamEvents_[stream][cursor_[stream]]];
    bool match = expected.kind == static_cast<std::uint16_t>(kind) &&
                 expected.cycle == cycle;
    for (int i = 0; match && i < check_args; i++)
        match = expected.arg[i] == args[i];
    if (!match) {
        FrEvent actual;
        actual.stream = stream;
        actual.kind = static_cast<std::uint16_t>(kind);
        actual.seq = expected.seq;
        actual.cycle = cycle;
        for (int i = 0; i < 4; i++)
            actual.arg[i] = args[i];
        diverge(stream, expected.seq,
                "first mismatch on stream " + frStreamName(stream) +
                    " at seq " + std::to_string(expected.seq) +
                    "\n  expected: " + frEventToString(expected) +
                    "\n  actual:   " + frEventToString(actual));
    }
    // Re-inject the recorded outcome (arrival/completion cycles).
    for (int i = 0; i < 4; i++)
        args[i] = expected.arg[i];
    frontier_ = std::max<std::uint64_t>(
        frontier_, streamEvents_[stream][cursor_[stream]] + 1);
    cursor_[stream]++;
    consumed_++;
}

void
FlightRecorder::diverge(std::uint16_t stream, std::uint32_t seq,
                        const std::string &detail)
{
    const std::string what = "replay divergence: " + detail;
    if (policy_ == DivergencePolicy::Abort) {
        std::fprintf(stderr, "%s\n", what.c_str());
        std::_Exit(3);
    }
    throw ReplayDivergence(stream, seq, what);
}

void
FlightRecorder::finishReplay()
{
    if (mode_ != Mode::Replay)
        return;
    for (std::size_t stream = 0; stream < streamEvents_.size(); stream++) {
        if (!consumedCat(static_cast<std::uint16_t>(stream % frCatSlots)))
            continue;
        if (cursor_[stream] < streamEvents_[stream].size()) {
            const FrEvent &e =
                log_.events[streamEvents_[stream][cursor_[stream]]];
            diverge(static_cast<std::uint16_t>(stream), e.seq,
                    "log not fully consumed: replayed run ended with " +
                        std::to_string(streamEvents_[stream].size() -
                                       cursor_[stream]) +
                        " unreplayed event(s) on stream " +
                        frStreamName(static_cast<std::uint16_t>(stream)) +
                        "\n  next unconsumed: " + frEventToString(e));
        }
    }
}

std::uint64_t
FlightRecorder::categoryCount(FrCat cat) const
{
    std::uint64_t count = 0;
    const auto wanted = static_cast<std::uint16_t>(cat);
    if (mode_ == Mode::Replay) {
        for (const FrEvent &e : log_.events)
            count += (e.stream % frCatSlots) == wanted;
    } else {
        for (const FrEvent &e : events_)
            count += (e.stream % frCatSlots) == wanted;
    }
    return count;
}

std::vector<FrEvent>
FlightRecorder::snapshot() const
{
    if (mode_ == Mode::Replay)
        return log_.events;
    return {events_.begin(), events_.end()};
}

bool
FlightRecorder::save(const std::string &path, std::string &error) const
{
    FrLog log;
    log.version = frSchemaVersion;
    log.flags = ringDropped_ ? kRingFlag : 0;
    log.wallTime = static_cast<std::uint64_t>(std::time(nullptr));
    log.ringCapacity = ringCap_;
    log.events = snapshot();
    return saveFrLog(path, log, error);
}

void
FlightRecorder::exportTrace(Observability &sink, std::uint32_t stream,
                            std::uint64_t now) const
{
    TraceSink &trace = sink.trace();
    if (!trace.enabled())
        return;
    trace.metadata("flight_recorder_schema", "version", frSchemaVersion);
    static const char *const counterNames[2][6] = {
        {"record.net", "record.backend", "record.cluster", "record.evac",
         "record.prefetch", "record.events"},
        {"replay.net", "replay.backend", "replay.cluster", "replay.evac",
         "replay.prefetch", "replay.events"},
    };
    const int row = replaying() ? 1 : 0;
    const FrCat cats[5] = {FrCat::Net, FrCat::Backend, FrCat::Cluster,
                           FrCat::Evac, FrCat::Prefetch};
    std::uint64_t total = 0;
    for (int i = 0; i < 5; i++) {
        const std::uint64_t count = categoryCount(cats[i]);
        total += count;
        trace.counter(stream, counterNames[row][i], now, count);
    }
    trace.counter(stream, counterNames[row][5], now, total);
    if (replaying())
        trace.counter(stream, "replay.consumed", now, consumed_);
    if (ringCap_)
        trace.counter(stream, "record.ring_dropped", now, ringDropped_);
}

void
FlightRecorder::exportStats(StatSet &set) const
{
    if (replaying()) {
        set.add("replay.events", log_.events.size());
        set.add("replay.consumed", consumed_);
    } else {
        set.add("record.events", events_.size());
        if (ringCap_)
            set.add("record.ring_dropped", ringDropped_);
    }
}

namespace obs
{

namespace
{
FlightRecorder *gRecorder = nullptr;
} // anonymous namespace

FlightRecorder *
defaultRecorder()
{
    return gRecorder;
}

void
setDefaultRecorder(FlightRecorder *recorder)
{
    gRecorder = recorder;
}

} // namespace obs

} // namespace tfm
