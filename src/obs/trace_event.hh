/**
 * @file
 * Structured event tracing in the Chrome trace_event JSON format.
 *
 * Events carry simulated-cycle timestamps and load directly into
 * Perfetto / chrome://tracing (one trace "microsecond" == one simulated
 * cycle). The sink is a bounded append buffer: recording is a few
 * stores, serialization happens once at the end of the run, and when
 * the buffer fills further events are counted as dropped rather than
 * reallocating without bound mid-measurement.
 */

#ifndef TRACKFM_OBS_TRACE_EVENT_HH
#define TRACKFM_OBS_TRACE_EVENT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace tfm
{

/**
 * One trace event.
 *
 * `name` and `cat` and the argument names must be string literals (or
 * otherwise outlive the sink): events are recorded on simulated hot
 * paths, so the sink stores pointers, never copies.
 */
struct TraceEvent
{
    const char *name = "";
    const char *cat = "";
    char ph = 'i';          ///< 'X'/'B'/'E' span, 'i' instant, 'C' counter
    std::uint32_t pid = 0;  ///< stream id (one per runtime instance)
    std::uint32_t tid = 0;  ///< track within the stream (ObsTrack)
    std::uint64_t ts = 0;   ///< simulated cycle of the event (span start)
    std::uint64_t dur = 0;  ///< span length in cycles ('X' only)
    /// Up to two numeric arguments (arg name nullptr == absent).
    const char *argName[2] = {nullptr, nullptr};
    std::uint64_t argValue[2] = {0, 0};
};

/** Bounded collector of trace events. */
class TraceSink
{
  public:
    /** @p max_events == 0 disables the sink entirely. */
    explicit TraceSink(std::size_t max_events = 0) : cap(max_events)
    {
        events.reserve(cap < 4096 ? cap : 4096);
    }

    bool enabled() const { return cap != 0; }
    std::size_t size() const { return events.size(); }
    std::size_t dropped() const { return _dropped; }
    const std::vector<TraceEvent> &all() const { return events; }

    /** A completed span: began at @p ts, lasted @p dur cycles. */
    void
    complete(std::uint32_t pid, std::uint32_t tid, const char *name,
             const char *cat, std::uint64_t ts, std::uint64_t dur)
    {
        TraceEvent e;
        e.name = name;
        e.cat = cat;
        e.ph = 'X';
        e.pid = pid;
        e.tid = tid;
        e.ts = ts;
        e.dur = dur;
        push(e);
    }

    /**
     * Open a span at @p ts. Use begin/end (rather than a completed 'X'
     * span) when other events on the same track may be emitted while
     * the span is open, so the buffer stays timestamp-ordered.
     */
    void
    begin(std::uint32_t pid, std::uint32_t tid, const char *name,
          const char *cat, std::uint64_t ts)
    {
        TraceEvent e;
        e.name = name;
        e.cat = cat;
        e.ph = 'B';
        e.pid = pid;
        e.tid = tid;
        e.ts = ts;
        push(e);
    }

    /** Close the innermost open span on (pid, tid). */
    void
    end(std::uint32_t pid, std::uint32_t tid, const char *name,
        const char *cat, std::uint64_t ts)
    {
        TraceEvent e;
        e.name = name;
        e.cat = cat;
        e.ph = 'E';
        e.pid = pid;
        e.tid = tid;
        e.ts = ts;
        push(e);
    }

    /** A thread-scoped instant event. */
    void
    instant(std::uint32_t pid, std::uint32_t tid, const char *name,
            const char *cat, std::uint64_t ts)
    {
        TraceEvent e;
        e.name = name;
        e.cat = cat;
        e.ph = 'i';
        e.pid = pid;
        e.tid = tid;
        e.ts = ts;
        push(e);
    }

    /** A counter sample (renders as a per-stream track in Perfetto). */
    void
    counter(std::uint32_t pid, const char *name, std::uint64_t ts,
            std::uint64_t value)
    {
        TraceEvent e;
        e.name = name;
        e.cat = "counter";
        e.ph = 'C';
        e.pid = pid;
        e.ts = ts;
        e.argName[0] = "value";
        e.argValue[0] = value;
        push(e);
    }

    /**
     * A metadata event ('M', no timestamp semantics): one named
     * numeric fact about the trace itself, e.g. the flight-recorder
     * schema version.
     */
    void
    metadata(const char *name, const char *arg_name, std::uint64_t value)
    {
        TraceEvent e;
        e.name = name;
        e.cat = "meta";
        e.ph = 'M';
        e.argName[0] = arg_name;
        e.argValue[0] = value;
        push(e);
    }

    /** Attach a numeric argument to the most recent event. */
    void
    arg(const char *name, std::uint64_t value)
    {
        if (!lastKept || events.empty())
            return;
        TraceEvent &e = events.back();
        const int slot = e.argName[0] == nullptr ? 0 : 1;
        e.argName[slot] = name;
        e.argValue[slot] = value;
    }

    /** Name the process (stream) / thread (track) in trace viewers. */
    void
    setProcessName(std::uint32_t pid, std::string name)
    {
        processNames.emplace_back(pid, std::move(name));
    }

    void
    setThreadName(std::uint32_t pid, std::uint32_t tid, std::string name)
    {
        threadNames.emplace_back(std::make_pair(pid, tid), std::move(name));
    }

    /**
     * Serialize everything as one Chrome trace_event JSON object
     * ({"traceEvents": [...]}), one event per line.
     */
    void write(std::ostream &os) const;

    void
    clear()
    {
        events.clear();
        _dropped = 0;
    }

  private:
    void
    push(const TraceEvent &e)
    {
        if (events.size() >= cap) {
            _dropped++;
            lastKept = false;
            return;
        }
        events.push_back(e);
        lastKept = true;
    }

    std::size_t cap;
    std::vector<TraceEvent> events;
    std::size_t _dropped = 0;
    bool lastKept = false;
    std::vector<std::pair<std::uint32_t, std::string>> processNames;
    std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>,
                          std::string>>
        threadNames;
};

} // namespace tfm

#endif // TRACKFM_OBS_TRACE_EVENT_HH
