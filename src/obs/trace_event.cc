#include "trace_event.hh"

#include <ostream>

namespace tfm
{

namespace
{

/** Minimal JSON string escaping (names we emit are plain ASCII). */
void
writeQuoted(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          default:
            if (static_cast<unsigned char>(c) >= 0x20)
                os << c;
        }
    }
    os << '"';
}

void
writeCommon(std::ostream &os, const char *name, const char *cat, char ph,
            std::uint32_t pid, std::uint32_t tid, std::uint64_t ts)
{
    writeQuoted(os, "name");
    os << ':';
    writeQuoted(os, name);
    os << ",\"cat\":";
    writeQuoted(os, cat);
    os << ",\"ph\":\"" << ph << "\",\"ts\":" << ts << ",\"pid\":" << pid
       << ",\"tid\":" << tid;
}

} // anonymous namespace

void
TraceSink::write(std::ostream &os) const
{
    os << "{\"traceEvents\":[\n";
    bool first = true;
    const auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    for (const auto &[pid, name] : processNames) {
        sep();
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":"
           << pid << ",\"tid\":0,\"args\":{\"name\":";
        writeQuoted(os, name);
        os << "}}";
    }
    for (const auto &[key, name] : threadNames) {
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":"
           << key.first << ",\"tid\":" << key.second
           << ",\"args\":{\"name\":";
        writeQuoted(os, name);
        os << "}}";
    }

    for (const TraceEvent &e : events) {
        sep();
        os << '{';
        writeCommon(os, e.name, e.cat, e.ph, e.pid, e.tid, e.ts);
        if (e.ph == 'X')
            os << ",\"dur\":" << e.dur;
        if (e.ph == 'i')
            os << ",\"s\":\"t\"";
        if (e.argName[0]) {
            os << ",\"args\":{";
            writeQuoted(os, e.argName[0]);
            os << ':' << e.argValue[0];
            if (e.argName[1]) {
                os << ',';
                writeQuoted(os, e.argName[1]);
                os << ':' << e.argValue[1];
            }
            os << '}';
        }
        os << '}';
    }
    os << "\n],\"displayTimeUnit\":\"ms\","
       << "\"otherData\":{\"clock\":\"simulated-cycles\",\"dropped\":"
       << _dropped << "}}\n";
}

} // namespace tfm
