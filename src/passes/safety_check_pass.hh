/**
 * @file
 * Pipeline integration of the guard-safety checker: a pass wrapper
 * that records one checked stage into a SafetyReport, and an observer
 * installer that re-checks the module after every pipeline pass from
 * the pointer-guards pass onward. The compile driver (core/system.cc)
 * installs the observer when SystemConfig::checkSafety is set; tfmc
 * surfaces the report through --check-safety.
 */

#ifndef TRACKFM_PASSES_SAFETY_CHECK_PASS_HH
#define TRACKFM_PASSES_SAFETY_CHECK_PASS_HH

#include <functional>
#include <string>
#include <vector>

#include "analysis/guard_safety.hh"
#include "pass.hh"

namespace tfm
{

/** Checker results accumulated across one pipeline run. */
struct SafetyReport
{
    struct PassEntry
    {
        std::string pass; ///< the pass whose output was checked
        std::vector<SafetyDiagnostic> diagnostics;
    };

    /// One entry per checked pipeline stage, in execution order.
    std::vector<PassEntry> perPass;

    std::size_t totalDiagnostics() const;
    bool clean() const { return totalDiagnostics() == 0; }
};

/**
 * A schedulable safety check: running the pass checks the module as it
 * stands and appends one entry (labelled @p stage) to the bound
 * report. Never modifies the module.
 */
class SafetyCheckPass : public Pass
{
  public:
    SafetyCheckPass(SafetyReport &report_sink, std::string stage)
        : report(&report_sink), stageLabel(std::move(stage))
    {}

    std::string name() const override { return "safety-check"; }
    bool run(ir::Module &module) override;

  private:
    SafetyReport *report;
    std::string stageLabel;
};

/** Called after each checked stage with (pass name, diagnostic count);
 *  the driver uses it to mirror counts into the observability trace. */
using SafetyCheckCallback =
    std::function<void(const std::string &, std::size_t)>;

/**
 * Install a PassManager observer that runs the guard-safety checker on
 * the module after every pass from @p first_checked_pass onward (IR
 * before the pointer-guards pass legitimately contains unguarded heap
 * accesses, so checking it would only produce noise). Chains to
 * @p next when set; @p on_checked fires per checked stage.
 */
void installSafetyObserver(
    PassManager &manager, SafetyReport &report,
    std::function<void(const std::string &, const ir::Module &)> next =
        nullptr,
    SafetyCheckCallback on_checked = nullptr,
    const std::string &first_checked_pass = "pointer-guards");

} // namespace tfm

#endif // TRACKFM_PASSES_SAFETY_CHECK_PASS_HH
