/**
 * @file
 * The TrackFM pass pipeline (Figure 2): runtime initialization, libc
 * transformation, pointer-guard analysis + transform, loop chunking
 * with the section 3.4 cost model, and prefetch injection.
 */

#ifndef TRACKFM_PASSES_TRACKFM_PASSES_HH
#define TRACKFM_PASSES_TRACKFM_PASSES_HH

#include <cstdint>

#include "pass.hh"
#include "sim/cost_params.hh"
#include "tfm/chunk_policy.hh"

namespace tfm
{

struct GuardSiteReport;
struct AllocSiteProfile;
struct ArbiterReport;

/** Data-plane arbiter modes (hybrid guard/paging, DESIGN.md §4l). */
enum class ArbiterMode : std::uint8_t
{
    Off,          ///< pure guard plane (classic TrackFM)
    Auto,         ///< static verdicts + optional PGO tie-break
    ForceAllPaged ///< every site onto the paged plane (ablation)
};

/** Compile-time options shared by the TrackFM passes. */
struct TrackFmPassOptions
{
    /// AIFM object size the compiled binary will run with.
    std::uint32_t objectSizeBytes = 4096;
    /// Loop-chunking decision policy.
    ChunkPolicy chunkPolicy = ChunkPolicy::CostModel;
    /// Inject compiler-directed prefetches alongside chunked loops.
    bool injectPrefetch = true;
    std::uint32_t prefetchDepth = 8;
    /// Run the guard optimization suite (elimination, coalescing,
    /// hoisting) after guard insertion.
    bool optimizeGuards = true;
    /// Optional per-allocation-site guard accounting, filled by the
    /// guard passes (owned by the caller; must outlive the pipeline).
    GuardSiteReport *siteReport = nullptr;
    /// Guard-cost constants for the cost model.
    CostParams costs;
    /// Hybrid data-plane arbiter (DESIGN.md §4l). Off keeps the
    /// classic pure-guard pipeline byte-for-byte.
    ArbiterMode arbiterMode = ArbiterMode::Off;
    /// Observed seq/rand profile for Mixed/Unknown tie-breaks (owned
    /// by the caller; may be null).
    const AllocSiteProfile *arbiterProfile = nullptr;
    /// Minimum observed sequential fraction for a PGO paged tie-break.
    double arbiterSeqThreshold = 0.7;
    /// Decision/evidence sink filled by the arbiter pass (owned by
    /// the caller; must outlive the pipeline).
    ArbiterReport *arbiterReport = nullptr;
};

/** Insert a tfm_runtime_init call at the entry of @main. */
class RuntimeInitPass : public Pass
{
  public:
    std::string name() const override { return "runtime-init"; }
    bool run(ir::Module &module) override;
};

/**
 * Rewrite libc allocation calls (malloc/calloc/realloc/free) to the
 * TrackFM-managed runtime calls returning tagged pointers.
 */
class LibcTransformPass : public Pass
{
  public:
    std::string name() const override { return "libc-transform"; }
    bool run(ir::Module &module) override;
};

/**
 * Guard analysis + transform: mark heap/unknown loads and stores via
 * the heap-provenance dataflow, then wrap each in a guard pseudo-
 * instruction that the interpreter executes as Fig. 4's state machine.
 */
class GuardPass : public Pass
{
  public:
    explicit GuardPass(GuardSiteReport *site_report = nullptr)
        : report(site_report)
    {}

    std::string name() const override { return "pointer-guards"; }
    bool run(ir::Module &module) override;

    /** Guards inserted by the last run (test observability). */
    std::uint64_t guardsInserted() const { return inserted; }

  private:
    GuardSiteReport *report;
    std::uint64_t inserted = 0;
};

/**
 * Loop chunking analysis + transform (Fig. 5): for contiguous strided
 * accesses driven by induction variables, replace the per-element
 * guard with a chunk cursor when the cost model approves.
 */
class LoopChunkPass : public Pass
{
  public:
    explicit LoopChunkPass(const TrackFmPassOptions &options)
        : opts(options)
    {}

    std::string name() const override { return "loop-chunking"; }
    bool run(ir::Module &module) override;

    std::uint64_t loopsChunked() const { return chunked; }
    std::uint64_t candidatesSeen() const { return candidates; }

  private:
    TrackFmPassOptions opts;
    std::uint64_t chunked = 0;
    std::uint64_t candidates = 0;
};

/**
 * Prefetch injection: for every chunk.begin, issue a compiler-directed
 * prefetch of the upcoming objects in the preheader.
 */
class PrefetchInjectionPass : public Pass
{
  public:
    explicit PrefetchInjectionPass(const TrackFmPassOptions &options)
        : opts(options)
    {}

    std::string name() const override { return "prefetch-injection"; }
    bool run(ir::Module &module) override;

  private:
    TrackFmPassOptions opts;
};

/** Build the full Figure 2 pipeline. */
void addTrackFmPipeline(PassManager &manager,
                        const TrackFmPassOptions &options);

/**
 * Estimated lowered x86 instruction count for a module (section 4.6's
 * code-size metric): every guard expands to its Fig. 4b sequence.
 */
std::uint64_t estimateLoweredInstructions(const ir::Module &module);

} // namespace tfm

#endif // TRACKFM_PASSES_TRACKFM_PASSES_HH
