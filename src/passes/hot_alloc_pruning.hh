/**
 * @file
 * Profile-guided allocation-site pruning — the extension the paper
 * proposes in section 5: "TrackFM could also benefit from a profiling
 * stage that prunes the set of heap allocations available for remoting
 * based on access frequency", citing the MaPHeA PGO framework.
 *
 * The interpreter can record, per allocation site (the k-th allocation
 * call in the module), how many bytes it allocated and how many guarded
 * accesses landed in its memory. On recompilation this pass rewrites
 * the hottest sites' allocations to stay in ordinary local memory
 * (`host_malloc`): their pointers are never tagged, so every guard on
 * them degenerates to the ~4-cycle custody rejection instead of the
 * 21-cycle fast path, and they can never be evacuated.
 */

#ifndef TRACKFM_PASSES_HOT_ALLOC_PRUNING_HH
#define TRACKFM_PASSES_HOT_ALLOC_PRUNING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pass.hh"

namespace tfm
{

/** Per-allocation-site profile collected by the interpreter. */
struct AllocSiteProfile
{
    struct Site
    {
        /// Function containing the allocation call.
        std::string function;
        /// Ordinal of the allocation call within the module (walking
        /// functions, blocks, and instructions in order) — stable
        /// across reparses of the same source.
        std::uint32_t ordinal = 0;
        std::uint64_t allocations = 0;
        std::uint64_t bytesAllocated = 0;
        std::uint64_t guardedAccesses = 0;
        /// Accesses whose offset was within 64 bytes of the site's
        /// previous access (observed-dense witness for the arbiter).
        std::uint64_t seqAccesses = 0;
        /// Accesses that jumped farther than that (observed-sparse).
        std::uint64_t randAccesses = 0;

        /** Hotness metric: guarded accesses per allocated byte. */
        double
        accessesPerByte() const
        {
            return bytesAllocated == 0
                       ? 0.0
                       : static_cast<double>(guardedAccesses) /
                             static_cast<double>(bytesAllocated);
        }

        /** Fraction of classified accesses that were sequential. */
        double
        seqFraction() const
        {
            const std::uint64_t classified = seqAccesses + randAccesses;
            return classified == 0
                       ? 0.0
                       : static_cast<double>(seqAccesses) /
                             static_cast<double>(classified);
        }
    };

    std::vector<Site> sites;

    const Site *findByOrdinal(std::uint32_t ordinal) const;

    /**
     * Fold @p other into this profile (multi-epoch PGO). Sites are
     * matched by their stable ordering key (the module ordinal):
     * matching sites sum their counters; sites only the later epoch
     * saw are inserted at their ordinal-sorted position so the merged
     * profile stays ordered by the same key regardless of which epoch
     * first observed a site.
     */
    void merge(const AllocSiteProfile &other);

    /** Text serialization (`tfm-alloc-profile v2` header). */
    std::string serialize() const;

    /**
     * Parse text produced by serialize() (v1 profiles without the
     * seq/rand columns are accepted). Returns false on malformed
     * input, leaving @p out untouched.
     */
    static bool parse(const std::string &text, AllocSiteProfile &out);
};

/**
 * Rewrite allocation calls whose profiled hotness exceeds the
 * threshold to host (non-remotable) allocations.
 */
class HotAllocPruningPass : public Pass
{
  public:
    HotAllocPruningPass(const AllocSiteProfile &profile,
                        double min_accesses_per_byte)
        : prof(profile), threshold(min_accesses_per_byte)
    {}

    std::string name() const override { return "hot-alloc-pruning"; }
    bool run(ir::Module &module) override;

    std::uint64_t sitesPruned() const { return pruned; }

  private:
    const AllocSiteProfile &prof;
    double threshold;
    std::uint64_t pruned = 0;
};

/** Is this callee an allocation function (any flavour)? */
bool isAllocationCallee(const std::string &callee);

} // namespace tfm

#endif // TRACKFM_PASSES_HOT_ALLOC_PRUNING_HH
