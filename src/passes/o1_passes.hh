/**
 * @file
 * The "O1" clean-up pipeline the paper runs before the TrackFM passes
 * (section 4.5, Fig. 17b): constant folding, redundant-load
 * elimination, dead-code elimination, and CFG simplification. Fewer
 * loads and stores in means fewer guards out.
 */

#ifndef TRACKFM_PASSES_O1_PASSES_HH
#define TRACKFM_PASSES_O1_PASSES_HH

#include "pass.hh"

namespace tfm
{

/** Fold binary operations over constant operands. */
class ConstantFoldPass : public Pass
{
  public:
    std::string name() const override { return "constant-fold"; }
    bool run(ir::Module &module) override;
};

/**
 * Per-block redundant-load elimination: a load from the same pointer
 * value with no intervening store or call reuses the earlier result.
 */
class RedundantLoadElimPass : public Pass
{
  public:
    std::string name() const override { return "redundant-load-elim"; }
    bool run(ir::Module &module) override;

    std::uint64_t loadsRemoved() const { return removed; }

  private:
    std::uint64_t removed = 0;
};

/** Remove unused pure instructions (iterates to a fixpoint). */
class DeadCodeElimPass : public Pass
{
  public:
    std::string name() const override { return "dce"; }
    bool run(ir::Module &module) override;
};

/** Remove blocks unreachable from the entry. */
class SimplifyCfgPass : public Pass
{
  public:
    std::string name() const override { return "simplify-cfg"; }
    bool run(ir::Module &module) override;
};

/** Add the whole O1 pipeline to a manager. */
void addO1Pipeline(PassManager &manager);

} // namespace tfm

#endif // TRACKFM_PASSES_O1_PASSES_HH
