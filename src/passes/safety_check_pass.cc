#include "safety_check_pass.hh"

#include <memory>

namespace tfm
{

std::size_t
SafetyReport::totalDiagnostics() const
{
    std::size_t total = 0;
    for (const PassEntry &entry : perPass)
        total += entry.diagnostics.size();
    return total;
}

bool
SafetyCheckPass::run(ir::Module &module)
{
    SafetyReport::PassEntry entry;
    entry.pass = stageLabel;
    entry.diagnostics = checkGuardSafety(module);
    report->perPass.push_back(std::move(entry));
    return false;
}

void
installSafetyObserver(
    PassManager &manager, SafetyReport &report,
    std::function<void(const std::string &, const ir::Module &)> next,
    SafetyCheckCallback on_checked,
    const std::string &first_checked_pass)
{
    // The armed flag lives on the heap so the observer stays valid
    // however long the PassManager keeps it.
    auto armed = std::make_shared<bool>(false);
    manager.setObserver(
        [&report, next = std::move(next),
         on_checked = std::move(on_checked), first_checked_pass,
         armed](const std::string &pass, const ir::Module &module) {
            if (next)
                next(pass, module);
            if (pass == first_checked_pass)
                *armed = true;
            if (!*armed)
                return;
            SafetyReport::PassEntry entry;
            entry.pass = pass;
            entry.diagnostics = checkGuardSafety(module);
            const std::size_t count = entry.diagnostics.size();
            report.perPass.push_back(std::move(entry));
            if (on_checked)
                on_checked(pass, count);
        });
}

} // namespace tfm
