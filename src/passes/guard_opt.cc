#include "guard_opt.hh"

#include <algorithm>
#include <set>

#include "analysis/cfg.hh"
#include "analysis/dominators.hh"
#include "analysis/induction_variable.hh"
#include "analysis/loop_info.hh"
#include "hot_alloc_pruning.hh"
#include "ir/builder.hh"

namespace tfm
{

namespace
{

GuardOptMutation g_mutation = GuardOptMutation::None;

/** Is the given legality bug currently injected? */
bool
mutated(GuardOptMutation mutation)
{
    return g_mutation == mutation;
}

} // anonymous namespace

void
setGuardOptMutation(GuardOptMutation mutation)
{
    g_mutation = mutation;
}

GuardOptMutation
guardOptMutation()
{
    return g_mutation;
}

namespace
{

/**
 * May this instruction enter the TrackFM runtime? Any runtime entry can
 * evict frames, which stales every previously produced host pointer —
 * the guard optimizations must not extend a host pointer's life across
 * one. Calls are conservatively barriers (they can allocate, guard, or
 * recurse).
 */
bool
isGuardBarrier(const ir::Instruction &inst)
{
    switch (inst.op()) {
      case ir::Opcode::Call:
        return !mutated(GuardOptMutation::ElimCallNotBarrier);
      case ir::Opcode::Guard:
      case ir::Opcode::GuardReval:
      case ir::Opcode::ChunkBegin:
      case ir::Opcode::ChunkAccess:
      case ir::Opcode::Prefetch:
        return true;
      default:
        return false;
    }
}

/**
 * Is every path from @p dominating (exclusive) to @p dominated
 * (exclusive) free of runtime-entering instructions? Assumes
 * @p dominating dominates @p dominated.
 */
bool
barrierFreeBetween(const Cfg &cfg, const ir::Instruction *dominating,
                   const ir::Instruction *dominated)
{
    const ir::BasicBlock *dom_block = dominating->parent();
    const ir::BasicBlock *sub_block = dominated->parent();
    const std::size_t dom_index = dom_block->indexOf(dominating);
    const std::size_t sub_index = sub_block->indexOf(dominated);

    if (dom_block == sub_block) {
        if (dom_index >= sub_index)
            return false;
        for (std::size_t i = dom_index + 1; i < sub_index; i++) {
            if (isGuardBarrier(*dom_block->instructions()[i]))
                return false;
        }
        return true;
    }

    // Cross-block: the blocks on any dominating->dominated path are
    // exactly (forward-reachable from dominating) intersect
    // (backward-reachable from dominated). If either endpoint lands in
    // that set, some path loops back through it — a later execution of
    // the dominated guard would cross the barrier that is the
    // dominating guard's own re-execution (or a full extra trip) — so
    // bail out.
    std::set<const ir::BasicBlock *> fwd;
    std::vector<const ir::BasicBlock *> work;
    for (const ir::BasicBlock *succ : dom_block->successors())
        work.push_back(succ);
    while (!work.empty()) {
        const ir::BasicBlock *block = work.back();
        work.pop_back();
        if (!fwd.insert(block).second)
            continue;
        for (const ir::BasicBlock *succ : block->successors())
            work.push_back(succ);
    }
    std::set<const ir::BasicBlock *> bwd;
    for (const ir::BasicBlock *pred : cfg.predecessors(sub_block))
        work.push_back(pred);
    while (!work.empty()) {
        const ir::BasicBlock *block = work.back();
        work.pop_back();
        if (!bwd.insert(block).second)
            continue;
        for (const ir::BasicBlock *pred : cfg.predecessors(block))
            work.push_back(pred);
    }

    std::vector<const ir::BasicBlock *> mid;
    for (const ir::BasicBlock *block : fwd) {
        if (bwd.count(block))
            mid.push_back(block);
    }
    if (fwd.count(dom_block) || bwd.count(sub_block))
        return false; // cyclic path through an endpoint
    if (std::find(mid.begin(), mid.end(), sub_block) != mid.end() ||
        std::find(mid.begin(), mid.end(), dom_block) != mid.end()) {
        return false;
    }

    // Suffix of the dominating block, every intermediate block, and the
    // prefix of the dominated block must all be barrier-free.
    for (std::size_t i = dom_index + 1;
         i < dom_block->instructions().size(); i++) {
        if (isGuardBarrier(*dom_block->instructions()[i]))
            return false;
    }
    for (const ir::BasicBlock *block : mid) {
        for (const auto &inst : block->instructions()) {
            if (isGuardBarrier(*inst))
                return false;
        }
    }
    for (std::size_t i = 0; i < sub_index; i++) {
        if (isGuardBarrier(*sub_block->instructions()[i]))
            return false;
    }
    return true;
}

/**
 * May @p guard's uses be rewired to a host pointer produced at (or
 * before) @p guard's position? True when every use either sits in
 * @p guard's block before the next runtime barrier (the window in
 * which any guard's host pointer is valid), or is the epoch-validated
 * operand 0 of a guard.reval (safe anywhere: the reval re-checks the
 * eviction epoch before reusing the host pointer).
 */
bool
usesAreRewirable(const ir::Function &function,
                 const ir::Instruction *guard)
{
    const ir::BasicBlock *home = guard->parent();
    const std::size_t at = home->indexOf(guard);
    std::size_t window_end = home->instructions().size();
    for (std::size_t i = at + 1; i < home->instructions().size(); i++) {
        if (isGuardBarrier(*home->instructions()[i])) {
            window_end = i;
            break;
        }
    }
    for (const auto &block : function.basicBlocks()) {
        for (std::size_t i = 0; i < block->instructions().size(); i++) {
            const ir::Instruction *user = block->instructions()[i].get();
            if (user == guard)
                continue;
            for (std::size_t oi = 0; oi < user->numOperands(); oi++) {
                if (user->operand(oi) != guard)
                    continue;
                if (user->op() == ir::Opcode::GuardReval && oi == 0)
                    continue;
                if (block.get() != home || i <= at || i >= window_end)
                    return false;
            }
            for (const auto &[incoming, pred] : user->incoming()) {
                (void)pred;
                if (incoming == guard)
                    return false;
            }
        }
    }
    return true;
}

/** Remove @p value's instruction when it is pure and unused. */
void
removeIfDead(ir::Function &function, ir::Value *value)
{
    if (!value || !value->isInstruction())
        return;
    auto *inst = static_cast<ir::Instruction *>(value);
    if (!ir::isPure(inst->op()) || countUses(function, inst) != 0)
        return;
    ir::BasicBlock *block = inst->parent();
    const std::size_t index = block->indexOf(inst);
    if (index < block->instructions().size())
        block->removeAt(index);
}

/**
 * Resolve a guard pointer for coalescing: a direct allocation call
 * with statically known size, or a constant-index gep off one.
 * @return true with base/offset/alloc size on success.
 */
bool
resolveConstantOffset(const ir::Value *ptr, ir::Value *&base,
                      std::int64_t &offset, std::int64_t &alloc_bytes)
{
    auto allocationSize = [](const ir::Instruction *call,
                             std::int64_t &bytes) {
        if (call->op() != ir::Opcode::Call ||
            !isAllocationCallee(call->callee)) {
            return false;
        }
        if (call->numOperands() == 1 &&
            call->operand(0)->isConstant()) {
            bytes = static_cast<const ir::Constant *>(call->operand(0))
                        ->intValue();
            return bytes > 0;
        }
        if (call->numOperands() == 2 &&
            call->operand(0)->isConstant() &&
            call->operand(1)->isConstant()) {
            const std::int64_t count =
                static_cast<const ir::Constant *>(call->operand(0))
                    ->intValue();
            const std::int64_t size =
                static_cast<const ir::Constant *>(call->operand(1))
                    ->intValue();
            bytes = count * size;
            return count > 0 && size > 0;
        }
        return false;
    };

    if (!ptr->isInstruction())
        return false;
    const auto *inst = static_cast<const ir::Instruction *>(ptr);
    if (allocationSize(inst, alloc_bytes)) {
        base = const_cast<ir::Value *>(ptr);
        offset = 0;
        return true;
    }
    if (inst->op() != ir::Opcode::Gep ||
        !inst->operand(0)->isInstruction() ||
        !inst->operand(1)->isConstant()) {
        return false;
    }
    const auto *maybe_alloc =
        static_cast<const ir::Instruction *>(inst->operand(0));
    if (!allocationSize(maybe_alloc, alloc_bytes))
        return false;
    const std::int64_t index =
        static_cast<const ir::Constant *>(inst->operand(1))->intValue();
    base = inst->operand(0);
    offset = index * inst->imm;
    return true;
}

} // anonymous namespace

void
GuardSiteReport::ensureIndexed(const ir::Module &module)
{
    if (indexed)
        return;
    indexed = true;
    unattributed.function = "<unattributed>";
    std::uint32_t ordinal = 0;
    for (const auto &function : module.allFunctions()) {
        for (const auto &block : function->basicBlocks()) {
            for (const auto &inst : block->instructions()) {
                if (inst->op() != ir::Opcode::Call ||
                    !isAllocationCallee(inst->callee)) {
                    continue;
                }
                ordinals[inst.get()] = sites.size();
                Site site;
                site.function = function->name();
                site.ordinal = ordinal++;
                sites.push_back(site);
            }
        }
    }
}

GuardSiteReport::Site &
GuardSiteReport::siteFor(const ir::Value *ptr)
{
    const ir::Value *current = ptr;
    for (int depth = 0; current && depth < 64; depth++) {
        auto it = ordinals.find(current);
        if (it != ordinals.end())
            return sites[it->second];
        if (!current->isInstruction())
            break;
        const auto *inst =
            static_cast<const ir::Instruction *>(current);
        switch (inst->op()) {
          case ir::Opcode::Gep:
          case ir::Opcode::Guard:
            current = inst->operand(0);
            break;
          case ir::Opcode::GuardReval:
          case ir::Opcode::ChunkAccess:
            current = inst->operand(1);
            break;
          default:
            current = nullptr;
            break;
        }
    }
    return unattributed;
}

std::uint64_t
GuardSiteReport::totalInserted() const
{
    std::uint64_t total = unattributed.guardsInserted;
    for (const Site &site : sites)
        total += site.guardsInserted;
    return total;
}

std::uint64_t
GuardSiteReport::totalEliminated() const
{
    std::uint64_t total = unattributed.guardsEliminated;
    for (const Site &site : sites)
        total += site.guardsEliminated;
    return total;
}

std::uint64_t
GuardSiteReport::totalCoalesced() const
{
    std::uint64_t total = unattributed.guardsCoalesced;
    for (const Site &site : sites)
        total += site.guardsCoalesced;
    return total;
}

std::uint64_t
GuardSiteReport::totalHoisted() const
{
    std::uint64_t total = unattributed.guardsHoisted;
    for (const Site &site : sites)
        total += site.guardsHoisted;
    return total;
}

StaticGuardCounts
countStaticGuards(const ir::Module &module)
{
    StaticGuardCounts counts;
    for (const auto &function : module.allFunctions()) {
        for (const auto &block : function->basicBlocks()) {
            for (const auto &inst : block->instructions()) {
                if (inst->op() == ir::Opcode::Guard)
                    counts.guards++;
                else if (inst->op() == ir::Opcode::GuardReval)
                    counts.revals++;
                else if (inst->op() == ir::Opcode::ChunkAccess)
                    counts.chunkAccesses++;
            }
        }
    }
    return counts;
}

bool
RedundantGuardElimPass::run(ir::Module &module)
{
    eliminated = 0;
    if (report)
        report->ensureIndexed(module);
    bool changed = false;
    for (const auto &function : module.allFunctions()) {
        const Cfg cfg(*function);
        const DominatorTree dom(*function, cfg);
        // Surviving guards in RPO visit order: anything already pushed
        // comes no later than the guard under inspection.
        std::vector<ir::Instruction *> available;
        for (ir::BasicBlock *block : cfg.reversePostOrder()) {
            for (std::size_t i = 0; i < block->instructions().size();
                 i++) {
                ir::Instruction *inst = block->instructions()[i].get();
                if (inst->op() != ir::Opcode::Guard)
                    continue;
                ir::Instruction *dominating = nullptr;
                for (ir::Instruction *candidate : available) {
                    if (candidate->operand(0) != inst->operand(0))
                        continue;
                    if (!mutated(GuardOptMutation::ElimSkipDominance) &&
                        candidate->parent() != block &&
                        !dom.dominates(candidate->parent(), block)) {
                        continue;
                    }
                    if (!mutated(
                            GuardOptMutation::ElimSkipBarrierCheck) &&
                        !barrierFreeBetween(cfg, candidate, inst))
                        continue;
                    dominating = candidate;
                    break;
                }
                if (!dominating || !usesAreRewirable(*function, inst)) {
                    available.push_back(inst);
                    continue;
                }
                // Write-compat: promote rather than lose the dirty bit.
                if (!mutated(GuardOptMutation::ElimDropWritePromotion))
                    dominating->isWrite =
                        dominating->isWrite || inst->isWrite;
                dominating->armsEpoch =
                    dominating->armsEpoch || inst->armsEpoch;
                if (report)
                    report->siteFor(inst->operand(0)).guardsEliminated++;
                replaceAllUses(*function, inst, dominating);
                block->removeAt(i);
                i--;
                eliminated++;
                changed = true;
            }
        }
    }
    return changed;
}

bool
GuardCoalescePass::run(ir::Module &module)
{
    coalesced = 0;
    if (report)
        report->ensureIndexed(module);
    bool changed = false;

    struct Member
    {
        ir::Instruction *guard = nullptr;
        std::int64_t offset = 0;
    };
    struct Group
    {
        ir::Value *base = nullptr;
        std::vector<Member> members;
    };

    for (const auto &function : module.allFunctions()) {
        for (const auto &block : function->basicBlocks()) {
            // Gather runs of same-base constant-offset guards broken by
            // any runtime barrier (including foreign guards).
            std::vector<Group> groups;
            Group current;
            auto flush = [&]() {
                if (current.members.size() >= 2)
                    groups.push_back(current);
                current = Group{};
            };
            for (const auto &owned : block->instructions()) {
                ir::Instruction *inst = owned.get();
                if (inst->op() == ir::Opcode::Guard) {
                    ir::Value *base = nullptr;
                    std::int64_t offset = 0;
                    std::int64_t alloc_bytes = 0;
                    const std::int64_t resolved_bytes =
                        resolveConstantOffset(inst->operand(0), base,
                                              offset, alloc_bytes)
                            ? alloc_bytes
                            : 0;
                    const std::int64_t limit =
                        mutated(GuardOptMutation::
                                    CoalesceIgnoreObjectBound)
                            ? resolved_bytes
                            : std::min<std::int64_t>(
                                  static_cast<std::int64_t>(
                                      objectSizeBytes),
                                  resolved_bytes);
                    // Widest access is 8 bytes; the whole access must
                    // stay inside both the allocation and its first
                    // AIFM object (RegionAllocator alignment rules).
                    const bool member =
                        base != nullptr && offset >= 0 &&
                        offset + 8 <= limit &&
                        (!inst->armsEpoch ||
                         mutated(GuardOptMutation::CoalesceArmingGuards));
                    if (member && current.base == base) {
                        current.members.push_back(Member{inst, offset});
                    } else {
                        flush();
                        if (member) {
                            current.base = base;
                            current.members.push_back(
                                Member{inst, offset});
                        }
                    }
                    continue;
                }
                if (isGuardBarrier(*inst) &&
                    !mutated(GuardOptMutation::CoalesceIgnoreBarriers))
                    flush();
            }
            flush();

            for (Group &group : groups) {
                bool rewirable = true;
                for (const Member &member : group.members) {
                    if (!usesAreRewirable(*function, member.guard)) {
                        rewirable = false;
                        break;
                    }
                }
                if (!rewirable)
                    continue;

                bool any_write = false;
                for (const Member &member : group.members)
                    any_write = any_write || member.guard->isWrite;
                if (mutated(GuardOptMutation::CoalesceDropWriteFlag))
                    any_write = false;

                ir::Instruction *first = group.members.front().guard;
                auto merged = ir::IRBuilder::make(
                    ir::Opcode::Guard, ir::Type::Ptr,
                    first->name() + ".co");
                merged->isWrite = any_write;
                merged->addOperand(group.base);
                ir::Instruction *merged_placed = block->insertAt(
                    block->indexOf(first), std::move(merged));

                std::size_t insert_at =
                    block->indexOf(merged_placed) + 1;
                for (const Member &member : group.members) {
                    ir::Value *replacement = merged_placed;
                    if (member.offset != 0) {
                        auto off = ir::IRBuilder::make(
                            ir::Opcode::Gep, ir::Type::Ptr,
                            member.guard->name() + ".off");
                        off->addOperand(merged_placed);
                        off->addOperand(function->makeConstant(
                            ir::Type::I64, member.offset));
                        off->imm = 1;
                        replacement =
                            block->insertAt(insert_at++, std::move(off));
                    }
                    ir::Value *old_ptr = member.guard->operand(0);
                    if (report) {
                        report->siteFor(old_ptr).guardsCoalesced++;
                    }
                    replaceAllUses(*function, member.guard, replacement);
                    block->removeAt(block->indexOf(member.guard));
                    removeIfDead(*function, old_ptr);
                    coalesced++;
                    changed = true;
                }
                // The merged guard replaces one member's work.
                coalesced--;
                if (report)
                    report->siteFor(group.base).guardsCoalesced--;
            }
        }
    }
    return changed;
}

bool
GuardHoistPass::run(ir::Module &module)
{
    hoisted = 0;
    if (report)
        report->ensureIndexed(module);
    bool changed = false;
    for (const auto &function : module.allFunctions()) {
        const Cfg cfg(*function);
        const DominatorTree dom(*function, cfg);
        const LoopInfo loop_info(*function, cfg, dom);

        // Innermost first; hoisted guards arm the epoch and are not
        // re-hoisted to outer preheaders (single-level hoisting).
        std::vector<Loop *> order;
        for (const auto &loop : loop_info.loops())
            order.push_back(loop.get());
        std::sort(order.begin(), order.end(),
                  [](const Loop *a, const Loop *b) {
                      return a->depth > b->depth;
                  });

        for (Loop *loop : order) {
            if (!loop->preheader)
                continue;
            std::vector<ir::BasicBlock *> exiting;
            for (ir::BasicBlock *block : loop->blocks) {
                for (ir::BasicBlock *succ : block->successors()) {
                    if (!loop->contains(succ)) {
                        exiting.push_back(block);
                        break;
                    }
                }
            }
            if (exiting.empty())
                continue; // no complete trips to piggyback on
            const InductionVariables ivs(*loop, *function);

            for (ir::BasicBlock *block : loop->blocks) {
                bool dominates_exits = true;
                for (ir::BasicBlock *exit_block : exiting) {
                    if (!dom.dominates(block, exit_block)) {
                        dominates_exits = false;
                        break;
                    }
                }
                if (!dominates_exits)
                    continue;
                for (std::size_t i = 0;
                     i < block->instructions().size(); i++) {
                    ir::Instruction *inst =
                        block->instructions()[i].get();
                    if (inst->op() != ir::Opcode::Guard ||
                        inst->armsEpoch) {
                        continue;
                    }
                    ir::Value *ptr = inst->operand(0);
                    if (!mutated(GuardOptMutation::HoistNonInvariant) &&
                        !ivs.isLoopInvariant(ptr))
                        continue;

                    auto armer = ir::IRBuilder::make(
                        ir::Opcode::Guard, ir::Type::Ptr,
                        inst->name() + ".h");
                    armer->isWrite = inst->isWrite;
                    armer->armsEpoch = true;
                    armer->addOperand(ptr);
                    ir::BasicBlock *preheader = loop->preheader;
                    ir::Instruction *armer_placed = preheader->insertAt(
                        preheader->indexOf(preheader->terminator()),
                        std::move(armer));

                    auto reval = ir::IRBuilder::make(
                        ir::Opcode::GuardReval, ir::Type::Ptr,
                        inst->name() + ".rv");
                    reval->isWrite = inst->isWrite;
                    reval->addOperand(armer_placed);
                    reval->addOperand(ptr);
                    ir::Instruction *reval_placed =
                        block->insertAt(i, std::move(reval));

                    if (report)
                        report->siteFor(ptr).guardsHoisted++;
                    replaceAllUses(
                        *function, inst,
                        mutated(GuardOptMutation::HoistUseArmerDirectly)
                            ? armer_placed
                            : reval_placed);
                    block->removeAt(block->indexOf(inst));
                    hoisted++;
                    changed = true;
                }
            }
        }
    }
    return changed;
}

} // namespace tfm
