/**
 * @file
 * The guard optimization suite (section 4 of the paper): the compiler
 * half of TrackFM's performance story. NOELLE-style dominator, loop,
 * and provenance facts prove most injected guards redundant:
 *
 *  - RedundantGuardElimPass: a guard on SSA pointer p dominated by an
 *    earlier guard on p, with no runtime-entering instruction between
 *    them, is deleted and its uses rewired to the dominating guard.
 *  - GuardCoalescePass: consecutive guards on base+c1, base+c2 with
 *    constant offsets provably inside one AIFM object collapse into a
 *    single guard on base plus cheap pointer arithmetic.
 *  - GuardHoistPass: a guard whose pointer is loop-invariant moves to
 *    the preheader as an epoch-arming guard; its in-loop position
 *    becomes a guard.reval that re-checks the runtime eviction epoch
 *    (and re-runs the full guard only after an evacuation).
 *
 * Legality rules are documented in DESIGN.md section 4f.
 */

#ifndef TRACKFM_PASSES_GUARD_OPT_HH
#define TRACKFM_PASSES_GUARD_OPT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pass.hh"

namespace tfm
{

/**
 * Deliberate legality-bug injection for the guard-safety mutation
 * harness (tests/test_safety.cc; recipe in EXPERIMENTS.md): each value
 * disables exactly one legality condition inside one optimization so
 * the independent checker (analysis/guard_safety.hh) or the farmem
 * interpreter sanitizer must flag the now-unsound output. The
 * production pipeline always runs with None.
 */
enum class GuardOptMutation : std::uint8_t
{
    None,
    /// Elimination accepts a non-dominating "dominating" guard.
    ElimSkipDominance,
    /// Elimination skips the barrier-free-path requirement.
    ElimSkipBarrierCheck,
    /// Elimination keeps the dominator read-only when absorbing a
    /// write guard (lost dirty bit).
    ElimDropWritePromotion,
    /// Calls stop counting as runtime barriers in the shared barrier
    /// predicate (affects every window/legality computation).
    ElimCallNotBarrier,
    /// Coalescing drops the merged guard's write flag.
    CoalesceDropWriteFlag,
    /// Coalescing merges guard runs across runtime barriers.
    CoalesceIgnoreBarriers,
    /// Coalescing absorbs epoch-arming guards, orphaning their revals.
    CoalesceArmingGuards,
    /// Coalescing bounds offsets by the allocation size only, ignoring
    /// the runtime object size (translation covers one object only) —
    /// the designated dynamic-only mutant: statically well-formed, but
    /// the merged guard's host pointer escapes its object frame.
    CoalesceIgnoreObjectBound,
    /// Hoisting rewires in-loop uses to the preheader armer instead of
    /// the epoch-checked guard.reval.
    HoistUseArmerDirectly,
    /// Hoisting skips the loop-invariance test on the guarded pointer.
    HoistNonInvariant,
};

/** Install a mutation (process-global; None restores production). */
void setGuardOptMutation(GuardOptMutation mutation);
GuardOptMutation guardOptMutation();

/**
 * Static per-allocation-site guard accounting, keyed by the same
 * module-order allocation-call ordinals the interpreter's
 * AllocSiteProfile uses, so tfmc can join the two tables.
 */
struct GuardSiteReport
{
    struct Site
    {
        std::string function;    ///< function containing the allocation
        std::uint32_t ordinal = 0;
        std::uint64_t guardsInserted = 0;
        std::uint64_t guardsEliminated = 0; ///< removed as dominated
        std::uint64_t guardsCoalesced = 0;  ///< removed by same-object merge
        std::uint64_t guardsHoisted = 0;    ///< converted to guard.reval
    };

    std::vector<Site> sites;
    /// Guards whose pointer chain does not reach one allocation call.
    Site unattributed;

    /** Build the ordinal table on first use (instruction pointers are
     *  stable across the pipeline, so one walk suffices). */
    void ensureIndexed(const ir::Module &module);

    /** The site a pointer value belongs to (walks gep/guard chains). */
    Site &siteFor(const ir::Value *ptr);

    std::uint64_t totalInserted() const;
    std::uint64_t totalEliminated() const;
    std::uint64_t totalCoalesced() const;
    std::uint64_t totalHoisted() const;

  private:
    bool indexed = false;
    std::map<const ir::Value *, std::size_t> ordinals;
};

/** Counts of static guard instructions per kind, for compile reports. */
struct StaticGuardCounts
{
    std::uint64_t guards = 0;
    std::uint64_t revals = 0;
    std::uint64_t chunkAccesses = 0;
};

/** Count guard-family instructions in a module. */
StaticGuardCounts countStaticGuards(const ir::Module &module);

/**
 * Dominance-based redundant-guard elimination.
 *
 * The write-compatibility rule: rewiring a write guard onto a read
 * dominator would lose the dirty bit, so the dominator is instead
 * promoted to a write guard (a spurious dirty bit writes back
 * identical bytes — output-identical, never lossy).
 */
class RedundantGuardElimPass : public Pass
{
  public:
    explicit RedundantGuardElimPass(GuardSiteReport *site_report = nullptr)
        : report(site_report)
    {}

    std::string name() const override { return "guard-elim"; }
    bool run(ir::Module &module) override;

    std::uint64_t guardsEliminated() const { return eliminated; }

  private:
    GuardSiteReport *report;
    std::uint64_t eliminated = 0;
};

/**
 * Same-object guard coalescing: guards on constant offsets from one
 * allocation, all provably within min(allocation size, object size),
 * merge into one guard on the base. Relies on the RegionAllocator
 * invariants (small allocations never straddle an object boundary;
 * larger ones are object-aligned).
 */
class GuardCoalescePass : public Pass
{
  public:
    explicit GuardCoalescePass(std::uint32_t object_size_bytes,
                               GuardSiteReport *site_report = nullptr)
        : objectSizeBytes(object_size_bytes), report(site_report)
    {}

    std::string name() const override { return "guard-coalesce"; }
    bool run(ir::Module &module) override;

    /** Guards removed by merging (k members leave 1 guard: k-1 each). */
    std::uint64_t guardsCoalesced() const { return coalesced; }

  private:
    std::uint32_t objectSizeBytes;
    GuardSiteReport *report;
    std::uint64_t coalesced = 0;
};

/**
 * Loop-invariant guard hoisting with epoch revalidation.
 *
 * Only guards whose block dominates every exiting block are hoisted
 * (they execute on every completed trip, so the preheader copy is
 * never speculative). Correctness under mid-loop evacuation comes from
 * the guard.reval epoch check, not from any static proof.
 */
class GuardHoistPass : public Pass
{
  public:
    explicit GuardHoistPass(GuardSiteReport *site_report = nullptr)
        : report(site_report)
    {}

    std::string name() const override { return "guard-hoist"; }
    bool run(ir::Module &module) override;

    std::uint64_t guardsHoisted() const { return hoisted; }

  private:
    GuardSiteReport *report;
    std::uint64_t hoisted = 0;
};

} // namespace tfm

#endif // TRACKFM_PASSES_GUARD_OPT_HH
