#include "o1_passes.hh"

#include <map>
#include <set>

#include "analysis/cfg.hh"

namespace tfm
{

namespace
{

/** Evaluate an integer binary op over constants; false if undefined. */
bool
foldInt(ir::Opcode op, std::int64_t a, std::int64_t b, std::int64_t &out)
{
    switch (op) {
      case ir::Opcode::Add:
        out = a + b;
        return true;
      case ir::Opcode::Sub:
        out = a - b;
        return true;
      case ir::Opcode::Mul:
        out = a * b;
        return true;
      case ir::Opcode::SDiv:
        if (b == 0)
            return false;
        out = a / b;
        return true;
      case ir::Opcode::SRem:
        if (b == 0)
            return false;
        out = a % b;
        return true;
      case ir::Opcode::And:
        out = a & b;
        return true;
      case ir::Opcode::Or:
        out = a | b;
        return true;
      case ir::Opcode::Xor:
        out = a ^ b;
        return true;
      case ir::Opcode::Shl:
        out = a << (b & 63);
        return true;
      case ir::Opcode::LShr:
        out = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a) >> (b & 63));
        return true;
      case ir::Opcode::ICmpEq:
        out = a == b;
        return true;
      case ir::Opcode::ICmpNe:
        out = a != b;
        return true;
      case ir::Opcode::ICmpSlt:
        out = a < b;
        return true;
      case ir::Opcode::ICmpSle:
        out = a <= b;
        return true;
      case ir::Opcode::ICmpSgt:
        out = a > b;
        return true;
      case ir::Opcode::ICmpSge:
        out = a >= b;
        return true;
      default:
        return false;
    }
}

} // anonymous namespace

bool
ConstantFoldPass::run(ir::Module &module)
{
    bool changed = false;
    for (const auto &function : module.allFunctions()) {
        for (const auto &block : function->basicBlocks()) {
            for (std::size_t i = 0; i < block->instructions().size();
                 i++) {
                ir::Instruction *inst = block->instructions()[i].get();
                if (inst->numOperands() != 2)
                    continue;
                if (!inst->operand(0)->isConstant() ||
                    !inst->operand(1)->isConstant()) {
                    continue;
                }
                const auto *lhs =
                    static_cast<ir::Constant *>(inst->operand(0));
                const auto *rhs =
                    static_cast<ir::Constant *>(inst->operand(1));
                std::int64_t folded;
                if (!foldInt(inst->op(), lhs->intValue(),
                             rhs->intValue(), folded)) {
                    continue;
                }
                ir::Constant *replacement =
                    function->makeConstant(inst->type(), folded);
                replaceAllUses(*function, inst, replacement);
                changed = true;
                // The folded instruction is now dead; DCE removes it.
            }
        }
    }
    return changed;
}

bool
RedundantLoadElimPass::run(ir::Module &module)
{
    removed = 0;
    for (const auto &function : module.allFunctions()) {
        for (const auto &block : function->basicBlocks()) {
            std::map<const ir::Value *, ir::Instruction *> available;
            for (std::size_t i = 0; i < block->instructions().size();
                 i++) {
                ir::Instruction *inst = block->instructions()[i].get();
                switch (inst->op()) {
                  case ir::Opcode::Load: {
                    const ir::Value *ptr = inst->operand(0);
                    auto it = available.find(ptr);
                    if (it != available.end() &&
                        it->second->type() == inst->type()) {
                        replaceAllUses(*function, inst, it->second);
                        block->removeAt(i);
                        i--;
                        removed++;
                    } else {
                        available[ptr] = inst;
                    }
                    break;
                  }
                  case ir::Opcode::Store:
                  case ir::Opcode::Call:
                  case ir::Opcode::Guard:
                  case ir::Opcode::ChunkAccess:
                    // Conservative: any of these may change memory or
                    // relocate objects.
                    available.clear();
                    break;
                  default:
                    break;
                }
            }
        }
    }
    return removed > 0;
}

bool
DeadCodeElimPass::run(ir::Module &module)
{
    bool any = false;
    for (const auto &function : module.allFunctions()) {
        bool changed = true;
        while (changed) {
            changed = false;
            // One use-count sweep per round keeps the pass linear in
            // the function size instead of quadratic.
            std::map<const ir::Value *, std::size_t> uses;
            for (const auto &block : function->basicBlocks()) {
                for (const auto &inst : block->instructions()) {
                    for (const ir::Value *operand : inst->operands())
                        uses[operand]++;
                    for (const auto &[incoming, pred] :
                         inst->incoming()) {
                        (void)pred;
                        uses[incoming]++;
                    }
                }
            }
            for (const auto &block : function->basicBlocks()) {
                for (std::size_t i = 0; i < block->instructions().size();
                     i++) {
                    ir::Instruction *inst =
                        block->instructions()[i].get();
                    if (!ir::isPure(inst->op()))
                        continue;
                    if (uses[inst] > 0)
                        continue;
                    // Removing this instruction may free its operands
                    // for the next round.
                    for (const ir::Value *operand : inst->operands())
                        uses[operand]--;
                    block->removeAt(i);
                    i--;
                    changed = true;
                    any = true;
                }
            }
        }
    }
    return any;
}

bool
SimplifyCfgPass::run(ir::Module &module)
{
    bool changed = false;
    for (const auto &function : module.allFunctions()) {
        const Cfg cfg(*function);
        // Collect unreachable blocks, then drop their instructions so
        // they hold nothing but an unconditional self-loop terminator;
        // removing whole blocks would invalidate iteration, and empty
        // unreachable husks fail verification, so we excise them via
        // the function's block list.
        std::vector<const ir::BasicBlock *> dead;
        for (const auto &block : function->basicBlocks()) {
            if (!cfg.reachable(block.get()))
                dead.push_back(block.get());
        }
        if (dead.empty())
            continue;
        // Clean phi references to dead predecessors.
        for (const auto &block : function->basicBlocks()) {
            for (const auto &inst : block->instructions()) {
                if (inst->op() != ir::Opcode::Phi)
                    continue;
                auto &incoming = inst->incoming();
                for (std::size_t k = 0; k < incoming.size(); k++) {
                    bool from_dead = false;
                    for (const ir::BasicBlock *candidate : dead)
                        from_dead |= (incoming[k].second == candidate);
                    if (from_dead) {
                        incoming.erase(
                            incoming.begin() +
                            static_cast<std::ptrdiff_t>(k));
                        k--;
                        changed = true;
                    }
                }
            }
        }
        changed |= function->eraseBlocks(dead);
    }
    return changed;
}

void
addO1Pipeline(PassManager &manager)
{
    manager.emplace<ConstantFoldPass>();
    manager.emplace<RedundantLoadElimPass>();
    manager.emplace<DeadCodeElimPass>();
    manager.emplace<SimplifyCfgPass>();
}

} // namespace tfm
