/**
 * @file
 * Pass interface and pass manager for the TrackFM compiler pipeline
 * (Figure 2 of the paper).
 */

#ifndef TRACKFM_PASSES_PASS_HH
#define TRACKFM_PASSES_PASS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.hh"

namespace tfm
{

/** A module transformation. */
class Pass
{
  public:
    virtual ~Pass() = default;
    virtual std::string name() const = 0;
    /** @return true when the module was modified. */
    virtual bool run(ir::Module &module) = 0;
};

/** Outcome of one pipeline execution. */
struct PipelineReport
{
    struct Entry
    {
        std::string pass;
        bool changed = false;
        std::size_t instructionsAfter = 0;
    };
    std::vector<Entry> entries;
    std::size_t instructionsBefore = 0;
    std::size_t instructionsAfter = 0;
    /// Non-empty when post-pass verification failed.
    std::string verifierError;

    bool ok() const { return verifierError.empty(); }
};

/** Runs passes in order, verifying the module after each. */
class PassManager
{
  public:
    void
    add(std::unique_ptr<Pass> pass)
    {
        passes.push_back(std::move(pass));
    }

    template <typename PassType, typename... Args>
    void
    emplace(Args &&...args)
    {
        passes.push_back(
            std::make_unique<PassType>(std::forward<Args>(args)...));
    }

    PipelineReport run(ir::Module &module) const;

    /**
     * Observe the module after each pass runs, before the post-pass
     * verification (so diagnostic observers still see IR the verifier
     * rejects). Used by tfmc's --print-after to dump intermediate IR
     * and by the guard-safety checker; receives the pass name and the
     * module in its post-pass state.
     */
    void
    setObserver(
        std::function<void(const std::string &, const ir::Module &)>
            callback)
    {
        observer = std::move(callback);
    }

  private:
    std::vector<std::unique_ptr<Pass>> passes;
    std::function<void(const std::string &, const ir::Module &)> observer;
};

/** Replace every use of @p from with @p to across a function. */
void replaceAllUses(ir::Function &function, ir::Value *from,
                    ir::Value *to);

/** Number of uses of @p value in @p function. */
std::size_t countUses(const ir::Function &function,
                      const ir::Value *value);

} // namespace tfm

#endif // TRACKFM_PASSES_PASS_HH
