#include "path_arbiter.hh"

#include "analysis/heap_provenance.hh"

namespace tfm
{

bool
PathArbiterPass::run(ir::Module &module)
{
    if (opts.arbiterMode == ArbiterMode::Off)
        return false;

    const AccessPatternAnalysis analysis(module);

    ArbiterReport local;
    ArbiterReport &report =
        opts.arbiterReport ? *opts.arbiterReport : local;
    report.decisions.clear();
    report.pagedSites = 0;
    report.guardSites = 0;
    report.pgoTieBreaks = 0;
    report.freesRewritten = 0;
    report.accessReport = analysis.report();

    // Walk allocation sites in the same stable ordinal order as the
    // analysis and the profiler.
    bool changed = false;
    std::uint32_t ordinal = 0;
    for (const auto &function : module.allFunctions()) {
        for (const auto &block : function->basicBlocks()) {
            for (const auto &inst : block->instructions()) {
                if (inst->op() != ir::Opcode::Call ||
                    !isAllocationCallee(inst->callee)) {
                    continue;
                }
                const std::uint32_t site_ordinal = ordinal++;
                const bool is_calloc =
                    inst->callee == "calloc" ||
                    inst->callee == "tfm_calloc" ||
                    inst->callee == "pg_calloc";
                const bool already_paged =
                    inst->callee == "pg_malloc" ||
                    inst->callee == "pg_calloc";

                ArbiterDecision decision;
                decision.ordinal = site_ordinal;
                decision.function = function->name();

                const SiteAccessSummary *site =
                    analysis.findByOrdinal(site_ordinal);
                if (site)
                    decision.verdict = site->verdict();

                if (already_paged) {
                    decision.paged = true;
                    decision.reason = "already-paged";
                } else if (opts.arbiterMode ==
                           ArbiterMode::ForceAllPaged) {
                    decision.paged = true;
                    decision.reason = "forced";
                } else if (!site) {
                    decision.reason = "no-summary";
                } else if (site->aliasesOther) {
                    // Rewriting an aliased site would merge bit-60 and
                    // bit-61 pointers in one value: MixedPlane.
                    decision.reason = "aliases";
                } else if (site->escapes) {
                    decision.reason = "escapes";
                } else {
                    switch (decision.verdict) {
                      case AccessVerdict::Dense:
                        decision.paged = true;
                        decision.reason = "static-dense";
                        break;
                      case AccessVerdict::Sparse:
                        decision.reason = "static-sparse";
                        break;
                      case AccessVerdict::Mixed:
                      case AccessVerdict::Unknown: {
                        const AllocSiteProfile::Site *profiled =
                            opts.arbiterProfile
                                ? opts.arbiterProfile->findByOrdinal(
                                      site_ordinal)
                                : nullptr;
                        if (profiled && profiled->seqAccesses +
                                                profiled->randAccesses >
                                            0) {
                            report.pgoTieBreaks++;
                            if (profiled->seqFraction() >=
                                opts.arbiterSeqThreshold) {
                                decision.paged = true;
                                decision.reason = "pgo-seq";
                            } else {
                                decision.reason = "pgo-rand";
                            }
                        } else {
                            decision.reason = "no-profile";
                        }
                        break;
                      }
                    }
                }

                if (decision.paged && !already_paged) {
                    inst->callee = is_calloc ? "pg_calloc" : "pg_malloc";
                    changed = true;
                }
                if (decision.paged)
                    report.pagedSites++;
                else
                    report.guardSites++;
                report.decisions.push_back(std::move(decision));
            }
        }
    }

    // Retag frees whose pointer is now provably paged-plane, keeping
    // the IR plane-consistent (the runtime strips either tag, so this
    // is a readability/diagnostic aid, not a correctness need).
    for (const auto &function : module.allFunctions()) {
        const HeapProvenance provenance(*function);
        for (const auto &block : function->basicBlocks()) {
            for (const auto &inst : block->instructions()) {
                if (inst->op() != ir::Opcode::Call ||
                    (inst->callee != "tfm_free" &&
                     inst->callee != "free") ||
                    inst->numOperands() == 0) {
                    continue;
                }
                if (provenance.of(inst->operand(0)) ==
                    Provenance::Paged) {
                    inst->callee = "pg_free";
                    report.freesRewritten++;
                    changed = true;
                }
            }
        }
    }

    return changed;
}

} // namespace tfm
