/**
 * @file
 * Per-site path arbiter for the hybrid guard/paging data plane
 * (DESIGN.md §4l).
 *
 * The static access-pattern analysis classifies every allocation site
 * as {Dense, Sparse, Mixed, Unknown}. This pass turns the verdicts
 * into a plane decision per site:
 *
 *   Dense  -> paged plane (pg_malloc / pg_calloc, bit-61 pointers
 *             resolved by the memory choke point's residency model —
 *             sequential sweeps amortize whole-page fetches and
 *             readahead and pay zero per-access guard cycles);
 *   Sparse -> guard plane (tfm_malloc stays: object-granular guards
 *             beat 4 KiB amplification on pointer chases);
 *   Mixed / Unknown -> PGO tie-break when a profile is supplied (the
 *             interpreter's observed seq/rand access split), guard
 *             plane otherwise.
 *
 * Sites whose pointers escape the derivation web or alias another
 * site's pointers are never rewritten: an aliased rewrite would merge
 * bit-60 and bit-61 pointers in one SSA value, exactly the MixedPlane
 * condition the guard-safety checker rejects.
 */

#ifndef TRACKFM_PASSES_PATH_ARBITER_HH
#define TRACKFM_PASSES_PATH_ARBITER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/access_pattern.hh"
#include "hot_alloc_pruning.hh"
#include "trackfm_passes.hh"

namespace tfm
{

/** One per-site routing decision (test/report observability). */
struct ArbiterDecision
{
    std::uint32_t ordinal = 0; ///< stable module allocation ordinal
    std::string function;      ///< function containing the allocation
    AccessVerdict verdict = AccessVerdict::Unknown;
    bool paged = false;        ///< chosen plane (false = guard plane)
    std::string reason;        ///< static-dense | static-sparse |
                               ///< pgo-seq | pgo-rand | no-profile |
                               ///< escapes | aliases | forced | ...
};

/** Everything the arbiter run produced (owned by the caller, filled
 *  by the pass — the siteReport idiom). */
struct ArbiterReport
{
    std::vector<ArbiterDecision> decisions;
    std::uint64_t pagedSites = 0;
    std::uint64_t guardSites = 0;
    std::uint64_t pgoTieBreaks = 0;
    std::uint64_t freesRewritten = 0;
    /// Machine-readable evidence report of the underlying analysis.
    std::string accessReport;
};

/** Rewrite Dense-verdict allocation sites onto the paged plane. */
class PathArbiterPass : public Pass
{
  public:
    explicit PathArbiterPass(const TrackFmPassOptions &options)
        : opts(options)
    {}

    std::string name() const override { return "path-arbiter"; }
    bool run(ir::Module &module) override;

  private:
    TrackFmPassOptions opts;
};

} // namespace tfm

#endif // TRACKFM_PASSES_PATH_ARBITER_HH
