#include "pass.hh"

#include "ir/verifier.hh"

namespace tfm
{

PipelineReport
PassManager::run(ir::Module &module) const
{
    PipelineReport report;
    report.instructionsBefore = module.instructionCount();
    for (const auto &pass : passes) {
        PipelineReport::Entry entry;
        entry.pass = pass->name();
        entry.changed = pass->run(module);
        entry.instructionsAfter = module.instructionCount();
        report.entries.push_back(entry);
        // Observe before verifying: diagnostic observers (--print-after,
        // the guard-safety checker) must still see the IR of a pass
        // whose output the verifier is about to reject.
        if (observer)
            observer(pass->name(), module);
        const std::string error = ir::verifyModule(module);
        if (!error.empty()) {
            report.verifierError =
                "after pass '" + pass->name() + "': " + error;
            break;
        }
    }
    report.instructionsAfter = module.instructionCount();
    return report;
}

void
replaceAllUses(ir::Function &function, ir::Value *from, ir::Value *to)
{
    for (const auto &block : function.basicBlocks()) {
        for (const auto &inst : block->instructions())
            inst->replaceUsesOf(from, to);
    }
}

std::size_t
countUses(const ir::Function &function, const ir::Value *value)
{
    std::size_t uses = 0;
    for (const auto &block : function.basicBlocks()) {
        for (const auto &inst : block->instructions()) {
            for (const ir::Value *operand : inst->operands())
                uses += (operand == value);
            for (const auto &[incoming, pred] : inst->incoming()) {
                (void)pred;
                uses += (incoming == value);
            }
        }
    }
    return uses;
}

} // namespace tfm
