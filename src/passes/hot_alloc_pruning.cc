#include "hot_alloc_pruning.hh"

namespace tfm
{

bool
isAllocationCallee(const std::string &callee)
{
    return callee == "malloc" || callee == "calloc" ||
           callee == "tfm_malloc" || callee == "tfm_calloc";
}

const AllocSiteProfile::Site *
AllocSiteProfile::findByOrdinal(std::uint32_t ordinal) const
{
    for (const Site &site : sites) {
        if (site.ordinal == ordinal)
            return &site;
    }
    return nullptr;
}

bool
HotAllocPruningPass::run(ir::Module &module)
{
    pruned = 0;
    std::uint32_t ordinal = 0;
    bool changed = false;
    for (const auto &function : module.allFunctions()) {
        for (const auto &block : function->basicBlocks()) {
            for (const auto &inst : block->instructions()) {
                if (inst->op() != ir::Opcode::Call ||
                    !isAllocationCallee(inst->callee)) {
                    continue;
                }
                const std::uint32_t site_ordinal = ordinal++;
                const AllocSiteProfile::Site *site =
                    prof.findByOrdinal(site_ordinal);
                if (!site || site->accessesPerByte() < threshold)
                    continue;
                // Hot site: keep it in ordinary local memory. The
                // custody check makes unguarded-looking pointers safe.
                if (inst->callee == "tfm_malloc" ||
                    inst->callee == "malloc") {
                    inst->callee = "host_malloc";
                } else {
                    inst->callee = "host_calloc";
                }
                pruned++;
                changed = true;
            }
        }
    }
    return changed;
}

} // namespace tfm
