#include "hot_alloc_pruning.hh"

#include <algorithm>
#include <sstream>

namespace tfm
{

bool
isAllocationCallee(const std::string &callee)
{
    return callee == "malloc" || callee == "calloc" ||
           callee == "tfm_malloc" || callee == "tfm_calloc" ||
           callee == "pg_malloc" || callee == "pg_calloc";
}

const AllocSiteProfile::Site *
AllocSiteProfile::findByOrdinal(std::uint32_t ordinal) const
{
    for (const Site &site : sites) {
        if (site.ordinal == ordinal)
            return &site;
    }
    return nullptr;
}

void
AllocSiteProfile::merge(const AllocSiteProfile &other)
{
    for (const Site &incoming : other.sites) {
        auto pos = std::lower_bound(
            sites.begin(), sites.end(), incoming.ordinal,
            [](const Site &site, std::uint32_t ordinal) {
                return site.ordinal < ordinal;
            });
        if (pos != sites.end() && pos->ordinal == incoming.ordinal) {
            pos->allocations += incoming.allocations;
            pos->bytesAllocated += incoming.bytesAllocated;
            pos->guardedAccesses += incoming.guardedAccesses;
            pos->seqAccesses += incoming.seqAccesses;
            pos->randAccesses += incoming.randAccesses;
            if (pos->function.empty())
                pos->function = incoming.function;
        } else {
            // Later-epoch site: insert at its ordinal-sorted position
            // so the stable ordering key keeps the profile ordered.
            sites.insert(pos, incoming);
        }
    }
}

std::string
AllocSiteProfile::serialize() const
{
    std::ostringstream out;
    out << "tfm-alloc-profile v2\n";
    for (const Site &site : sites) {
        out << "site " << site.ordinal << ' '
            << (site.function.empty() ? "?" : site.function) << ' '
            << site.allocations << ' ' << site.bytesAllocated << ' '
            << site.guardedAccesses << ' ' << site.seqAccesses << ' '
            << site.randAccesses << '\n';
    }
    return out.str();
}

bool
AllocSiteProfile::parse(const std::string &text, AllocSiteProfile &out)
{
    std::istringstream in(text);
    std::string header, version;
    if (!(in >> header >> version) || header != "tfm-alloc-profile" ||
        (version != "v1" && version != "v2")) {
        return false;
    }
    AllocSiteProfile parsed;
    std::string keyword;
    while (in >> keyword) {
        if (keyword != "site")
            return false;
        Site site;
        if (!(in >> site.ordinal >> site.function >>
              site.allocations >> site.bytesAllocated >>
              site.guardedAccesses)) {
            return false;
        }
        if (version == "v2" &&
            !(in >> site.seqAccesses >> site.randAccesses)) {
            return false;
        }
        if (site.function == "?")
            site.function.clear();
        parsed.sites.push_back(std::move(site));
    }
    std::sort(parsed.sites.begin(), parsed.sites.end(),
              [](const Site &a, const Site &b) {
                  return a.ordinal < b.ordinal;
              });
    out = std::move(parsed);
    return true;
}

bool
HotAllocPruningPass::run(ir::Module &module)
{
    pruned = 0;
    std::uint32_t ordinal = 0;
    bool changed = false;
    for (const auto &function : module.allFunctions()) {
        for (const auto &block : function->basicBlocks()) {
            for (const auto &inst : block->instructions()) {
                if (inst->op() != ir::Opcode::Call ||
                    !isAllocationCallee(inst->callee)) {
                    continue;
                }
                const std::uint32_t site_ordinal = ordinal++;
                const AllocSiteProfile::Site *site =
                    prof.findByOrdinal(site_ordinal);
                if (!site || site->accessesPerByte() < threshold)
                    continue;
                // Hot site: keep it in ordinary local memory. The
                // custody check makes unguarded-looking pointers safe.
                if (inst->callee == "tfm_malloc" ||
                    inst->callee == "malloc") {
                    inst->callee = "host_malloc";
                } else {
                    inst->callee = "host_calloc";
                }
                pruned++;
                changed = true;
            }
        }
    }
    return changed;
}

} // namespace tfm
