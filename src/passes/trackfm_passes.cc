#include "trackfm_passes.hh"

#include <set>

#include "analysis/cfg.hh"
#include "analysis/dominators.hh"
#include "analysis/heap_provenance.hh"
#include "analysis/induction_variable.hh"
#include "analysis/loop_info.hh"
#include "guard_opt.hh"
#include "ir/builder.hh"
#include "path_arbiter.hh"
#include "tfm/cost_model.hh"

namespace tfm
{

bool
RuntimeInitPass::run(ir::Module &module)
{
    ir::Function *main_fn = module.findFunction("main");
    if (!main_fn || !main_fn->entry())
        return false;
    // Idempotence: skip when the hook is already there.
    const auto &insts = main_fn->entry()->instructions();
    if (!insts.empty() && insts.front()->op() == ir::Opcode::Call &&
        insts.front()->callee == "tfm_runtime_init") {
        return false;
    }
    auto init = ir::IRBuilder::make(ir::Opcode::Call, ir::Type::Void, "");
    init->callee = "tfm_runtime_init";
    main_fn->entry()->insertAt(0, std::move(init));
    return true;
}

bool
LibcTransformPass::run(ir::Module &module)
{
    bool changed = false;
    for (const auto &function : module.allFunctions()) {
        for (const auto &block : function->basicBlocks()) {
            for (const auto &inst : block->instructions()) {
                if (inst->op() != ir::Opcode::Call)
                    continue;
                std::string &callee = inst->callee;
                if (callee == "malloc")
                    callee = "tfm_malloc";
                else if (callee == "calloc")
                    callee = "tfm_calloc";
                else if (callee == "realloc")
                    callee = "tfm_realloc";
                else if (callee == "free")
                    callee = "tfm_free";
                else
                    continue;
                changed = true;
            }
        }
    }
    return changed;
}

bool
GuardPass::run(ir::Module &module)
{
    inserted = 0;
    if (report)
        report->ensureIndexed(module);
    for (const auto &function : module.allFunctions()) {
        HeapProvenance provenance(*function);
        for (const auto &block : function->basicBlocks()) {
            // Index-based loop: we insert while iterating.
            for (std::size_t i = 0; i < block->instructions().size();
                 i++) {
                ir::Instruction *inst = block->instructions()[i].get();
                const bool is_load = inst->op() == ir::Opcode::Load;
                const bool is_store = inst->op() == ir::Opcode::Store;
                if (!is_load && !is_store)
                    continue;
                const std::size_t ptr_index = is_load ? 0 : 1;
                ir::Value *ptr = inst->operand(ptr_index);
                // Already guarded (idempotence across reruns).
                if (ptr->isInstruction()) {
                    const auto op =
                        static_cast<ir::Instruction *>(ptr)->op();
                    if (op == ir::Opcode::Guard ||
                        op == ir::Opcode::GuardReval ||
                        op == ir::Opcode::ChunkAccess) {
                        continue;
                    }
                }
                if (!provenance.needsGuard(ptr))
                    continue;

                auto guard = ir::IRBuilder::make(
                    ir::Opcode::Guard, ir::Type::Ptr,
                    "g" + std::to_string(inserted));
                guard->isWrite = is_store;
                guard->addOperand(ptr);
                ir::Instruction *placed =
                    block->insertAt(i, std::move(guard));
                i++; // skip over the guard we just inserted
                inst->setOperand(ptr_index, placed);
                inst->needsGuard = true;
                if (report)
                    report->siteFor(ptr).guardsInserted++;
                inserted++;
            }
        }
    }
    return inserted > 0;
}

bool
LoopChunkPass::run(ir::Module &module)
{
    chunked = 0;
    candidates = 0;
    if (opts.chunkPolicy == ChunkPolicy::None)
        return false;
    const ChunkCostModel model;
    bool changed = false;

    for (const auto &function : module.allFunctions()) {
        const Cfg cfg(*function);
        const DominatorTree dom(*function, cfg);
        const LoopInfo loop_info(*function, cfg, dom);
        std::uint64_t cursor_id = 0;

        // After redundant-guard elimination one guard may feed several
        // strided memory ops, so the same guard can appear in multiple
        // StridedAccess entries; replace it only once.
        std::set<const ir::Instruction *> replaced_guards;

        for (const auto &loop : loop_info.loops()) {
            if (!loop->preheader)
                continue; // no place to host the cursor
            const InductionVariables ivs(*loop, *function);
            for (const StridedAccess &access : ivs.stridedAccesses()) {
                // Chunking applies to contiguous sweeps: the byte
                // stride equals the element size.
                if (access.strideBytes !=
                    static_cast<std::int64_t>(access.elementBytes)) {
                    continue;
                }
                if (!access.guard)
                    continue; // unguarded (stack) access
                if (replaced_guards.count(access.guard))
                    continue; // already chunked via another access
                candidates++;

                const std::uint64_t density = ChunkCostModel::density(
                    opts.objectSizeBytes, access.elementBytes);
                if (opts.chunkPolicy == ChunkPolicy::CostModel &&
                    !model.shouldChunk(density)) {
                    continue;
                }

                // chunk.begin in the preheader, before its terminator.
                auto begin = ir::IRBuilder::make(
                    ir::Opcode::ChunkBegin, ir::Type::Ptr,
                    "chunk" + std::to_string(cursor_id++));
                begin->imm = access.elementBytes;
                begin->addOperand(access.base);
                ir::BasicBlock *preheader = loop->preheader;
                ir::Instruction *term = preheader->terminator();
                ir::Instruction *begin_placed = preheader->insertAt(
                    preheader->indexOf(term), std::move(begin));

                // Replace the guard with chunk.access(cursor, gep).
                ir::BasicBlock *guard_block = access.guard->parent();
                const std::size_t guard_index =
                    guard_block->indexOf(access.guard);
                auto chunk_access = ir::IRBuilder::make(
                    ir::Opcode::ChunkAccess, ir::Type::Ptr,
                    access.guard->name() + ".c");
                chunk_access->isWrite = access.guard->isWrite;
                chunk_access->addOperand(begin_placed);
                chunk_access->addOperand(access.gep);
                ir::Instruction *access_placed = guard_block->insertAt(
                    guard_index, std::move(chunk_access));
                replaceAllUses(*function, access.guard, access_placed);
                guard_block->removeAt(
                    guard_block->indexOf(access.guard));
                replaced_guards.insert(access.guard);

                chunked++;
                changed = true;
            }
        }
    }
    return changed;
}

bool
PrefetchInjectionPass::run(ir::Module &module)
{
    if (!opts.injectPrefetch)
        return false;
    bool changed = false;
    for (const auto &function : module.allFunctions()) {
        for (const auto &block : function->basicBlocks()) {
            for (std::size_t i = 0; i < block->instructions().size();
                 i++) {
                ir::Instruction *inst = block->instructions()[i].get();
                if (inst->op() != ir::Opcode::ChunkBegin)
                    continue;
                // Idempotence: a prefetch directly after the begin.
                if (i + 1 < block->instructions().size() &&
                    block->instructions()[i + 1]->op() ==
                        ir::Opcode::Prefetch) {
                    continue;
                }
                auto prefetch = ir::IRBuilder::make(
                    ir::Opcode::Prefetch, ir::Type::Void, "");
                prefetch->addOperand(inst->operand(0));
                prefetch->imm = opts.prefetchDepth;
                block->insertAt(i + 1, std::move(prefetch));
                changed = true;
            }
        }
    }
    return changed;
}

void
addTrackFmPipeline(PassManager &manager, const TrackFmPassOptions &options)
{
    manager.emplace<RuntimeInitPass>();
    manager.emplace<LibcTransformPass>();
    // The arbiter rewrites Dense sites onto the paged plane before
    // guard insertion, so paged accesses never grow guards at all.
    if (options.arbiterMode != ArbiterMode::Off)
        manager.emplace<PathArbiterPass>(options);
    manager.emplace<GuardPass>(options.siteReport);
    if (options.optimizeGuards) {
        // Elimination first so coalescing and chunking see a deduped
        // guard set; hoisting after chunking so chunked loops (whose
        // guards became chunk.access) are left alone; a second
        // elimination round dedups epoch-arming guards that several
        // inner loops hoisted into a shared preheader.
        manager.emplace<RedundantGuardElimPass>(options.siteReport);
        manager.emplace<GuardCoalescePass>(options.objectSizeBytes,
                                           options.siteReport);
    }
    manager.emplace<LoopChunkPass>(options);
    if (options.optimizeGuards) {
        manager.emplace<GuardHoistPass>(options.siteReport);
        manager.emplace<RedundantGuardElimPass>(options.siteReport);
    }
    manager.emplace<PrefetchInjectionPass>(options);
}

std::uint64_t
estimateLoweredInstructions(const ir::Module &module)
{
    std::uint64_t total = 0;
    for (const auto &function : module.allFunctions()) {
        for (const auto &block : function->basicBlocks()) {
            for (const auto &inst : block->instructions()) {
                switch (inst->op()) {
                  case ir::Opcode::Guard:
                    // Fig. 4b: custody check + table lookup + fast path,
                    // plus the out-of-line slow-path call site.
                    total += 14;
                    break;
                  case ir::Opcode::GuardReval:
                    // Epoch load + compare + branch, plus the out-of-
                    // line re-guard call site for the miss path.
                    total += 4;
                    break;
                  case ir::Opcode::ChunkBegin:
                    total += 10; // tfm_init + tfm_rw setup
                    break;
                  case ir::Opcode::ChunkAccess:
                    total += 3; // boundary check + pointer bump
                    break;
                  case ir::Opcode::Prefetch:
                  case ir::Opcode::Call:
                    total += 4;
                    break;
                  case ir::Opcode::Phi:
                    break; // lowered to moves on edges; count as free
                  default:
                    total += 1;
                    break;
                }
            }
        }
    }
    return total;
}

} // namespace tfm
