#include "loop_info.hh"

#include <algorithm>
#include <map>

namespace tfm
{

LoopInfo::LoopInfo(const ir::Function &function, const Cfg &cfg,
                   const DominatorTree &dom)
{
    // Collect back edges grouped by header.
    std::map<ir::BasicBlock *, std::vector<ir::BasicBlock *>> backEdges;
    for (const auto &block : function.basicBlocks()) {
        if (!cfg.reachable(block.get()))
            continue;
        for (ir::BasicBlock *succ : block->successors()) {
            if (dom.dominates(succ, block.get()))
                backEdges[succ].push_back(block.get());
        }
    }

    // Build each loop body by walking predecessors from the latches.
    for (auto &[header, latches] : backEdges) {
        auto loop = std::make_unique<Loop>();
        loop->header = header;
        loop->latches = latches;
        loop->blocks.insert(header);
        std::vector<ir::BasicBlock *> worklist(latches.begin(),
                                               latches.end());
        while (!worklist.empty()) {
            ir::BasicBlock *block = worklist.back();
            worklist.pop_back();
            if (loop->blocks.count(block))
                continue;
            loop->blocks.insert(block);
            for (ir::BasicBlock *pred : cfg.predecessors(block))
                worklist.push_back(pred);
        }
        // Preheader: the unique predecessor of the header outside the
        // loop body.
        ir::BasicBlock *preheader = nullptr;
        bool unique = true;
        for (ir::BasicBlock *pred : cfg.predecessors(header)) {
            if (loop->blocks.count(pred))
                continue;
            if (preheader)
                unique = false;
            preheader = pred;
        }
        loop->preheader = unique ? preheader : nullptr;
        _loops.push_back(std::move(loop));
    }

    // Depths: a loop nested in another has a strictly smaller body.
    // Iterate to a fixpoint so chains of nesting propagate.
    for (std::size_t round = 0; round < _loops.size(); round++)
    for (auto &outer : _loops) {
        for (auto &inner : _loops) {
            if (inner.get() == outer.get())
                continue;
            if (inner->blocks.size() < outer->blocks.size() &&
                std::includes(outer->blocks.begin(), outer->blocks.end(),
                              inner->blocks.begin(),
                              inner->blocks.end())) {
                inner->depth = std::max(inner->depth, outer->depth + 1);
            }
        }
    }
}

Loop *
LoopInfo::innermostLoopFor(const ir::BasicBlock *block) const
{
    Loop *best = nullptr;
    for (const auto &loop : _loops) {
        if (!loop->contains(block))
            continue;
        if (!best || loop->blocks.size() < best->blocks.size())
            best = loop.get();
    }
    return best;
}

} // namespace tfm
