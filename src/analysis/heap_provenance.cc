#include "heap_provenance.hh"

namespace tfm
{

Provenance
HeapProvenance::join(Provenance a, Provenance b)
{
    if (a == b)
        return a;
    // A value that may carry pointers from BOTH planes is the one
    // merge the hybrid emission rules forbid: flag it explicitly so
    // the safety checker can name it (MixedPlane diagnostic) instead
    // of letting it wash out to Unknown.
    if (a == Provenance::MixedPlane || b == Provenance::MixedPlane)
        return Provenance::MixedPlane;
    if ((a == Provenance::Paged && b == Provenance::Heap) ||
        (a == Provenance::Heap && b == Provenance::Paged)) {
        return Provenance::MixedPlane;
    }
    return Provenance::Unknown;
}

Provenance
HeapProvenance::of(const ir::Value *value) const
{
    if (!value)
        return Provenance::Unknown;
    auto it = states.find(value);
    if (it != states.end())
        return it->second;
    // Constants used as pointers (e.g. null) are not heap pointers.
    if (value->isConstant())
        return Provenance::NonHeap;
    return Provenance::Unknown;
}

HeapProvenance::HeapProvenance(const ir::Function &function)
{
    // Seeds: arguments are Unknown (callers may pass anything).
    for (const auto &arg : function.arguments())
        states[arg.get()] = Provenance::Unknown;

    // Iterate transfer functions to a fixpoint (the lattice has height
    // 2, so this converges quickly).
    bool changed = true;
    auto update = [&](const ir::Value *value, Provenance fresh) {
        auto it = states.find(value);
        if (it == states.end()) {
            states[value] = fresh;
            changed = true;
        } else if (it->second != fresh) {
            const Provenance merged = join(it->second, fresh);
            if (merged != it->second) {
                it->second = merged;
                changed = true;
            }
        }
    };

    while (changed) {
        changed = false;
        for (const auto &block : function.basicBlocks()) {
            for (const auto &inst : block->instructions()) {
                switch (inst->op()) {
                  case ir::Opcode::Alloca:
                    update(inst.get(), Provenance::NonHeap);
                    break;
                  case ir::Opcode::Call:
                    // The TrackFM allocator family returns (tagged)
                    // heap pointers; plain malloc (pre-transformation)
                    // is also heap.
                    if (inst->callee == "malloc" ||
                        inst->callee == "calloc" ||
                        inst->callee == "realloc" ||
                        inst->callee == "tfm_malloc" ||
                        inst->callee == "tfm_calloc" ||
                        inst->callee == "tfm_realloc") {
                        update(inst.get(), Provenance::Heap);
                    } else if (inst->callee == "pg_malloc" ||
                               inst->callee == "pg_calloc") {
                        update(inst.get(), Provenance::Paged);
                    } else if (inst->type() != ir::Type::Void) {
                        update(inst.get(), Provenance::Unknown);
                    }
                    break;
                  case ir::Opcode::Gep:
                  case ir::Opcode::PtrToInt:
                  case ir::Opcode::IntToPtr:
                  case ir::Opcode::Guard:
                  case ir::Opcode::GuardReval:
                  case ir::Opcode::ChunkAccess:
                    // Derivations preserve the provenance of the base
                    // (the tag survives offset math, section 3.2).
                    // GuardReval and ChunkAccess translate the raw
                    // pointer in their second operand.
                    update(inst.get(),
                           of(inst->operand(
                               (inst->op() == ir::Opcode::ChunkAccess ||
                                inst->op() == ir::Opcode::GuardReval)
                                   ? 1
                                   : 0)));
                    break;
                  case ir::Opcode::Phi: {
                    bool first = true;
                    Provenance merged = Provenance::Unknown;
                    for (const auto &[incoming, pred] :
                         inst->incoming()) {
                        (void)pred;
                        const Provenance p = of(incoming);
                        merged = first ? p : join(merged, p);
                        first = false;
                    }
                    if (!first)
                        update(inst.get(), merged);
                    break;
                  }
                  case ir::Opcode::Load:
                    // A pointer loaded from memory could be anything.
                    if (inst->type() == ir::Type::Ptr)
                        update(inst.get(), Provenance::Unknown);
                    break;
                  case ir::Opcode::Add:
                  case ir::Opcode::Sub:
                    // Integer offset math on a pointer-derived value
                    // keeps its provenance when one side is constant.
                    if (inst->operand(1)->isConstant())
                        update(inst.get(), of(inst->operand(0)));
                    else if (inst->operand(0)->isConstant())
                        update(inst.get(), of(inst->operand(1)));
                    break;
                  default:
                    break;
                }
            }
        }
    }
}

} // namespace tfm
