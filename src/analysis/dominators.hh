/**
 * @file
 * Dominator tree via the Cooper-Harvey-Kennedy iterative algorithm.
 */

#ifndef TRACKFM_ANALYSIS_DOMINATORS_HH
#define TRACKFM_ANALYSIS_DOMINATORS_HH

#include <map>

#include "cfg.hh"

namespace tfm
{

/** Immediate-dominator tree for one function. */
class DominatorTree
{
  public:
    DominatorTree(const ir::Function &function, const Cfg &cfg);

    /** Immediate dominator (nullptr for the entry). */
    ir::BasicBlock *
    idom(const ir::BasicBlock *block) const
    {
        auto it = idoms.find(block);
        return it == idoms.end() ? nullptr : it->second;
    }

    /** Does @p a dominate @p b (reflexive)? */
    bool dominates(const ir::BasicBlock *a, const ir::BasicBlock *b) const;

  private:
    std::map<const ir::BasicBlock *, ir::BasicBlock *> idoms;
};

} // namespace tfm

#endif // TRACKFM_ANALYSIS_DOMINATORS_HH
