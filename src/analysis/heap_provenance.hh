/**
 * @file
 * Heap-provenance dataflow: which pointer values can only refer to the
 * heap, which can only refer to non-heap storage (stack, globals), and
 * which are unknown.
 *
 * This is the analysis behind the paper's pointer-guard pass: accesses
 * through NonHeap pointers are provably safe and need no guard (the
 * paper's "ignores accesses to stack and global objects" via NOELLE's
 * PDG/alias analyses); Heap and Unknown accesses are guarded — Unknown
 * is safe to guard thanks to the custody check.
 */

#ifndef TRACKFM_ANALYSIS_HEAP_PROVENANCE_HH
#define TRACKFM_ANALYSIS_HEAP_PROVENANCE_HH

#include <map>

#include "ir/function.hh"

namespace tfm
{

/** Three-point provenance lattice. */
enum class Provenance : std::uint8_t
{
    NonHeap, ///< provably stack/global
    Heap,    ///< provably heap (malloc-derived)
    Unknown  ///< could be either (arguments, merged paths, int casts)
};

/** Forward dataflow over one function. */
class HeapProvenance
{
  public:
    explicit HeapProvenance(const ir::Function &function);

    Provenance of(const ir::Value *value) const;

    /** Must an access through @p ptr be guarded? */
    bool
    needsGuard(const ir::Value *ptr) const
    {
        return of(ptr) != Provenance::NonHeap;
    }

  private:
    static Provenance join(Provenance a, Provenance b);

    std::map<const ir::Value *, Provenance> states;
};

} // namespace tfm

#endif // TRACKFM_ANALYSIS_HEAP_PROVENANCE_HH
