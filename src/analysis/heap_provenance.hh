/**
 * @file
 * Heap-provenance dataflow: which pointer values can only refer to the
 * heap, which can only refer to non-heap storage (stack, globals), and
 * which are unknown.
 *
 * This is the analysis behind the paper's pointer-guard pass: accesses
 * through NonHeap pointers are provably safe and need no guard (the
 * paper's "ignores accesses to stack and global objects" via NOELLE's
 * PDG/alias analyses); Heap and Unknown accesses are guarded — Unknown
 * is safe to guard thanks to the custody check.
 */

#ifndef TRACKFM_ANALYSIS_HEAP_PROVENANCE_HH
#define TRACKFM_ANALYSIS_HEAP_PROVENANCE_HH

#include <map>

#include "ir/function.hh"

namespace tfm
{

/** Provenance lattice (extended for the hybrid data plane). */
enum class Provenance : std::uint8_t
{
    NonHeap,   ///< provably stack/global
    Heap,      ///< provably guard-plane heap (tfm_malloc-derived)
    Paged,     ///< provably paged-plane heap (pg_malloc-derived)
    MixedPlane,///< joins both planes: illegal to dereference either way
    Unknown    ///< could be anything (arguments, int casts)
};

/** Forward dataflow over one function. */
class HeapProvenance
{
  public:
    explicit HeapProvenance(const ir::Function &function);

    Provenance of(const ir::Value *value) const;

    /** Must an access through @p ptr be guarded? Paged pointers are
     *  resolved by the memory choke point (page-table "hardware"), not
     *  by guards, so they are as guard-free as stack pointers. */
    bool
    needsGuard(const ir::Value *ptr) const
    {
        const Provenance p = of(ptr);
        return p != Provenance::NonHeap && p != Provenance::Paged;
    }

  private:
    static Provenance join(Provenance a, Provenance b);

    std::map<const ir::Value *, Provenance> states;
};

} // namespace tfm

#endif // TRACKFM_ANALYSIS_HEAP_PROVENANCE_HH
