#include "induction_variable.hh"

namespace tfm
{

InductionVariables::InductionVariables(const Loop &analyzed_loop,
                                       const ir::Function &function)
    : loop(analyzed_loop)
{
    findBasicIvs();
    findStridedAccesses(function);
}

bool
InductionVariables::isLoopInvariant(const ir::Value *value) const
{
    if (!value)
        return false;
    if (value->isConstant() || value->kind() == ir::Value::Kind::Argument)
        return true;
    const auto *inst = static_cast<const ir::Instruction *>(value);
    return !loop.contains(inst->parent());
}

void
InductionVariables::findBasicIvs()
{
    for (const auto &inst : loop.header->instructions()) {
        if (inst->op() != ir::Opcode::Phi)
            break; // phis lead the block
        if (inst->incoming().size() != 2)
            continue;

        ir::Value *init = nullptr;
        ir::Value *looped = nullptr;
        for (const auto &[value, block] : inst->incoming()) {
            if (loop.contains(block))
                looped = value;
            else
                init = value;
        }
        if (!init || !looped || !looped->isInstruction())
            continue;

        // The in-loop value must be phi + constant (either operand
        // order), defined inside the loop.
        auto *update = static_cast<ir::Instruction *>(looped);
        if (update->op() != ir::Opcode::Add &&
            update->op() != ir::Opcode::Sub) {
            continue;
        }
        if (!loop.contains(update->parent()))
            continue;
        ir::Value *other = nullptr;
        if (update->operand(0) == inst.get())
            other = update->operand(1);
        else if (update->operand(1) == inst.get() &&
                 update->op() == ir::Opcode::Add)
            other = update->operand(0);
        if (!other || !other->isConstant())
            continue;

        BasicIv iv;
        iv.phi = inst.get();
        iv.init = init;
        iv.step = static_cast<const ir::Constant *>(other)->intValue();
        if (update->op() == ir::Opcode::Sub)
            iv.step = -iv.step;
        iv.update = update;
        ivs.push_back(iv);
    }
}

void
InductionVariables::findStridedAccesses(const ir::Function &function)
{
    auto ivFor = [&](const ir::Value *value) -> const BasicIv * {
        for (const auto &iv : ivs) {
            if (iv.phi == value)
                return &iv;
        }
        return nullptr;
    };

    for (const auto &block : function.basicBlocks()) {
        if (!loop.contains(block.get()))
            continue;
        for (const auto &inst : block->instructions()) {
            const bool is_load = inst->op() == ir::Opcode::Load;
            const bool is_store = inst->op() == ir::Opcode::Store;
            if (!is_load && !is_store)
                continue;
            ir::Value *ptr =
                is_load ? inst->operand(0) : inst->operand(1);
            if (!ptr->isInstruction())
                continue;
            auto *gep = static_cast<ir::Instruction *>(ptr);
            // Look through an already-inserted guard so the chunking
            // pass can run after the guard pass.
            ir::Instruction *guard = nullptr;
            if (gep->op() == ir::Opcode::Guard) {
                guard = gep;
                if (!gep->operand(0)->isInstruction())
                    continue;
                gep = static_cast<ir::Instruction *>(gep->operand(0));
            }
            if (gep->op() != ir::Opcode::Gep)
                continue;
            const BasicIv *iv = ivFor(gep->operand(1));
            if (!iv)
                continue;
            if (!isLoopInvariant(gep->operand(0)))
                continue;

            StridedAccess access;
            access.gep = gep;
            access.guard = guard;
            access.memOp = inst.get();
            access.base = gep->operand(0);
            access.iv = iv;
            access.strideBytes = gep->imm * iv->step;
            access.elementBytes =
                is_load ? ir::sizeOf(inst->type())
                        : ir::sizeOf(inst->operand(0)->type());
            access.isWrite = is_store;
            accesses.push_back(access);
        }
    }
}

} // namespace tfm
