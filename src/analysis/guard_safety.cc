/**
 * @file
 * Implementation of the guard-safety checker (see guard_safety.hh and
 * DESIGN.md section 4g).
 *
 * Structure, per function:
 *  1. SSA well-formedness: every operand's definition must dominate
 *     its use (phi incomings are checked against their edge).
 *  2. Translation availability: a forward dataflow with one lattice
 *     cell per guard-family producer, states
 *         Bot < { NotRun, Fresh < Stale } < Mixed
 *     joined at merges; barriers demote Fresh to Stale; executing the
 *     producer resets its own cell to Fresh.
 *  3. A final reporting sweep re-runs the transfer function and emits
 *     diagnostics at loads, stores, calls, rets, phis, and revals.
 *
 * The barrier model is interprocedural: a call only invalidates
 * translations when the callee may enter the far-memory runtime
 * (directly via a guard-family op or an allocation/evacuation
 * intrinsic, or transitively through another call). Host-only
 * intrinsics (print_i64, host_malloc, host_calloc) never do.
 */

#include "guard_safety.hh"

#include <map>
#include <set>
#include <sstream>

#include "cfg.hh"
#include "dominators.hh"
#include "heap_provenance.hh"

namespace tfm
{

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Module;
using ir::Opcode;
using ir::Value;

const char *
safetyDiagKindName(SafetyDiagKind kind)
{
    switch (kind) {
      case SafetyDiagKind::UnguardedFarAccess:
        return "unguarded-far-access";
      case SafetyDiagKind::StaleHostPointer:
        return "use-after-eviction";
      case SafetyDiagKind::MissingWriteFlag:
        return "missing-write-flag";
      case SafetyDiagKind::GuardedPtrEscape:
        return "guarded-ptr-escape";
      case SafetyDiagKind::RevalArmerUnsound:
        return "reval-armer-unsound";
      case SafetyDiagKind::SsaDominance:
        return "ssa-dominance";
      case SafetyDiagKind::MixedPlane:
        return "mixed-plane";
    }
    return "unknown";
}

std::string
formatSafetyDiagnostic(const SafetyDiagnostic &diag,
                       const std::string &file)
{
    std::ostringstream os;
    if (!file.empty() && diag.line > 0)
        os << file << ":" << diag.line << ":" << diag.col << ": ";
    else if (diag.line > 0)
        os << "line " << diag.line << ":" << diag.col << ": ";
    os << safetyDiagKindName(diag.kind) << " @" << diag.function << ":"
       << diag.block << ":#" << diag.instIndex << ": " << diag.message;
    return os.str();
}

const Instruction *
guardRootProducer(const Value *value)
{
    const Value *cursor = value;
    for (int depth = 0; depth < 64 && cursor != nullptr; depth++) {
        if (!cursor->isInstruction())
            return nullptr;
        const auto *inst = static_cast<const Instruction *>(cursor);
        switch (inst->op()) {
          case Opcode::Guard:
          case Opcode::GuardReval:
          case Opcode::ChunkAccess:
            return inst;
          case Opcode::Gep:
          case Opcode::PtrToInt:
          case Opcode::IntToPtr:
          case Opcode::Zext:
          case Opcode::Trunc:
            cursor =
                inst->numOperands() > 0 ? inst->operand(0) : nullptr;
            break;
          case Opcode::Add:
          case Opcode::Sub: {
            if (inst->numOperands() != 2)
                return nullptr;
            const Value *lhs = inst->operand(0);
            const Value *rhs = inst->operand(1);
            if (rhs->isConstant())
                cursor = lhs;
            else if (lhs->isConstant() && inst->op() == Opcode::Add)
                cursor = rhs;
            else
                return nullptr;
            break;
          }
          default:
            return nullptr;
        }
    }
    return nullptr;
}

namespace
{

/** Intrinsics that enter the far-memory runtime (possible eviction).
 *  The plain libc names are included because libc-transform rewrites
 *  them into their tfm_ counterparts; treating them as barriers keeps
 *  the checker sound on IR taken before that rewrite. */
bool
isRuntimeIntrinsic(const std::string &callee)
{
    return callee == "tfm_malloc" || callee == "tfm_calloc" ||
           callee == "tfm_realloc" || callee == "tfm_free" ||
           callee == "tfm_evacuate_all" ||
           callee == "tfm_runtime_init" || callee == "malloc" ||
           callee == "calloc" || callee == "realloc" ||
           callee == "free" || callee == "pg_malloc" ||
           callee == "pg_calloc" || callee == "pg_free";
}

/** Intrinsics that provably never touch the far-memory runtime. */
bool
isHostIntrinsic(const std::string &callee)
{
    return callee == "print_i64" || callee == "host_malloc" ||
           callee == "host_calloc";
}

bool
isGuardFamily(Opcode op)
{
    return op == Opcode::Guard || op == Opcode::GuardReval ||
           op == Opcode::ChunkBegin || op == Opcode::ChunkAccess ||
           op == Opcode::Prefetch;
}

bool
calleeMayEnterRuntime(const std::string &callee, const Module &module,
                      const std::set<const Function *> &entering)
{
    if (isRuntimeIntrinsic(callee))
        return true;
    if (isHostIntrinsic(callee))
        return false;
    if (const Function *target = module.findFunction(callee))
        return entering.count(target) > 0;
    return true; // unknown external: assume the worst
}

/** Fixpoint over the call graph: which module functions may enter the
 *  runtime (and therefore act as barriers at their call sites). */
std::set<const Function *>
runtimeEnteringFunctions(const Module &module)
{
    std::set<const Function *> entering;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &function : module.allFunctions()) {
            if (entering.count(function.get()))
                continue;
            bool enters = false;
            for (const auto &block : function->basicBlocks()) {
                for (const auto &inst : block->instructions()) {
                    if (isGuardFamily(inst->op()))
                        enters = true;
                    else if (inst->op() == Opcode::Call &&
                             calleeMayEnterRuntime(inst->callee,
                                                   module, entering))
                        enters = true;
                    if (enters)
                        break;
                }
                if (enters)
                    break;
            }
            if (enters) {
                entering.insert(function.get());
                changed = true;
            }
        }
    }
    return entering;
}

/** Availability of one producer's translation along the current path.
 *  Bot is the optimistic "no path seen yet" initializer; NotRun means
 *  the producer has not executed on some completed path. */
enum AvailState : std::uint8_t
{
    Bot = 0,
    NotRun = 1,
    Fresh = 2,
    Stale = 3,
    Mixed = 4,
};

std::uint8_t
joinAvail(std::uint8_t a, std::uint8_t b)
{
    if (a == Bot)
        return b;
    if (b == Bot)
        return a;
    if (a == b)
        return a;
    if (a == NotRun || b == NotRun)
        return Mixed;
    return a > b ? a : b; // Fresh ⊔ Stale = Stale; x ⊔ Mixed = Mixed
}

/** Checker context for one function. */
struct FunctionChecker
{
    const Module &module;
    const Function &function;
    const std::set<const Function *> &entering;
    std::vector<SafetyDiagnostic> &out;

    Cfg cfg;
    DominatorTree dom;
    HeapProvenance provenance;

    /// Guard-family producers in reachable blocks, densely indexed.
    std::vector<const Instruction *> producers;
    std::map<const Instruction *, std::size_t> producerIndex;
    /// Per-block in-state of the availability dataflow.
    std::map<const BasicBlock *, std::vector<std::uint8_t>> blockIn;
    /// Instruction position within its block, for dominance checks.
    std::map<const Instruction *, std::size_t> instPos;

    FunctionChecker(const Module &mod, const Function &fn,
                    const std::set<const Function *> &entering_set,
                    std::vector<SafetyDiagnostic> &sink)
        : module(mod), function(fn), entering(entering_set), out(sink),
          cfg(fn), dom(fn, cfg), provenance(fn)
    {}

    void
    report(SafetyDiagKind kind, const Instruction &inst,
           std::string message)
    {
        SafetyDiagnostic diag;
        diag.kind = kind;
        diag.function = function.name();
        const BasicBlock *block = inst.parent();
        diag.block = block ? block->name() : "?";
        auto pos = instPos.find(&inst);
        diag.instIndex = pos == instPos.end() ? 0 : pos->second;
        diag.line = inst.debugLine;
        diag.col = inst.debugCol;
        diag.message = std::move(message);
        out.push_back(std::move(diag));
    }

    bool
    isBarrier(const Instruction &inst) const
    {
        if (isGuardFamily(inst.op()))
            return true;
        if (inst.op() == Opcode::Call)
            return calleeMayEnterRuntime(inst.callee, module, entering);
        return false;
    }

    bool
    isProducer(const Instruction &inst) const
    {
        return inst.op() == Opcode::Guard ||
               inst.op() == Opcode::GuardReval ||
               inst.op() == Opcode::ChunkAccess;
    }

    void
    run()
    {
        indexInstructions();
        checkSsaDominance();
        collectProducers();
        solveAvailability();
        reportSweep();
    }

    void
    indexInstructions()
    {
        for (const auto &block : function.basicBlocks()) {
            const auto &insts = block->instructions();
            for (std::size_t i = 0; i < insts.size(); i++)
                instPos[insts[i].get()] = i;
        }
    }

    /** 1. Every operand definition must dominate its use. */
    void
    checkSsaDominance()
    {
        for (const BasicBlock *block : cfg.reversePostOrder()) {
            const auto &insts = block->instructions();
            for (std::size_t i = 0; i < insts.size(); i++) {
                const Instruction &inst = *insts[i];
                if (inst.op() == Opcode::Phi) {
                    for (const auto &[value, pred] : inst.incoming())
                        checkPhiIncoming(inst, value, pred);
                    continue;
                }
                for (const Value *operand : inst.operands())
                    checkOperandDominance(inst, i, operand);
            }
        }
    }

    void
    checkPhiIncoming(const Instruction &phi, const Value *value,
                     const BasicBlock *pred)
    {
        const Instruction *def = asLocalInstruction(value);
        if (!def)
            return;
        const BasicBlock *def_block = def->parent();
        if (!cfg.reachable(def_block) ||
            !dom.dominates(def_block, pred)) {
            report(SafetyDiagKind::SsaDominance, phi,
                   "phi incoming %" + def->name() +
                       " does not dominate the edge from block '" +
                       pred->name() + "'");
        }
    }

    void
    checkOperandDominance(const Instruction &inst, std::size_t use_pos,
                          const Value *operand)
    {
        const Instruction *def = asLocalInstruction(operand);
        if (!def)
            return;
        const BasicBlock *def_block = def->parent();
        const BasicBlock *use_block = inst.parent();
        bool ok;
        if (def_block == use_block) {
            auto it = instPos.find(def);
            ok = it != instPos.end() && it->second < use_pos;
        } else {
            ok = cfg.reachable(def_block) &&
                 dom.dominates(def_block, use_block);
        }
        if (!ok) {
            report(SafetyDiagKind::SsaDominance, inst,
                   "definition of %" + def->name() +
                       " (block '" + def_block->name() +
                       "') does not dominate this use");
        }
    }

    /** Operand as an instruction of this function, else nullptr. */
    const Instruction *
    asLocalInstruction(const Value *value) const
    {
        if (!value || !value->isInstruction())
            return nullptr;
        const auto *inst = static_cast<const Instruction *>(value);
        const BasicBlock *block = inst->parent();
        return (block && block->parent() == &function) ? inst : nullptr;
    }

    void
    collectProducers()
    {
        for (const BasicBlock *block : cfg.reversePostOrder()) {
            for (const auto &inst : block->instructions()) {
                if (isProducer(*inst)) {
                    producerIndex[inst.get()] = producers.size();
                    producers.push_back(inst.get());
                }
            }
        }
    }

    void
    applyTransfer(std::vector<std::uint8_t> &state,
                  const Instruction &inst) const
    {
        if (isBarrier(inst)) {
            for (auto &cell : state) {
                if (cell == Fresh)
                    cell = Stale;
            }
        }
        if (isProducer(inst)) {
            auto it = producerIndex.find(&inst);
            if (it != producerIndex.end())
                state[it->second] = Fresh;
        }
    }

    /** 2. Iterate the availability dataflow to a fixpoint. */
    void
    solveAvailability()
    {
        const auto &rpo = cfg.reversePostOrder();
        if (rpo.empty())
            return;
        for (const BasicBlock *block : rpo)
            blockIn[block].assign(producers.size(), Bot);
        // Before the entry block no producer has executed.
        blockIn[rpo.front()].assign(producers.size(), NotRun);

        bool changed = true;
        int sweeps = 0;
        while (changed && sweeps++ < 1000) {
            changed = false;
            for (const BasicBlock *block : rpo) {
                std::vector<std::uint8_t> state = blockIn[block];
                for (const auto &inst : block->instructions())
                    applyTransfer(state, *inst);
                for (const BasicBlock *succ : block->successors()) {
                    std::vector<std::uint8_t> &in = blockIn[succ];
                    for (std::size_t i = 0; i < in.size(); i++) {
                        const std::uint8_t joined =
                            joinAvail(in[i], state[i]);
                        if (joined != in[i]) {
                            in[i] = joined;
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    /** 3. Re-run the transfer function, emitting diagnostics. */
    void
    reportSweep()
    {
        for (const BasicBlock *block : cfg.reversePostOrder()) {
            std::vector<std::uint8_t> state = blockIn[block];
            for (const auto &inst_ptr : block->instructions()) {
                const Instruction &inst = *inst_ptr;
                checkInstruction(state, inst);
                applyTransfer(state, inst);
            }
        }
    }

    void
    checkInstruction(const std::vector<std::uint8_t> &state,
                     const Instruction &inst)
    {
        switch (inst.op()) {
          case Opcode::Load:
            checkDeref(state, inst, inst.operand(0), false);
            break;
          case Opcode::Store:
            checkDeref(state, inst, inst.operand(1), true);
            checkEscape(inst, inst.operand(0), "stored to memory");
            break;
          case Opcode::Guard:
          case Opcode::ChunkAccess:
            // Hybrid-emission legality: the guard's address operand
            // must not merge both planes (the emitted plane choice
            // cannot suit both custody domains).
            checkMixedPlane(
                inst,
                inst.operand(inst.op() == Opcode::ChunkAccess ? 1 : 0),
                "reaches a guard-plane translation");
            break;
          case Opcode::Call:
            for (const Value *arg : inst.operands())
                checkEscape(inst, arg,
                            "passed to call @" + inst.callee);
            break;
          case Opcode::Ret:
            if (inst.numOperands() > 0)
                checkEscape(inst, inst.operand(0),
                            "returned to the caller");
            break;
          case Opcode::Phi:
            for (const auto &[value, pred] : inst.incoming()) {
                (void)pred;
                checkEscape(inst, value,
                            "merged through a phi (the checker cannot "
                            "track its availability further)");
            }
            break;
          case Opcode::GuardReval:
            checkReval(state, inst);
            if (inst.numOperands() >= 2) {
                checkMixedPlane(inst, inst.operand(1),
                                "reaches a guard-plane revalidation");
            }
            break;
          default:
            break;
        }
    }

    /** Hybrid-emission legality (DESIGN.md §4l): no SSA value may mix
     *  guard-plane and paged-plane provenance at a custody-sensitive
     *  use. Dynamically each access still resolves correctly (the two
     *  tag bits are disjoint), but the per-site emission decision —
     *  guard vs. bare access — can only be right for one plane, so the
     *  checker rejects the merge outright. */
    bool
    checkMixedPlane(const Instruction &inst, const Value *ptr,
                    const std::string &how)
    {
        if (!ptr || provenance.of(ptr) != Provenance::MixedPlane)
            return false;
        report(SafetyDiagKind::MixedPlane, inst,
               "pointer %" + ptr->name() +
                   " merges guard-plane and paged-plane values and " +
                   how);
        return true;
    }

    void
    checkDeref(const std::vector<std::uint8_t> &state,
               const Instruction &inst, const Value *ptr, bool is_store)
    {
        const char *what = is_store ? "store" : "load";
        if (checkMixedPlane(inst, ptr,
                            std::string("reaches this ") + what))
            return;
        const Instruction *root = guardRootProducer(ptr);
        if (!root) {
            if (provenance.needsGuard(ptr)) {
                report(SafetyDiagKind::UnguardedFarAccess, inst,
                       std::string(what) +
                           " through maybe-far pointer %" + ptr->name() +
                           " with no reaching guard");
            }
            return;
        }
        auto it = producerIndex.find(root);
        if (it == producerIndex.end())
            return; // foreign/unreachable producer: SSA check reported
        switch (state[it->second]) {
          case Fresh:
            if (is_store && !root->isWrite) {
                report(SafetyDiagKind::MissingWriteFlag, inst,
                       "store through %" + root->name() +
                           ", whose guard took the read-only path "
                           "(missing .w flag)");
            }
            break;
          case Stale:
            report(SafetyDiagKind::StaleHostPointer, inst,
                   std::string(what) + " through host pointer from %" +
                       root->name() +
                       " after a barrier that may have evacuated the "
                       "frame; a guard.reval is required");
            break;
          case NotRun:
            report(SafetyDiagKind::UnguardedFarAccess, inst,
                   std::string(what) + " through %" + root->name() +
                       " before its guard has executed");
            break;
          case Mixed:
            report(SafetyDiagKind::UnguardedFarAccess, inst,
                   std::string(what) + " through %" + root->name() +
                       ": the guard does not cover every path to this "
                       "access (or is stale on some of them)");
            break;
          default: // Bot: unreachable in practice after the fixpoint
            break;
        }
    }

    void
    checkEscape(const Instruction &inst, const Value *value,
                const std::string &how)
    {
        if (!value || value->type() != ir::Type::Ptr)
            return;
        // The tagged-pointer operands of guard-family ops are
        // custody-checked sanctioned uses, as are reval armers; those
        // instructions are not derefs or escapes.
        if (isGuardFamily(inst.op()))
            return;
        const Instruction *root = guardRootProducer(value);
        if (!root)
            return;
        report(SafetyDiagKind::GuardedPtrEscape, inst,
               "guarded host pointer %" + value->name() +
                   " (from %" + root->name() + ") " + how);
    }

    void
    checkReval(const std::vector<std::uint8_t> &state,
               const Instruction &inst)
    {
        if (inst.numOperands() < 2)
            return; // verifier reports malformed operand counts
        const Instruction *armer = asLocalInstruction(inst.operand(0));
        if (!armer || armer->op() != Opcode::Guard ||
            !armer->armsEpoch) {
            report(SafetyDiagKind::RevalArmerUnsound, inst,
                   "guard.reval operand %" + inst.operand(0)->name() +
                       " is not an epoch-arming guard");
            return;
        }
        auto it = producerIndex.find(armer);
        const std::uint8_t avail = it == producerIndex.end()
                                       ? static_cast<std::uint8_t>(NotRun)
                                       : state[it->second];
        if (avail != Fresh && avail != Stale) {
            report(SafetyDiagKind::RevalArmerUnsound, inst,
                   "arming guard %" + armer->name() +
                       " does not reach this guard.reval on every "
                       "path");
        }
    }
};

} // namespace

std::vector<SafetyDiagnostic>
checkGuardSafety(const Module &module)
{
    std::vector<SafetyDiagnostic> diags;
    const std::set<const Function *> entering =
        runtimeEnteringFunctions(module);
    for (const auto &function : module.allFunctions()) {
        if (function->basicBlocks().empty())
            continue;
        FunctionChecker checker(module, *function, entering, diags);
        checker.run();
    }
    return diags;
}

} // namespace tfm
