#include "dominators.hh"

namespace tfm
{

DominatorTree::DominatorTree(const ir::Function &function, const Cfg &cfg)
{
    const auto &rpo = cfg.reversePostOrder();
    if (rpo.empty())
        return;
    ir::BasicBlock *entry = rpo.front();
    idoms[entry] = entry;

    auto intersect = [&](ir::BasicBlock *a,
                         ir::BasicBlock *b) -> ir::BasicBlock * {
        while (a != b) {
            while (cfg.rpoIndex(a) > cfg.rpoIndex(b))
                a = idoms[a];
            while (cfg.rpoIndex(b) > cfg.rpoIndex(a))
                b = idoms[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 1; i < rpo.size(); i++) {
            ir::BasicBlock *block = rpo[i];
            ir::BasicBlock *new_idom = nullptr;
            for (ir::BasicBlock *pred : cfg.predecessors(block)) {
                if (!idoms.count(pred))
                    continue; // unprocessed this round
                new_idom = new_idom ? intersect(new_idom, pred) : pred;
            }
            if (new_idom && idoms[block] != new_idom) {
                idoms[block] = new_idom;
                changed = true;
            }
        }
    }

    // Normalize the entry: no immediate dominator.
    idoms[entry] = nullptr;
    (void)function;
}

bool
DominatorTree::dominates(const ir::BasicBlock *a,
                         const ir::BasicBlock *b) const
{
    const ir::BasicBlock *cursor = b;
    while (cursor) {
        if (cursor == a)
            return true;
        auto it = idoms.find(cursor);
        cursor = (it == idoms.end()) ? nullptr : it->second;
    }
    return false;
}

} // namespace tfm
