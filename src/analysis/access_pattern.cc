#include "access_pattern.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "induction_variable.hh"
#include "loop_info.hh"

namespace tfm
{

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Module;
using ir::Opcode;
using ir::Value;

const char *
accessVerdictName(AccessVerdict verdict)
{
    switch (verdict) {
      case AccessVerdict::Dense:
        return "dense";
      case AccessVerdict::Sparse:
        return "sparse";
      case AccessVerdict::Mixed:
        return "mixed";
      case AccessVerdict::Unknown:
        return "unknown";
    }
    return "unknown";
}

unsigned
SiteAccessSummary::denseCount() const
{
    unsigned dense = 0;
    for (const StrideEvidence &ev : strides) {
        const std::int64_t mag =
            ev.strideBytes < 0 ? -ev.strideBytes : ev.strideBytes;
        if (mag <= AccessPatternAnalysis::denseStrideThresholdBytes)
            dense++;
    }
    return dense;
}

unsigned
SiteAccessSummary::sparseCount() const
{
    unsigned sparse = irregularAccesses +
                      static_cast<unsigned>(chases.size());
    for (const StrideEvidence &ev : strides) {
        const std::int64_t mag =
            ev.strideBytes < 0 ? -ev.strideBytes : ev.strideBytes;
        if (mag > AccessPatternAnalysis::denseStrideThresholdBytes)
            sparse++;
    }
    return sparse;
}

double
SiteAccessSummary::denseFraction() const
{
    const unsigned classified = denseCount() + sparseCount();
    return classified == 0
               ? 0.0
               : static_cast<double>(denseCount()) /
                     static_cast<double>(classified);
}

double
SiteAccessSummary::chaseScore() const
{
    const unsigned classified = denseCount() + sparseCount();
    return classified == 0
               ? 0.0
               : static_cast<double>(chases.size()) /
                     static_cast<double>(classified);
}

AccessVerdict
SiteAccessSummary::verdict() const
{
    const unsigned dense = denseCount();
    const unsigned sparse = sparseCount();
    if (dense + sparse == 0)
        return AccessVerdict::Unknown;
    const double frac = denseFraction();
    if (chases.empty() && frac >= 0.75)
        return AccessVerdict::Dense;
    if (frac <= 0.25)
        return AccessVerdict::Sparse;
    return AccessVerdict::Mixed;
}

namespace
{

/// Derivation-chain load depth saturates here (recursion guard).
constexpr unsigned maxLoadDepth = 8;

bool
isAllocationName(const std::string &callee)
{
    // Must match the ordinal walks in enableProfiling and the
    // hot-alloc pruning / path-arbiter passes.
    return callee == "malloc" || callee == "calloc" ||
           callee == "tfm_malloc" || callee == "tfm_calloc" ||
           callee == "pg_malloc" || callee == "pg_calloc";
}

bool
isNonEscapingIntrinsic(const std::string &callee)
{
    // Runtime entry points consume their pointer argument without
    // stashing it anywhere the program can reload it from. realloc is
    // deliberately NOT here: it ends the allocation's lifetime and
    // hands back a different (possibly different-plane) pointer, so
    // reallocated sites must stay out of the arbiter's reach.
    return callee == "tfm_free" || callee == "pg_free" ||
           callee == "free" || callee == "tfm_evacuate_all" ||
           callee == "tfm_runtime_init" || callee == "print_i64" ||
           callee == "host_malloc" || callee == "host_calloc" ||
           isAllocationName(callee);
}

/// Root of a pointer derivation: a concrete allocation site (by
/// module ordinal) or a formal parameter of the analyzed function.
struct RootId
{
    bool isParam = false;
    std::uint32_t id = 0; ///< ordinal or argument index

    bool
    operator<(const RootId &other) const
    {
        if (isParam != other.isParam)
            return isParam < other.isParam;
        return id < other.id;
    }
};

/** What one SSA value may point at. */
struct Deriv
{
    std::set<RootId> roots;
    /// Load hops between the roots and this value (0 = the pointer
    /// itself; >= 1 = loaded out of root memory — chase territory).
    unsigned loadDepth = 0;
};

/** Access evidence attributed to one formal parameter of a function
 *  (the interprocedural call summary, guard-safety-checker style). */
struct ParamSummary
{
    std::vector<StrideEvidence> strides;
    std::vector<ChaseEvidence> chases;
    unsigned irregular = 0;
    unsigned straightLine = 0;
    bool escapes = false;
    std::string escapeReason;
    bool aliasesOther = false;
};

struct FunctionSummary
{
    std::vector<ParamSummary> params;
    /// Parameters the return value may be derived from.
    std::set<std::uint32_t> returnParams;
    /// Concrete allocation ordinals the return value may carry
    /// (factory functions).
    std::set<std::uint32_t> returnSites;
    unsigned returnLoadDepth = 0;

    /// Dedup keys of every evidence record already merged, so the
    /// fixpoint's monotone growth terminates.
    std::set<std::string> evidenceKeys;
};

std::string
strideKey(const StrideEvidence &ev)
{
    std::ostringstream key;
    key << "s:" << ev.function << ':' << ev.line << ':' << ev.col << ':'
        << ev.strideBytes << ':' << ev.outerStrideBytes << ':'
        << ev.elementBytes << ':' << ev.isWrite << ':' << ev.viaCallee;
    return key.str();
}

std::string
chaseKey(const ChaseEvidence &ev)
{
    std::ostringstream key;
    key << "c:" << ev.function << ':' << ev.line << ':' << ev.col << ':'
        << ev.derivationDepth << ':' << ev.viaCallee;
    return key.str();
}

/** Loop nest context of one function. */
struct LoopNest
{
    std::unique_ptr<Cfg> cfg;
    std::unique_ptr<DominatorTree> dom;
    std::unique_ptr<LoopInfo> loopInfo;
    /// One IV analysis per loop, same index as loopInfo->loops().
    std::vector<std::unique_ptr<InductionVariables>> ivs;
    /// Basic-IV phi -> (owning loop, iv record).
    std::map<const Instruction *, std::pair<const Loop *, const BasicIv *>>
        ivByPhi;

    explicit LoopNest(const Function &function)
    {
        cfg = std::make_unique<Cfg>(function);
        dom = std::make_unique<DominatorTree>(function, *cfg);
        loopInfo = std::make_unique<LoopInfo>(function, *cfg, *dom);
        for (const auto &loop : loopInfo->loops()) {
            ivs.push_back(std::make_unique<InductionVariables>(
                *loop, function));
            for (const BasicIv &iv : ivs.back()->basicIvs())
                ivByPhi[iv.phi] = {loop.get(), &iv};
        }
    }

    const InductionVariables *
    ivsOf(const Loop *loop) const
    {
        const auto &loops = loopInfo->loops();
        for (std::size_t i = 0; i < loops.size(); i++) {
            if (loops[i].get() == loop)
                return ivs[i].get();
        }
        return nullptr;
    }

    /** Enclosing loops of @p block, innermost first. */
    std::vector<const Loop *>
    enclosingLoops(const BasicBlock *block) const
    {
        std::vector<const Loop *> chain;
        for (const auto &loop : loopInfo->loops()) {
            if (loop->contains(block))
                chain.push_back(loop.get());
        }
        std::sort(chain.begin(), chain.end(),
                  [](const Loop *a, const Loop *b) {
                      return a->depth > b->depth;
                  });
        return chain;
    }
};

/**
 * Linearize @p value over the basic IVs of the loop nest enclosing the
 * access: value = sum(coeff[phi] * phi) + invariant. Returns false
 * when the expression is not affine in those IVs.
 */
bool
linearize(const Value *value, std::int64_t mult, const LoopNest &nest,
          const Loop *outermost, const InductionVariables *outerIvs,
          const BasicBlock *accessBlock,
          std::map<const Instruction *, std::int64_t> &coeffs,
          unsigned depth)
{
    if (depth > 64)
        return false;
    if (value->isConstant())
        return true;
    auto ivIt = nest.ivByPhi.find(
        static_cast<const Instruction *>(value));
    if (value->isInstruction() && ivIt != nest.ivByPhi.end() &&
        ivIt->second.first->contains(accessBlock)) {
        coeffs[ivIt->first] += mult;
        return true;
    }
    // Anything invariant in the outermost enclosing loop contributes
    // only to the (ignored) base term.
    if (outerIvs->isLoopInvariant(value))
        return true;
    if (!value->isInstruction())
        return false;
    const auto *inst = static_cast<const Instruction *>(value);
    switch (inst->op()) {
      case Opcode::Add:
        return linearize(inst->operand(0), mult, nest, outermost,
                         outerIvs, accessBlock, coeffs, depth + 1) &&
               linearize(inst->operand(1), mult, nest, outermost,
                         outerIvs, accessBlock, coeffs, depth + 1);
      case Opcode::Sub:
        return linearize(inst->operand(0), mult, nest, outermost,
                         outerIvs, accessBlock, coeffs, depth + 1) &&
               linearize(inst->operand(1), -mult, nest, outermost,
                         outerIvs, accessBlock, coeffs, depth + 1);
      case Opcode::Mul:
        if (inst->operand(1)->isConstant()) {
            const std::int64_t c =
                static_cast<const ir::Constant *>(inst->operand(1))
                    ->intValue();
            return linearize(inst->operand(0), mult * c, nest,
                             outermost, outerIvs, accessBlock, coeffs,
                             depth + 1);
        }
        if (inst->operand(0)->isConstant()) {
            const std::int64_t c =
                static_cast<const ir::Constant *>(inst->operand(0))
                    ->intValue();
            return linearize(inst->operand(1), mult * c, nest,
                             outermost, outerIvs, accessBlock, coeffs,
                             depth + 1);
        }
        return false;
      case Opcode::Shl:
        if (inst->operand(1)->isConstant()) {
            const std::int64_t c =
                static_cast<const ir::Constant *>(inst->operand(1))
                    ->intValue();
            if (c < 0 || c > 32)
                return false;
            return linearize(inst->operand(0), mult << c, nest,
                             outermost, outerIvs, accessBlock, coeffs,
                             depth + 1);
        }
        return false;
      case Opcode::Gep:
        // result = op0 + op1 * imm
        return linearize(inst->operand(0), mult, nest, outermost,
                         outerIvs, accessBlock, coeffs, depth + 1) &&
               linearize(inst->operand(1), mult * inst->imm, nest,
                         outermost, outerIvs, accessBlock, coeffs,
                         depth + 1);
      case Opcode::Zext:
      case Opcode::Trunc:
      case Opcode::PtrToInt:
      case Opcode::IntToPtr:
        return linearize(inst->operand(0), mult, nest, outermost,
                         outerIvs, accessBlock, coeffs, depth + 1);
      case Opcode::Guard:
        return linearize(inst->operand(0), mult, nest, outermost,
                         outerIvs, accessBlock, coeffs, depth + 1);
      case Opcode::GuardReval:
      case Opcode::ChunkAccess:
        return linearize(inst->operand(1), mult, nest, outermost,
                         outerIvs, accessBlock, coeffs, depth + 1);
      default:
        return false;
    }
}

/** Per-iteration byte stride of @p loop given linearized coeffs. */
std::int64_t
strideForLoop(const Loop *loop, const LoopNest &nest,
              const std::map<const Instruction *, std::int64_t> &coeffs)
{
    std::int64_t stride = 0;
    for (const auto &[phi, coeff] : coeffs) {
        auto it = nest.ivByPhi.find(phi);
        if (it != nest.ivByPhi.end() && it->second.first == loop)
            stride += coeff * it->second.second->step;
    }
    return stride;
}

/** The whole-module analysis state. */
class Analyzer
{
  public:
    explicit Analyzer(const Module &module) : mod(module)
    {
        // Assign stable ordinals (same walk as the profiler).
        std::uint32_t ordinal = 0;
        for (const auto &function : mod.allFunctions()) {
            for (const auto &block : function->basicBlocks()) {
                for (const auto &inst : block->instructions()) {
                    if (inst->op() == Opcode::Call &&
                        isAllocationName(inst->callee)) {
                        allocOrdinals[inst.get()] = ordinal;
                        SiteAccessSummary site;
                        site.ordinal = ordinal;
                        site.function = function->name();
                        site.callee = inst->callee;
                        site.line = inst->debugLine;
                        site.col = inst->debugCol;
                        siteByOrdinal[ordinal] = site;
                        ordinal++;
                    }
                }
            }
        }
        for (const auto &function : mod.allFunctions()) {
            for (const auto &block : function->basicBlocks()) {
                for (const auto &inst : block->instructions()) {
                    if (inst->op() == Opcode::Call &&
                        mod.findFunction(inst->callee)) {
                        calledNames.insert(inst->callee);
                    }
                }
            }
        }
    }

    std::vector<SiteAccessSummary>
    run()
    {
        // Interprocedural fixpoint over call summaries: evidence only
        // accumulates (deduped by key), so this terminates.
        bool changed = true;
        unsigned guard = 0;
        while (changed && guard++ < 64) {
            changed = false;
            for (const auto &function : mod.allFunctions())
                changed |= analyzeFunction(*function, false);
        }
        // Final pass with converged summaries attributes evidence to
        // concrete allocation sites.
        for (const auto &function : mod.allFunctions())
            analyzeFunction(*function, true);

        std::vector<SiteAccessSummary> result;
        result.reserve(siteByOrdinal.size());
        for (auto &[ordinal, site] : siteByOrdinal) {
            (void)ordinal;
            result.push_back(std::move(site));
        }
        return result;
    }

  private:
    const Module &mod;
    std::map<const Instruction *, std::uint32_t> allocOrdinals;
    std::map<std::uint32_t, SiteAccessSummary> siteByOrdinal;
    std::map<const Function *, FunctionSummary> summaries;
    std::set<std::string> calledNames;
    std::set<std::string> siteEvidenceKeys;

    bool
    isUncalled(const Function &function) const
    {
        return calledNames.count(function.name()) == 0;
    }

    /** Merge one derivation into another; true when it grew. */
    static bool
    mergeDeriv(Deriv &into, const Deriv &from)
    {
        bool grew = false;
        for (const RootId &root : from.roots)
            grew |= into.roots.insert(root).second;
        if (from.loadDepth > into.loadDepth) {
            into.loadDepth = from.loadDepth;
            grew = true;
        }
        return grew;
    }

    FunctionSummary &
    summaryOf(const Function &function)
    {
        FunctionSummary &summary = summaries[&function];
        if (summary.params.size() < function.arguments().size())
            summary.params.resize(function.arguments().size());
        return summary;
    }

    /**
     * Analyze one function against the current callee summaries.
     * Returns true when this function's own summary grew. When
     * @p collectSites is set, evidence rooted at concrete allocation
     * ordinals is merged into the global site table.
     */
    bool analyzeFunction(const Function &function, bool collectSites);

    /** Attribute evidence at @p root. Returns true on summary growth. */
    template <typename Evidence>
    bool
    attribute(const Function &function, const RootId &root,
              const Evidence &ev, bool collectSites,
              std::vector<Evidence> ParamSummary::*paramList,
              std::vector<Evidence> SiteAccessSummary::*siteList,
              const std::string &key)
    {
        if (root.isParam) {
            FunctionSummary &summary = summaryOf(function);
            if (root.id >= summary.params.size())
                return false;
            std::ostringstream paramKey;
            paramKey << 'p' << root.id << '|' << key;
            if (!summary.evidenceKeys.insert(paramKey.str()).second)
                return false;
            (summary.params[root.id].*paramList).push_back(ev);
            return true;
        }
        if (collectSites) {
            auto it = siteByOrdinal.find(root.id);
            if (it == siteByOrdinal.end())
                return false;
            std::ostringstream siteKey;
            siteKey << root.id << '|' << key;
            if (siteEvidenceKeys.insert(siteKey.str()).second)
                (it->second.*siteList).push_back(ev);
        }
        return false;
    }

    bool
    markEscape(const Function &function, const RootId &root,
               const std::string &reason, bool collectSites)
    {
        if (root.isParam) {
            FunctionSummary &summary = summaryOf(function);
            if (root.id >= summary.params.size())
                return false;
            ParamSummary &param = summary.params[root.id];
            if (param.escapes)
                return false;
            param.escapes = true;
            param.escapeReason = reason;
            return true;
        }
        if (collectSites) {
            auto it = siteByOrdinal.find(root.id);
            if (it != siteByOrdinal.end() && !it->second.escapes) {
                it->second.escapes = true;
                it->second.escapeReason = reason;
            }
        }
        return false;
    }

    bool
    markAliases(const Function &function, const RootId &root,
                bool collectSites)
    {
        if (root.isParam) {
            FunctionSummary &summary = summaryOf(function);
            if (root.id >= summary.params.size())
                return false;
            ParamSummary &param = summary.params[root.id];
            if (param.aliasesOther)
                return false;
            param.aliasesOther = true;
            return true;
        }
        if (collectSites) {
            auto it = siteByOrdinal.find(root.id);
            if (it != siteByOrdinal.end())
                it->second.aliasesOther = true;
        }
        return false;
    }

};

bool
Analyzer::analyzeFunction(const Function &function, bool collectSites)
{
    bool summaryGrew = false;
    LoopNest nest(function);

    // --- Derivation dataflow (which roots can each value carry) ---
    std::map<const Value *, Deriv> derivs;
    for (const auto &arg : function.arguments()) {
        if (arg->type() != ir::Type::Ptr && arg->type() != ir::Type::I64)
            continue;
        Deriv d;
        d.roots.insert(RootId{true, arg->index()});
        derivs[arg.get()] = d;
    }
    summaryOf(function); // make sure params are sized

    auto derivOf = [&](const Value *value) -> Deriv {
        auto it = derivs.find(value);
        return it == derivs.end() ? Deriv{} : it->second;
    };

    bool changed = true;
    unsigned rounds = 0;
    while (changed && rounds++ < 64) {
        changed = false;
        for (const auto &block : function.basicBlocks()) {
            for (const auto &inst : block->instructions()) {
                Deriv fresh;
                bool tracked = false;
                switch (inst->op()) {
                  case Opcode::Call: {
                    auto ord = allocOrdinals.find(inst.get());
                    if (ord != allocOrdinals.end()) {
                        fresh.roots.insert(RootId{false, ord->second});
                        tracked = true;
                        break;
                    }
                    const Function *target =
                        mod.findFunction(inst->callee);
                    if (target) {
                        auto sumIt = summaries.find(target);
                        if (sumIt == summaries.end())
                            break;
                        const FunctionSummary &sum = sumIt->second;
                        for (std::uint32_t p : sum.returnParams) {
                            if (p < inst->numOperands()) {
                                Deriv argDeriv =
                                    derivOf(inst->operand(p));
                                argDeriv.loadDepth = std::min(
                                    maxLoadDepth,
                                    argDeriv.loadDepth +
                                        sum.returnLoadDepth);
                                mergeDeriv(fresh, argDeriv);
                            }
                        }
                        for (std::uint32_t site : sum.returnSites)
                            fresh.roots.insert(RootId{false, site});
                        if (!sum.returnSites.empty()) {
                            fresh.loadDepth = std::max(
                                fresh.loadDepth, sum.returnLoadDepth);
                        }
                        tracked = !fresh.roots.empty();
                    }
                    break;
                  }
                  case Opcode::Gep:
                  case Opcode::PtrToInt:
                  case Opcode::IntToPtr:
                  case Opcode::Zext:
                  case Opcode::Trunc:
                  case Opcode::Guard:
                    fresh = derivOf(inst->operand(0));
                    tracked = !fresh.roots.empty();
                    break;
                  case Opcode::GuardReval:
                  case Opcode::ChunkAccess:
                    fresh = derivOf(inst->operand(1));
                    tracked = !fresh.roots.empty();
                    break;
                  case Opcode::Add:
                  case Opcode::Sub:
                    // Pointer arithmetic: propagate from whichever
                    // side carries roots (both sides for symmetry).
                    mergeDeriv(fresh, derivOf(inst->operand(0)));
                    mergeDeriv(fresh, derivOf(inst->operand(1)));
                    tracked = !fresh.roots.empty();
                    break;
                  case Opcode::Phi:
                    for (const auto &[incoming, pred] :
                         inst->incoming()) {
                        (void)pred;
                        mergeDeriv(fresh, derivOf(incoming));
                    }
                    tracked = !fresh.roots.empty();
                    break;
                  case Opcode::Load: {
                    // A pointer loaded out of tracked memory stays
                    // attributed to the same roots, one chase hop
                    // deeper.
                    Deriv addr = derivOf(inst->operand(0));
                    if (!addr.roots.empty()) {
                        fresh.roots = addr.roots;
                        fresh.loadDepth =
                            std::min(maxLoadDepth, addr.loadDepth + 1);
                        tracked = true;
                    }
                    break;
                  }
                  default:
                    break;
                }
                if (!tracked)
                    continue;
                Deriv &slot = derivs[inst.get()];
                if (mergeDeriv(slot, fresh))
                    changed = true;
            }
        }
    }

    // --- Evidence collection ---
    auto recordAccessEvidence = [&](const Instruction &memOp,
                                    const Value *addr, bool isWrite,
                                    std::uint32_t elementBytes) {
        const Deriv d = derivOf(addr);
        if (d.roots.empty())
            return;
        if (d.roots.size() >= 2) {
            for (const RootId &root : d.roots)
                summaryGrew |= markAliases(function, root, collectSites);
        }
        const BasicBlock *block = memOp.parent();
        const std::vector<const Loop *> loops =
            nest.enclosingLoops(block);

        if (d.loadDepth >= 1) {
            ChaseEvidence ev;
            ev.function = function.name();
            ev.line = memOp.debugLine;
            ev.col = memOp.debugCol;
            ev.derivationDepth = d.loadDepth;
            const std::string key = chaseKey(ev);
            for (const RootId &root : d.roots) {
                summaryGrew |= attribute(
                    function, root, ev, collectSites,
                    &ParamSummary::chases, &SiteAccessSummary::chases,
                    key);
            }
            return;
        }

        if (loops.empty()) {
            // Straight-line access: unclassified, tallied per site.
            if (collectSites) {
                for (const RootId &root : d.roots) {
                    if (!root.isParam) {
                        auto it = siteByOrdinal.find(root.id);
                        if (it != siteByOrdinal.end())
                            it->second.straightLineAccesses++;
                    }
                }
            }
            return;
        }

        const Loop *innermost = loops.front();
        const Loop *outermost = loops.back();
        const InductionVariables *outerIvs = nest.ivsOf(outermost);
        std::map<const Instruction *, std::int64_t> coeffs;
        const bool affine =
            outerIvs && linearize(addr, 1, nest, outermost, outerIvs,
                                  block, coeffs, 0);
        if (!affine) {
            // In-loop but not affine in any enclosing IV: irregular.
            if (collectSites) {
                for (const RootId &root : d.roots) {
                    if (!root.isParam) {
                        auto it = siteByOrdinal.find(root.id);
                        if (it != siteByOrdinal.end())
                            it->second.irregularAccesses++;
                    }
                }
            }
            return;
        }

        StrideEvidence ev;
        ev.function = function.name();
        ev.line = memOp.debugLine;
        ev.col = memOp.debugCol;
        ev.strideBytes = strideForLoop(innermost, nest, coeffs);
        ev.outerStrideBytes =
            loops.size() >= 2 ? strideForLoop(loops[1], nest, coeffs)
                              : 0;
        ev.elementBytes = elementBytes;
        ev.loopDepth = innermost->depth;
        const std::int64_t innerMag =
            ev.strideBytes < 0 ? -ev.strideBytes : ev.strideBytes;
        const std::int64_t outerMag = ev.outerStrideBytes < 0
                                          ? -ev.outerStrideBytes
                                          : ev.outerStrideBytes;
        ev.rowMajor = outerMag == 0 || innerMag <= outerMag;
        ev.isWrite = isWrite;
        const std::string key = strideKey(ev);
        for (const RootId &root : d.roots) {
            summaryGrew |= attribute(
                function, root, ev, collectSites,
                &ParamSummary::strides, &SiteAccessSummary::strides,
                key);
        }
    };

    for (const auto &block : function.basicBlocks()) {
        for (const auto &inst : block->instructions()) {
            switch (inst->op()) {
              case Opcode::Load:
                recordAccessEvidence(*inst, inst->operand(0), false,
                                     ir::sizeOf(inst->type()));
                break;
              case Opcode::Store: {
                recordAccessEvidence(
                    *inst, inst->operand(1), true,
                    ir::sizeOf(inst->operand(0)->type()));
                // Storing a tracked pointer somewhere: into tracked
                // site memory it is a linked-structure build (the
                // reloads already register as chases); into untracked
                // or caller-owned (parameter) memory the derivation
                // web loses it — escape. Only depth-0 derivations
                // carry the site's pointer identity; a loadDepth >= 1
                // value is data read out of the site.
                const Deriv stored = derivOf(inst->operand(0));
                if (!stored.roots.empty() && stored.loadDepth == 0) {
                    const Deriv dest = derivOf(inst->operand(1));
                    bool destIsCallerMemory = false;
                    for (const RootId &root : dest.roots)
                        destIsCallerMemory |= root.isParam;
                    if (dest.roots.empty() || destIsCallerMemory) {
                        const char *reason =
                            dest.roots.empty()
                                ? "stored to untracked memory"
                                : "stored through caller memory";
                        for (const RootId &root : stored.roots) {
                            summaryGrew |= markEscape(
                                function, root, reason, collectSites);
                        }
                    }
                }
                break;
              }
              case Opcode::Call: {
                if (allocOrdinals.count(inst.get()) ||
                    isNonEscapingIntrinsic(inst->callee)) {
                    break;
                }
                const Function *target = mod.findFunction(inst->callee);
                for (std::size_t i = 0; i < inst->numOperands(); i++) {
                    const Deriv arg = derivOf(inst->operand(i));
                    if (arg.roots.empty())
                        continue;
                    if (!target) {
                        // As in the Store case: only a depth-0 value
                        // hands the callee the site pointer itself.
                        if (arg.loadDepth == 0) {
                            for (const RootId &root : arg.roots) {
                                summaryGrew |= markEscape(
                                    function, root,
                                    "passed to unknown callee " +
                                        inst->callee,
                                    collectSites);
                            }
                        }
                        continue;
                    }
                    // Known callee: translate its parameter summary
                    // into evidence on the caller's roots.
                    auto sumIt = summaries.find(target);
                    if (sumIt == summaries.end())
                        continue;
                    const FunctionSummary &sum = sumIt->second;
                    if (i >= sum.params.size())
                        continue;
                    const ParamSummary &param = sum.params[i];
                    for (StrideEvidence ev : param.strides) {
                        if (ev.viaCallee.empty())
                            ev.viaCallee = inst->callee;
                        const std::string key = strideKey(ev);
                        for (const RootId &root : arg.roots) {
                            summaryGrew |= attribute(
                                function, root, ev, collectSites,
                                &ParamSummary::strides,
                                &SiteAccessSummary::strides, key);
                        }
                    }
                    for (ChaseEvidence ev : param.chases) {
                        if (ev.viaCallee.empty())
                            ev.viaCallee = inst->callee;
                        // Chase depth observed on the callee's
                        // parameter compounds with the hops the
                        // argument already carries.
                        ev.derivationDepth =
                            std::min(maxLoadDepth,
                                     ev.derivationDepth + arg.loadDepth);
                        const std::string key = chaseKey(ev);
                        for (const RootId &root : arg.roots) {
                            summaryGrew |= attribute(
                                function, root, ev, collectSites,
                                &ParamSummary::chases,
                                &SiteAccessSummary::chases, key);
                        }
                    }
                    if (param.escapes && arg.loadDepth == 0) {
                        for (const RootId &root : arg.roots) {
                            summaryGrew |= markEscape(
                                function, root,
                                "escapes in callee " + inst->callee +
                                    " (" + param.escapeReason + ")",
                                collectSites);
                        }
                    }
                    if (param.aliasesOther) {
                        for (const RootId &root : arg.roots) {
                            summaryGrew |=
                                markAliases(function, root,
                                            collectSites);
                        }
                    }
                }
                break;
              }
              case Opcode::Ret: {
                if (inst->numOperands() == 0)
                    break;
                const Deriv ret = derivOf(inst->operand(0));
                if (ret.roots.empty())
                    break;
                FunctionSummary &summary = summaryOf(function);
                for (const RootId &root : ret.roots) {
                    if (root.isParam) {
                        summaryGrew |=
                            summary.returnParams.insert(root.id).second;
                    } else {
                        summaryGrew |=
                            summary.returnSites.insert(root.id).second;
                    }
                }
                if (ret.loadDepth > summary.returnLoadDepth) {
                    summary.returnLoadDepth = ret.loadDepth;
                    summaryGrew = true;
                }
                // A function nobody in the module calls hands the
                // pointer to the outside world — but only a depth-0
                // return carries a site pointer; returning loaded
                // data (a sum, a field value) does not.
                if (isUncalled(function) && ret.loadDepth == 0) {
                    for (const RootId &root : ret.roots) {
                        summaryGrew |= markEscape(
                            function, root, "returned to environment",
                            collectSites);
                    }
                }
                break;
              }
              default:
                break;
            }
        }
    }

    return summaryGrew;
}

} // namespace

AccessPatternAnalysis::AccessPatternAnalysis(const ir::Module &module)
{
    Analyzer analyzer(module);
    _sites = analyzer.run();
}

const SiteAccessSummary *
AccessPatternAnalysis::findByOrdinal(std::uint32_t ordinal) const
{
    for (const SiteAccessSummary &site : _sites) {
        if (site.ordinal == ordinal)
            return &site;
    }
    return nullptr;
}

std::string
AccessPatternAnalysis::report() const
{
    std::ostringstream out;
    out << "access-report v1\n";
    for (const SiteAccessSummary &site : _sites) {
        out << "site " << site.ordinal << " @" << site.function
            << " callee " << site.callee << " line " << site.line
            << " verdict " << accessVerdictName(site.verdict())
            << " dense " << site.denseCount() << " sparse "
            << site.sparseCount() << " chase-score ";
        out.precision(2);
        out << std::fixed << site.chaseScore() << " escapes "
            << (site.escapes ? 1 : 0) << " aliases "
            << (site.aliasesOther ? 1 : 0);
        if (site.escapes)
            out << " escape-reason \"" << site.escapeReason << '"';
        out << '\n';
        for (const StrideEvidence &ev : site.strides) {
            out << "  stride @" << ev.function << ':' << ev.line << ':'
                << ev.col << " bytes " << ev.strideBytes << " outer "
                << ev.outerStrideBytes << " elem " << ev.elementBytes
                << " depth " << ev.loopDepth << " row-major "
                << (ev.rowMajor ? 1 : 0) << " write "
                << (ev.isWrite ? 1 : 0);
            if (!ev.viaCallee.empty())
                out << " via " << ev.viaCallee;
            out << '\n';
        }
        for (const ChaseEvidence &ev : site.chases) {
            out << "  chase @" << ev.function << ':' << ev.line << ':'
                << ev.col << " depth " << ev.derivationDepth;
            if (!ev.viaCallee.empty())
                out << " via " << ev.viaCallee;
            out << '\n';
        }
        if (site.irregularAccesses) {
            out << "  irregular " << site.irregularAccesses << '\n';
        }
        if (site.straightLineAccesses) {
            out << "  straight-line " << site.straightLineAccesses
                << '\n';
        }
    }
    return out.str();
}

} // namespace tfm
