/**
 * @file
 * Interprocedural static access-pattern analysis for the hybrid
 * guard/paging data plane (DESIGN.md §4l).
 *
 * For every allocation site (the k-th allocation call in the module,
 * the same stable ordinal the PGO profile uses) this analysis derives:
 *
 *  - an affine-stride summary per enclosing loop, reusing the
 *    loop_info / induction_variable analyses: the address expression
 *    of each access reached by the site's pointers is linearized over
 *    the basic IVs of the enclosing loop nest, yielding a constant
 *    per-iteration byte stride per loop level (non-unit and negative
 *    strides included) and a row/column-major witness for nested
 *    loops;
 *  - a pointer-chase score from heap-provenance-style derivation
 *    chains: accesses whose address was itself loaded out of the
 *    site's memory (depth >= 1 through Load) are linked-structure
 *    traversals, the guard plane's home turf;
 *  - an escape/aliasing summary with per-function call summaries (the
 *    same shape as the guard-safety checker's interprocedural
 *    fixpoint): pointer parameters carry the access evidence their
 *    callees produce, returns propagate derivations back to callers,
 *    and anything reaching an unknown callee or untracked memory is a
 *    conservative escape.
 *
 * The per-site verdict {Dense, Sparse, Mixed, Unknown} plus the raw
 * evidence feeds the PathArbiterPass, which routes Dense sites to the
 * paged plane (bit-61 pointers resolved by the memory choke point)
 * and Sparse/chase sites to the guard plane; Mixed/Unknown fall back
 * to the PGO tie-break when a profile is supplied.
 */

#ifndef TRACKFM_ANALYSIS_ACCESS_PATTERN_HH
#define TRACKFM_ANALYSIS_ACCESS_PATTERN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.hh"

namespace tfm
{

/** Static classification of one allocation site's access behaviour. */
enum class AccessVerdict : std::uint8_t
{
    Dense,   ///< affine small-stride loop accesses dominate
    Sparse,  ///< pointer chases / large strides / irregular dominate
    Mixed,   ///< both kinds of evidence present in force
    Unknown  ///< no classifiable accesses observed statically
};

/** Stable lowercase name for reports. */
const char *accessVerdictName(AccessVerdict verdict);

/** One affine access classified against its enclosing loop nest. */
struct StrideEvidence
{
    std::string function; ///< function containing the access
    int line = 0;         ///< 1-based source line of the mem op
    int col = 0;
    /// Per-iteration byte delta in the innermost enclosing loop
    /// (0 = loop-invariant address, also dense-friendly).
    std::int64_t strideBytes = 0;
    /// Per-iteration byte delta of the next-outer loop level when the
    /// address is affine there too (0 when absent or invariant).
    std::int64_t outerStrideBytes = 0;
    std::uint32_t elementBytes = 0; ///< access granularity
    unsigned loopDepth = 1;         ///< nesting depth of the access
    /// Innermost stride is the smallest of the nest (cache-friendly
    /// iteration order); trivially true for single loops.
    bool rowMajor = true;
    bool isWrite = false;
    /// Nonempty when the evidence was imported from a callee through
    /// a call summary rather than observed in the caller itself.
    std::string viaCallee;
};

/** One pointer-chase access (address loaded from site memory). */
struct ChaseEvidence
{
    std::string function;
    int line = 0;
    int col = 0;
    /// Number of Load hops between the allocation and the address
    /// (1 = classic next-pointer chase; saturates at 8).
    unsigned derivationDepth = 1;
    std::string viaCallee; ///< as in StrideEvidence
};

/** Everything the analysis derived for one allocation site. */
struct SiteAccessSummary
{
    std::uint32_t ordinal = 0; ///< stable module allocation ordinal
    std::string function;      ///< function containing the allocation
    std::string callee;        ///< allocation flavour (tfm_malloc, ...)
    int line = 0;              ///< source position of the allocation
    int col = 0;

    std::vector<StrideEvidence> strides;
    std::vector<ChaseEvidence> chases;
    /// In-loop accesses whose address is not affine in any enclosing
    /// IV and was not loaded from tracked memory.
    unsigned irregularAccesses = 0;
    /// Accesses outside any loop (unclassified; do not vote).
    unsigned straightLineAccesses = 0;

    bool escapes = false;      ///< left the tracked derivation web
    std::string escapeReason;  ///< first reason observed
    /// Some pointer value merged this site with a different site
    /// (phi/select-style aliasing): per-site plane decisions would
    /// disagree on the merged value.
    bool aliasesOther = false;

    /** Dense accesses: |stride| <= threshold (64B), stride 0 included. */
    unsigned denseCount() const;
    /** Sparse accesses: chases + large strides + irregular. */
    unsigned sparseCount() const;
    /** denseCount / (denseCount + sparseCount); 0 when unclassified. */
    double denseFraction() const;
    /** chases / (denseCount + sparseCount); 0 when unclassified. */
    double chaseScore() const;

    AccessVerdict verdict() const;
};

/**
 * Run the analysis over a whole module. Allocation ordinals follow the
 * same walk as the interpreter's profiler and the hot-alloc pruning
 * pass, so PGO profiles and access summaries key identically.
 */
class AccessPatternAnalysis
{
  public:
    /// Byte stride at or below which a loop access counts as dense
    /// (one cache line: unit and small non-unit strides).
    static constexpr std::int64_t denseStrideThresholdBytes = 64;

    explicit AccessPatternAnalysis(const ir::Module &module);

    const std::vector<SiteAccessSummary> &sites() const { return _sites; }
    const SiteAccessSummary *findByOrdinal(std::uint32_t ordinal) const;

    /**
     * Machine-readable evidence report: an `access-report v1` header,
     * one `site ...` line per allocation site, indented `stride` /
     * `chase` evidence lines beneath it.
     */
    std::string report() const;

  private:
    std::vector<SiteAccessSummary> _sites;
};

} // namespace tfm

#endif // TRACKFM_ANALYSIS_ACCESS_PATTERN_HH
