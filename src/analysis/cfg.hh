/**
 * @file
 * CFG utilities: predecessor maps and reverse post-order.
 */

#ifndef TRACKFM_ANALYSIS_CFG_HH
#define TRACKFM_ANALYSIS_CFG_HH

#include <map>
#include <vector>

#include "ir/function.hh"

namespace tfm
{

/** Predecessors and traversal orders for one function. */
class Cfg
{
  public:
    explicit Cfg(const ir::Function &function);

    const std::vector<ir::BasicBlock *> &
    predecessors(const ir::BasicBlock *block) const
    {
        static const std::vector<ir::BasicBlock *> none;
        auto it = preds.find(block);
        return it == preds.end() ? none : it->second;
    }

    /** Blocks in reverse post-order from the entry. */
    const std::vector<ir::BasicBlock *> &reversePostOrder() const
    {
        return rpo;
    }

    /** Position of a block in the RPO (for dominator computation). */
    int
    rpoIndex(const ir::BasicBlock *block) const
    {
        auto it = rpoIndexOf.find(block);
        return it == rpoIndexOf.end() ? -1 : it->second;
    }

    /** Is the block reachable from the entry? */
    bool
    reachable(const ir::BasicBlock *block) const
    {
        return rpoIndexOf.count(block) > 0;
    }

  private:
    std::map<const ir::BasicBlock *, std::vector<ir::BasicBlock *>> preds;
    std::vector<ir::BasicBlock *> rpo;
    std::map<const ir::BasicBlock *, int> rpoIndexOf;
};

} // namespace tfm

#endif // TRACKFM_ANALYSIS_CFG_HH
