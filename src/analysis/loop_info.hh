/**
 * @file
 * Natural-loop detection from back edges in the dominator tree.
 */

#ifndef TRACKFM_ANALYSIS_LOOP_INFO_HH
#define TRACKFM_ANALYSIS_LOOP_INFO_HH

#include <memory>
#include <set>
#include <vector>

#include "dominators.hh"

namespace tfm
{

/** One natural loop. */
struct Loop
{
    ir::BasicBlock *header = nullptr;
    /// The unique out-of-loop predecessor of the header, when it exists
    /// (pass transformations require it; our front end always has one).
    ir::BasicBlock *preheader = nullptr;
    /// Blocks in the loop (header included).
    std::set<ir::BasicBlock *> blocks;
    /// Sources of back edges to the header.
    std::vector<ir::BasicBlock *> latches;
    /// Nesting depth (1 = outermost).
    unsigned depth = 1;

    bool
    contains(const ir::BasicBlock *block) const
    {
        return blocks.count(const_cast<ir::BasicBlock *>(block)) > 0;
    }
};

/** All natural loops of one function. */
class LoopInfo
{
  public:
    LoopInfo(const ir::Function &function, const Cfg &cfg,
             const DominatorTree &dom);

    const std::vector<std::unique_ptr<Loop>> &loops() const
    {
        return _loops;
    }

    /** Innermost loop containing a block (nullptr if none). */
    Loop *innermostLoopFor(const ir::BasicBlock *block) const;

  private:
    std::vector<std::unique_ptr<Loop>> _loops;
};

} // namespace tfm

#endif // TRACKFM_ANALYSIS_LOOP_INFO_HH
