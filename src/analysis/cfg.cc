#include "cfg.hh"

#include <algorithm>
#include <set>

namespace tfm
{

Cfg::Cfg(const ir::Function &function)
{
    ir::BasicBlock *entry = function.entry();
    if (!entry)
        return;

    // Iterative DFS computing post-order.
    std::vector<ir::BasicBlock *> post;
    std::set<const ir::BasicBlock *> visited;
    struct Frame
    {
        ir::BasicBlock *block;
        std::vector<ir::BasicBlock *> succs;
        std::size_t next;
    };
    std::vector<Frame> stack;
    stack.push_back({entry, entry->successors(), 0});
    visited.insert(entry);
    while (!stack.empty()) {
        Frame &frame = stack.back();
        if (frame.next < frame.succs.size()) {
            ir::BasicBlock *succ = frame.succs[frame.next++];
            preds[succ].push_back(frame.block);
            if (!visited.count(succ)) {
                visited.insert(succ);
                stack.push_back({succ, succ->successors(), 0});
            }
        } else {
            post.push_back(frame.block);
            stack.pop_back();
        }
    }

    rpo.assign(post.rbegin(), post.rend());
    for (std::size_t i = 0; i < rpo.size(); i++)
        rpoIndexOf[rpo[i]] = static_cast<int>(i);

    // Deduplicate predecessor lists (multiple edges between two blocks).
    for (auto &[block, list] : preds) {
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
    }
}

} // namespace tfm
