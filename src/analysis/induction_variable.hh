/**
 * @file
 * Induction-variable analysis, NOELLE-style: IVs are detected as
 * patterns in the def-use (dependence) structure — a header phi whose
 * in-loop incoming value is the phi plus a loop-invariant step — rather
 * than by pattern-matching canonical `for` syntax. Derived IVs are GEPs
 * with a loop-invariant base indexed by a basic IV, which is what the
 * loop-chunking pass consumes (section 3.4).
 */

#ifndef TRACKFM_ANALYSIS_INDUCTION_VARIABLE_HH
#define TRACKFM_ANALYSIS_INDUCTION_VARIABLE_HH

#include <vector>

#include "loop_info.hh"

namespace tfm
{

/** A basic induction variable: phi = phi(init, phi + step). */
struct BasicIv
{
    ir::Instruction *phi = nullptr;
    ir::Value *init = nullptr;       ///< value from the preheader
    std::int64_t step = 0;           ///< constant per-iteration delta
    ir::Instruction *update = nullptr; ///< the add producing the next value
};

/**
 * A strided memory access derived from an IV:
 * gep(base, iv, stride) feeding a load or store.
 */
struct StridedAccess
{
    ir::Instruction *gep = nullptr;
    /// The guard feeding memOp when the guard pass ran first.
    ir::Instruction *guard = nullptr;
    ir::Instruction *memOp = nullptr; ///< the load or store
    ir::Value *base = nullptr;        ///< loop-invariant pointer
    const BasicIv *iv = nullptr;
    std::int64_t strideBytes = 0;     ///< gep stride * iv step
    std::uint32_t elementBytes = 0;   ///< access granularity
    bool isWrite = false;
};

/** IV and strided-access analysis for one loop. */
class InductionVariables
{
  public:
    InductionVariables(const Loop &loop, const ir::Function &function);

    const std::vector<BasicIv> &basicIvs() const { return ivs; }
    const std::vector<StridedAccess> &stridedAccesses() const
    {
        return accesses;
    }

    /** Is @p value invariant in the analyzed loop? */
    bool isLoopInvariant(const ir::Value *value) const;

  private:
    void findBasicIvs();
    void findStridedAccesses(const ir::Function &function);

    const Loop &loop;
    std::vector<BasicIv> ivs;
    std::vector<StridedAccess> accesses;
};

} // namespace tfm

#endif // TRACKFM_ANALYSIS_INDUCTION_VARIABLE_HH
