/**
 * @file
 * Guard-safety checker: an independent, flow-sensitive re-proof that
 * the IR leaving each pass still guards every far-memory access.
 *
 * The TrackFM passes insert guards and then aggressively remove them
 * (elimination, coalescing, hoisting with epoch revalidation) based on
 * dominance and barrier-freedom arguments. This analysis re-derives
 * those arguments from scratch on the transformed IR: every pointer
 * SSA value is classified by provenance (far / guarded-host / local
 * stack / unknown), guard translations are tracked through a
 * per-producer availability dataflow that lattice-joins at control-flow
 * merges and is invalidated at every barrier (call into the runtime,
 * guard, chunk op, prefetch), and any access the proof cannot cover
 * becomes a diagnostic. See DESIGN.md section 4g.
 */

#ifndef TRACKFM_ANALYSIS_GUARD_SAFETY_HH
#define TRACKFM_ANALYSIS_GUARD_SAFETY_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.hh"

namespace tfm
{

/** Violation classes reported by the guard-safety checker. */
enum class SafetyDiagKind : std::uint8_t
{
    /// Load/store through a maybe-far pointer with no guard covering
    /// every barrier-free path to the access.
    UnguardedFarAccess,
    /// Guarded host pointer dereferenced after a barrier without a
    /// guard.reval: the use-after-eviction class.
    StaleHostPointer,
    /// Store through a pointer whose only reaching guard took the
    /// read-only path (missing write flag).
    MissingWriteFlag,
    /// Guarded host pointer escaping through memory, a call argument,
    /// a return, or a phi; its lifetime can no longer be tracked.
    GuardedPtrEscape,
    /// guard.reval whose arming guard is absent, does not arm an
    /// epoch, or does not reach the revalidation on every path.
    RevalArmerUnsound,
    /// An operand's definition does not dominate its use (malformed
    /// SSA produced by a transformation).
    SsaDominance,
    /// Hybrid-emission legality (DESIGN.md §4l): a pointer value that
    /// may carry both guard-plane (bit-60) and paged-plane (bit-61)
    /// provenance reaches a memory access or guard — the per-plane
    /// emission decision cannot be correct for both.
    MixedPlane,
};

/** Stable kebab-case name for machine-readable output. */
const char *safetyDiagKindName(SafetyDiagKind kind);

/** One checker finding, locatable down to the instruction. */
struct SafetyDiagnostic
{
    SafetyDiagKind kind = SafetyDiagKind::UnguardedFarAccess;
    std::string function; ///< enclosing function name
    std::string block;    ///< enclosing basic-block label
    std::size_t instIndex = 0; ///< index of the instruction in its block
    int line = 0;         ///< 1-based source line (0 = unknown)
    int col = 0;          ///< 1-based source column (0 = unknown)
    std::string message;  ///< human-readable explanation
};

/**
 * One machine-readable line per diagnostic:
 * `[file:line:col: ]kind @function:block:#index: message`.
 */
std::string formatSafetyDiagnostic(const SafetyDiagnostic &diag,
                                   const std::string &file = std::string());

/**
 * Check every function of @p module. Returns an empty vector when the
 * module is guard-sound under the checker's model; call on the output
 * of the pointer-guards pass or anything later (earlier IR legitimately
 * contains unguarded heap accesses).
 */
std::vector<SafetyDiagnostic> checkGuardSafety(const ir::Module &module);

/**
 * The guard-family instruction (guard, guard.reval, chunk.access)
 * whose host translation @p value is derived from, walking geps,
 * int/ptr casts, and constant-offset arithmetic; nullptr when the
 * value is not derived from a translation. Shared with the
 * interpreter's farmem sanitizer so the static and dynamic layers
 * agree on what "the producing guard" means.
 */
const ir::Instruction *guardRootProducer(const ir::Value *value);

} // namespace tfm

#endif // TRACKFM_ANALYSIS_GUARD_SAFETY_HH
