#include "system.hh"

#include <map>

#include "ir/parser.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "obs/obs.hh"
#include "passes/o1_passes.hh"

namespace tfm
{

namespace
{

/// TraceSink stores event names as raw pointers without copying, so
/// the composed "safety.<pass>" strings need storage that outlives
/// every sink; intern them once per distinct pass name.
const char *
safetyCounterName(const std::string &pass)
{
    static std::map<std::string, std::string> names;
    const auto it = names.emplace(pass, "safety." + pass).first;
    return it->second.c_str();
}

} // anonymous namespace

std::string
CompiledProgram::disassemble() const
{
    return ir::moduleToString(*module);
}

System::System(const SystemConfig &config)
    : cfg(config), rt(config.runtime, config.costs)
{
    cfg.passes.objectSizeBytes = cfg.runtime.objectSizeBytes;
    cfg.passes.prefetchDepth = cfg.runtime.prefetchDepth;
    cfg.passes.injectPrefetch =
        cfg.passes.injectPrefetch && cfg.runtime.prefetchEnabled;
    if (!cfg.passes.siteReport)
        cfg.passes.siteReport = &siteReport;
    if (!cfg.passes.arbiterReport)
        cfg.passes.arbiterReport = &arbiter;
}

CompileResult
System::parseOnly(const std::string &source)
{
    CompileResult result;
    ir::ParseResult parsed = ir::parseModule(source);
    if (!parsed.ok()) {
        result.error = "parse error at line " +
                       std::to_string(parsed.errorLine) + ": " +
                       parsed.error;
        return result;
    }
    const std::string verify_error = ir::verifyModule(*parsed.module);
    if (!verify_error.empty()) {
        result.error = "invalid module: " + verify_error;
        return result;
    }
    result.program = std::make_unique<CompiledProgram>(
        std::move(parsed.module), PipelineReport{});
    return result;
}

CompileResult
System::compile(const std::string &source)
{
    CompileResult result = parseOnly(source);
    if (!result.ok())
        return result;

    PassManager manager;
    if (cfg.checkSafety) {
        safety = SafetyReport{};
        installSafetyObserver(
            manager, safety, cfg.passObserver,
            [this](const std::string &pass, std::size_t count) {
                Observability *obs = rt.runtime().obs();
                if (!obs || !obs->trace().enabled())
                    return;
                obs->trace().counter(rt.runtime().obsStream(),
                                     safetyCounterName(pass),
                                     rt.runtime().clock().now(), count);
            });
    } else if (cfg.passObserver) {
        manager.setObserver(cfg.passObserver);
    }
    if (cfg.preOptimize)
        addO1Pipeline(manager);
    addTrackFmPipeline(manager, cfg.passes);
    PipelineReport report = manager.run(*result.program->module);
    if (!report.ok()) {
        CompileResult failure;
        failure.error = "pipeline failed: " + report.verifierError;
        return failure;
    }
    result.program->report = std::move(report);
    if (cfg.passes.arbiterMode != ArbiterMode::Off) {
        Observability *obs = rt.runtime().obs();
        if (obs && obs->trace().enabled()) {
            const std::uint64_t now = rt.runtime().clock().now();
            const auto stream = rt.runtime().obsStream();
            obs->trace().counter(stream, "arbiter.paged_sites", now,
                                 arbiter.pagedSites);
            obs->trace().counter(stream, "arbiter.guard_sites", now,
                                 arbiter.guardSites);
            obs->trace().counter(stream, "arbiter.pgo_tiebreaks", now,
                                 arbiter.pgoTieBreaks);
        }
    }
    return result;
}

RunResult
System::run(const CompiledProgram &program,
            const std::string &function_name,
            const std::vector<std::int64_t> &args)
{
    Interpreter interp(program.ir(), rt);
    interp.engine = cfg.engine;
    return interp.run(function_name, args);
}

StatSet
System::stats() const
{
    StatSet set;
    rt.exportStats(set);
    return set;
}

std::uint64_t
System::cycles() const
{
    return rt.runtime().clock().now();
}

double
System::seconds() const
{
    return CycleClock::toSeconds(cycles(), cfg.costs.cpuGhz);
}

} // namespace tfm
