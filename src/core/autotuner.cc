#include "autotuner.hh"

namespace tfm
{

AutotuneResult
autotuneObjectSize(const std::string &source, const AutotuneConfig &config)
{
    AutotuneResult result;
    std::vector<std::uint32_t> sizes = config.candidates;
    if (sizes.empty()) {
        // Section 3.2: powers of two from the cache line (2^6) to the
        // base page (2^12).
        for (std::uint32_t size = 64; size <= 4096; size <<= 1)
            sizes.push_back(size);
    }
    // The batching dimension: either the requested sweep or a single
    // trial per size that keeps the base system's data-plane knobs.
    std::vector<std::uint32_t> batches = config.batchCandidates;
    const bool sweep_batches = !batches.empty();
    if (!sweep_batches)
        batches.push_back(config.system.runtime.fetchBatchMax);

    std::uint64_t best_cycles = ~0ull;
    for (const std::uint32_t size : sizes) {
        for (const std::uint32_t batch : batches) {
            AutotuneTrial trial;
            trial.objectSizeBytes = size;
            trial.batchMax = batch;

            SystemConfig sys_config = config.system;
            sys_config.runtime.objectSizeBytes = size;
            if (sweep_batches) {
                sys_config.runtime.batchingEnabled = batch > 1;
                sys_config.runtime.fetchBatchMax = batch;
                sys_config.runtime.writebackBatchMax = batch;
            }
            System system(sys_config);

            CompileResult compiled = system.compile(source);
            if (compiled.ok()) {
                trial.compiled = true;
                const std::uint64_t start = system.cycles();
                Interpreter interp(compiled.program->ir(),
                                   system.runtime());
                interp.maxSteps = config.maxSteps;
                const RunResult run = interp.run(config.function);
                if (run.ok()) {
                    trial.ran = true;
                    trial.cycles = system.cycles() - start;
                    const NetStats &net =
                        system.runtime().runtime().net().stats();
                    trial.bytesFetched = net.bytesFetched;
                    trial.netMessages = net.totalMessages();
                    if (trial.cycles < best_cycles) {
                        best_cycles = trial.cycles;
                        result.bestObjectSizeBytes = size;
                        result.bestBatchMax = batch;
                    }
                }
            }
            result.trials.push_back(trial);
        }
    }
    return result;
}

} // namespace tfm
