/**
 * @file
 * The top-level TrackFM system facade: "recompile your application and
 * run it on a far-memory cluster".
 *
 * This is the library's primary public entry point. It bundles the
 * compiler pipeline (optionally preceded by the O1 clean-up passes),
 * the TrackFM runtime with its simulated far-memory cluster, and the
 * interpreter that executes transformed programs, behind a small API:
 *
 *     tfm::SystemConfig config;
 *     config.runtime.localMemBytes = 16 << 20;
 *     tfm::System system(config);
 *     auto program = system.compile(source_text);
 *     auto result = system.run(*program, "main");
 */

#ifndef TRACKFM_CORE_SYSTEM_HH
#define TRACKFM_CORE_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "interp/interpreter.hh"
#include "ir/function.hh"
#include "passes/guard_opt.hh"
#include "passes/pass.hh"
#include "passes/path_arbiter.hh"
#include "passes/safety_check_pass.hh"
#include "passes/trackfm_passes.hh"
#include "runtime/far_mem_runtime.hh"
#include "sim/cost_params.hh"
#include "tfm/tfm_runtime.hh"

namespace tfm
{

/** Whole-system configuration. */
struct SystemConfig
{
    /// Far-memory runtime parameters (heap, local tier, object size,
    /// prefetching).
    RuntimeConfig runtime;
    /// Compiler pass options (chunk policy, prefetch injection). The
    /// object size is taken from `runtime` automatically.
    TrackFmPassOptions passes;
    /// Run the O1 clean-up pipeline before the TrackFM passes
    /// (section 4.5; strongly recommended — fewer loads in, fewer
    /// guards out).
    bool preOptimize = true;
    /// Cycle cost model for the simulated cluster.
    CostParams costs;
    /// Optional per-pass IR observer (tfmc's --print-after).
    std::function<void(const std::string &, const ir::Module &)>
        passObserver;
    /// Run the flow-sensitive guard-safety checker on the module after
    /// every pipeline pass from pointer-guards onward, accumulating
    /// diagnostics into System::safetyReport() (tfmc's --check-safety).
    bool checkSafety = false;
    /// Execution engine for System::run (tfmc's --engine). The
    /// sanitizer always runs on the reference engine regardless.
    InterpEngine engine = InterpEngine::Bytecode;
};

/** A compiled (transformed) program plus its compilation report. */
class CompiledProgram
{
  public:
    CompiledProgram(std::unique_ptr<ir::Module> compiled_module,
                    PipelineReport pipeline_report)
        : module(std::move(compiled_module)),
          report(std::move(pipeline_report))
    {}

    const ir::Module &ir() const { return *module; }
    const PipelineReport &pipelineReport() const { return report; }

    /** Textual IR of the transformed program. */
    std::string disassemble() const;

  private:
    std::unique_ptr<ir::Module> module;
    PipelineReport report;

    friend class System;
};

/** Outcome of System::compile. */
struct CompileResult
{
    std::unique_ptr<CompiledProgram> program; ///< null on error
    std::string error;                        ///< diagnostic on failure

    bool ok() const { return program != nullptr; }
};

/**
 * The TrackFM system: compiler + runtime + simulated far-memory
 * cluster.
 */
class System
{
  public:
    explicit System(const SystemConfig &config = {});

    /**
     * Compile IR source text through the (O1 +) TrackFM pipeline.
     * The returned program runs on this system's runtime.
     */
    CompileResult compile(const std::string &source);

    /**
     * Parse without transforming — the "unmodified binary" view used
     * for baselines and A/B comparisons.
     */
    CompileResult parseOnly(const std::string &source);

    /** Execute a compiled program's function on the far-memory runtime. */
    RunResult run(const CompiledProgram &program,
                  const std::string &function_name = "main",
                  const std::vector<std::int64_t> &args = {});

    /** The underlying TrackFM runtime (stats, guard counters, clock). */
    TfmRuntime &runtime() { return rt; }
    const CostParams &costs() const { return cfg.costs; }
    const SystemConfig &config() const { return cfg; }

    /** Static per-allocation-site guard accounting from the last
     *  compile (insertions, eliminations, coalesces, hoists). */
    const GuardSiteReport &guardSiteReport() const { return siteReport; }

    /** Guard-safety diagnostics from the last compile; only populated
     *  when SystemConfig::checkSafety is set. */
    const SafetyReport &safetyReport() const { return safety; }

    /** Path-arbiter decisions and access-pattern evidence from the
     *  last compile; only populated when the arbiter ran (hybrid
     *  data plane, DESIGN.md §4l). */
    const ArbiterReport &arbiterReport() const { return arbiter; }

    /** All statistics (guards, runtime, network) in one set. */
    StatSet stats() const;

    /** Simulated cycles elapsed on this system's clock. */
    std::uint64_t cycles() const;

    /** Simulated seconds elapsed. */
    double seconds() const;

  private:
    SystemConfig cfg;
    TfmRuntime rt;
    GuardSiteReport siteReport;
    SafetyReport safety;
    ArbiterReport arbiter;
};

} // namespace tfm

#endif // TRACKFM_CORE_SYSTEM_HH
