/**
 * @file
 * Object-size autotuner — the extension the paper sketches in
 * section 3.2: "the small search space suggests that an autotuning
 * approach is feasible ... an exhaustive search involving recompilation
 * and a short-term execution would simply expand the short compile
 * times."
 *
 * Exactly that: for each candidate object size (powers of two from the
 * cache line to the base page), recompile the program against a fresh
 * system with that object size, run a short profiling execution under
 * the target memory pressure, and pick the size with the fewest
 * simulated cycles.
 */

#ifndef TRACKFM_CORE_AUTOTUNER_HH
#define TRACKFM_CORE_AUTOTUNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "system.hh"

namespace tfm
{

/** One candidate's trial outcome. */
struct AutotuneTrial
{
    std::uint32_t objectSizeBytes = 0;
    /// Batch knob (fetchBatchMax == writebackBatchMax) for this trial.
    std::uint32_t batchMax = 0;
    std::uint64_t cycles = 0;
    std::uint64_t bytesFetched = 0;
    std::uint64_t netMessages = 0;
    bool compiled = false;
    bool ran = false;
};

/** Autotuning result: the chosen knobs plus the full trial record. */
struct AutotuneResult
{
    std::uint32_t bestObjectSizeBytes = 0;
    std::uint32_t bestBatchMax = 0;
    std::vector<AutotuneTrial> trials;

    bool ok() const { return bestObjectSizeBytes != 0; }
};

/** Search configuration. */
struct AutotuneConfig
{
    /// Base system configuration; objectSizeBytes (and, when
    /// batchCandidates is set, the batching knobs) are overridden per
    /// trial.
    SystemConfig system;
    /// Candidate sizes. Empty = the paper's suggested range, powers of
    /// two from 64 B (cache line) to 4 KB (base page).
    std::vector<std::uint32_t> candidates;
    /// Candidate data-plane batch sizes, applied to both fetchBatchMax
    /// and writebackBatchMax (1 = batching off). Empty = keep the base
    /// system's batching knobs and sweep object size only.
    std::vector<std::uint32_t> batchCandidates;
    /// Entry function for the profiling run.
    std::string function = "main";
    /// Step budget for each short-term profiling execution.
    std::uint64_t maxSteps = 20'000'000;
};

/**
 * Pick the best object size (and, when batchCandidates is non-empty,
 * the best data-plane batch size) for @p source by exhaustive
 * recompile-and-measure over the candidate grid.
 */
AutotuneResult autotuneObjectSize(const std::string &source,
                                  const AutotuneConfig &config);

} // namespace tfm

#endif // TRACKFM_CORE_AUTOTUNER_HH
