/**
 * @file
 * Injectable shard-failure schedule for the sharded remote tier.
 *
 * A FailurePlan is a list of (shard, cycle) events: once the simulated
 * clock reaches `cycle`, the named shard's link is dead — every fetch
 * and writeback routed at or after that instant fails over to a
 * surviving replica. Failures are polled at backend-operation
 * granularity (a message already accounted keeps its charges), which
 * mirrors how a real client notices a dead server: on the next request
 * it sends, not mid-flight.
 */

#ifndef TRACKFM_CLUSTER_FAILURE_PLAN_HH
#define TRACKFM_CLUSTER_FAILURE_PLAN_HH

#include <cstdint>
#include <vector>

namespace tfm
{

/** One scheduled shard death. */
struct ShardFailure
{
    std::uint32_t shard = 0; ///< shard index within the cluster
    std::uint64_t cycle = 0; ///< simulated cycle the link dies
};

/** The full injection schedule for one run. */
struct FailurePlan
{
    std::vector<ShardFailure> events;

    /** Schedule @p shard to die once the clock reaches @p cycle. */
    void
    killShard(std::uint32_t shard, std::uint64_t cycle)
    {
        events.push_back({shard, cycle});
    }

    bool empty() const { return events.empty(); }
};

} // namespace tfm

#endif // TRACKFM_CLUSTER_FAILURE_PLAN_HH
