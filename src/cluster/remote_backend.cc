#include "remote_backend.hh"

#include "cluster/sharded_cluster.hh"

namespace tfm
{

void
RemoteBackend::exportStats(StatSet &) const
{
}

void
RemoteBackend::attachRecorder(FlightRecorder *, std::uint16_t)
{
}

std::unique_ptr<RemoteBackend>
makeRemoteBackend(CycleClock &clock, const CostParams &costs,
                  std::uint64_t capacityBytes, std::uint32_t objectSizeBytes,
                  const ClusterConfig &config)
{
    if (config.wantsCluster()) {
        return std::make_unique<ShardedCluster>(
            clock, costs, capacityBytes, objectSizeBytes, config);
    }
    return std::make_unique<SingleNodeBackend>(clock, costs, capacityBytes);
}

} // namespace tfm
