/**
 * @file
 * Pluggable shard-placement policies for the sharded remote tier.
 *
 * A policy maps a far-heap stripe index to the shard holding its
 * primary copy; replicas follow the primary around the shard ring (see
 * ShardedCluster). Striped placement is the default (deterministic
 * round-robin, perfect balance for sequential heaps); hashed placement
 * decorrelates placement from the access pattern the way consistent
 * hashing does in rack-scale memory tiers, trading neighborliness for
 * robustness against strided hot spots.
 */

#ifndef TRACKFM_CLUSTER_PLACEMENT_HH
#define TRACKFM_CLUSTER_PLACEMENT_HH

#include <cstdint>
#include <memory>

namespace tfm
{

/** Which built-in placement policy a cluster config selects. */
enum class PlacementKind
{
    Striped, ///< stripe i -> shard i mod N (round-robin)
    Hashed   ///< stripe i -> mix64(i) mod N (decorrelated)
};

/** Maps stripes to primary shards. Stateless and cheap: called per op. */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /** Shard holding the primary copy of @p stripe (< @p shardCount). */
    virtual std::uint32_t primaryShard(std::uint64_t stripe,
                                       std::uint32_t shardCount) const = 0;

    virtual const char *name() const = 0;
};

/** Construct the built-in policy for @p kind. */
std::unique_ptr<PlacementPolicy> makePlacement(PlacementKind kind);

} // namespace tfm

#endif // TRACKFM_CLUSTER_PLACEMENT_HH
