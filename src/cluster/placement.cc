#include "placement.hh"

#include "sim/logging.hh"

namespace tfm
{

namespace
{

class StripedPlacement final : public PlacementPolicy
{
  public:
    std::uint32_t
    primaryShard(std::uint64_t stripe, std::uint32_t shardCount) const override
    {
        return static_cast<std::uint32_t>(stripe % shardCount);
    }

    const char *name() const override { return "striped"; }
};

class HashedPlacement final : public PlacementPolicy
{
  public:
    std::uint32_t
    primaryShard(std::uint64_t stripe, std::uint32_t shardCount) const override
    {
        // splitmix64 finalizer: full-avalanche, so adjacent stripes land
        // on unrelated shards.
        std::uint64_t x = stripe + 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        x ^= x >> 31;
        return static_cast<std::uint32_t>(x % shardCount);
    }

    const char *name() const override { return "hashed"; }
};

} // anonymous namespace

std::unique_ptr<PlacementPolicy>
makePlacement(PlacementKind kind)
{
    switch (kind) {
    case PlacementKind::Striped:
        return std::make_unique<StripedPlacement>();
    case PlacementKind::Hashed:
        return std::make_unique<HashedPlacement>();
    }
    TFM_PANIC("unknown placement kind");
}

} // namespace tfm
