/**
 * @file
 * ShardedCluster: the far heap striped over N remote memory nodes,
 * each behind its own independent NetworkModel link, with k-way
 * replication and injectable shard failure.
 *
 * Topology. The heap is cut into fixed-size stripes (a multiple of the
 * runtime object size, one object per stripe by default). A placement
 * policy maps each stripe to a primary shard; the stripe's k replicas
 * are the first k *live* shards on the ring starting at the primary.
 * Before any failure that is simply {primary, primary+1, ...,
 * primary+k-1} mod N — static striping — and after a failure the rule
 * is itself the failover protocol: the dead shard drops out of every
 * replica set it belonged to and the next live shard on the ring takes
 * its place.
 *
 * Consistency. Reads are served by the first live replica
 * (read-one); writebacks go to every live replica in one message per
 * shard (write-all). Multi-object messages from the batched data plane
 * are split by shard and re-coalesced, so per-shard coalescing — the
 * whole point of PR 1 — survives sharding.
 *
 * Failure. A FailurePlan kills links at given cycles; failures are
 * noticed at the next backend operation. On death the cluster eagerly
 * re-replicates: every stripe that lost a copy is copied from a
 * surviving replica onto its ring-successor, charged as bulk transfer
 * on the two links involved. After recovery every stripe is back to
 * min(k, live shards) copies, which is what makes "failover
 * mid-writeback leaves nothing unreplicated" hold.
 */

#ifndef TRACKFM_CLUSTER_SHARDED_CLUSTER_HH
#define TRACKFM_CLUSTER_SHARDED_CLUSTER_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/remote_backend.hh"
#include "sim/cost_params.hh"

namespace tfm
{

/** The sharded, replicated, failure-injectable remote tier. */
class ShardedCluster final : public RemoteBackend
{
  public:
    /// Replica sets are small; bound them so routing never allocates.
    static constexpr std::uint32_t maxReplicas = 8;

    /** The (up to k) shards holding one stripe, in read-preference order. */
    struct ReplicaSet
    {
        std::array<std::uint32_t, maxReplicas> shard{};
        std::uint32_t count = 0;

        bool
        contains(std::uint32_t s) const
        {
            for (std::uint32_t i = 0; i < count; i++)
                if (shard[i] == s)
                    return true;
            return false;
        }
    };

    ShardedCluster(CycleClock &clock, const CostParams &costs,
                   std::uint64_t capacityBytes,
                   std::uint32_t objectSizeBytes,
                   const ClusterConfig &config);

    /** @name RemoteBackend interface
     * @{ */
    std::uint64_t capacity() const override { return capacity_; }
    void fetch(std::uint64_t offset, std::byte *dst,
               std::size_t len) override;
    std::uint64_t fetchAsync(std::uint64_t offset, std::byte *dst,
                             std::size_t len) override;
    std::uint64_t
    fetchBatchAsync(const std::vector<RemoteFetchSeg> &segs,
                    std::vector<std::uint64_t> *arrivals) override;
    void writeback(std::uint64_t offset, const std::byte *src,
                   std::size_t len) override;
    void writebackBatch(const std::vector<RemoteWriteSeg> &segs) override;
    void rawWrite(std::uint64_t offset, const std::byte *src,
                  std::size_t len) override;
    void rawRead(std::uint64_t offset, std::byte *dst,
                 std::size_t len) const override;
    NetStats netStats() const override;
    RemoteStats remoteStats() const override;
    std::uint32_t
    shardCount() const override
    {
        return static_cast<std::uint32_t>(shards_.size());
    }
    NetworkModel &link(std::uint32_t shard) override;
    RemoteNode &node(std::uint32_t shard) override;
    void attachObs(Observability *sink, std::uint32_t stream) override;
    void attachRecorder(FlightRecorder *recorder,
                        std::uint16_t instance) override;
    void exportStats(StatSet &set) const override;
    const char *kind() const override { return "sharded"; }
    NetStats shardNetStats(std::uint32_t shard) const override;
    ClusterStats clusterStats() const override { return cstats_; }
    /** @} */

    /** @name Cluster-specific surface (tests, benches)
     * @{ */
    std::uint32_t replicationFactor() const { return repl_; }
    std::uint64_t stripeBytes() const { return stripeBytes_; }
    const PlacementPolicy &placement() const { return *policy_; }
    bool shardAlive(std::uint32_t shard) const;
    const RemoteStats &shardRemoteStats(std::uint32_t shard) const;
    /** Primary shard of the stripe containing @p offset (dead or not). */
    std::uint32_t primaryShardOf(std::uint64_t offset) const;
    /** Live replica set of the stripe containing @p offset. */
    ReplicaSet replicasOf(std::uint64_t offset) const;
    /** @} */

  private:
    /** One remote node behind its own link (own CostParams copy so the
     *  per-shard bandwidth knob can diverge from the host's). */
    struct Shard
    {
        Shard(CycleClock &clock, const CostParams &shard_costs,
              std::uint64_t capacity)
            : costs(shard_costs), net(clock, costs), node(capacity)
        {}

        CostParams costs;
        NetworkModel net;
        RemoteNode node;
        bool alive = true;
    };

    std::uint64_t stripeOf(std::uint64_t offset) const;
    /** First @p repl_ live shards on the ring from the primary. */
    ReplicaSet liveReplicas(std::uint64_t stripe) const;
    /** The shard serving reads of @p stripe; panics when none is left. */
    std::uint32_t readShard(std::uint64_t stripe);
    /** Apply any failure whose cycle has been reached. */
    void pollFailures();
    /** Kill @p dead and re-replicate every stripe it held. */
    void onShardDeath(std::uint32_t dead);
    /** Clear the lost flag when a write re-covers a whole lost stripe. */
    void markStripeWritten(std::uint64_t stripe, std::uint64_t offset,
                           std::size_t len);

    CycleClock &clock_;
    std::uint64_t capacity_;
    std::uint64_t stripeBytes_;
    std::uint32_t repl_;
    std::unique_ptr<PlacementPolicy> policy_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<ShardFailure> pending_; ///< sorted by cycle, ascending
    std::size_t nextFailure_ = 0;
    /// Stripes whose last replica died (k == 1 failures); sized lazily
    /// at the first death. Reading one is a loud error.
    std::vector<bool> lost_;
    ClusterStats cstats_;
    Observability *obs_ = nullptr;
    std::uint32_t obsStream_ = 0;
    FlightRecorder *rec_ = nullptr;
    std::uint16_t recInstance_ = 0;
};

} // namespace tfm

#endif // TRACKFM_CLUSTER_SHARDED_CLUSTER_HH
