#include "sharded_cluster.hh"

#include <algorithm>
#include <cstdio>

#include "obs/flight_recorder.hh"
#include "obs/obs.hh"
#include "sim/cycle_clock.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace tfm
{

namespace
{

/// Sanity bound: a rack of memory nodes, not a datacenter.
constexpr std::uint32_t maxShards = 64;

} // anonymous namespace

ShardedCluster::ShardedCluster(CycleClock &clock, const CostParams &costs,
                               std::uint64_t capacityBytes,
                               std::uint32_t objectSizeBytes,
                               const ClusterConfig &config)
    : clock_(clock),
      capacity_(capacityBytes),
      repl_(config.replicationFactor),
      policy_(makePlacement(config.placement))
{
    TFM_ASSERT(config.shardCount >= 1 && config.shardCount <= maxShards,
               "cluster shard count out of range");
    TFM_ASSERT(repl_ >= 1 && repl_ <= maxReplicas &&
                   repl_ <= config.shardCount,
               "replication factor out of range");
    TFM_ASSERT(objectSizeBytes > 0, "cluster needs the object size");
    stripeBytes_ = config.stripeBytes ? config.stripeBytes
                                      : objectSizeBytes;
    TFM_ASSERT(stripeBytes_ % objectSizeBytes == 0,
               "stripe size must be a multiple of the object size");

    CostParams shard_costs = costs;
    if (config.shardBytesPerCycle > 0.0)
        shard_costs.netBytesPerCycle = config.shardBytesPerCycle;
    shards_.reserve(config.shardCount);
    for (std::uint32_t i = 0; i < config.shardCount; i++) {
        shards_.push_back(
            std::make_unique<Shard>(clock, shard_costs, capacityBytes));
    }

    pending_ = config.failures.events;
    for (const ShardFailure &f : pending_) {
        TFM_ASSERT(f.shard < config.shardCount,
                   "failure plan names a shard outside the cluster");
    }
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const ShardFailure &a, const ShardFailure &b) {
                         return a.cycle < b.cycle;
                     });
}

std::uint64_t
ShardedCluster::stripeOf(std::uint64_t offset) const
{
    return offset / stripeBytes_;
}

ShardedCluster::ReplicaSet
ShardedCluster::liveReplicas(std::uint64_t stripe) const
{
    const auto n = static_cast<std::uint32_t>(shards_.size());
    const std::uint32_t primary = policy_->primaryShard(stripe, n);
    ReplicaSet set;
    for (std::uint32_t step = 0; step < n && set.count < repl_; step++) {
        const std::uint32_t s = (primary + step) % n;
        if (shards_[s]->alive)
            set.shard[set.count++] = s;
    }
    return set;
}

std::uint32_t
ShardedCluster::readShard(std::uint64_t stripe)
{
    if (!lost_.empty() && stripe < lost_.size() && lost_[stripe])
        TFM_PANIC("read of a stripe lost with its last replica");
    const ReplicaSet set = liveReplicas(stripe);
    TFM_ASSERT(set.count > 0,
               "shard failure left no live replica for stripe");
    const auto n = static_cast<std::uint32_t>(shards_.size());
    if (set.shard[0] != policy_->primaryShard(stripe, n))
        cstats_.degradedReads++;
    return set.shard[0];
}

void
ShardedCluster::pollFailures()
{
    while (nextFailure_ < pending_.size() &&
           clock_.now() >= pending_[nextFailure_].cycle) {
        onShardDeath(pending_[nextFailure_].shard);
        nextFailure_++;
    }
}

void
ShardedCluster::onShardDeath(std::uint32_t dead)
{
    Shard &ds = *shards_[dead];
    if (!ds.alive)
        return;
    cstats_.shardFailures++;
    TFM_WARN("cluster: shard %u link died at cycle %llu; failing over",
             dead, static_cast<unsigned long long>(clock_.now()));
    if (obs_ && obs_->trace().enabled()) {
        obs_->trace().instant(obsStream_,
                              TrackRemote + obs::shardTrackBase(dead),
                              "shard-fail", "cluster", clock_.now());
        obs_->trace().arg("shard", dead);
    }
    if (rec_) {
        rec_->note(recInstance_, FrCat::Cluster, FrKind::ClusterShardFail,
                   clock_.now(), dead);
    }

    // Replica sets before and after the death: `dead` still counts as
    // alive for the "before" view so we can tell which stripes lost a
    // copy and who their ring-successor replacement is.
    const auto aliveBefore = [&](std::uint32_t s) {
        return s == dead ? true : shards_[s]->alive;
    };
    ds.alive = false;
    const auto aliveNow = [&](std::uint32_t s) {
        return shards_[s]->alive;
    };
    const auto n = static_cast<std::uint32_t>(shards_.size());
    const auto collect = [&](std::uint64_t stripe, const auto &alive) {
        const std::uint32_t primary = policy_->primaryShard(stripe, n);
        ReplicaSet set;
        for (std::uint32_t step = 0; step < n && set.count < repl_;
             step++) {
            const std::uint32_t s = (primary + step) % n;
            if (alive(s))
                set.shard[set.count++] = s;
        }
        return set;
    };

    // Eager re-replication: copy every stripe the dead shard held from
    // a surviving replica onto the newcomer its replica set gained.
    // The copies are bulk background transfers (one logical
    // src->host->dst stream per shard pair); they are accounted in
    // ClusterStats rather than the demand-path NetStats, like
    // evacuateAll's measurement-window-exempt flush.
    const std::uint64_t numStripes =
        (capacity_ + stripeBytes_ - 1) / stripeBytes_;
    if (lost_.empty())
        lost_.assign(numStripes, false);
    std::vector<std::byte> buf(stripeBytes_);
    std::uint64_t movedStripes = 0, movedBytes = 0, lostStripes = 0;
    bool pairTouched = false;
    for (std::uint64_t stripe = 0; stripe < numStripes; stripe++) {
        const ReplicaSet before = collect(stripe, aliveBefore);
        if (!before.contains(dead))
            continue;
        const ReplicaSet after = collect(stripe, aliveNow);
        std::int64_t src = -1;
        for (std::uint32_t i = 0; i < after.count; i++) {
            if (before.contains(after.shard[i])) {
                src = after.shard[i];
                break;
            }
        }
        if (src < 0) {
            // The dead shard held the only copy (k == 1): the data is
            // gone. Remember that so a later read fails loudly instead
            // of returning the newcomer's zero-filled store.
            lost_[stripe] = true;
            lostStripes++;
            continue;
        }
        const std::uint64_t at = stripe * stripeBytes_;
        const std::uint64_t len =
            std::min<std::uint64_t>(stripeBytes_, capacity_ - at);
        for (std::uint32_t i = 0; i < after.count; i++) {
            const std::uint32_t m = after.shard[i];
            if (before.contains(m))
                continue;
            shards_[static_cast<std::size_t>(src)]->node.rawRead(
                at, buf.data(), len);
            shards_[m]->node.rawWrite(at, buf.data(), len);
            movedStripes++;
            movedBytes += len;
            pairTouched = true;
        }
    }
    cstats_.reReplicatedStripes += movedStripes;
    cstats_.reReplicatedBytes += movedBytes;
    if (pairTouched) {
        // One orchestration charge for kicking off the recovery stream;
        // the bulk bytes themselves flow at background priority.
        clock_.advance(shards_[dead]->costs.perMessageCpuCycles);
    }
    if (lostStripes > 0) {
        TFM_WARN("cluster: %llu stripes lost their last replica "
                 "(replication factor 1)",
                 static_cast<unsigned long long>(lostStripes));
    }
    if (obs_ && obs_->trace().enabled() && movedStripes > 0) {
        obs_->trace().instant(obsStream_, TrackApp, "re-replicate",
                              "cluster", clock_.now());
        obs_->trace().arg("stripes", movedStripes);
        obs_->trace().arg("bytes", movedBytes);
    }
    if (rec_) {
        rec_->note(recInstance_, FrCat::Cluster,
                   FrKind::ClusterReReplicate, clock_.now(), movedStripes,
                   movedBytes, lostStripes);
    }
}

void
ShardedCluster::fetch(std::uint64_t offset, std::byte *dst,
                      std::size_t len)
{
    pollFailures();
    TFM_ASSERT(len == 0 || stripeOf(offset) == stripeOf(offset + len - 1),
               "fetch segment straddles a stripe boundary");
    Shard &s = *shards_[readShard(stripeOf(offset))];
    s.node.fetch(s.net, offset, dst, len);
}

std::uint64_t
ShardedCluster::fetchAsync(std::uint64_t offset, std::byte *dst,
                           std::size_t len)
{
    pollFailures();
    TFM_ASSERT(len == 0 || stripeOf(offset) == stripeOf(offset + len - 1),
               "fetch segment straddles a stripe boundary");
    Shard &s = *shards_[readShard(stripeOf(offset))];
    return s.node.fetchAsync(s.net, offset, dst, len);
}

std::uint64_t
ShardedCluster::fetchBatchAsync(const std::vector<RemoteFetchSeg> &segs,
                                std::vector<std::uint64_t> *arrivals)
{
    pollFailures();
    TFM_ASSERT(!segs.empty(), "empty cluster fetch batch");

    // Split the host-side batch by serving shard, keeping each group a
    // single coalesced message on that shard's link.
    struct Group
    {
        std::vector<RemoteFetchSeg> segs;
        std::vector<std::size_t> index;
    };
    std::vector<Group> groups(shards_.size());
    for (std::size_t i = 0; i < segs.size(); i++) {
        const RemoteFetchSeg &seg = segs[i];
        TFM_ASSERT(seg.len == 0 || stripeOf(seg.offset) ==
                                       stripeOf(seg.offset + seg.len - 1),
                   "fetch segment straddles a stripe boundary");
        const std::uint32_t s = readShard(stripeOf(seg.offset));
        groups[s].segs.push_back(seg);
        groups[s].index.push_back(i);
    }

    if (arrivals)
        arrivals->assign(segs.size(), 0);
    std::uint64_t last = 0;
    std::uint32_t touched = 0;
    for (std::size_t s = 0; s < groups.size(); s++) {
        Group &g = groups[s];
        if (g.segs.empty())
            continue;
        touched++;
        Shard &shard = *shards_[s];
        if (arrivals) {
            std::vector<std::uint64_t> shard_arrivals;
            const std::uint64_t a = shard.node.fetchBatchAsync(
                shard.net, g.segs, &shard_arrivals);
            for (std::size_t i = 0; i < g.index.size(); i++)
                (*arrivals)[g.index[i]] = shard_arrivals[i];
            last = std::max(last, a);
        } else {
            last = std::max(
                last, shard.node.fetchBatchAsync(shard.net, g.segs));
        }
    }
    if (touched >= 2)
        cstats_.splitFetchBatches++;
    return last;
}

void
ShardedCluster::writeback(std::uint64_t offset, const std::byte *src,
                          std::size_t len)
{
    pollFailures();
    TFM_ASSERT(len == 0 || stripeOf(offset) == stripeOf(offset + len - 1),
               "writeback segment straddles a stripe boundary");
    const std::uint64_t stripe = stripeOf(offset);
    const ReplicaSet set = liveReplicas(stripe);
    TFM_ASSERT(set.count > 0,
               "shard failure left no live replica for stripe");
    if (set.count < repl_)
        cstats_.degradedWrites++;
    for (std::uint32_t i = 0; i < set.count; i++) {
        Shard &s = *shards_[set.shard[i]];
        s.node.writeback(s.net, offset, src, len);
    }
    markStripeWritten(stripe, offset, len);
}

void
ShardedCluster::writebackBatch(const std::vector<RemoteWriteSeg> &segs)
{
    pollFailures();
    TFM_ASSERT(!segs.empty(), "empty cluster writeback batch");
    std::vector<std::vector<RemoteWriteSeg>> groups(shards_.size());
    for (const RemoteWriteSeg &seg : segs) {
        TFM_ASSERT(seg.len == 0 || stripeOf(seg.offset) ==
                                       stripeOf(seg.offset + seg.len - 1),
                   "writeback segment straddles a stripe boundary");
        const std::uint64_t stripe = stripeOf(seg.offset);
        const ReplicaSet set = liveReplicas(stripe);
        TFM_ASSERT(set.count > 0,
                   "shard failure left no live replica for stripe");
        if (set.count < repl_)
            cstats_.degradedWrites++;
        for (std::uint32_t i = 0; i < set.count; i++)
            groups[set.shard[i]].push_back(seg);
        markStripeWritten(stripe, seg.offset, seg.len);
    }
    std::uint32_t touched = 0;
    for (std::size_t s = 0; s < groups.size(); s++) {
        if (groups[s].empty())
            continue;
        touched++;
        Shard &shard = *shards_[s];
        shard.node.writebackBatch(shard.net, groups[s]);
    }
    if (touched >= 2)
        cstats_.splitWritebackBatches++;
}

void
ShardedCluster::markStripeWritten(std::uint64_t stripe,
                                  std::uint64_t offset, std::size_t len)
{
    // A write that covers a whole lost stripe makes it readable again.
    if (lost_.empty() || stripe >= lost_.size() || !lost_[stripe])
        return;
    const std::uint64_t start = stripe * stripeBytes_;
    const std::uint64_t span =
        std::min<std::uint64_t>(stripeBytes_, capacity_ - start);
    if (offset == start && len >= span)
        lost_[stripe] = false;
}

void
ShardedCluster::rawWrite(std::uint64_t offset, const std::byte *src,
                         std::size_t len)
{
    std::size_t done = 0;
    while (done < len) {
        const std::uint64_t at = offset + done;
        const std::uint64_t stripe = stripeOf(at);
        const std::uint64_t stripe_end = (stripe + 1) * stripeBytes_;
        const std::size_t chunk = std::min<std::size_t>(
            len - done, static_cast<std::size_t>(stripe_end - at));
        const ReplicaSet set = liveReplicas(stripe);
        TFM_ASSERT(set.count > 0,
                   "shard failure left no live replica for stripe");
        for (std::uint32_t i = 0; i < set.count; i++)
            shards_[set.shard[i]]->node.rawWrite(at, src + done, chunk);
        markStripeWritten(stripe, at, chunk);
        done += chunk;
    }
}

void
ShardedCluster::rawRead(std::uint64_t offset, std::byte *dst,
                        std::size_t len) const
{
    std::size_t done = 0;
    while (done < len) {
        const std::uint64_t at = offset + done;
        const std::uint64_t stripe = stripeOf(at);
        const std::uint64_t stripe_end = (stripe + 1) * stripeBytes_;
        const std::size_t chunk = std::min<std::size_t>(
            len - done, static_cast<std::size_t>(stripe_end - at));
        if (!lost_.empty() && stripe < lost_.size() && lost_[stripe])
            TFM_PANIC("read of a stripe lost with its last replica");
        const ReplicaSet set = liveReplicas(stripe);
        TFM_ASSERT(set.count > 0,
                   "shard failure left no live replica for stripe");
        shards_[set.shard[0]]->node.rawRead(at, dst + done, chunk);
        done += chunk;
    }
}

NetStats
ShardedCluster::netStats() const
{
    NetStats total;
    for (const auto &shard : shards_)
        total += shard->net.stats();
    return total;
}

RemoteStats
ShardedCluster::remoteStats() const
{
    RemoteStats total;
    for (const auto &shard : shards_)
        total += shard->node.stats();
    return total;
}

NetworkModel &
ShardedCluster::link(std::uint32_t shard)
{
    TFM_ASSERT(shard < shards_.size(), "shard index out of range");
    return shards_[shard]->net;
}

RemoteNode &
ShardedCluster::node(std::uint32_t shard)
{
    TFM_ASSERT(shard < shards_.size(), "shard index out of range");
    return shards_[shard]->node;
}

bool
ShardedCluster::shardAlive(std::uint32_t shard) const
{
    TFM_ASSERT(shard < shards_.size(), "shard index out of range");
    return shards_[shard]->alive;
}

NetStats
ShardedCluster::shardNetStats(std::uint32_t shard) const
{
    TFM_ASSERT(shard < shards_.size(), "shard index out of range");
    return shards_[shard]->net.stats();
}

const RemoteStats &
ShardedCluster::shardRemoteStats(std::uint32_t shard) const
{
    TFM_ASSERT(shard < shards_.size(), "shard index out of range");
    return shards_[shard]->node.stats();
}

std::uint32_t
ShardedCluster::primaryShardOf(std::uint64_t offset) const
{
    return policy_->primaryShard(
        stripeOf(offset), static_cast<std::uint32_t>(shards_.size()));
}

ShardedCluster::ReplicaSet
ShardedCluster::replicasOf(std::uint64_t offset) const
{
    return liveReplicas(stripeOf(offset));
}

void
ShardedCluster::attachObs(Observability *sink, std::uint32_t stream)
{
    obs_ = sink;
    obsStream_ = stream;
    for (std::size_t i = 0; i < shards_.size(); i++) {
        shards_[i]->net.attachObs(
            sink, stream,
            obs::shardTrackBase(static_cast<std::uint32_t>(i)));
        if (sink) {
            sink->registerShardTracks(stream,
                                      static_cast<std::uint32_t>(i));
        }
    }
}

void
ShardedCluster::attachRecorder(FlightRecorder *recorder,
                               std::uint16_t instance)
{
    rec_ = recorder;
    recInstance_ = instance;
    for (std::size_t i = 0; i < shards_.size(); i++) {
        shards_[i]->net.attachRecorder(recorder, instance,
                                       static_cast<std::uint32_t>(i));
    }
}

void
ShardedCluster::exportStats(StatSet &set) const
{
    set.add("cluster.shards", shards_.size());
    set.add("cluster.replication", repl_);
    set.add("cluster.stripe_bytes", stripeBytes_);
    set.add("cluster.shard_failures", cstats_.shardFailures);
    set.add("cluster.degraded_reads", cstats_.degradedReads);
    set.add("cluster.degraded_writes", cstats_.degradedWrites);
    set.add("cluster.re_replicated_stripes", cstats_.reReplicatedStripes);
    set.add("cluster.re_replicated_bytes", cstats_.reReplicatedBytes);
    set.add("cluster.split_fetch_batches", cstats_.splitFetchBatches);
    set.add("cluster.split_writeback_batches",
            cstats_.splitWritebackBatches);
    for (std::size_t i = 0; i < shards_.size(); i++) {
        char name[64];
        const NetStats &net = shards_[i]->net.stats();
        std::snprintf(name, sizeof(name), "cluster.shard%zu.alive", i);
        set.add(name, shards_[i]->alive ? 1 : 0);
        std::snprintf(name, sizeof(name),
                      "cluster.shard%zu.bytes_fetched", i);
        set.add(name, net.bytesFetched);
        std::snprintf(name, sizeof(name),
                      "cluster.shard%zu.bytes_written_back", i);
        set.add(name, net.bytesWrittenBack);
        std::snprintf(name, sizeof(name),
                      "cluster.shard%zu.fetch_messages", i);
        set.add(name, net.fetchMessages);
        std::snprintf(name, sizeof(name),
                      "cluster.shard%zu.writeback_messages", i);
        set.add(name, net.writebackMessages);
    }
}

} // namespace tfm
