/**
 * @file
 * The remote-tier backend abstraction.
 *
 * FarMemRuntime talks to its remote memory exclusively through this
 * interface. Two implementations exist: SingleNodeBackend, the
 * degenerate one-server case wrapping the original RemoteNode behind
 * one NetworkModel link (bit-for-bit identical charges to the
 * pre-cluster runtime), and ShardedCluster (sharded_cluster.hh), which
 * stripes the far heap over N remote nodes with k-way replication and
 * injectable failures. The runtime neither knows nor cares which one it
 * drives; the data plane — including PR 1's coalesced multi-object
 * messages — flows through the same five operations either way.
 */

#ifndef TRACKFM_CLUSTER_REMOTE_BACKEND_HH
#define TRACKFM_CLUSTER_REMOTE_BACKEND_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/failure_plan.hh"
#include "cluster/placement.hh"
#include "net/network_model.hh"
#include "remote/remote_node.hh"

namespace tfm
{

class CycleClock;
class FlightRecorder;
class Observability;
class StatSet;
struct CostParams;

/** Remote-tier topology knobs (part of RuntimeConfig). */
struct ClusterConfig
{
    /// Remote memory nodes the far heap is striped over. 1 keeps the
    /// original single-server topology.
    std::uint32_t shardCount = 1;
    /// Copies of every stripe (read-one/write-all). 1 disables
    /// replication; must not exceed shardCount.
    std::uint32_t replicationFactor = 1;
    /// Striping granularity in bytes; must be a multiple of the object
    /// size. 0 means one stripe per object.
    std::uint64_t stripeBytes = 0;
    /// How stripes map to primary shards.
    PlacementKind placement = PlacementKind::Striped;
    /// Per-shard link bandwidth override (bytes/cycle). 0 gives every
    /// shard the full CostParams::netBytesPerCycle link, so aggregate
    /// bandwidth scales with shardCount; set it to model a shared
    /// bisection instead.
    double shardBytesPerCycle = 0.0;
    /// Scheduled shard deaths (see failure_plan.hh).
    FailurePlan failures;
    /// Force the ShardedCluster backend even for the 1-shard/1-copy
    /// config (equivalence tests).
    bool forceCluster = false;

    /** Does this config need the sharded backend? */
    bool
    wantsCluster() const
    {
        return forceCluster || shardCount > 1 || replicationFactor > 1 ||
               !failures.empty();
    }
};

/** Cluster-level event counters (beyond per-shard Net/RemoteStats). */
struct ClusterStats
{
    std::uint64_t shardFailures = 0;     ///< links killed by the plan
    std::uint64_t degradedReads = 0;     ///< served by a non-primary replica
    std::uint64_t degradedWrites = 0;    ///< reached fewer than k replicas
    std::uint64_t reReplicatedStripes = 0;
    std::uint64_t reReplicatedBytes = 0;
    std::uint64_t splitFetchBatches = 0; ///< host batches split over shards
    std::uint64_t splitWritebackBatches = 0;
};

/**
 * What FarMemRuntime needs from any remote tier. All offsets are
 * far-heap byte offsets; cycle accounting happens inside (each
 * implementation drives its own NetworkModel links).
 */
class RemoteBackend
{
  public:
    virtual ~RemoteBackend() = default;

    virtual std::uint64_t capacity() const = 0;

    /** Blocking demand fetch (full round trip, clock advances). */
    virtual void fetch(std::uint64_t offset, std::byte *dst,
                       std::size_t len) = 0;

    /** Async single-object fetch; returns the arrival cycle. */
    virtual std::uint64_t fetchAsync(std::uint64_t offset, std::byte *dst,
                                     std::size_t len) = 0;

    /**
     * Async multi-object fetch. One coalesced message per remote node
     * touched; @p arrivals (when non-null) gets the per-segment arrival
     * cycle, index-aligned with @p segs.
     * @return arrival of the last payload.
     */
    virtual std::uint64_t
    fetchBatchAsync(const std::vector<RemoteFetchSeg> &segs,
                    std::vector<std::uint64_t> *arrivals = nullptr) = 0;

    /** Async single-object writeback (evacuation). */
    virtual void writeback(std::uint64_t offset, const std::byte *src,
                           std::size_t len) = 0;

    /** Coalesced multi-object writeback (batched evacuation flush). */
    virtual void writebackBatch(const std::vector<RemoteWriteSeg> &segs) = 0;

    /** @name Initialization / verification (no cycle accounting)
     * @{ */
    virtual void rawWrite(std::uint64_t offset, const std::byte *src,
                          std::size_t len) = 0;
    virtual void rawRead(std::uint64_t offset, std::byte *dst,
                         std::size_t len) const = 0;
    /** @} */

    /** Aggregate link statistics (sum over shards). */
    virtual NetStats netStats() const = 0;
    /** Aggregate remote-node statistics (sum over shards). */
    virtual RemoteStats remoteStats() const = 0;

    /**
     * One shard's link statistics. Default: the aggregate (correct for
     * single-node tiers, where shard 0 is the whole tier). Benches use
     * this — not a downcast — so decorating backends (recording) and
     * substituted ones (replay) answer per-shard questions too.
     */
    virtual NetStats
    shardNetStats(std::uint32_t /*shard*/) const
    {
        return netStats();
    }

    /** Cluster health counters; all-zero for non-cluster tiers. */
    virtual ClusterStats clusterStats() const { return {}; }

    virtual std::uint32_t shardCount() const = 0;
    /** The link of @p shard (shard 0 == the single-node link). */
    virtual NetworkModel &link(std::uint32_t shard = 0) = 0;
    /** The store of @p shard (shard 0 == the single node). */
    virtual RemoteNode &node(std::uint32_t shard = 0) = 0;

    /** Attach the runtime's trace sink to every link. */
    virtual void attachObs(Observability *sink, std::uint32_t stream) = 0;

    /**
     * Attach the runtime's flight recorder: every link then logs its
     * message scheduling (and a cluster logs failure/re-replication)
     * as context events on @p instance's streams. Default: no-op.
     */
    virtual void attachRecorder(FlightRecorder *recorder,
                                std::uint16_t instance);

    /** Backend-specific counters ("cluster.*"); default exports none. */
    virtual void exportStats(StatSet &set) const;

    virtual const char *kind() const = 0;
};

/**
 * The degenerate backend: one RemoteNode behind one link, preserving
 * the exact pre-cluster call sequence (and therefore byte-identical
 * NetStats for every existing figure bench).
 */
class SingleNodeBackend final : public RemoteBackend
{
  public:
    SingleNodeBackend(CycleClock &clock, const CostParams &costs,
                      std::uint64_t capacityBytes)
        : net_(clock, costs), node_(capacityBytes)
    {}

    std::uint64_t capacity() const override { return node_.capacity(); }

    void
    fetch(std::uint64_t offset, std::byte *dst, std::size_t len) override
    {
        node_.fetch(net_, offset, dst, len);
    }

    std::uint64_t
    fetchAsync(std::uint64_t offset, std::byte *dst,
               std::size_t len) override
    {
        return node_.fetchAsync(net_, offset, dst, len);
    }

    std::uint64_t
    fetchBatchAsync(const std::vector<RemoteFetchSeg> &segs,
                    std::vector<std::uint64_t> *arrivals) override
    {
        return node_.fetchBatchAsync(net_, segs, arrivals);
    }

    void
    writeback(std::uint64_t offset, const std::byte *src,
              std::size_t len) override
    {
        node_.writeback(net_, offset, src, len);
    }

    void
    writebackBatch(const std::vector<RemoteWriteSeg> &segs) override
    {
        node_.writebackBatch(net_, segs);
    }

    void
    rawWrite(std::uint64_t offset, const std::byte *src,
             std::size_t len) override
    {
        node_.rawWrite(offset, src, len);
    }

    void
    rawRead(std::uint64_t offset, std::byte *dst,
            std::size_t len) const override
    {
        node_.rawRead(offset, dst, len);
    }

    NetStats netStats() const override { return net_.stats(); }
    RemoteStats remoteStats() const override { return node_.stats(); }

    std::uint32_t shardCount() const override { return 1; }
    NetworkModel &link(std::uint32_t) override { return net_; }
    RemoteNode &node(std::uint32_t) override { return node_; }

    void
    attachObs(Observability *sink, std::uint32_t stream) override
    {
        net_.attachObs(sink, stream);
    }

    void
    attachRecorder(FlightRecorder *recorder,
                   std::uint16_t instance) override
    {
        net_.attachRecorder(recorder, instance, 0);
    }

    const char *kind() const override { return "single"; }

  private:
    NetworkModel net_;
    RemoteNode node_;
};

/**
 * Build the backend @p config asks for: SingleNodeBackend unless the
 * config needs sharding/replication/failure injection.
 *
 * @param objectSizeBytes the runtime's object size; stripe granularity
 *        defaults to it and must stay a multiple of it, so no coalesced
 *        segment ever straddles a shard boundary.
 */
std::unique_ptr<RemoteBackend>
makeRemoteBackend(CycleClock &clock, const CostParams &costs,
                  std::uint64_t capacityBytes, std::uint32_t objectSizeBytes,
                  const ClusterConfig &config);

} // namespace tfm

#endif // TRACKFM_CLUSTER_REMOTE_BACKEND_HH
