/**
 * @file
 * The TrackFM runtime layer: the thin layer the compiler injects into
 * the application, bridging guarded loads/stores to the far-memory
 * runtime underneath (sections 3.1-3.3 of the paper).
 *
 * Responsibilities:
 *  - the custom malloc family returning tagged (non-canonical) pointers;
 *  - the guard state machine: custody check -> object-state-table lookup
 *    -> fast path or slow path (runtime call, possibly a remote fetch);
 *  - loop-chunk support calls (tfm_init / tfm_rw in Fig. 5);
 *  - compiler-directed prefetch;
 *  - guard statistics.
 */

#ifndef TRACKFM_TFM_TFM_RUNTIME_HH
#define TRACKFM_TFM_TFM_RUNTIME_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "guard_stats.hh"
#include "guard_trace.hh"
#include "runtime/far_mem_runtime.hh"
#include "tagged_ptr.hh"

namespace tfm
{

class PagedPlane;

/**
 * TrackFM's injected runtime.
 *
 * Guard methods return a host pointer that is valid until the next
 * runtime call (the paper's evacuator cannot run while a thread is
 * inside a guard; here evacuation happens only inside runtime calls, so
 * the same invariant holds by construction).
 */
class TfmRuntime
{
  public:
    // Both out of line: PagedPlane is incomplete here, and an inline
    // constructor/destructor would instantiate its unique_ptr deleter.
    TfmRuntime(const RuntimeConfig &config, const CostParams &cost_params);
    ~TfmRuntime();

    FarMemRuntime &runtime() { return rt; }
    const FarMemRuntime &runtime() const { return rt; }
    const CostParams &costs() const { return rt.costs(); }
    CycleClock &clock() { return rt.clock(); }
    GuardStats &guardStats() { return gstats; }
    const GuardStats &guardStats() const { return gstats; }
    /** Optional section 3.3 debug instrumentation. */
    GuardTrace &guardTrace() { return gtrace; }
    const GuardTrace &guardTrace() const { return gtrace; }

    /** @name The TrackFM libc replacement (section 3.1)
     *  All return tagged pointers in the non-canonical range.
     * @{ */
    std::uint64_t
    tfmMalloc(std::size_t bytes)
    {
        return tfmEncode(rt.allocate(bytes));
    }

    /**
     * Zero-initialized array allocation. Returns 0 (the null TrackFM
     * pointer) when count * size overflows size_t, like calloc(3), so
     * the caller never receives a too-small region.
     */
    std::uint64_t
    tfmCalloc(std::size_t count, std::size_t size)
    {
        if (size != 0 &&
            count > std::numeric_limits<std::size_t>::max() / size) {
            return 0;
        }
        const std::size_t bytes = count * size;
        const std::uint64_t addr = tfmMalloc(bytes);
        zeroFill(addr, bytes);
        return addr;
    }

    std::uint64_t tfmRealloc(std::uint64_t addr, std::size_t bytes);

    void
    tfmFree(std::uint64_t addr)
    {
        rt.deallocate(tfmOffsetOf(addr));
    }
    /** @} */

    /** @name Paged data plane (hybrid arbiter; DESIGN.md §4l)
     *
     * The pg_malloc family backs allocation sites the PathArbiterPass
     * routed to the paging plane. Pointers carry the bit-61 tag (so
     * guards custody-reject them and the interpreter's memory choke
     * point resolves them here); accesses charge fastswap-style fault
     * costs through a lazily created PagedPlane sharing this runtime's
     * clock and link, while the data itself moves through the far
     * heap's raw read/write — results are plane-independent by
     * construction.
     * @{ */
    std::uint64_t pagedMalloc(std::size_t bytes);
    std::uint64_t pagedCalloc(std::size_t count, std::size_t size);
    void
    pagedFree(std::uint64_t addr)
    {
        rt.deallocate(tfmOffsetOf(addr));
    }
    /** Fault accounting + copy-out via rawRead. */
    void pagedRead(std::uint64_t addr, void *dst, std::size_t len);
    /** Fault accounting + write-through via rawWrite. */
    void pagedWrite(std::uint64_t addr, const void *src, std::size_t len);
    /** The plane, created on first use; nullptr when never used. */
    PagedPlane *pagedPlane() const { return paged_.get(); }
    /** Drop the plane's residency (cold-start measurements). */
    void evacuatePaged();
    /** @} */

    /** @name Guards (section 3.3, Fig. 4)
     * @{ */
    /**
     * Guard a read of @p size bytes at @p addr.
     *
     * Tagged pointers go through the fast/slow paths with the Table 1
     * cycle charges; untagged pointers take the ~4-instruction custody
     * rejection and are returned unchanged as host pointers.
     */
    std::byte *guardRead(std::uint64_t addr);

    /** Guard a write; identical shape, write-path costs, sets dirty. */
    std::byte *guardWrite(std::uint64_t addr);

    /**
     * Inline-cache-only guard probe for dispatch loops that want to
     * resolve a guard without a full runtime call: on a last-object
     * cache hit this performs the complete fast-path guard — identical
     * cycle charges, GuardStats, and trace-ring record as
     * guardRead/guardWrite taking their cache-hit branch — and returns
     * the host pointer. Untagged pointers and cache misses return
     * nullptr with NO accounting; the caller must then fall back to
     * guardRead/guardWrite, which re-probes the (side-effect-free on
     * miss) cache.
     */
    std::byte *
    guardCacheFastPath(std::uint64_t addr, bool for_write)
    {
        if (!tfmIsTagged(addr))
            return nullptr;
        std::byte *cached = cacheLookup(tfmOffsetOf(addr), for_write);
        if (!cached)
            return nullptr;
        if (for_write) {
            rt.clock().advance(costs().guardCacheHitWriteCycles);
            gstats.fastWrites++;
            gstats.cacheHitWrites++;
            gtrace.record(addr, rt.clock().now(), GuardPath::FastWrite);
        } else {
            rt.clock().advance(costs().guardCacheHitReadCycles);
            gstats.fastReads++;
            gstats.cacheHitReads++;
            gtrace.record(addr, rt.clock().now(), GuardPath::FastRead);
        }
        return cached;
    }

    /**
     * Epoch revalidation of a hoisted guard (guard.reval fast path):
     * compare @p armed_epoch against the runtime's eviction epoch, with
     * no state-table lookup. An unchanged epoch proves every
     * object->frame translation the arming guard produced is still
     * live — and, for writes, that the dirty bit it set has not been
     * consumed by a writeback (clearing dirty implies an unmap, which
     * bumps the epoch). On a miss the caller must re-run the full
     * guard.
     *
     * @return true when the armed host pointer may be reused.
     */
    bool
    revalidate(std::uint64_t addr, std::uint64_t armed_epoch)
    {
        rt.clock().advance(costs().revalidateCycles);
        gstats.revalidations++;
        if (armed_epoch == rt.evictionEpoch()) {
            gstats.revalidationHits++;
            recordGuard(addr, GuardPath::Revalidate);
            return true;
        }
        gstats.revalidationMisses++;
        return false;
    }

    /**
     * Guarded multi-byte read. Accesses that straddle object boundaries
     * take one guard per object touched, since each constituent object
     * can independently be local or remote (the "superposition" the
     * paper calls out in section 3.2).
     */
    void readGuarded(std::uint64_t addr, void *dst, std::size_t len);

    /** Guarded multi-byte write; one guard per object touched. */
    void writeGuarded(std::uint64_t addr, const void *src, std::size_t len);

    /** @name Concurrent guard layer (DESIGN.md §4k)
     *
     * One Worker per serving thread, pairing the FarMemRuntime worker
     * context with a private GuardStats set and a private last-object
     * inline cache. A thread that has bound a Worker routes
     * readGuarded/writeGuarded through the MT paths: reads are
     * lock-free until they miss (inline cache, then one state-table
     * snapshot inside an epoch section), writes and misses take the
     * object's frame-cache shard lock. MT guards copy through the
     * runtime instead of returning host pointers, so no reference can
     * outlive its epoch section; guardRead/guardWrite (pointer-
     * returning) and the loop-chunk calls stay single-thread-only.
     * @{ */
    struct Worker
    {
        FarMemRuntime::WorkerContext *rt = nullptr;
        GuardStats gstats;           ///< single-writer, merged on report
        FarMemRuntime::MtFill cache; ///< private last-object inline cache
        std::uint32_t index = 0;
        TfmRuntime *owner = nullptr;
    };

    /** Create a worker (before starting threads; not thread-safe). */
    Worker *registerWorker();
    /** Bind @p w (and its runtime context) to the calling thread. */
    void bindWorker(Worker *w);
    void unbindWorker();
    Worker *boundWorker() const;
    const std::vector<std::unique_ptr<Worker>> &tfmWorkers() const
    {
        return workers_;
    }

    /** Main-thread guard counters plus every worker's. */
    GuardStats mergedGuardStats() const;
    /** @} */

    /** Typed guarded load. */
    template <typename T>
    T
    load(std::uint64_t addr)
    {
        T value;
        readGuarded(addr, &value, sizeof(T));
        return value;
    }

    /** Typed guarded store. */
    template <typename T>
    void
    store(std::uint64_t addr, const T &value)
    {
        writeGuarded(addr, &value, sizeof(T));
    }
    /** @} */

    /** @name Loop-chunking support (section 3.4, Fig. 5)
     * @{ */
    /**
     * The locality-invariant guard: localize and pin the object holding
     * @p addr, unpinning @p prev_obj (noObject on the first chunk).
     * Charges the locality-guard cost plus any remote-fetch time.
     *
     * @return host pointer to the byte at @p addr.
     */
    std::byte *localityGuard(std::uint64_t addr, std::uint64_t prev_obj,
                             bool for_write);

    /** Charge one object-boundary check (3 instructions). */
    void
    boundaryCheck()
    {
        rt.clock().advance(costs().boundaryCheckCycles);
        gstats.boundaryChecks++;
    }

    /** Release the pin taken by the last locality guard of a loop. */
    void
    endChunk(std::uint64_t obj_id)
    {
        if (obj_id != noObject)
            rt.unpinObject(obj_id);
    }

    static constexpr std::uint64_t noObject = ~0ull;
    /** @} */

    /**
     * Compiler-directed prefetch: issue async fetches for @p count
     * objects after the one containing @p addr.
     */
    void
    prefetchAhead(std::uint64_t addr, std::int64_t stride,
                  std::uint32_t count)
    {
        const std::uint64_t obj_id =
            rt.stateTable().objectOf(tfmOffsetOf(addr));
        rt.prefetchObjects(obj_id, stride, count);
        gstats.prefetchCalls++;
    }

    /** @name Initialization helpers (no cycle accounting)
     * @{ */
    void
    rawWrite(std::uint64_t addr, const void *src, std::size_t len)
    {
        rt.rawWrite(tfmOffsetOf(addr), src, len);
    }

    void
    rawRead(std::uint64_t addr, void *dst, std::size_t len)
    {
        rt.rawRead(tfmOffsetOf(addr), dst, len);
    }
    /** @} */

    void exportStats(StatSet &set) const;

  private:
    /** Label this stack's observability stream as TrackFM's. */
    static RuntimeConfig
    tagged(RuntimeConfig config)
    {
        config.obsKind = "trackfm";
        return config;
    }

    void zeroFill(std::uint64_t addr, std::size_t bytes);

    /**
     * Last-object inline cache (the guard-level analogue of an MMU's
     * micro-TLB): the translation produced by the most recent guard.
     * A hit requires the same object id, an unchanged eviction epoch,
     * and a still-safe meta word — so a cached host pointer can never
     * outlive the frame mapping it refers to.
     */
    struct LastObjectCache
    {
        std::uint64_t objId = ~0ull;
        std::uint64_t epoch = ~0ull;    ///< runtime evictionEpoch at fill
        std::byte *frameBase = nullptr; ///< host pointer to frame byte 0
        ObjectMeta *meta = nullptr;
        Frame *frame = nullptr;
    };

    /**
     * Record a guard outcome: always into the GuardTrace ring, and the
     * slow paths additionally as instant events on the observability
     * app track (fast paths stay off the trace to keep it bounded).
     */
    void recordGuard(std::uint64_t addr, GuardPath path);

    /** Try the inline cache; returns the host pointer or nullptr.
     *  Inline so guardCacheFastPath probes fully in-line from the
     *  bytecode dispatch loop. A miss has no side effects, so probing
     *  twice (probe, then the fallback guard's own lookup) is safe. */
    std::byte *
    cacheLookup(std::uint64_t offset, bool for_write)
    {
        if (!rt.config().guardCacheEnabled)
            return nullptr;
        // The epoch comparison invalidates on any eviction/evacuation
        // since the fill: a hit therefore proves the object->frame
        // translation (and thus frameBase) is still live, never a
        // stale host pointer.
        if (rt.stateTable().objectOf(offset) != lastObjCache.objId ||
            lastObjCache.epoch != rt.evictionEpoch() ||
            !lastObjCache.meta->safeForFastPath()) {
            return nullptr;
        }
        lastObjCache.frame->refbit = true;
        lastObjCache.meta->setHot();
        if (for_write)
            lastObjCache.meta->setDirty();
        return lastObjCache.frameBase +
               rt.stateTable().offsetInObject(offset);
    }
    /** Refill the inline cache after a successful guard translation. */
    void cacheFill(std::uint64_t obj_id, std::uint64_t offset,
                   std::byte *ptr);

    /** MT guard bodies (the bound-worker route of read/writeGuarded).
     *  Skip the trace ring and observability: those are single-writer
     *  structures, and the MT data plane keeps them main-thread-only. */
    void readGuardedMt(Worker &w, std::uint64_t addr, void *dst,
                       std::size_t len);
    void writeGuardedMt(Worker &w, std::uint64_t addr, const void *src,
                        std::size_t len);

    /** The paged plane, or create it on first paged allocation. */
    PagedPlane &ensurePaged();

    FarMemRuntime rt;
    GuardStats gstats;
    GuardTrace gtrace;
    LastObjectCache lastObjCache;
    std::unique_ptr<PagedPlane> paged_;
    std::vector<std::unique_ptr<Worker>> workers_;
    static thread_local Worker *tlsWorker_;
};

} // namespace tfm

#endif // TRACKFM_TFM_TFM_RUNTIME_HH
