/**
 * @file
 * Typed convenience wrapper over TrackFM tagged pointers.
 *
 * In the real system the application keeps using plain C pointers and
 * the compiler rewrites every dereference into a guard. Natively-built
 * workloads in this repository use FarPtr<T> in exactly the places the
 * compiler would have guarded — it is the "transformed program" view of
 * a pointer, not a programmer-facing smart pointer like AIFM's.
 */

#ifndef TRACKFM_TFM_FAR_PTR_HH
#define TRACKFM_TFM_FAR_PTR_HH

#include <cstddef>
#include <cstdint>

#include "tfm_runtime.hh"

namespace tfm
{

/**
 * A tagged pointer to an array of T in far memory.
 *
 * All accesses go through guards on the supplied runtime; arithmetic is
 * ordinary pointer arithmetic on the tagged value (the tag survives, as
 * the paper requires of middle-end-rewritten pointers).
 */
template <typename T>
class FarPtr
{
  public:
    FarPtr() : addr(0) {}
    explicit FarPtr(std::uint64_t tagged_addr) : addr(tagged_addr) {}

    /** Allocate an array of @p count elements on @p rt. */
    static FarPtr
    alloc(TfmRuntime &rt, std::size_t count)
    {
        return FarPtr(rt.tfmMalloc(count * sizeof(T)));
    }

    std::uint64_t raw() const { return addr; }
    bool null() const { return addr == 0; }

    FarPtr
    operator+(std::ptrdiff_t delta) const
    {
        return FarPtr(addr + static_cast<std::uint64_t>(
                                 delta * static_cast<std::ptrdiff_t>(
                                             sizeof(T))));
    }

    /** Guarded element read. */
    T
    get(TfmRuntime &rt, std::size_t index = 0) const
    {
        return rt.load<T>(addr + index * sizeof(T));
    }

    /** Guarded element write. */
    void
    set(TfmRuntime &rt, std::size_t index, const T &value) const
    {
        rt.store<T>(addr + index * sizeof(T), value);
    }

    /** Unmetered initialization write (outside measurement windows). */
    void
    init(TfmRuntime &rt, std::size_t index, const T &value) const
    {
        rt.rawWrite(addr + index * sizeof(T), &value, sizeof(T));
    }

    /** Unmetered verification read. */
    T
    peek(TfmRuntime &rt, std::size_t index = 0) const
    {
        T value;
        rt.rawRead(addr + index * sizeof(T), &value, sizeof(T));
        return value;
    }

    void
    free(TfmRuntime &rt)
    {
        rt.tfmFree(addr);
        addr = 0;
    }

  private:
    std::uint64_t addr;
};

} // namespace tfm

#endif // TRACKFM_TFM_FAR_PTR_HH
