/**
 * @file
 * The loop-chunking access pattern (Fig. 5 of the paper), as the
 * compiler emits it for loops that pass the section 3.4 cost model.
 *
 * The naive transformation guards every element access. The chunked
 * transformation localizes and pins one object at a time with a
 * locality-invariant guard, then serves element accesses with a raw
 * pointer plus a 3-instruction boundary check until the loop walks off
 * the object's end.
 */

#ifndef TRACKFM_TFM_CHUNK_HH
#define TRACKFM_TFM_CHUNK_HH

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "tfm_runtime.hh"

namespace tfm
{

/**
 * Sequential cursor over elements of far memory, implementing the
 * chunked loop body:
 *
 *     (end, ptrid) = tfm_init(a); tfmptr = tfm_rw(ptrid)
 *     for (...) { use *tfmptr; if (++tfmptr == end) tfmptr = tfm_rw(...) }
 *
 * The cursor owns the pin on the current object and releases it on
 * destruction or when crossing to the next object. Element size is a
 * run-time parameter; ChunkCursor<T> adds a typed veneer.
 */
class ChunkCursorRaw
{
  public:
    /**
     * @param rt the TrackFM runtime
     * @param tagged_base tagged address of element 0
     * @param elem_size element stride in bytes (must divide object size)
     * @param for_write whether accesses mark the object dirty
     */
    ChunkCursorRaw(TfmRuntime &rt, std::uint64_t tagged_base,
                   std::uint32_t elem_size, bool for_write)
        : _rt(rt), addr(tagged_base), elemSize(elem_size),
          writeMode(for_write)
    {
        TFM_ASSERT(
            rt.runtime().stateTable().objectSize() % elem_size == 0,
            "chunked element size must divide the object size");
        refill();
    }

    ChunkCursorRaw(const ChunkCursorRaw &) = delete;
    ChunkCursorRaw &operator=(const ChunkCursorRaw &) = delete;

    ~ChunkCursorRaw() { _rt.endChunk(curObj); }

    /** Read the current element into @p dst and advance. */
    void
    read(void *dst)
    {
        if (needRefill)
            refill();
        std::memcpy(dst, window + inWindow, elemSize);
        advance();
    }

    /** Write the current element from @p src and advance. */
    void
    write(const void *src)
    {
        if (needRefill)
            refill();
        std::memcpy(window + inWindow, src, elemSize);
        advance();
    }

    /** Tagged address of the current element. */
    std::uint64_t currentAddr() const { return addr; }

  private:
    void
    advance()
    {
        // The object-boundary check the transformation inserts on every
        // iteration (yellow nodes in Fig. 5).
        _rt.boundaryCheck();
        addr += elemSize;
        inWindow += elemSize;
        // Refill lazily on the next access: the loop may exit here, and
        // a trailing refill could walk past the end of the collection.
        if (inWindow >= windowLen)
            needRefill = true;
    }

    /** Locality-invariant guard: pin the object holding `addr`. */
    void
    refill()
    {
        needRefill = false;
        const std::uint64_t prev = curObj;
        window = _rt.localityGuard(addr, prev, writeMode);
        const auto &table = _rt.runtime().stateTable();
        const std::uint64_t offset = tfmOffsetOf(addr);
        curObj = table.objectOf(offset);
        const std::uint64_t in_obj = table.offsetInObject(offset);
        // The returned pointer addresses `offset`; rebase the window to
        // the object start so the boundary math stays simple.
        window -= in_obj;
        inWindow = in_obj;
        windowLen = table.objectSize();
    }

    TfmRuntime &_rt;
    std::uint64_t addr;
    std::uint32_t elemSize;
    bool writeMode;
    std::byte *window = nullptr;
    std::uint64_t inWindow = 0;
    std::uint64_t windowLen = 0;
    std::uint64_t curObj = TfmRuntime::noObject;
    bool needRefill = false;
};

/** Typed chunked cursor over an array of T in far memory. */
template <typename T>
class ChunkCursor
{
  public:
    ChunkCursor(TfmRuntime &rt, std::uint64_t tagged_base, bool for_write)
        : raw(rt, tagged_base, sizeof(T), for_write)
    {}

    /** Read the current element and advance one element. */
    T
    read()
    {
        T value;
        raw.read(&value);
        return value;
    }

    /** Write the current element and advance one element. */
    void write(const T &value) { raw.write(&value); }

    std::uint64_t currentAddr() const { return raw.currentAddr(); }

  private:
    ChunkCursorRaw raw;
};

} // namespace tfm

#endif // TRACKFM_TFM_CHUNK_HH
