/**
 * @file
 * Loop-chunking policy knob shared by the compiler passes and the
 * native backends.
 */

#ifndef TRACKFM_TFM_CHUNK_POLICY_HH
#define TRACKFM_TFM_CHUNK_POLICY_HH

namespace tfm
{

/** How TrackFM's compiler applies the loop-chunking transformation. */
enum class ChunkPolicy
{
    None,      ///< naive transformation: guard every access
    All,       ///< chunk every loop (Fig. 8 / 15 "all loops")
    CostModel  ///< chunk only above the density break-even (section 3.4)
};

} // namespace tfm

#endif // TRACKFM_TFM_CHUNK_POLICY_HH
