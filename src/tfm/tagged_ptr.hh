/**
 * @file
 * TrackFM tagged (non-canonical) pointer encoding.
 *
 * The paper overloads bit 60 of the virtual address (section 3.1): the
 * custom allocator returns pointers in the non-canonical range starting
 * at 2^60, so any dereference that escapes the compiler-injected guards
 * raises a general-protection fault instead of silently reading garbage.
 *
 * In this reproduction a TrackFM pointer's low bits are a far-heap byte
 * offset rather than a host virtual address; the guard translates it to
 * a host pointer via the object state table, exactly as the generated
 * code in Fig. 4b does. Pointer arithmetic and integer casts preserve
 * the tag as long as the high bits are untouched — the same contract the
 * paper states for middle-end-rewritten pointers.
 */

#ifndef TRACKFM_TFM_TAGGED_PTR_HH
#define TRACKFM_TFM_TAGGED_PTR_HH

#include <cstdint>

namespace tfm
{

/// Bit position used to flag TrackFM custody.
constexpr unsigned tfmTagShift = 60;
/// The tag itself: addresses at or above 2^60 are non-canonical on x86.
constexpr std::uint64_t tfmTagBit = 1ull << tfmTagShift;
/// Mask selecting the far-heap offset portion of a tagged pointer.
constexpr std::uint64_t tfmOffsetMask = tfmTagBit - 1;

/** Turn a far-heap offset into a TrackFM (tagged) pointer value. */
constexpr std::uint64_t
tfmEncode(std::uint64_t offset)
{
    return offset | tfmTagBit;
}

/** The custody check: does this pointer belong to TrackFM? */
constexpr bool
tfmIsTagged(std::uint64_t addr)
{
    return (addr >> tfmTagShift) & 1;
}

/** Recover the far-heap offset from a tagged pointer. */
constexpr std::uint64_t
tfmOffsetOf(std::uint64_t addr)
{
    return addr & tfmOffsetMask;
}

/** @name Paged-plane tag (hybrid data plane)
 *
 * The path arbiter can route an allocation site to the fastswap-style
 * paging plane instead of the guard plane. Paged pointers overload bit
 * 61 — also non-canonical, and deliberately distinct from the guard
 * tag so the two custody checks never confuse each other: a guard sees
 * a paged pointer as "not mine" (bit 60 clear) and returns it
 * unchanged, while the interpreter's memory choke point resolves it
 * through the page table. tfmOffsetMask (2^60 - 1) strips either tag,
 * so offset recovery, the allocator, and raw read/write are
 * plane-agnostic.
 * @{ */

/// Bit position used to flag paged-plane custody.
constexpr unsigned pgTagShift = 61;
/// The paged-plane tag: 2^61, non-canonical and disjoint from bit 60.
constexpr std::uint64_t pgTagBit = 1ull << pgTagShift;

/** Turn a far-heap offset into a paged-plane pointer value. */
constexpr std::uint64_t
pgEncode(std::uint64_t offset)
{
    return offset | pgTagBit;
}

/** Does this pointer belong to the paging plane? */
constexpr bool
pgIsTagged(std::uint64_t addr)
{
    return (addr >> pgTagShift) & 1;
}

/** @} */

} // namespace tfm

#endif // TRACKFM_TFM_TAGGED_PTR_HH
