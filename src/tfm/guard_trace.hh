/**
 * @file
 * Optional guard debug instrumentation — section 3.3: "we can also
 * enable optional debug instrumentation that indicates when guards
 * take the fast or slow path, and which AIFM code path they trigger."
 *
 * When enabled on a TfmRuntime, every guard outcome is appended to a
 * bounded ring buffer of GuardEvent records that tests and tools can
 * inspect or dump.
 */

#ifndef TRACKFM_TFM_GUARD_TRACE_HH
#define TRACKFM_TFM_GUARD_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace tfm
{

/** Which path a guard took (and what the runtime did underneath). */
enum class GuardPath : std::uint8_t
{
    CustodyReject,   ///< untagged pointer let through
    FastRead,        ///< fast path, read
    FastWrite,       ///< fast path, write
    SlowLocalRead,   ///< runtime call; object was already local
    SlowLocalWrite,
    SlowRemoteRead,  ///< runtime call; blocking remote fetch
    SlowRemoteWrite,
    LocalityLocal,   ///< chunk locality guard; object local
    LocalityRemote,  ///< chunk locality guard; remote fetch
    Revalidate       ///< hoisted-guard epoch revalidation hit
};

/** Printable name for a path. */
const char *guardPathName(GuardPath path);

/** One traced guard event. */
struct GuardEvent
{
    std::uint64_t addr = 0;  ///< guarded (possibly tagged) address
    std::uint64_t cycle = 0; ///< simulated time of the event
    GuardPath path = GuardPath::CustodyReject;
};

/**
 * Bounded ring of guard events. Disabled (and free) by default;
 * recording starts at enable().
 */
class GuardTrace
{
  public:
    /** Start recording, keeping at most @p capacity newest events. */
    void
    enable(std::size_t capacity = 4096)
    {
        events.clear();
        events.reserve(capacity);
        cap = capacity;
        head = 0;
        wrapped = false;
        on = true;
    }

    void disable() { on = false; }
    bool enabled() const { return on; }

    void
    record(std::uint64_t addr, std::uint64_t cycle, GuardPath path)
    {
        if (!on || cap == 0)
            return;
        const GuardEvent event{addr, cycle, path};
        if (events.size() < cap) {
            events.push_back(event);
        } else {
            events[head] = event;
            head = (head + 1) % cap;
            wrapped = true;
        }
    }

    /** Events in chronological order (oldest first). */
    std::vector<GuardEvent> chronological() const;

    std::size_t size() const { return events.size(); }
    bool overflowed() const { return wrapped; }

    /**
     * Dump as Chrome trace_event JSON (one instant event per guard,
     * addr attached as an argument) so guard activity loads into
     * Perfetto alongside the runtime's own traces.
     */
    void dump(std::ostream &os) const;

  private:
    std::vector<GuardEvent> events;
    std::size_t cap = 0;
    std::size_t head = 0;
    bool wrapped = false;
    bool on = false;
};

} // namespace tfm

#endif // TRACKFM_TFM_GUARD_TRACE_HH
