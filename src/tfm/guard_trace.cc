#include "guard_trace.hh"

#include <ostream>

#include "obs/trace_event.hh"

namespace tfm
{

const char *
guardPathName(GuardPath path)
{
    switch (path) {
      case GuardPath::CustodyReject:
        return "custody-reject";
      case GuardPath::FastRead:
        return "fast-read";
      case GuardPath::FastWrite:
        return "fast-write";
      case GuardPath::SlowLocalRead:
        return "slow-local-read";
      case GuardPath::SlowLocalWrite:
        return "slow-local-write";
      case GuardPath::SlowRemoteRead:
        return "slow-remote-read";
      case GuardPath::SlowRemoteWrite:
        return "slow-remote-write";
      case GuardPath::LocalityLocal:
        return "locality-local";
      case GuardPath::LocalityRemote:
        return "locality-remote";
      case GuardPath::Revalidate:
        return "revalidate";
    }
    return "?";
}

std::vector<GuardEvent>
GuardTrace::chronological() const
{
    std::vector<GuardEvent> out;
    out.reserve(events.size());
    if (!wrapped) {
        out = events;
    } else {
        for (std::size_t i = 0; i < events.size(); i++)
            out.push_back(events[(head + i) % events.size()]);
    }
    return out;
}

void
GuardTrace::dump(std::ostream &os) const
{
    TraceSink sink(events.size() + 1);
    sink.setProcessName(0, "guard-trace");
    sink.setThreadName(0, 0, "guards");
    for (const GuardEvent &event : chronological()) {
        sink.instant(0, 0, guardPathName(event.path), "guard",
                     event.cycle);
        sink.arg("addr", event.addr);
    }
    sink.write(os);
}

} // namespace tfm
