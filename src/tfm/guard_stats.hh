/**
 * @file
 * Counters for every guard outcome; these regenerate the paper's
 * guards-vs-faults plots (Fig. 14b, Fig. 16b).
 */

#ifndef TRACKFM_TFM_GUARD_STATS_HH
#define TRACKFM_TFM_GUARD_STATS_HH

#include <cstdint>

#include "sim/stats.hh"

namespace tfm
{

/** Per-runtime guard event counters. */
struct GuardStats
{
    std::uint64_t fastReads = 0;
    std::uint64_t fastWrites = 0;
    /// Fast-path hits served by the last-object inline cache (these are
    /// also counted in fastReads/fastWrites; this tracks how many of
    /// them skipped the object-state-table lookup).
    std::uint64_t cacheHitReads = 0;
    std::uint64_t cacheHitWrites = 0;
    std::uint64_t slowLocalReads = 0;   ///< slow path, object already local
    std::uint64_t slowLocalWrites = 0;
    std::uint64_t slowRemoteReads = 0;  ///< slow path with remote fetch
    std::uint64_t slowRemoteWrites = 0;
    std::uint64_t custodyRejects = 0;   ///< non-TrackFM pointers let through
    std::uint64_t boundaryChecks = 0;   ///< chunked-loop boundary tests
    std::uint64_t localityGuards = 0;   ///< chunked-loop object crossings
    std::uint64_t localityRemotes = 0;  ///< ... that triggered a remote fetch
    std::uint64_t prefetchCalls = 0;    ///< compiler-directed prefetches
    /// Epoch revalidations of a hoisted guard (not counted in
    /// guardTotal: a hit is exactly the full-guard work the optimizer
    /// avoided).
    std::uint64_t revalidations = 0;
    std::uint64_t revalidationHits = 0;   ///< epoch unchanged; reuse host ptr
    std::uint64_t revalidationMisses = 0; ///< evacuation since arming; re-guard

    /** Element-wise sum (merging per-worker counter sets on report). */
    GuardStats &
    operator+=(const GuardStats &other)
    {
        fastReads += other.fastReads;
        fastWrites += other.fastWrites;
        cacheHitReads += other.cacheHitReads;
        cacheHitWrites += other.cacheHitWrites;
        slowLocalReads += other.slowLocalReads;
        slowLocalWrites += other.slowLocalWrites;
        slowRemoteReads += other.slowRemoteReads;
        slowRemoteWrites += other.slowRemoteWrites;
        custodyRejects += other.custodyRejects;
        boundaryChecks += other.boundaryChecks;
        localityGuards += other.localityGuards;
        localityRemotes += other.localityRemotes;
        prefetchCalls += other.prefetchCalls;
        revalidations += other.revalidations;
        revalidationHits += other.revalidationHits;
        revalidationMisses += other.revalidationMisses;
        return *this;
    }

    std::uint64_t
    fastTotal() const
    {
        return fastReads + fastWrites;
    }

    std::uint64_t
    slowTotal() const
    {
        return slowLocalReads + slowLocalWrites + slowRemoteReads +
               slowRemoteWrites;
    }

    std::uint64_t
    guardTotal() const
    {
        return fastTotal() + slowTotal() + localityGuards;
    }

    void
    exportStats(StatSet &set) const
    {
        set.add("guard.fast_reads", fastReads);
        set.add("guard.fast_writes", fastWrites);
        set.add("guard.cache_hit_reads", cacheHitReads);
        set.add("guard.cache_hit_writes", cacheHitWrites);
        set.add("guard.slow_local_reads", slowLocalReads);
        set.add("guard.slow_local_writes", slowLocalWrites);
        set.add("guard.slow_remote_reads", slowRemoteReads);
        set.add("guard.slow_remote_writes", slowRemoteWrites);
        set.add("guard.custody_rejects", custodyRejects);
        set.add("guard.boundary_checks", boundaryChecks);
        set.add("guard.locality_guards", localityGuards);
        set.add("guard.locality_remotes", localityRemotes);
        set.add("guard.prefetch_calls", prefetchCalls);
        set.add("guard.revalidations", revalidations);
        set.add("guard.revalidation_hits", revalidationHits);
        set.add("guard.revalidation_misses", revalidationMisses);
    }
};

} // namespace tfm

#endif // TRACKFM_TFM_GUARD_STATS_HH
