/**
 * @file
 * The loop-chunking cost model from section 3.4 of the paper.
 *
 * For a loop sweeping a collection with element size e over objects of
 * size o, the object density is d = o / e. Per object, the naive guard
 * transformation costs C = (d-1)*cf + cs (one slow-path guard at the
 * object's first touch, fast-path guards after), while the chunked
 * transformation costs C_opt = (d-1)*cb + cl (cheap boundary checks plus
 * one locality-invariant guard per object). Chunking pays off when
 * C_opt < C, i.e. when density exceeds the break-even point — about 730
 * elements per object with the constants the authors fitted empirically
 * (Fig. 6).
 *
 * The model's constants are the published fitted values and are kept
 * separate from the runtime cost charges in sim/cost_params.hh: the
 * model is part of the compiler's specification (its decisions must
 * match the paper's), while the runtime charges are mechanistic. See
 * DESIGN.md section 4.
 */

#ifndef TRACKFM_TFM_COST_MODEL_HH
#define TRACKFM_TFM_COST_MODEL_HH

#include <cstdint>

namespace tfm
{

/**
 * Fitted per-guard cost constants for the chunking decision (the
 * authors' empirical fit; defaults reproduce the paper's ~730
 * break-even).
 */
struct ChunkModelParams
{
    double fastPathCycles = 21;      ///< cf
    double slowPathCycles = 144;     ///< cs
    double boundaryCheckCycles = 3;  ///< cb
    double localityGuardCycles = 13284; ///< cl (fitted; see file header)
};

/** Compile-time decision helper for the loop-chunking transformation. */
class ChunkCostModel
{
  public:
    explicit ChunkCostModel(const ChunkModelParams &params = {})
        : c(params)
    {}

    /** Elements per object for a given object/element size pair. */
    static std::uint64_t
    density(std::uint64_t object_size, std::uint64_t element_size)
    {
        return element_size == 0 ? 0 : object_size / element_size;
    }

    /** Equation (1): guard cost per object, naive transformation. */
    double
    naiveCostPerObject(std::uint64_t d) const
    {
        return static_cast<double>(d - 1) * c.fastPathCycles +
               c.slowPathCycles;
    }

    /** Equation (2): guard cost per object, chunked transformation. */
    double
    chunkedCostPerObject(std::uint64_t d) const
    {
        return static_cast<double>(d - 1) * c.boundaryCheckCycles +
               c.localityGuardCycles;
    }

    /**
     * Equation (3) rearranged for cb < cf: the density above which
     * chunking wins.
     */
    double
    breakEvenDensity() const
    {
        return (c.localityGuardCycles - c.slowPathCycles) /
                   (c.fastPathCycles - c.boundaryCheckCycles) +
               1.0;
    }

    /** Should the compiler chunk a loop with this density? */
    bool
    shouldChunk(std::uint64_t d) const
    {
        return static_cast<double>(d) > breakEvenDensity();
    }

    /** Convenience overload on sizes. */
    bool
    shouldChunk(std::uint64_t object_size, std::uint64_t element_size) const
    {
        return shouldChunk(density(object_size, element_size));
    }

  private:
    ChunkModelParams c;
};

} // namespace tfm

#endif // TRACKFM_TFM_COST_MODEL_HH
