#include "tfm_runtime.hh"

#include <algorithm>
#include <vector>

#include "fastswap/paged_plane.hh"
#include "obs/obs.hh"
#include "sim/logging.hh"

namespace tfm
{

TfmRuntime::TfmRuntime(const RuntimeConfig &config,
                       const CostParams &cost_params)
    : rt(tagged(config), cost_params)
{}

TfmRuntime::~TfmRuntime() = default;

PagedPlane &
TfmRuntime::ensurePaged()
{
    if (!paged_)
        paged_ = std::make_unique<PagedPlane>(rt);
    return *paged_;
}

std::uint64_t
TfmRuntime::pagedMalloc(std::size_t bytes)
{
    ensurePaged();
    return pgEncode(rt.allocate(bytes));
}

std::uint64_t
TfmRuntime::pagedCalloc(std::size_t count, std::size_t size)
{
    if (size != 0 &&
        count > std::numeric_limits<std::size_t>::max() / size) {
        return 0;
    }
    const std::size_t bytes = count * size;
    const std::uint64_t addr = pagedMalloc(bytes);
    zeroFill(addr, bytes);
    return addr;
}

void
TfmRuntime::pagedRead(std::uint64_t addr, void *dst, std::size_t len)
{
    ensurePaged().touch(tfmOffsetOf(addr), len, /*for_write=*/false);
    rt.rawRead(tfmOffsetOf(addr), dst, len);
}

void
TfmRuntime::pagedWrite(std::uint64_t addr, const void *src, std::size_t len)
{
    ensurePaged().touch(tfmOffsetOf(addr), len, /*for_write=*/true);
    rt.rawWrite(tfmOffsetOf(addr), src, len);
}

void
TfmRuntime::evacuatePaged()
{
    if (paged_)
        paged_->evacuate();
}

void
TfmRuntime::recordGuard(std::uint64_t addr, GuardPath path)
{
    const std::uint64_t now = rt.clock().now();
    gtrace.record(addr, now, path);
    switch (path) {
    case GuardPath::CustodyReject:
    case GuardPath::FastRead:
    case GuardPath::FastWrite:
        return; // hot paths: ring buffer only
    default:
        break;
    }
    Observability *obs = rt.obs();
    if (obs && obs->trace().enabled()) {
        obs->trace().instant(rt.obsStream(), TrackApp,
                             guardPathName(path), "guard", now);
        obs->trace().arg("addr", addr);
    }
}

void
TfmRuntime::cacheFill(std::uint64_t obj_id, std::uint64_t offset,
                      std::byte *ptr)
{
    if (!rt.config().guardCacheEnabled)
        return;
    ObjectMeta &meta = rt.stateTable()[obj_id];
    lastObjCache.objId = obj_id;
    lastObjCache.epoch = rt.evictionEpoch();
    lastObjCache.frameBase = ptr - rt.stateTable().offsetInObject(offset);
    lastObjCache.meta = &meta;
    lastObjCache.frame = &rt.frameCache().frame(meta.frame());
}

std::byte *
TfmRuntime::guardRead(std::uint64_t addr)
{
    if (!tfmIsTagged(addr)) {
        // Custody check fails: this is not a TrackFM pointer; perform
        // the original load directly (~4 instructions).
        rt.clock().advance(costs().custodyRejectCycles);
        gstats.custodyRejects++;
        recordGuard(addr, GuardPath::CustodyReject);
        return reinterpret_cast<std::byte *>(addr);
    }

    const std::uint64_t offset = tfmOffsetOf(addr);
    if (std::byte *cached = cacheLookup(offset, /*for_write=*/false)) {
        // Same object as the previous guard: skip the state-table
        // lookup and charge only the inline-cache hit.
        rt.clock().advance(costs().guardCacheHitReadCycles);
        gstats.fastReads++;
        gstats.cacheHitReads++;
        recordGuard(addr, GuardPath::FastRead);
        return cached;
    }
    std::byte *fast = rt.tryFast(offset, /*for_write=*/false);
    if (fast) {
        rt.clock().advance(costs().fastPathReadCycles);
        gstats.fastReads++;
        recordGuard(addr, GuardPath::FastRead);
        cacheFill(rt.stateTable().objectOf(offset), offset, fast);
        return fast;
    }

    // Slow path: runtime call, which may block on a remote fetch.
    rt.clock().advance(costs().slowPathReadCycles);
    FarMemRuntime::Localized outcome;
    std::byte *data = rt.localize(offset, /*for_write=*/false, &outcome);
    if (outcome == FarMemRuntime::Localized::RemoteFetch) {
        gstats.slowRemoteReads++;
        recordGuard(addr, GuardPath::SlowRemoteRead);
    } else {
        gstats.slowLocalReads++;
        recordGuard(addr, GuardPath::SlowLocalRead);
    }
    cacheFill(rt.stateTable().objectOf(offset), offset, data);
    return data;
}

std::byte *
TfmRuntime::guardWrite(std::uint64_t addr)
{
    if (!tfmIsTagged(addr)) {
        rt.clock().advance(costs().custodyRejectCycles);
        gstats.custodyRejects++;
        recordGuard(addr, GuardPath::CustodyReject);
        return reinterpret_cast<std::byte *>(addr);
    }

    const std::uint64_t offset = tfmOffsetOf(addr);
    if (std::byte *cached = cacheLookup(offset, /*for_write=*/true)) {
        rt.clock().advance(costs().guardCacheHitWriteCycles);
        gstats.fastWrites++;
        gstats.cacheHitWrites++;
        recordGuard(addr, GuardPath::FastWrite);
        return cached;
    }
    std::byte *fast = rt.tryFast(offset, /*for_write=*/true);
    if (fast) {
        rt.clock().advance(costs().fastPathWriteCycles);
        gstats.fastWrites++;
        recordGuard(addr, GuardPath::FastWrite);
        cacheFill(rt.stateTable().objectOf(offset), offset, fast);
        return fast;
    }

    rt.clock().advance(costs().slowPathWriteCycles);
    FarMemRuntime::Localized outcome;
    std::byte *data = rt.localize(offset, /*for_write=*/true, &outcome);
    if (outcome == FarMemRuntime::Localized::RemoteFetch) {
        gstats.slowRemoteWrites++;
        recordGuard(addr, GuardPath::SlowRemoteWrite);
    } else {
        gstats.slowLocalWrites++;
        recordGuard(addr, GuardPath::SlowLocalWrite);
    }
    cacheFill(rt.stateTable().objectOf(offset), offset, data);
    return data;
}

thread_local TfmRuntime::Worker *TfmRuntime::tlsWorker_ = nullptr;

TfmRuntime::Worker *
TfmRuntime::registerWorker()
{
    auto w = std::make_unique<Worker>();
    w->owner = this;
    w->index = static_cast<std::uint32_t>(workers_.size());
    w->rt = rt.registerWorker();
    workers_.push_back(std::move(w));
    return workers_.back().get();
}

void
TfmRuntime::bindWorker(Worker *w)
{
    TFM_ASSERT(w && w->owner == this, "binding a foreign tfm worker");
    tlsWorker_ = w;
    rt.bindWorker(w->rt);
}

void
TfmRuntime::unbindWorker()
{
    tlsWorker_ = nullptr;
    rt.unbindWorker();
}

TfmRuntime::Worker *
TfmRuntime::boundWorker() const
{
    Worker *w = tlsWorker_;
    return (w && w->owner == this) ? w : nullptr;
}

GuardStats
TfmRuntime::mergedGuardStats() const
{
    GuardStats total = gstats;
    for (const auto &w : workers_)
        total += w->gstats;
    return total;
}

void
TfmRuntime::readGuardedMt(Worker &w, std::uint64_t addr, void *dst,
                          std::size_t len)
{
    auto *out = static_cast<std::byte *>(dst);
    const auto &table = rt.stateTable();
    std::size_t done = 0;
    while (done < len) {
        const std::uint64_t at = addr + done;
        const std::uint64_t offset = tfmOffsetOf(at);
        const std::uint64_t in_obj = table.offsetInObject(offset);
        const std::size_t piece = std::min<std::size_t>(
            len - done, table.objectSize() - in_obj);
        if (rt.tryCachedReadMt(*w.rt, w.cache, offset, out + done,
                               piece)) {
            w.rt->clock.advance(costs().guardCacheHitReadCycles);
            w.gstats.fastReads++;
            w.gstats.cacheHitReads++;
        } else if (rt.tryFastReadMt(*w.rt, offset, out + done, piece,
                                    &w.cache)) {
            w.rt->clock.advance(costs().fastPathReadCycles);
            w.gstats.fastReads++;
        } else {
            w.rt->clock.advance(costs().slowPathReadCycles);
            FarMemRuntime::Localized outcome;
            rt.localizeReadMt(*w.rt, offset, out + done, piece, &w.cache,
                              &outcome);
            if (outcome == FarMemRuntime::Localized::RemoteFetch)
                w.gstats.slowRemoteReads++;
            else
                w.gstats.slowLocalReads++;
        }
        done += piece;
    }
}

void
TfmRuntime::writeGuardedMt(Worker &w, std::uint64_t addr, const void *src,
                           std::size_t len)
{
    const auto *in = static_cast<const std::byte *>(src);
    const auto &table = rt.stateTable();
    std::size_t done = 0;
    while (done < len) {
        const std::uint64_t at = addr + done;
        const std::uint64_t offset = tfmOffsetOf(at);
        const std::uint64_t in_obj = table.offsetInObject(offset);
        const std::size_t piece = std::min<std::size_t>(
            len - done, table.objectSize() - in_obj);
        bool was_present = false;
        FarMemRuntime::Localized outcome;
        rt.localizeWriteMt(*w.rt, offset, in + done, piece, &was_present,
                           &outcome);
        if (was_present) {
            w.rt->clock.advance(costs().fastPathWriteCycles);
            w.gstats.fastWrites++;
        } else {
            w.rt->clock.advance(costs().slowPathWriteCycles);
            if (outcome == FarMemRuntime::Localized::RemoteFetch)
                w.gstats.slowRemoteWrites++;
            else
                w.gstats.slowLocalWrites++;
        }
        done += piece;
    }
}

void
TfmRuntime::readGuarded(std::uint64_t addr, void *dst, std::size_t len)
{
    if (Worker *w = boundWorker()) {
        if (!tfmIsTagged(addr)) {
            w->rt->clock.advance(costs().custodyRejectCycles);
            w->gstats.custodyRejects++;
            std::memcpy(dst, reinterpret_cast<const void *>(addr), len);
            return;
        }
        readGuardedMt(*w, addr, dst, len);
        return;
    }
    if (!tfmIsTagged(addr)) {
        rt.clock().advance(costs().custodyRejectCycles);
        gstats.custodyRejects++;
        recordGuard(addr, GuardPath::CustodyReject);
        std::memcpy(dst, reinterpret_cast<const void *>(addr), len);
        return;
    }
    auto *out = static_cast<std::byte *>(dst);
    const auto &table = rt.stateTable();
    std::size_t done = 0;
    while (done < len) {
        const std::uint64_t at = addr + done;
        const std::uint64_t in_obj = table.offsetInObject(tfmOffsetOf(at));
        const std::size_t piece = std::min<std::size_t>(
            len - done, table.objectSize() - in_obj);
        std::memcpy(out + done, guardRead(at), piece);
        done += piece;
    }
}

void
TfmRuntime::writeGuarded(std::uint64_t addr, const void *src,
                         std::size_t len)
{
    if (Worker *w = boundWorker()) {
        if (!tfmIsTagged(addr)) {
            w->rt->clock.advance(costs().custodyRejectCycles);
            w->gstats.custodyRejects++;
            std::memcpy(reinterpret_cast<void *>(addr), src, len);
            return;
        }
        writeGuardedMt(*w, addr, src, len);
        return;
    }
    if (!tfmIsTagged(addr)) {
        rt.clock().advance(costs().custodyRejectCycles);
        gstats.custodyRejects++;
        recordGuard(addr, GuardPath::CustodyReject);
        std::memcpy(reinterpret_cast<void *>(addr), src, len);
        return;
    }
    const auto *in = static_cast<const std::byte *>(src);
    const auto &table = rt.stateTable();
    std::size_t done = 0;
    while (done < len) {
        const std::uint64_t at = addr + done;
        const std::uint64_t in_obj = table.offsetInObject(tfmOffsetOf(at));
        const std::size_t piece = std::min<std::size_t>(
            len - done, table.objectSize() - in_obj);
        std::memcpy(guardWrite(at), in + done, piece);
        done += piece;
    }
}

std::byte *
TfmRuntime::localityGuard(std::uint64_t addr, std::uint64_t prev_obj,
                          bool for_write)
{
    const std::uint64_t offset = tfmOffsetOf(addr);
    rt.clock().advance(costs().localityGuardCycles);
    gstats.localityGuards++;
    FarMemRuntime::Localized outcome;
    std::byte *data = rt.localize(offset, for_write, &outcome);
    if (outcome == FarMemRuntime::Localized::RemoteFetch) {
        gstats.localityRemotes++;
        recordGuard(addr, GuardPath::LocalityRemote);
    } else {
        recordGuard(addr, GuardPath::LocalityLocal);
    }
    const std::uint64_t obj_id = rt.stateTable().objectOf(offset);
    rt.pinObject(obj_id);
    if (prev_obj != noObject)
        rt.unpinObject(prev_obj);
    return data;
}

std::uint64_t
TfmRuntime::tfmRealloc(std::uint64_t addr, std::size_t bytes)
{
    if (addr == 0)
        return tfmMalloc(bytes);
    const std::uint64_t old_offset = tfmOffsetOf(addr);
    const std::uint64_t old_size = rt.sizeOf(old_offset);
    const std::uint64_t fresh = tfmMalloc(bytes);
    const std::size_t copy =
        static_cast<std::size_t>(std::min<std::uint64_t>(old_size, bytes));
    if (copy > 0) {
        std::vector<std::byte> tmp(copy);
        rt.rawRead(old_offset, tmp.data(), copy);
        rt.rawWrite(tfmOffsetOf(fresh), tmp.data(), copy);
        // Charge the copy as streaming traffic through the CPU.
        rt.clock().advance(copy / 16 + 1);
    }
    rt.deallocate(old_offset);
    return fresh;
}

void
TfmRuntime::zeroFill(std::uint64_t addr, std::size_t bytes)
{
    const std::vector<std::byte> zeros(bytes, std::byte{0});
    rt.rawWrite(tfmOffsetOf(addr), zeros.data(), bytes);
    rt.clock().advance(bytes / 16 + 1);
}

void
TfmRuntime::exportStats(StatSet &set) const
{
    mergedGuardStats().exportStats(set);
    rt.exportStats(set);
    if (paged_)
        paged_->exportStats(set);
}

} // namespace tfm
