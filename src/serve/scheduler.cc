#include "scheduler.hh"

#include <algorithm>
#include <atomic>
#include <deque>
#include <limits>
#include <set>
#include <thread>

#include "obs/obs.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/zipf.hh"
#include "tfm/tfm_runtime.hh"
#include "workloads/dataframe.hh"
#include "workloads/hashmap.hh"
#include "workloads/memcached.hh"

namespace tfm
{

namespace
{

/** One queued request. */
struct Request
{
    std::uint64_t arrivalCycle = 0;
    std::uint64_t client = 0;
    std::uint64_t key = 0;
};

/** Expand one seed into independent per-purpose sub-seeds. */
struct SeedChain
{
    explicit SeedChain(std::uint64_t base) : state(base) {}
    std::uint64_t next() { return splitmix64(state); }
    std::uint64_t state;
};

} // anonymous namespace

/**
 * A live tenant: its backend, its per-request workload, its key/client
 * samplers, its arrival stream, and its queue.
 */
struct Scheduler::Tenant
{
    Tenant(const TenantConfig &config, const CostParams &costs,
           std::uint64_t run_seed, std::uint32_t index,
           double rate_per_cycle, TfmRuntime *shared = nullptr)
        : cfg(config)
    {
        SeedChain seeds(run_seed + 0x7365727665ull * (index + 1));
        report.name = cfg.name.empty()
                          ? "tenant" + std::to_string(index) + "-" +
                                tenantWorkloadName(cfg.workload)
                          : cfg.name;

        if (shared != nullptr) {
            // Concurrent mode: a view over the one runtime every
            // worker thread binds into; sizing was aggregated by the
            // Scheduler ctor.
            backend = makeSharedBackend(*shared);
        } else {
            BackendConfig bc;
            bc.kind = cfg.system;
            bc.farHeapBytes = cfg.farHeapBytes;
            bc.localMemBytes = cfg.system == SystemKind::Local
                                   ? cfg.farHeapBytes
                                   : cfg.localMemBytes;
            bc.objectSizeBytes = cfg.objectSizeBytes;
            bc.obsLabel = report.name;
            backend = makeBackend(bc, costs);
        }

        const std::uint64_t workload_seed = seeds.next();
        switch (cfg.workload) {
          case TenantWorkloadKind::Memcached: {
            MemcachedParams p;
            p.numKeys = cfg.numKeys;
            p.zipfSkew = cfg.zipfSkew;
            p.seed = workload_seed;
            memcached =
                std::make_unique<MemcachedWorkload>(*backend, p);
            break;
          }
          case TenantWorkloadKind::Hashmap: {
            HashmapParams p;
            p.numKeys = cfg.numKeys;
            p.numOps = 1; // no stored trace: keys arrive open-loop
            p.zipfSkew = cfg.zipfSkew;
            p.seed = workload_seed;
            hashmap = std::make_unique<HashmapWorkload>(*backend, p);
            break;
          }
          case TenantWorkloadKind::Analytics: {
            DataframeParams p;
            p.numRows = cfg.numKeys;
            p.seed = workload_seed;
            dataframe =
                std::make_unique<DataframeWorkload>(*backend, p);
            break;
          }
        }

        keySampler = std::make_unique<ZipfGenerator>(
            cfg.numKeys, cfg.zipfSkew, seeds.next());
        ArrivalConfig ac; // rate filled below, shape from the run
        ac.ratePerCycle = rate_per_cycle;
        arrivalSeed = seeds.next();
        arrivalShape = ac;
    }

    /** Attach the (shared-shape) arrival stream; run() calls this so
     *  meanServiceCycles() never consumes arrival randomness. */
    void
    startArrivals(const ArrivalConfig &shape)
    {
        ArrivalConfig ac = shape;
        ac.ratePerCycle = arrivalShape.ratePerCycle;
        arrivals = std::make_unique<ArrivalProcess>(ac, arrivalSeed);
        nextArrival = arrivals->nextGapCycles();
    }

    /** Execute one request; returns service cycles. */
    std::uint64_t
    serve(std::uint64_t key)
    {
        const std::uint64_t before = backend->cycles();
        switch (cfg.workload) {
          case TenantWorkloadKind::Memcached: {
            std::uint8_t value[512];
            const int len = memcached->get(key, value, sizeof(value));
            TFM_ASSERT(len >= 0, "serving get missed a loaded key");
            break;
          }
          case TenantWorkloadKind::Hashmap: {
            const bool hit = hashmap->lookup(
                static_cast<std::uint32_t>(key));
            TFM_ASSERT(hit, "serving probe missed a loaded key");
            break;
          }
          case TenantWorkloadKind::Analytics:
            dataframe->pointQuery(key);
            break;
        }
        return backend->cycles() - before;
    }

    TenantConfig cfg;
    std::unique_ptr<MemBackend> backend;
    std::unique_ptr<MemcachedWorkload> memcached;
    std::unique_ptr<HashmapWorkload> hashmap;
    std::unique_ptr<DataframeWorkload> dataframe;
    std::unique_ptr<ZipfGenerator> keySampler;
    std::unique_ptr<ArrivalProcess> arrivals;
    ArrivalConfig arrivalShape;
    std::uint64_t arrivalSeed = 0;
    std::uint64_t nextArrival = 0; ///< absolute cycle of next arrival
    std::deque<Request> queue;
    TenantReport report;
};

Scheduler::Scheduler(const ServeConfig &config, const CostParams &costs)
    : cfg(config), costs_(costs)
{
    TFM_ASSERT(!cfg.tenants.empty(), "serving run with no tenants");
    TFM_ASSERT(cfg.workers > 0, "serving run with no workers");
    double share_sum = 0.0;
    for (const TenantConfig &t : cfg.tenants)
        share_sum += t.share;
    TFM_ASSERT(share_sum > 0.0, "tenant shares sum to zero");

    obs_ = cfg.obs ? cfg.obs : obs::defaultSink();
    if (obs_)
        obsStream_ = obs_->registerStream("serve");

    if (cfg.concurrent) {
        // One runtime, sized for the union of the tenants. Uniform
        // object size because one frame cache serves them all.
        std::uint64_t far_total = 0;
        std::uint64_t local_total = 0;
        for (const TenantConfig &t : cfg.tenants) {
            TFM_ASSERT(t.system == SystemKind::TrackFm,
                       "concurrent serving shares one TrackFM "
                       "runtime; every tenant must be TrackFm");
            TFM_ASSERT(t.objectSizeBytes ==
                           cfg.tenants.front().objectSizeBytes,
                       "concurrent serving needs a uniform tenant "
                       "object size (one shared frame cache)");
            far_total += t.farHeapBytes;
            local_total += t.localMemBytes;
        }
        RuntimeConfig rc;
        rc.farHeapBytes = far_total + far_total / 4; // allocator slack
        rc.localMemBytes = local_total;
        rc.objectSizeBytes = cfg.tenants.front().objectSizeBytes;
        rc.prefetchEnabled = false; // forced off when concurrent
        rc.concurrent = true;
        rc.cacheShards = cfg.cacheShards;
        if (rc.cacheShards == 0) {
            rc.cacheShards = 1;
            while (rc.cacheShards < 4 * cfg.workers)
                rc.cacheShards <<= 1;
        }
        rc.obsLabel = "serve-shared";
        shared_ = std::make_unique<TfmRuntime>(rc, costs_);
    }

    for (std::uint32_t i = 0; i < cfg.tenants.size(); i++) {
        const double rate = cfg.arrivals.ratePerCycle *
                            cfg.tenants[i].share / share_sum;
        tenants_.push_back(std::make_unique<Tenant>(
            cfg.tenants[i], costs_, cfg.seed, i, rate,
            shared_.get()));
    }
}

Scheduler::~Scheduler() = default;

std::uint64_t
Scheduler::serveOne(Tenant &tenant, std::uint64_t key)
{
    return tenant.serve(key);
}

void
Scheduler::epochSample(std::uint64_t now)
{
    if (!obs_ || !obs_->seriesDue(obsStream_, now))
        return;
    obs_->counterSample(obsStream_, now,
                        {{"serve.qdepth", queued_},
                         {"serve.generated", generated_},
                         {"serve.completed", completed_}});
}

ServeReport
Scheduler::run()
{
    TFM_ASSERT(!ran, "Scheduler::run is single-shot");
    ran = true;
    if (cfg.concurrent)
        return runConcurrent();

    ServeReport out;
    out.aggregate.name = "all";
    out.workers.resize(cfg.workers);
    for (auto &t : tenants_)
        t->startArrivals(cfg.arrivals);

    std::vector<std::uint64_t> worker_free(cfg.workers, 0);
    std::size_t rr_cursor = 0; ///< round-robin fairness pointer

    const auto record_completion = [&](Tenant &t, const Request &r,
                                       std::uint64_t start,
                                       std::uint64_t service) {
        const std::uint64_t done = start + service;
        const std::uint64_t qdelay = start - r.arrivalCycle;
        const std::uint64_t sojourn = done - r.arrivalCycle;
        for (TenantReport *rep : {&t.report, &out.aggregate}) {
            rep->completions++;
            rep->queueDelay.record(qdelay);
            rep->serviceTime.record(service);
            rep->sojourn.record(sojourn);
            if (cfg.sloCycles && sojourn > cfg.sloCycles)
                rep->sloViolations++;
        }
        if (done > out.endCycle)
            out.endCycle = done;
        completed_++;
        queued_--;
        epochSample(start);
    };

    while (completed_ < cfg.totalRequests) {
        // Earliest pending arrival (only while the open-loop generator
        // still owes requests).
        Tenant *arriving = nullptr;
        std::uint64_t arrival_cycle =
            std::numeric_limits<std::uint64_t>::max();
        if (generated_ < cfg.totalRequests) {
            for (auto &t : tenants_) {
                if (t->nextArrival < arrival_cycle) {
                    arrival_cycle = t->nextArrival;
                    arriving = t.get();
                }
            }
        }

        // Earliest free worker.
        std::size_t w = 0;
        for (std::size_t i = 1; i < worker_free.size(); i++) {
            if (worker_free[i] < worker_free[w])
                w = i;
        }
        const std::uint64_t worker_cycle = worker_free[w];

        // Admit the arrival if it precedes the next possible dispatch,
        // or if there is nothing queued to dispatch.
        if (arriving != nullptr &&
            (queued_ == 0 || arrival_cycle <= worker_cycle)) {
            Request r;
            r.arrivalCycle = arrival_cycle;
            r.client = arriving->arrivals->nextClient();
            r.key = arriving->keySampler->next();
            arriving->queue.push_back(r);
            arriving->nextArrival =
                arrival_cycle + arriving->arrivals->nextGapCycles();
            generated_++;
            queued_++;
            out.lastArrivalCycle = arrival_cycle;

            for (TenantReport *rep :
                 {&arriving->report, &out.aggregate})
                rep->arrivals++;
            arriving->report.queueDepth.record(
                arriving->queue.size());
            out.aggregate.queueDepth.record(queued_);
            if (arriving->queue.size() >
                arriving->report.maxQueueDepth)
                arriving->report.maxQueueDepth =
                    arriving->queue.size();
            if (queued_ > out.aggregate.maxQueueDepth)
                out.aggregate.maxQueueDepth = queued_;
            epochSample(arrival_cycle);
            continue;
        }

        TFM_ASSERT(queued_ > 0, "serving loop stalled with no work");

        // Dispatch: round-robin over tenants with queued requests so a
        // hot tenant cannot monopolize the workers.
        Tenant *victim = nullptr;
        for (std::size_t i = 0; i < tenants_.size(); i++) {
            const std::size_t j =
                (rr_cursor + i) % tenants_.size();
            if (!tenants_[j]->queue.empty()) {
                victim = tenants_[j].get();
                rr_cursor = j + 1;
                break;
            }
        }
        TFM_ASSERT(victim != nullptr, "queued_ count out of sync");

        const Request r = victim->queue.front();
        victim->queue.pop_front();
        // A worker idle since before the request arrived starts at the
        // arrival instant; otherwise at its free cycle.
        const std::uint64_t start =
            worker_cycle > r.arrivalCycle ? worker_cycle
                                          : r.arrivalCycle;
        const std::uint64_t service = serveOne(*victim, r.key);
        worker_free[w] = start + service;
        WorkerReport &wr = out.workers[w];
        wr.completions++;
        wr.busyCycles += service;
        if (worker_free[w] > wr.endCycle)
            wr.endCycle = worker_free[w];
        record_completion(*victim, r, start, service);
    }

    for (auto &t : tenants_) {
        TFM_ASSERT(t->queue.empty(),
                   "serving run ended with queued requests");
        out.tenants.push_back(t->report);
    }
    // Close the epoch series at the drain point.
    epochSample(out.endCycle);
    return out;
}

ServeReport
Scheduler::runConcurrent()
{
    TFM_ASSERT(shared_ != nullptr,
               "concurrent run without a shared runtime");

    ServeReport out;
    out.aggregate.name = "all";
    out.workers.resize(cfg.workers);
    for (auto &t : tenants_)
        t->startArrivals(cfg.arrivals);

    // Pre-generate the arrival schedule with the deterministic loop's
    // sampling order (earliest nextArrival, first tenant wins ties,
    // client drawn before key), so the offered load is identical for
    // every worker count and independent of thread interleaving.
    struct Item
    {
        std::uint64_t arrival = 0;
        std::uint32_t tenant = 0;
        std::uint64_t key = 0;
    };
    std::vector<Item> schedule;
    schedule.reserve(cfg.totalRequests);
    while (schedule.size() < cfg.totalRequests) {
        std::uint32_t who = 0;
        std::uint64_t cyc = std::numeric_limits<std::uint64_t>::max();
        for (std::uint32_t i = 0; i < tenants_.size(); i++) {
            if (tenants_[i]->nextArrival < cyc) {
                cyc = tenants_[i]->nextArrival;
                who = i;
            }
        }
        Tenant &t = *tenants_[who];
        t.arrivals->nextClient(); // keep the per-tenant RNG streams in
                                  // the deterministic mode's order
        Item it;
        it.arrival = cyc;
        it.tenant = who;
        it.key = t.keySampler->next();
        schedule.push_back(it);
        t.nextArrival = cyc + t.arrivals->nextGapCycles();
        t.report.arrivals++;
        out.aggregate.arrivals++;
        out.lastArrivalCycle = cyc;
        generated_++;
    }

    // Worker clocks start at the shared runtime's post-setup cycle;
    // every arrival/metric below is relative to that base. Queue-depth
    // accounting needs a serialized timeline, so the concurrent mode
    // leaves the depth histograms empty (DESIGN.md §4k).
    const std::uint64_t base = shared_->runtime().clock().now();
    std::vector<TfmRuntime::Worker *> tws;
    for (std::uint32_t w = 0; w < cfg.workers; w++)
        tws.push_back(shared_->registerWorker());

    std::vector<std::vector<TenantReport>> local(
        cfg.workers, std::vector<TenantReport>(tenants_.size()));
    std::atomic<std::uint64_t> cursor{0};

    // Wall-clock thread speed must not decide who serves what: without
    // coordination the first thread up drains the whole schedule while
    // its siblings are still spawning, and a wall-fast worker races
    // ahead in simulated time, inflating queueing delay. A start
    // barrier plus simulated-time pacing keeps every worker within a
    // bounded window of the slowest, approximating the deterministic
    // loop's earliest-free-worker dispatch.
    std::atomic<std::uint32_t> started{0};
    std::unique_ptr<std::atomic<std::uint64_t>[]> published(
        new std::atomic<std::uint64_t>[cfg.workers]);
    for (std::uint32_t w = 0; w < cfg.workers; w++)
        published[w].store(base, std::memory_order_relaxed);
    const std::uint64_t mean_gap =
        generated_ ? out.lastArrivalCycle / generated_ + 1 : 1;
    const std::uint64_t pace = std::max<std::uint64_t>(
        cfg.sloCycles, 8ull * mean_gap * cfg.workers);

    const auto body = [&](std::uint32_t w) {
        shared_->bindWorker(tws[w]);
        CycleClock &clk = tws[w]->rt->clock;
        WorkerReport &wr = out.workers[w];
        started.fetch_add(1, std::memory_order_acq_rel);
        while (started.load(std::memory_order_acquire) < cfg.workers)
            std::this_thread::yield();
        for (;;) {
            if (cursor.load(std::memory_order_relaxed) >=
                schedule.size())
                break;
            published[w].store(clk.now(), std::memory_order_release);
            std::uint64_t slowest = clk.now();
            for (std::uint32_t v = 0; v < cfg.workers; v++) {
                const std::uint64_t c =
                    published[v].load(std::memory_order_acquire);
                if (c < slowest)
                    slowest = c;
            }
            if (clk.now() > slowest + pace) {
                std::this_thread::yield();
                continue;
            }
            const std::uint64_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= schedule.size())
                break;
            const Item &it = schedule[i];
            const std::uint64_t due = base + it.arrival;
            clk.advanceTo(due); // idle until the request is due
            const std::uint64_t start = clk.now();
            const std::uint64_t service =
                tenants_[it.tenant]->serve(it.key);
            const std::uint64_t sojourn = clk.now() - due;
            TenantReport &rep = local[w][it.tenant];
            rep.completions++;
            rep.queueDelay.record(start - due);
            rep.serviceTime.record(service);
            rep.sojourn.record(sojourn);
            if (cfg.sloCycles && sojourn > cfg.sloCycles)
                rep.sloViolations++;
            wr.completions++;
            wr.busyCycles += service;
        }
        // A finished worker must stop gating the pace window.
        published[w].store(std::numeric_limits<std::uint64_t>::max(),
                           std::memory_order_release);
        wr.endCycle = clk.now() > base ? clk.now() - base : 0;
        shared_->unbindWorker();
    };

    std::vector<std::thread> pool;
    pool.reserve(cfg.workers);
    for (std::uint32_t w = 0; w < cfg.workers; w++)
        pool.emplace_back(body, w);
    for (std::thread &th : pool)
        th.join();

    // Dirty objects parked in worker buffers go home before teardown.
    shared_->runtime().drainWorkerWritebacks();

    for (std::uint32_t w = 0; w < cfg.workers; w++) {
        for (std::size_t t = 0; t < tenants_.size(); t++) {
            TenantReport &src = local[w][t];
            TenantReport &dst = tenants_[t]->report;
            dst.completions += src.completions;
            dst.sloViolations += src.sloViolations;
            dst.queueDelay.merge(src.queueDelay);
            dst.serviceTime.merge(src.serviceTime);
            dst.sojourn.merge(src.sojourn);
        }
        WorkerReport &wr = out.workers[w];
        wr.guardFast = tws[w]->gstats.fastTotal();
        wr.guardSlow = tws[w]->gstats.slowTotal();
        if (wr.endCycle > out.endCycle)
            out.endCycle = wr.endCycle;
        completed_ += wr.completions;
    }
    for (auto &t : tenants_) {
        TenantReport &rep = t->report;
        out.aggregate.completions += rep.completions;
        out.aggregate.sloViolations += rep.sloViolations;
        out.aggregate.queueDelay.merge(rep.queueDelay);
        out.aggregate.serviceTime.merge(rep.serviceTime);
        out.aggregate.sojourn.merge(rep.sojourn);
        out.tenants.push_back(rep);
    }
    TFM_ASSERT(completed_ == generated_,
               "concurrent serving lost requests");

    if (obs_) {
        // Two bracketing samples keep the serve.* series well-formed
        // (cumulative counters, monotone per track) without the
        // serialized timeline the epoch sampler wants.
        obs_->counterSample(obsStream_, 0,
                            {{"serve.qdepth", 0},
                             {"serve.generated", 0},
                             {"serve.completed", 0}});
        obs_->counterSample(obsStream_, out.endCycle,
                            {{"serve.qdepth", 0},
                             {"serve.generated", generated_},
                             {"serve.completed", completed_}});
        // One final sample per worker thread: tfm-stat folds these
        // into its per-worker breakdown table.
        // The sink keeps name pointers (trace_event.hh: "must be
        // string literals or otherwise outlive the sink"), and the
        // bench-level sink writes the trace from a static destructor
        // — so the serve.w<i>.* names are interned in a deliberately
        // leaked pool that no destruction order can invalidate.
        const auto interned = [](std::uint32_t w, const char *metric) {
            static auto *pool = new std::set<std::string>();
            return pool
                ->insert("serve.w" + std::to_string(w) + "." + metric)
                .first->c_str();
        };
        for (std::uint32_t w = 0; w < cfg.workers; w++) {
            const WorkerReport &wr = out.workers[w];
            obs_->counterSample(
                obsStream_, out.endCycle,
                {{interned(w, "completions"), wr.completions},
                 {interned(w, "busy_cycles"), wr.busyCycles},
                 {interned(w, "end_cycle"), wr.endCycle},
                 {interned(w, "guard_fast"), wr.guardFast},
                 {interned(w, "guard_slow"), wr.guardSlow}});
        }
    }
    return out;
}

void
ServeReport::exportStats(StatSet &set) const
{
    const auto one = [&set](const TenantReport &r,
                            const std::string &prefix) {
        set.add(prefix + "arrivals", r.arrivals);
        set.add(prefix + "completions", r.completions);
        set.add(prefix + "goodput", r.goodput());
        set.add(prefix + "slo_violations", r.sloViolations);
        set.add(prefix + "queue_depth_max", r.maxQueueDepth);
        r.queueDelay.exportSloStats(set, (prefix + "queue_delay").c_str());
        r.serviceTime.exportSloStats(set, (prefix + "service").c_str());
        r.sojourn.exportSloStats(set, (prefix + "sojourn").c_str());
    };
    one(aggregate, "serve.");
    set.add("serve.end_cycle", endCycle);
    set.add("serve.last_arrival_cycle", lastArrivalCycle);
    for (const TenantReport &r : tenants)
        one(r, "serve." + r.name + ".");
    for (std::size_t w = 0; w < workers.size(); w++) {
        const std::string prefix =
            "serve.w" + std::to_string(w) + ".";
        set.add(prefix + "completions", workers[w].completions);
        set.add(prefix + "busy_cycles", workers[w].busyCycles);
        set.add(prefix + "end_cycle", workers[w].endCycle);
        set.add(prefix + "guard_fast", workers[w].guardFast);
        set.add(prefix + "guard_slow", workers[w].guardSlow);
    }
}

double
meanServiceCycles(const TenantConfig &tenant, const CostParams &costs,
                  std::uint64_t seed, std::uint32_t requests)
{
    TFM_ASSERT(requests > 0, "calibration needs at least one request");
    Scheduler::Tenant probe(tenant, costs, seed, 0,
                            1.0 /* rate unused: no arrivals started */);
    std::uint64_t total = 0;
    for (std::uint32_t i = 0; i < requests; i++)
        total += probe.serve(probe.keySampler->next());
    return static_cast<double>(total) / static_cast<double>(requests);
}

const char *
tenantWorkloadName(TenantWorkloadKind kind)
{
    switch (kind) {
      case TenantWorkloadKind::Memcached:
        return "memcached";
      case TenantWorkloadKind::Hashmap:
        return "hashmap";
      case TenantWorkloadKind::Analytics:
        return "analytics";
    }
    return "?";
}

} // namespace tfm
