#include "scheduler.hh"

#include <deque>
#include <limits>

#include "obs/obs.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/zipf.hh"
#include "workloads/dataframe.hh"
#include "workloads/hashmap.hh"
#include "workloads/memcached.hh"

namespace tfm
{

namespace
{

/** One queued request. */
struct Request
{
    std::uint64_t arrivalCycle = 0;
    std::uint64_t client = 0;
    std::uint64_t key = 0;
};

/** Expand one seed into independent per-purpose sub-seeds. */
struct SeedChain
{
    explicit SeedChain(std::uint64_t base) : state(base) {}
    std::uint64_t next() { return splitmix64(state); }
    std::uint64_t state;
};

} // anonymous namespace

/**
 * A live tenant: its backend, its per-request workload, its key/client
 * samplers, its arrival stream, and its queue.
 */
struct Scheduler::Tenant
{
    Tenant(const TenantConfig &config, const CostParams &costs,
           std::uint64_t run_seed, std::uint32_t index,
           double rate_per_cycle)
        : cfg(config)
    {
        SeedChain seeds(run_seed + 0x7365727665ull * (index + 1));
        report.name = cfg.name.empty()
                          ? "tenant" + std::to_string(index) + "-" +
                                tenantWorkloadName(cfg.workload)
                          : cfg.name;

        BackendConfig bc;
        bc.kind = cfg.system;
        bc.farHeapBytes = cfg.farHeapBytes;
        bc.localMemBytes = cfg.system == SystemKind::Local
                               ? cfg.farHeapBytes
                               : cfg.localMemBytes;
        bc.objectSizeBytes = cfg.objectSizeBytes;
        bc.obsLabel = report.name;
        backend = makeBackend(bc, costs);

        const std::uint64_t workload_seed = seeds.next();
        switch (cfg.workload) {
          case TenantWorkloadKind::Memcached: {
            MemcachedParams p;
            p.numKeys = cfg.numKeys;
            p.zipfSkew = cfg.zipfSkew;
            p.seed = workload_seed;
            memcached =
                std::make_unique<MemcachedWorkload>(*backend, p);
            break;
          }
          case TenantWorkloadKind::Hashmap: {
            HashmapParams p;
            p.numKeys = cfg.numKeys;
            p.numOps = 1; // no stored trace: keys arrive open-loop
            p.zipfSkew = cfg.zipfSkew;
            p.seed = workload_seed;
            hashmap = std::make_unique<HashmapWorkload>(*backend, p);
            break;
          }
          case TenantWorkloadKind::Analytics: {
            DataframeParams p;
            p.numRows = cfg.numKeys;
            p.seed = workload_seed;
            dataframe =
                std::make_unique<DataframeWorkload>(*backend, p);
            break;
          }
        }

        keySampler = std::make_unique<ZipfGenerator>(
            cfg.numKeys, cfg.zipfSkew, seeds.next());
        ArrivalConfig ac; // rate filled below, shape from the run
        ac.ratePerCycle = rate_per_cycle;
        arrivalSeed = seeds.next();
        arrivalShape = ac;
    }

    /** Attach the (shared-shape) arrival stream; run() calls this so
     *  meanServiceCycles() never consumes arrival randomness. */
    void
    startArrivals(const ArrivalConfig &shape)
    {
        ArrivalConfig ac = shape;
        ac.ratePerCycle = arrivalShape.ratePerCycle;
        arrivals = std::make_unique<ArrivalProcess>(ac, arrivalSeed);
        nextArrival = arrivals->nextGapCycles();
    }

    /** Execute one request; returns service cycles. */
    std::uint64_t
    serve(std::uint64_t key)
    {
        const std::uint64_t before = backend->cycles();
        switch (cfg.workload) {
          case TenantWorkloadKind::Memcached: {
            std::uint8_t value[512];
            const int len = memcached->get(key, value, sizeof(value));
            TFM_ASSERT(len >= 0, "serving get missed a loaded key");
            break;
          }
          case TenantWorkloadKind::Hashmap: {
            const bool hit = hashmap->lookup(
                static_cast<std::uint32_t>(key));
            TFM_ASSERT(hit, "serving probe missed a loaded key");
            break;
          }
          case TenantWorkloadKind::Analytics:
            dataframe->pointQuery(key);
            break;
        }
        return backend->cycles() - before;
    }

    TenantConfig cfg;
    std::unique_ptr<MemBackend> backend;
    std::unique_ptr<MemcachedWorkload> memcached;
    std::unique_ptr<HashmapWorkload> hashmap;
    std::unique_ptr<DataframeWorkload> dataframe;
    std::unique_ptr<ZipfGenerator> keySampler;
    std::unique_ptr<ArrivalProcess> arrivals;
    ArrivalConfig arrivalShape;
    std::uint64_t arrivalSeed = 0;
    std::uint64_t nextArrival = 0; ///< absolute cycle of next arrival
    std::deque<Request> queue;
    TenantReport report;
};

Scheduler::Scheduler(const ServeConfig &config, const CostParams &costs)
    : cfg(config), costs_(costs)
{
    TFM_ASSERT(!cfg.tenants.empty(), "serving run with no tenants");
    TFM_ASSERT(cfg.workers > 0, "serving run with no workers");
    double share_sum = 0.0;
    for (const TenantConfig &t : cfg.tenants)
        share_sum += t.share;
    TFM_ASSERT(share_sum > 0.0, "tenant shares sum to zero");

    obs_ = cfg.obs ? cfg.obs : obs::defaultSink();
    if (obs_)
        obsStream_ = obs_->registerStream("serve");

    for (std::uint32_t i = 0; i < cfg.tenants.size(); i++) {
        const double rate = cfg.arrivals.ratePerCycle *
                            cfg.tenants[i].share / share_sum;
        tenants_.push_back(std::make_unique<Tenant>(
            cfg.tenants[i], costs_, cfg.seed, i, rate));
    }
}

Scheduler::~Scheduler() = default;

std::uint64_t
Scheduler::serveOne(Tenant &tenant, std::uint64_t key)
{
    return tenant.serve(key);
}

void
Scheduler::epochSample(std::uint64_t now)
{
    if (!obs_ || !obs_->seriesDue(obsStream_, now))
        return;
    obs_->counterSample(obsStream_, now,
                        {{"serve.qdepth", queued_},
                         {"serve.generated", generated_},
                         {"serve.completed", completed_}});
}

ServeReport
Scheduler::run()
{
    TFM_ASSERT(!ran, "Scheduler::run is single-shot");
    ran = true;

    ServeReport out;
    out.aggregate.name = "all";
    for (auto &t : tenants_)
        t->startArrivals(cfg.arrivals);

    std::vector<std::uint64_t> worker_free(cfg.workers, 0);
    std::size_t rr_cursor = 0; ///< round-robin fairness pointer

    const auto record_completion = [&](Tenant &t, const Request &r,
                                       std::uint64_t start,
                                       std::uint64_t service) {
        const std::uint64_t done = start + service;
        const std::uint64_t qdelay = start - r.arrivalCycle;
        const std::uint64_t sojourn = done - r.arrivalCycle;
        for (TenantReport *rep : {&t.report, &out.aggregate}) {
            rep->completions++;
            rep->queueDelay.record(qdelay);
            rep->serviceTime.record(service);
            rep->sojourn.record(sojourn);
            if (cfg.sloCycles && sojourn > cfg.sloCycles)
                rep->sloViolations++;
        }
        if (done > out.endCycle)
            out.endCycle = done;
        completed_++;
        queued_--;
        epochSample(start);
    };

    while (completed_ < cfg.totalRequests) {
        // Earliest pending arrival (only while the open-loop generator
        // still owes requests).
        Tenant *arriving = nullptr;
        std::uint64_t arrival_cycle =
            std::numeric_limits<std::uint64_t>::max();
        if (generated_ < cfg.totalRequests) {
            for (auto &t : tenants_) {
                if (t->nextArrival < arrival_cycle) {
                    arrival_cycle = t->nextArrival;
                    arriving = t.get();
                }
            }
        }

        // Earliest free worker.
        std::size_t w = 0;
        for (std::size_t i = 1; i < worker_free.size(); i++) {
            if (worker_free[i] < worker_free[w])
                w = i;
        }
        const std::uint64_t worker_cycle = worker_free[w];

        // Admit the arrival if it precedes the next possible dispatch,
        // or if there is nothing queued to dispatch.
        if (arriving != nullptr &&
            (queued_ == 0 || arrival_cycle <= worker_cycle)) {
            Request r;
            r.arrivalCycle = arrival_cycle;
            r.client = arriving->arrivals->nextClient();
            r.key = arriving->keySampler->next();
            arriving->queue.push_back(r);
            arriving->nextArrival =
                arrival_cycle + arriving->arrivals->nextGapCycles();
            generated_++;
            queued_++;
            out.lastArrivalCycle = arrival_cycle;

            for (TenantReport *rep :
                 {&arriving->report, &out.aggregate})
                rep->arrivals++;
            arriving->report.queueDepth.record(
                arriving->queue.size());
            out.aggregate.queueDepth.record(queued_);
            if (arriving->queue.size() >
                arriving->report.maxQueueDepth)
                arriving->report.maxQueueDepth =
                    arriving->queue.size();
            if (queued_ > out.aggregate.maxQueueDepth)
                out.aggregate.maxQueueDepth = queued_;
            epochSample(arrival_cycle);
            continue;
        }

        TFM_ASSERT(queued_ > 0, "serving loop stalled with no work");

        // Dispatch: round-robin over tenants with queued requests so a
        // hot tenant cannot monopolize the workers.
        Tenant *victim = nullptr;
        for (std::size_t i = 0; i < tenants_.size(); i++) {
            const std::size_t j =
                (rr_cursor + i) % tenants_.size();
            if (!tenants_[j]->queue.empty()) {
                victim = tenants_[j].get();
                rr_cursor = j + 1;
                break;
            }
        }
        TFM_ASSERT(victim != nullptr, "queued_ count out of sync");

        const Request r = victim->queue.front();
        victim->queue.pop_front();
        // A worker idle since before the request arrived starts at the
        // arrival instant; otherwise at its free cycle.
        const std::uint64_t start =
            worker_cycle > r.arrivalCycle ? worker_cycle
                                          : r.arrivalCycle;
        const std::uint64_t service = serveOne(*victim, r.key);
        worker_free[w] = start + service;
        record_completion(*victim, r, start, service);
    }

    for (auto &t : tenants_) {
        TFM_ASSERT(t->queue.empty(),
                   "serving run ended with queued requests");
        out.tenants.push_back(t->report);
    }
    // Close the epoch series at the drain point.
    epochSample(out.endCycle);
    return out;
}

void
ServeReport::exportStats(StatSet &set) const
{
    const auto one = [&set](const TenantReport &r,
                            const std::string &prefix) {
        set.add(prefix + "arrivals", r.arrivals);
        set.add(prefix + "completions", r.completions);
        set.add(prefix + "goodput", r.goodput());
        set.add(prefix + "slo_violations", r.sloViolations);
        set.add(prefix + "queue_depth_max", r.maxQueueDepth);
        r.queueDelay.exportSloStats(set, (prefix + "queue_delay").c_str());
        r.serviceTime.exportSloStats(set, (prefix + "service").c_str());
        r.sojourn.exportSloStats(set, (prefix + "sojourn").c_str());
    };
    one(aggregate, "serve.");
    set.add("serve.end_cycle", endCycle);
    set.add("serve.last_arrival_cycle", lastArrivalCycle);
    for (const TenantReport &r : tenants)
        one(r, "serve." + r.name + ".");
}

double
meanServiceCycles(const TenantConfig &tenant, const CostParams &costs,
                  std::uint64_t seed, std::uint32_t requests)
{
    TFM_ASSERT(requests > 0, "calibration needs at least one request");
    Scheduler::Tenant probe(tenant, costs, seed, 0,
                            1.0 /* rate unused: no arrivals started */);
    std::uint64_t total = 0;
    for (std::uint32_t i = 0; i < requests; i++)
        total += probe.serve(probe.keySampler->next());
    return static_cast<double>(total) / static_cast<double>(requests);
}

const char *
tenantWorkloadName(TenantWorkloadKind kind)
{
    switch (kind) {
      case TenantWorkloadKind::Memcached:
        return "memcached";
      case TenantWorkloadKind::Hashmap:
        return "hashmap";
      case TenantWorkloadKind::Analytics:
        return "analytics";
    }
    return "?";
}

} // namespace tfm
