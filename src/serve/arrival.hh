/**
 * @file
 * Open-loop request arrival processes for the traffic-serving subsystem.
 *
 * Serving systems are judged under *open-loop* load: clients issue
 * requests on their own schedule, independent of whether the server has
 * finished the previous one, so queues can actually build and tail
 * latency reflects load rather than client back-pressure (closed-loop
 * generators famously hide collapse — see DESIGN.md §4j). Each tenant's
 * stream gets its own deterministic RNG derived from the run seed, so a
 * million-client population costs one generator, not a million threads,
 * and the same seed always produces the same trace.
 */

#ifndef TRACKFM_SERVE_ARRIVAL_HH
#define TRACKFM_SERVE_ARRIVAL_HH

#include <cstdint>

#include "sim/rng.hh"

namespace tfm
{

/** Arrival-process family. */
enum class ArrivalKind
{
    Poisson, ///< memoryless arrivals at a constant mean rate
    Mmpp     ///< 2-state Markov-modulated Poisson: calm/burst phases
};

/** Arrival-process parameters (rates are per simulated cycle). */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /// Long-run mean arrival rate (arrivals per cycle). For MMPP this
    /// is the stationary mean across both phases; the per-phase rates
    /// are derived so the offered load matches Poisson at equal config.
    double ratePerCycle = 1e-4;
    /// MMPP burst-phase rate multiplier over the calm phase.
    double burstMultiplier = 8.0;
    /// MMPP mean phase dwell times in cycles (exponentially distributed).
    double calmDwellCycles = 400000.0;
    double burstDwellCycles = 80000.0;
    /// Client population size; each arrival is attributed to a client
    /// id drawn uniformly from [0, clients). Ids are cheap — millions
    /// of clients cost nothing beyond the id space.
    std::uint64_t clients = 1000000;
};

/**
 * One tenant's arrival stream: a deterministic generator of
 * inter-arrival gaps (and client attributions) at a configured rate.
 */
class ArrivalProcess
{
  public:
    ArrivalProcess(const ArrivalConfig &config, std::uint64_t seed);

    /**
     * Next inter-arrival gap in exact (real-valued) cycles. Exposed for
     * the statistical tests: Poisson gaps have mean 1/rate and variance
     * 1/rate^2; MMPP gaps share the mean but are over-dispersed.
     */
    double nextGapExact();

    /** Next gap quantized to whole cycles (at least 1). */
    std::uint64_t nextGapCycles();

    /** Client id of the next arrival, uniform over the population. */
    std::uint64_t nextClient() { return rng.below(cfg.clients); }

    /** Analytic long-run mean arrival rate (arrivals per cycle). */
    double meanRatePerCycle() const { return cfg.ratePerCycle; }

    const ArrivalConfig &config() const { return cfg; }

  private:
    /** Exponential variate with the given rate (rate > 0). */
    double expGap(double rate);

    ArrivalConfig cfg;
    Rng rng;
    /// Derived MMPP per-phase rates (calm, burst).
    double calmRate = 0.0;
    double burstRate = 0.0;
    bool bursting = false;
    /// Cycles left in the current MMPP phase.
    double untilSwitch = 0.0;
};

} // namespace tfm

#endif // TRACKFM_SERVE_ARRIVAL_HH
