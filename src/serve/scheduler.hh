/**
 * @file
 * Multi-tenant request lifecycle scheduler for the serving subsystem.
 *
 * Multiplexes N tenant contexts — each a far-memory-backed
 * memcached/hashmap/analytics worker from src/workloads — onto one
 * simulated timeline served by a configurable number of worker cores.
 * Requests arrive open-loop (src/serve/arrival.hh), queue per tenant,
 * and are dispatched round-robin across tenants so one hot tenant
 * cannot starve the others beyond its turn in the rotation.
 *
 * Queueing delay (arrival -> dispatch) is tracked separately from
 * service time (dispatch -> completion, measured as the tenant
 * backend's cycle delta), so an SLO curve can distinguish load-induced
 * collapse (queue growth) from data-plane cost (service growth) — the
 * distinction DRackSim/Atlas-style serving evaluations hinge on.
 */

#ifndef TRACKFM_SERVE_SCHEDULER_HH
#define TRACKFM_SERVE_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arrival.hh"
#include "obs/histogram.hh"
#include "sim/cost_params.hh"
#include "workloads/backend_config.hh"

namespace tfm
{

class Observability;
class StatSet;

/** Which per-request application a tenant runs. */
enum class TenantWorkloadKind
{
    Memcached, ///< USR-sized KV gets (fine-grained, low spatial locality)
    Hashmap,   ///< open-addressing probe (pointer-chase flavored)
    Analytics  ///< dataframe point query (3 column reads + reduce)
};

/** One tenant context: workload, backend sizing, and load share. */
struct TenantConfig
{
    /// Stream/stat label; empty derives "tenant<i>-<workload>".
    std::string name;
    TenantWorkloadKind workload = TenantWorkloadKind::Memcached;
    SystemKind system = SystemKind::TrackFm;
    /// Keyspace size (rows for Analytics); requests draw keys Zipfian.
    std::uint64_t numKeys = 4000;
    double zipfSkew = 1.02;
    /// Relative share of the aggregate offered load.
    double share = 1.0;
    /// Backend sizing; local memory below the working set creates the
    /// far-memory pressure the serving bench is about.
    std::uint64_t farHeapBytes = 16ull << 20;
    std::uint64_t localMemBytes = 256ull << 10;
    std::uint32_t objectSizeBytes = 64;
};

/** Serving-run parameters. */
struct ServeConfig
{
    std::vector<TenantConfig> tenants;
    /// Aggregate arrival process; ratePerCycle is the total offered
    /// rate, split across tenants by their shares.
    ArrivalConfig arrivals;
    /// Serving cores. Each dispatches one request at a time.
    std::uint32_t workers = 1;
    /// Open-loop run length: arrivals generated before draining.
    std::uint64_t totalRequests = 10000;
    /// Response-time SLO in cycles; completions above it are excluded
    /// from goodput. 0 counts every completion.
    std::uint64_t sloCycles = 0;
    /// Run seed; every tenant's key/client/arrival stream derives its
    /// own RNG from this with splitmix64.
    std::uint64_t seed = 42;
    /// Observability sink for serve.* epoch counters; null falls back
    /// to the process-wide default (the bench --trace flag).
    Observability *obs = nullptr;
    /// Run the workers as real std::threads sharing one TrackFM
    /// runtime (DESIGN.md §4k) instead of simulated cores on one
    /// timeline. Requires every tenant be SystemKind::TrackFm with a
    /// uniform objectSizeBytes; the default (false) keeps the
    /// deterministic single-thread event loop record/replay relies on.
    bool concurrent = false;
    /// Frame-cache shards for the shared concurrent runtime; 0 picks
    /// the smallest power of two >= 4 * workers.
    std::uint32_t cacheShards = 0;
};

/** Per-tenant (and aggregate) serving metrics. */
struct TenantReport
{
    std::string name;
    std::uint64_t arrivals = 0;
    std::uint64_t completions = 0;
    std::uint64_t sloViolations = 0;
    std::uint64_t maxQueueDepth = 0;
    Histogram queueDelay;  ///< arrival -> dispatch cycles
    Histogram serviceTime; ///< dispatch -> completion cycles
    Histogram sojourn;     ///< arrival -> completion cycles
    Histogram queueDepth;  ///< depth observed at each arrival

    /** Completions inside the SLO. */
    std::uint64_t goodput() const { return completions - sloViolations; }
};

/**
 * Per-worker serving counters. Both modes fill completions/busyCycles/
 * endCycle (the deterministic loop per simulated core, the concurrent
 * run per thread); guard fast/slow attribution exists only in
 * concurrent mode, where each worker owns a private GuardStats.
 */
struct WorkerReport
{
    std::uint64_t completions = 0;
    std::uint64_t busyCycles = 0; ///< sum of service cycles executed
    std::uint64_t endCycle = 0;   ///< last completion on this worker
    std::uint64_t guardFast = 0;  ///< guard fast-path hits (concurrent)
    std::uint64_t guardSlow = 0;  ///< guard slow paths (concurrent)
};

/** Result of one serving run. */
struct ServeReport
{
    std::vector<TenantReport> tenants;
    TenantReport aggregate;
    std::vector<WorkerReport> workers;
    /// Completion cycle of the last request (the drain point).
    std::uint64_t endCycle = 0;
    std::uint64_t lastArrivalCycle = 0;

    /** Aggregate goodput in requests per million cycles. */
    double
    goodputPerMcycle() const
    {
        return endCycle == 0 ? 0.0
                             : 1e6 * static_cast<double>(
                                         aggregate.goodput()) /
                                   static_cast<double>(endCycle);
    }

    /**
     * Export as serve.* stats: aggregate under "serve.", per tenant
     * under "serve.<name>.". Latency histograms use the SLO flavor
     * (p50/p99/p99.9).
     */
    void exportStats(StatSet &set) const;
};

/**
 * The serving scheduler. Single-shot: construct (tenant setup runs,
 * caches dropped), then run() simulates the configured number of
 * arrivals through to drain-to-empty and returns the report.
 */
class Scheduler
{
  public:
    Scheduler(const ServeConfig &config, const CostParams &costs);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Simulate all arrivals through completion. */
    ServeReport run();

  private:
    struct Tenant;
    friend double meanServiceCycles(const TenantConfig &tenant,
                                    const CostParams &costs,
                                    std::uint64_t seed,
                                    std::uint32_t requests);

    /** Execute one request on @p tenant; returns service cycles. */
    std::uint64_t serveOne(Tenant &tenant, std::uint64_t key);
    /** Epoch-gated serve.* counter sample at simulated time @p now. */
    void epochSample(std::uint64_t now);
    /** Concurrent-mode run body: real threads, shared runtime. */
    ServeReport runConcurrent();

    ServeConfig cfg;
    CostParams costs_;
    /// Concurrent mode only: the one TrackFM runtime every tenant
    /// backend views and every worker thread binds into.
    std::unique_ptr<TfmRuntime> shared_;
    std::vector<std::unique_ptr<Tenant>> tenants_;
    Observability *obs_ = nullptr;
    std::uint32_t obsStream_ = 0;
    bool ran = false;
    /// Live counters mirrored into the epoch samples.
    std::uint64_t generated_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t queued_ = 0;
};

/**
 * Mean unloaded service time of @p tenant's requests in cycles,
 * measured by running @p requests back-to-back on a throwaway backend.
 * The serving bench divides worker count by this to calibrate the
 * offered-load axis of its SLO curve.
 */
double meanServiceCycles(const TenantConfig &tenant,
                         const CostParams &costs, std::uint64_t seed,
                         std::uint32_t requests = 200);

/** Human-readable tenant workload name ("memcached", ...). */
const char *tenantWorkloadName(TenantWorkloadKind kind);

} // namespace tfm

#endif // TRACKFM_SERVE_SCHEDULER_HH
