#include "arrival.hh"

#include <cmath>

#include "sim/logging.hh"

namespace tfm
{

ArrivalProcess::ArrivalProcess(const ArrivalConfig &config,
                               std::uint64_t seed)
    : cfg(config), rng(seed)
{
    TFM_ASSERT(cfg.ratePerCycle > 0.0, "arrival rate must be positive");
    TFM_ASSERT(cfg.clients > 0, "empty client population");
    if (cfg.kind == ArrivalKind::Mmpp) {
        TFM_ASSERT(cfg.burstMultiplier >= 1.0,
                   "burst phase cannot be slower than calm");
        // Solve for the calm rate so the stationary mean matches
        // ratePerCycle: mean = calm * (pCalm + pBurst * mult), with
        // pBurst the stationary fraction of time spent bursting.
        const double p_burst =
            cfg.burstDwellCycles /
            (cfg.burstDwellCycles + cfg.calmDwellCycles);
        const double mean_mult =
            (1.0 - p_burst) + p_burst * cfg.burstMultiplier;
        calmRate = cfg.ratePerCycle / mean_mult;
        burstRate = calmRate * cfg.burstMultiplier;
        untilSwitch = expGap(1.0 / cfg.calmDwellCycles);
    }
}

double
ArrivalProcess::expGap(double rate)
{
    // Inverse-CDF sampling; 1 - uniform() is in (0, 1] so the log is
    // finite.
    return -std::log(1.0 - rng.uniform()) / rate;
}

double
ArrivalProcess::nextGapExact()
{
    if (cfg.kind == ArrivalKind::Poisson)
        return expGap(cfg.ratePerCycle);

    // MMPP: draw within the current phase; if the candidate arrival
    // lands past the phase boundary, advance to the boundary, switch
    // phase, and redraw (the exponential's memorylessness makes this
    // exact).
    double gap = 0.0;
    while (true) {
        const double rate = bursting ? burstRate : calmRate;
        const double candidate = expGap(rate);
        if (candidate <= untilSwitch) {
            untilSwitch -= candidate;
            return gap + candidate;
        }
        gap += untilSwitch;
        bursting = !bursting;
        untilSwitch = expGap(
            1.0 / (bursting ? cfg.burstDwellCycles : cfg.calmDwellCycles));
    }
}

std::uint64_t
ArrivalProcess::nextGapCycles()
{
    const double gap = nextGapExact();
    const auto cycles = static_cast<std::uint64_t>(std::llround(gap));
    return cycles == 0 ? 1 : cycles;
}

} // namespace tfm
