/**
 * @file
 * Region-based far-heap allocator (the unified ADS object pool).
 *
 * The paper's TrackFM attaches every remotable allocation to a single
 * runtime-managed object pool carved out of AIFM's region allocator
 * (section 3.2). This allocator hands out byte offsets in the far heap
 * with two invariants the guards rely on:
 *
 *  - allocations of at least one object span whole, object-aligned runs
 *    of objects ("a single memory allocation can span multiple objects");
 *  - smaller allocations are packed into objects but never straddle an
 *    object boundary ("smaller allocations are grouped into a single
 *    object"), so one allocation maps to a well-defined object set.
 */

#ifndef TRACKFM_RUNTIME_REGION_ALLOCATOR_HH
#define TRACKFM_RUNTIME_REGION_ALLOCATOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace tfm
{

/** Allocation statistics. */
struct AllocStats
{
    std::uint64_t allocations = 0;
    std::uint64_t frees = 0;
    std::uint64_t bytesAllocated = 0;
    std::uint64_t bytesFreed = 0;
};

/**
 * Segregated free-list allocator over the far heap offset space.
 *
 * Offsets are never real host addresses; they become TrackFM pointers by
 * tagging (tfm/tagged_ptr.hh). Freed blocks are reused exactly by size
 * class, which is enough fragmentation behaviour for the paper's
 * workloads (memcached-style churn included).
 */
class RegionAllocator
{
  public:
    RegionAllocator(std::uint64_t heap_bytes, std::uint32_t object_size);

    /**
     * Allocate @p bytes; returns the far-heap byte offset.
     * @return offset, or badOffset when the far heap is exhausted.
     */
    std::uint64_t allocate(std::uint64_t bytes);

    /** Free an allocation previously returned by allocate(). */
    void deallocate(std::uint64_t offset);

    /** Size of a live allocation (0 when unknown). */
    std::uint64_t sizeOf(std::uint64_t offset) const;

    std::uint64_t heapBytes() const { return _heapBytes; }
    /// First never-allocated offset; the prefetcher stops here.
    std::uint64_t frontier() const { return bump; }
    std::uint64_t bytesInUse() const
    {
        return _stats.bytesAllocated - _stats.bytesFreed;
    }
    const AllocStats &stats() const { return _stats; }

    static constexpr std::uint64_t badOffset = ~0ull;

  private:
    /// Round a small request up to its size class.
    static std::uint64_t classify(std::uint64_t bytes);

    std::uint64_t _heapBytes;
    std::uint32_t objSize;
    std::uint64_t bump = 0;
    AllocStats _stats;
    /// size class -> freed offsets of exactly that (rounded) size
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> freeLists;
    /// live allocation sizes (rounded) for deallocate()
    std::unordered_map<std::uint64_t, std::uint64_t> liveSizes;
};

} // namespace tfm

#endif // TRACKFM_RUNTIME_REGION_ALLOCATOR_HH
