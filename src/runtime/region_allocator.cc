#include "region_allocator.hh"

#include "sim/logging.hh"

namespace tfm
{

RegionAllocator::RegionAllocator(std::uint64_t heap_bytes,
                                 std::uint32_t object_size)
    : _heapBytes(heap_bytes), objSize(object_size)
{
    TFM_ASSERT((object_size & (object_size - 1)) == 0,
               "object size must be a power of two");
}

std::uint64_t
RegionAllocator::classify(std::uint64_t bytes)
{
    // Size classes are powers of two starting at 16 bytes.
    std::uint64_t size = 16;
    while (size < bytes)
        size <<= 1;
    return size;
}

std::uint64_t
RegionAllocator::allocate(std::uint64_t bytes)
{
    if (bytes == 0)
        bytes = 1;
    const std::uint64_t rounded = classify(bytes);

    auto it = freeLists.find(rounded);
    if (it != freeLists.end() && !it->second.empty()) {
        const std::uint64_t offset = it->second.back();
        it->second.pop_back();
        liveSizes[offset] = rounded;
        _stats.allocations++;
        _stats.bytesAllocated += rounded;
        return offset;
    }

    // Align every block to min(size class, object size). Large blocks
    // start on an object boundary and span whole objects; small blocks
    // are naturally aligned, which also guarantees they never straddle
    // an object boundary.
    const std::uint64_t align =
        rounded < objSize ? rounded : static_cast<std::uint64_t>(objSize);
    const std::uint64_t offset = (bump + align - 1) & ~(align - 1);
    if (offset + rounded > _heapBytes)
        return badOffset;

    bump = offset + rounded;
    liveSizes[offset] = rounded;
    _stats.allocations++;
    _stats.bytesAllocated += rounded;
    return offset;
}

void
RegionAllocator::deallocate(std::uint64_t offset)
{
    auto it = liveSizes.find(offset);
    TFM_ASSERT(it != liveSizes.end(), "free of unknown far pointer");
    const std::uint64_t rounded = it->second;
    liveSizes.erase(it);
    freeLists[rounded].push_back(offset);
    _stats.frees++;
    _stats.bytesFreed += rounded;
}

std::uint64_t
RegionAllocator::sizeOf(std::uint64_t offset) const
{
    auto it = liveSizes.find(offset);
    return it == liveSizes.end() ? 0 : it->second;
}

} // namespace tfm
