/**
 * @file
 * FarMemRuntime: the AIFM-equivalent far-memory object runtime.
 *
 * Owns the simulated clock, the network link, the remote node, the
 * object state table, the local frame cache, the region allocator
 * (unified ADS object pool), and the stride prefetcher. Both the TrackFM
 * guard layer (src/tfm) and the library-based baseline (src/aifmlib)
 * are built on this runtime, exactly as TrackFM reuses AIFM in the
 * paper.
 */

#ifndef TRACKFM_RUNTIME_FAR_MEM_RUNTIME_HH
#define TRACKFM_RUNTIME_FAR_MEM_RUNTIME_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/remote_backend.hh"
#include "frame_cache.hh"
#include "net/network_model.hh"
#include "object_state_table.hh"
#include "prefetcher.hh"
#include "region_allocator.hh"
#include "remote/remote_node.hh"
#include "sim/cost_params.hh"
#include "sim/cycle_clock.hh"
#include "sim/stats.hh"

namespace tfm
{

class FlightRecorder;
class Observability;

/** Configuration for one far-memory runtime instance. */
struct RuntimeConfig
{
    /// Total far heap (the remote node is sized to hold all of it).
    std::uint64_t farHeapBytes = 64ull << 20;
    /// Local memory available for localized objects.
    std::uint64_t localMemBytes = 16ull << 20;
    /// AIFM object (chunk) size; powers of two, 64 B .. 4 KB typical.
    std::uint32_t objectSizeBytes = 4096;
    /// Enable the stride prefetcher.
    bool prefetchEnabled = true;
    /// Prefetch look-ahead depth in objects.
    std::uint32_t prefetchDepth = 8;

    /** @name Batched data plane (see DESIGN.md "Batched data plane")
     * @{ */
    /// Coalesce prefetch windows and evacuation writebacks into
    /// multi-object network messages.
    bool batchingEnabled = true;
    /// Max object payloads coalesced into one fetch message.
    std::uint32_t fetchBatchMax = 8;
    /// Dirty-writeback buffer flush threshold (objects). The buffer is
    /// also flushed by evacuateAll() and by the age window below.
    std::uint32_t writebackBatchMax = 8;
    /// Age window: flush a non-empty writeback buffer once its oldest
    /// entry is this many cycles old (bounds remote-copy staleness).
    std::uint64_t writebackFlushCycles = 200000;
    /** @} */

    /// Guard-level last-object inline cache (TfmRuntime): repeated hits
    /// on the same object skip the object-state-table lookup.
    bool guardCacheEnabled = true;

    /** @name Paged data plane (hybrid path arbiter; DESIGN.md §4l)
     *
     * Sites the arbiter routes to the paging plane are backed by a
     * fastswap-style residency model sharing this runtime's clock and
     * network link. The paged plane is a cost/residency model only:
     * data still lives in the far heap and moves through rawRead /
     * rawWrite, so plane choice can never change program results.
     * @{ */
    /// Page size for the paged plane (kernel-style 4 KB).
    std::uint32_t pagedPageSizeBytes = 4096;
    /// Local memory budget for paged-plane resident pages; 0 means
    /// "share the guard plane's budget" (localMemBytes).
    std::uint64_t pagedLocalMemBytes = 0;
    /// Fault-side readahead window in pages (fastswap-style).
    bool pagedReadaheadEnabled = true;
    std::uint32_t pagedReadaheadPages = 8;
    /** @} */

    /** @name Concurrent runtime (DESIGN.md §4k)
     * @{ */
    /// Allow multiple worker threads to share this runtime. Off by
    /// default: the deterministic single-stream mode is what the
    /// record/replay and byte-identity gates run against. When on, the
    /// stride prefetcher is disabled (the MT data plane is demand-only)
    /// and a flight recorder must not be attached.
    bool concurrent = false;
    /// Frame-cache lock stripes (power of two; 0 or 1 = the seed's
    /// single-shard cache). Honored in single-thread mode too, for the
    /// sharding equivalence tests.
    std::uint32_t cacheShards = 1;
    /** @} */

    /// Remote-tier topology: shard count, replication factor, failure
    /// plan, per-shard bandwidth. The default (1 shard, 1 copy) keeps
    /// the original single-server backend.
    ClusterConfig cluster;

    /// Observability sink (tracing, histograms, time series). When
    /// null, falls back to the process-wide default installed by the
    /// bench-level --trace flag (obs::defaultSink()); when that is also
    /// null, every emission site reduces to one pointer check.
    Observability *obs = nullptr;
    /// Stream label registered with the sink; the wrapper runtimes
    /// override it ("trackfm", "aifm") so traces name the whole stack.
    const char *obsKind = "farmem";
    /// Per-instance override for obsKind. Multi-tenant serving runs
    /// several runtimes in one process; naming each tenant's stream
    /// ("tenant0-memcached") keeps their trace tracks apart. Empty
    /// keeps obsKind.
    std::string obsLabel;

    /// Flight recorder (record or replay; see obs/flight_recorder.hh).
    /// When null, falls back to the process-wide default installed by
    /// the bench-level --record/--replay flags (obs::defaultRecorder());
    /// when that is also null, recording is off and the choke points
    /// reduce to one pointer check each. In replay mode the remote
    /// backend is replaced by a ReplayBackend and the evacuator and
    /// prefetcher decisions are verified against the recorded streams.
    FlightRecorder *recorder = nullptr;
};

/** Hot-path runtime event counters. */
struct RuntimeStats
{
    std::uint64_t demandFetches = 0;   ///< blocking remote object fetches
    std::uint64_t prefetchIssued = 0;
    std::uint64_t prefetchHits = 0;    ///< access found a prefetched object
    std::uint64_t prefetchLateHits = 0;///< ... but had to wait for arrival
    std::uint64_t evictions = 0;
    std::uint64_t dirtyWritebacks = 0;
    std::uint64_t localizeCalls = 0;
    std::uint64_t prefetchBatches = 0; ///< coalesced prefetch messages
    std::uint64_t inflightJoins = 0;   ///< localize joined an in-flight fetch
    std::uint64_t writebackFlushes = 0;///< writeback-buffer batch flushes
    std::uint64_t writebackBufferHits = 0; ///< re-localized from the buffer

    /** Element-wise sum (merging per-worker counter sets on report). */
    RuntimeStats &operator+=(const RuntimeStats &other);
};

/**
 * The far-memory object runtime facade.
 *
 * All methods charge simulated cycles for the runtime work they model
 * (fetches, evictions, allocation); guard costs are charged by the layer
 * above (tfm/ or aifmlib/), mirroring the paper's split between
 * compiler-injected code and the AIFM runtime.
 */
class FarMemRuntime
{
  public:
    /** What localize() had to do to make the object local. */
    enum class Localized
    {
        AlreadyLocal,  ///< object was present and safe
        PrefetchWait,  ///< present but in flight; waited for arrival
        RemoteFetch    ///< blocking demand fetch from the remote node
    };

    FarMemRuntime(const RuntimeConfig &config, const CostParams &cost_params);

    /** @name Simulation plumbing
     * @{ */
    /** The calling thread's clock: the bound worker's private clock on
     *  a worker thread, the runtime's main clock otherwise. */
    CycleClock &clock();
    const CycleClock &clock() const;
    /** The remote tier this runtime drives (single node or cluster). */
    RemoteBackend &backend() { return *backend_; }
    const RemoteBackend &backend() const { return *backend_; }
    /** Shard 0's link / node: the whole tier in single-node configs. */
    NetworkModel &net() { return backend_->link(0); }
    RemoteNode &remote() { return backend_->node(0); }
    const CostParams &costs() const { return _costs; }
    const RuntimeConfig &config() const { return cfg; }
    ObjectStateTable &stateTable() { return ost; }
    FrameCache &frameCache() { return cache; }
    /** @} */

    /** @name Allocation (the unified ADS object pool)
     * @{ */
    /** Allocate @p bytes of far memory; returns the far-heap offset. */
    std::uint64_t allocate(std::uint64_t bytes);
    /** Free a prior allocation. */
    void deallocate(std::uint64_t offset);
    /** Rounded size of a live allocation. */
    std::uint64_t sizeOf(std::uint64_t offset) const;
    const RegionAllocator &allocator() const { return alloc_; }
    /** @} */

    /** @name Object access
     * @{ */
    /**
     * Ensure the object containing @p offset is local and return a host
     * pointer to the byte at @p offset. Charges fetch/wait costs but not
     * guard costs.
     */
    std::byte *localize(std::uint64_t offset, bool for_write,
                        Localized *outcome = nullptr);

    /**
     * The fast-path check: if the object is present and safe, mark usage
     * and return the host pointer; otherwise return nullptr with no side
     * effects. Charges nothing (the guard charges its own cycles).
     */
    std::byte *tryFast(std::uint64_t offset, bool for_write);

    /** Is the object containing @p offset currently localized? */
    bool
    isLocal(std::uint64_t offset) const
    {
        return ost[ost.objectOf(offset)].present();
    }

    /** Pin the object containing @p offset (loop-chunk locality guard). */
    void pinObject(std::uint64_t obj_id);
    /** Undo pinObject(). */
    void unpinObject(std::uint64_t obj_id);
    /** @} */

    /** @name Prefetch
     * @{ */
    /**
     * Issue asynchronous fetches for up to @p count objects starting at
     * @p obj_id + @p stride (compiler-directed prefetch, section 4.3).
     */
    void prefetchObjects(std::uint64_t obj_id, std::int64_t stride,
                         std::uint32_t count);
    /** @} */

    /** @name Initialization / verification (no cycle accounting)
     * @{ */
    /** Write through to both the local copy (if any) and the remote. */
    void rawWrite(std::uint64_t offset, const void *src, std::size_t len);
    /** Read the current value wherever it lives. */
    void rawRead(std::uint64_t offset, void *dst, std::size_t len);
    /** @} */

    /**
     * Drop every localized object (writing back dirty ones) so a
     * measurement can start from a fully remote heap.
     */
    void evacuateAll();

    /**
     * Push every buffered dirty writeback to the remote node as one
     * coalesced message. Safe to call with an empty buffer. Charged as
     * normal data-plane traffic (unlike evacuateAll's raw flush).
     */
    void flushWritebacks();

    /** Dirty objects currently parked in the writeback buffer. */
    std::uint64_t pendingWritebacks() const { return wbBuf.size(); }

    /**
     * Monotone counter bumped whenever any frame is unmapped (eviction
     * or evacuation). Guard-level inline caches compare it to detect
     * that a cached object->frame translation may have gone stale; the
     * concurrent runtime additionally uses it as the epoch-based
     * reclamation clock (each retired frame is stamped with the bump
     * its eviction produced).
     */
    std::uint64_t evictionEpoch() const { return _evictionEpoch.load(); }

    /** The calling thread's counter set (bound worker's, else main). */
    const RuntimeStats &stats() const;
    /** Main-thread counters plus every registered worker's (exact under
     *  concurrency: each set is single-writer). */
    RuntimeStats mergedStats() const;
    void exportStats(StatSet &set) const;

    /**
     * FNV-1a over the logical far heap (local frames, parked
     * writebacks, and remote bytes merged, exactly as rawRead sees
     * them): the record/replay bit-exactness witness.
     */
    std::uint64_t heapChecksum();

    /** The attached flight recorder (or nullptr) and this runtime's
     *  recorder instance id. */
    FlightRecorder *recorder() const { return rec_; }
    std::uint16_t recorderInstance() const { return recInstance_; }

    /** @name Observability
     *  The attached sink (or nullptr) and this runtime's trace stream.
     *  TfmRuntime / AifmRuntime reuse both so a whole stack shares one
     *  Perfetto "process".
     * @{ */
    Observability *obs() const { return obs_; }
    std::uint32_t obsStream() const { return obsStream_; }
    /** @} */

  private:
    /** One dirty object parked for a coalesced writeback. */
    struct PendingWriteback
    {
        std::uint64_t objId = 0;
        std::uint64_t parkCycle = 0; ///< clock when parked (residency)
        std::vector<std::byte> data;
    };

    /** Find a frame for @p obj_id's shard, evicting a victim if needed
     *  (deterministic single-thread path). */
    std::uint64_t takeFrame(std::uint64_t obj_id);
    /** Evict the object in @p frame_idx (writeback when dirty). */
    void evictFrame(std::uint64_t frame_idx);
    /**
     * Evacuator decision feed: record (or replay-verify) the CLOCK
     * sweep's victim choice, returning the victim to evict — during
     * replay, the recorded one.
     */
    std::uint64_t evacDecision(std::uint64_t victim);
    /** Demand-miss hook: train the prefetcher and issue lookahead. */
    void onDemandMiss(std::uint64_t obj_id);
    /** Flush the writeback buffer when size/age thresholds are hit. */
    void maybeFlushWritebacks();
    /** Index into wbBuf for @p obj_id, or -1 when not buffered. */
    std::ptrdiff_t findPendingWriteback(std::uint64_t obj_id) const;
    /** Epoch time-series snapshot (occupancy, buffer depth, wire bytes). */
    void obsEpochSample();

    RuntimeConfig cfg;
    CostParams _costs;
    CycleClock _clock;
    std::unique_ptr<RemoteBackend> backend_;
    ObjectStateTable ost;
    FrameCache cache;
    RegionAllocator alloc_;
    StridePrefetcher prefetcher;
    RuntimeStats _stats;
    std::vector<PendingWriteback> wbBuf;
    std::uint64_t wbOldestCycle = 0; ///< clock when wbBuf[0] was parked
    /// Eviction-epoch clock; seq_cst (see DESIGN.md §4k reclamation
    /// proof). Plain increments in the deterministic path compile to
    /// the same uncontended RMW.
    std::atomic<std::uint64_t> _evictionEpoch{0};
    Observability *obs_ = nullptr;
    std::uint32_t obsStream_ = 0;
    FlightRecorder *rec_ = nullptr;
    std::uint16_t recInstance_ = 0;
    std::uint64_t lastMissObj = ~0ull; ///< inter-miss-distance tracking

  public:
    /** @name Concurrent runtime (DESIGN.md §4k)
     *
     * Worker threads register a WorkerContext each and bind it to their
     * thread. Reads go through a lock-free fast path (one object-state
     * snapshot inside an epoch section); misses and all writes take the
     * object's frame-cache shard lock. Evicted frames park in the
     * shard's limbo list until every worker has passed the eviction's
     * epoch, so a lock-free reader can never touch a reused frame.
     *
     * Lock order: shard mutex < worker wbMu / mainWbMu_ < netMu_.
     * Epoch sections never acquire any lock (that is what makes the
     * quiescence wait in takeFrameMt deadlock-free).
     * @{ */

    /** Quiescent epoch-slot value (worker not inside an epoch section). */
    static constexpr std::uint64_t quiescentEpoch = ~0ull;

    /** Per-worker-thread runtime state: private clock, private counter
     *  set, epoch slot, and private dirty-writeback buffer. */
    struct WorkerContext
    {
        CycleClock clock;     ///< this worker's simulated time
        RuntimeStats stats;   ///< single-writer counters, merged on report
        /// Epoch observed at epochEnter(), quiescentEpoch outside any
        /// epoch section. seq_cst: the reclamation proof needs slot
        /// stores and meta/epoch loads in one total order.
        std::atomic<std::uint64_t> epochSlot{quiescentEpoch};
        std::uint32_t index = 0;
        FarMemRuntime *owner = nullptr;

        std::mutex wbMu; ///< guards wbBuf (leaf lock, see lock order)
        std::vector<PendingWriteback> wbBuf;
        std::uint64_t wbOldestCycle = 0;
    };

    /** What a successful MT fast read hands the guard layer so it can
     *  fill its last-object inline cache. */
    struct MtFill
    {
        bool valid = false;
        std::uint64_t objId = 0;
        std::uint64_t epoch = 0; ///< eviction epoch the fill is valid for
        std::byte *frameBase = nullptr;
        ObjectMeta *meta = nullptr;
        Frame *frame = nullptr;
    };

    /** Create a worker context (call before starting worker threads;
     *  not thread-safe against running workers). */
    WorkerContext *registerWorker();
    /** Bind @p w to the calling thread; routes clock()/stats() here. */
    void bindWorker(WorkerContext *w);
    /** Remove the calling thread's binding. */
    void unbindWorker();
    /** The calling thread's bound context, or nullptr. */
    WorkerContext *boundWorker() const;
    const std::vector<std::unique_ptr<WorkerContext>> &workers() const
    {
        return workers_;
    }

    /**
     * Lock-free guarded read attempt: one raw() snapshot of the object
     * state inside an epoch section; on a safe hit, copies @p len bytes
     * at @p offset into @p dst, marks usage, and (optionally) fills
     * @p fill for the guard inline cache. Returns false on any miss
     * (remote, in flight) with no side effects.
     */
    bool tryFastReadMt(WorkerContext &w, std::uint64_t offset, void *dst,
                       std::size_t len, MtFill *fill);

    /**
     * Validate a previous MtFill (the guard layer's last-object inline
     * cache) inside an epoch section and, on a hit, copy out through
     * it. An unchanged eviction epoch proves the object->frame
     * translation is still live; any eviction since the fill misses and
     * the guard falls back to tryFastReadMt, which refills.
     */
    bool tryCachedReadMt(WorkerContext &w, const MtFill &fill,
                         std::uint64_t offset, void *dst, std::size_t len);

    /**
     * Slow-path guarded read: takes the object's shard lock, localizes
     * if needed (stealing a parked writeback copy or fetching), and
     * copies out under the lock.
     */
    void localizeReadMt(WorkerContext &w, std::uint64_t offset, void *dst,
                        std::size_t len, MtFill *fill,
                        Localized *outcome = nullptr);

    /**
     * Guarded write: always takes the shard lock (no lock-free write
     * path — two racing writers to one object must serialize), localizes
     * if needed, copies @p src in, and marks the object dirty.
     * @p was_present reports whether the object was already local (the
     * guard layer charges the fast- or slow-path write cost on it).
     */
    void localizeWriteMt(WorkerContext &w, std::uint64_t offset,
                         const void *src, std::size_t len,
                         bool *was_present, Localized *outcome = nullptr);

    /** Push @p w's parked dirty objects to the remote tier as one
     *  coalesced message (metered; takes wbMu then netMu_). */
    void flushWorkerWritebacks(WorkerContext &w);

    /**
     * Main-thread drain of every worker's parked writebacks after the
     * workers have been joined (unmetered raw writes, like
     * evacuateAll's flush).
     */
    void drainWorkerWritebacks();

    /** @} */

  private:
    /** Enter/exit an epoch section (lock-free readers only). */
    void
    epochEnter(WorkerContext &w)
    {
        w.epochSlot.store(_evictionEpoch.load());
    }
    void epochExit(WorkerContext &w) { w.epochSlot.store(quiescentEpoch); }
    /** Minimum epoch slot over all workers (quiescent = +inf). */
    std::uint64_t minActiveEpoch() const;
    /** Frame acquisition under @p shard's lock: alloc, reclaim limbo,
     *  evict, or spin-yield for reader quiescence. */
    std::uint64_t takeFrameMt(WorkerContext &w, std::uint32_t shard);
    /** Unmap + retire the frame to limbo (caller holds the shard lock);
     *  dirty payloads park in @p w's private buffer. */
    void evictFrameMt(WorkerContext &w, std::uint32_t shard,
                      std::uint64_t frame_idx);
    /** Synchronous fetch on the shared device clock (netMu_; jumps the
     *  device clock to @p w's time and back). */
    void fetchMt(WorkerContext &w, std::uint64_t obj_id, std::byte *data);
    /** Pull a parked dirty copy of @p obj_id out of any writeback
     *  buffer (workers' and the main thread's) into @p dst. */
    bool stealParkedWriteback(std::uint64_t obj_id, std::byte *dst);
    /** Size/age-triggered flush of @p w's buffer. */
    void maybeFlushWorkerWritebacks(WorkerContext &w);

    std::vector<std::unique_ptr<WorkerContext>> workers_;
    std::mutex netMu_;    ///< serializes shared backend/device access
    std::mutex allocMu_;  ///< serializes the region allocator when concurrent
    std::mutex mainWbMu_; ///< workers stealing from the main-thread wbBuf
    std::atomic<std::uint64_t> parkedCount_{0}; ///< hint: skip steal scans
    static thread_local WorkerContext *tlsWorker_;
};

} // namespace tfm

#endif // TRACKFM_RUNTIME_FAR_MEM_RUNTIME_HH
