/**
 * @file
 * Per-object metadata entry, mirroring the AIFM local/remote formats the
 * paper reproduces in Figure 3.
 *
 * Each entry is 8 bytes. TrackFM's object state table (section 3.2) is a
 * flat array of these entries indexed by object ID, which lets the
 * compiler-injected guard derive object state with a single indexed load
 * instead of AIFM's two dependent references.
 *
 * Local format (present=1):  flags | frame index of the localized copy.
 * Remote format (present=0): flags only; the payload lives at
 *                            objId * objectSize in the remote node.
 */

#ifndef TRACKFM_RUNTIME_OBJECT_META_HH
#define TRACKFM_RUNTIME_OBJECT_META_HH

#include <atomic>
#include <cstdint>

namespace tfm
{

/**
 * One 8-byte object state entry.
 *
 * Bit layout (from the top):
 *   63  present      object has a localized copy in the frame cache
 *   62  dirty        localized copy differs from the remote copy
 *   61  inflight     an asynchronous prefetch has been issued but the
 *                    payload may not have arrived yet
 *   60  pinned       a loop-chunk locality guard pinned the object
 *   59  hot          accessed since the evacuator last scanned it
 *   39..0            frame index (valid only when present)
 *
 * The fast-path guard's safety test is a single mask: the object is safe
 * for direct access iff present is set and inflight is clear — the same
 * "certain bits cleared" test the paper lowers to one x86 test
 * instruction (Fig. 4b line 6).
 */
class ObjectMeta
{
  public:
    static constexpr std::uint64_t presentBit = 1ull << 63;
    static constexpr std::uint64_t dirtyBit = 1ull << 62;
    static constexpr std::uint64_t inflightBit = 1ull << 61;
    static constexpr std::uint64_t pinnedBit = 1ull << 60;
    static constexpr std::uint64_t hotBit = 1ull << 59;
    static constexpr std::uint64_t frameMask = (1ull << 40) - 1;

    ObjectMeta() : bits(0) {}

    bool present() const { return raw() & presentBit; }
    bool dirty() const { return raw() & dirtyBit; }
    bool inflight() const { return raw() & inflightBit; }
    bool pinned() const { return raw() & pinnedBit; }
    bool hot() const { return raw() & hotBit; }

    /**
     * The guard fast path's safety predicate: localized and not mid-
     * prefetch. Exactly one branch in the generated guard.
     */
    bool safeForFastPath() const { return rawSafe(raw()); }

    std::uint64_t frame() const { return raw() & frameMask; }

    void
    makeLocal(std::uint64_t frame_idx)
    {
        bits.store(presentBit | (frame_idx & frameMask));
    }

    void makeRemote() { bits.store(0); }

    void setDirty() { bits.fetch_or(dirtyBit); }
    void clearDirty() { bits.fetch_and(~dirtyBit); }
    void setInflight() { bits.fetch_or(inflightBit); }
    void clearInflight() { bits.fetch_and(~inflightBit); }
    void setPinned() { bits.fetch_or(pinnedBit); }
    void clearPinned() { bits.fetch_and(~pinnedBit); }
    void setHot() { bits.fetch_or(hotBit); }
    void clearHot() { bits.fetch_and(~hotBit); }

    /**
     * One coherent snapshot of the word. The concurrent guard fast path
     * must load raw() exactly once and decode frame/safety from that
     * single value — two separate loads could straddle an eviction and
     * pair a stale frame index with a fresh safety bit.
     */
    std::uint64_t raw() const { return bits.load(); }

    /** @name Decode helpers for a raw() snapshot
     * @{ */
    static bool
    rawSafe(std::uint64_t raw_bits)
    {
        return (raw_bits & (presentBit | inflightBit)) == presentBit;
    }
    static std::uint64_t rawFrame(std::uint64_t raw_bits)
    {
        return raw_bits & frameMask;
    }
    /** @} */

  private:
    /**
     * seq_cst throughout: the epoch-reclamation proof in DESIGN.md §4k
     * relies on a single total order over meta publications, epoch
     * bumps, and worker epoch-slot stores. On x86 the loads compile to
     * plain movs, so the single-thread fast path is unchanged.
     */
    std::atomic<std::uint64_t> bits;
};

static_assert(sizeof(ObjectMeta) == 8, "state table entries must be 8 bytes");

} // namespace tfm

#endif // TRACKFM_RUNTIME_OBJECT_META_HH
