#include "frame_cache.hh"

#include "sim/logging.hh"

namespace tfm
{

FrameCache::FrameCache(std::uint64_t local_bytes, std::uint32_t frame_size)
    : _frameSize(frame_size)
{
    const std::uint64_t count = local_bytes / frame_size;
    TFM_ASSERT(count >= 2, "local memory must hold at least two objects");
    arena = std::make_unique<std::byte[]>(
        static_cast<std::size_t>(count) * frame_size);
    frames.resize(count);
    freeList.reserve(count);
    // Hand out low frame indices first for reproducibility.
    for (std::uint64_t i = count; i-- > 0;)
        freeList.push_back(i);
}

std::uint64_t
FrameCache::allocFrame()
{
    if (freeList.empty())
        return noFrame;
    const std::uint64_t idx = freeList.back();
    freeList.pop_back();
    Frame &f = frames[idx];
    f.used = true;
    f.refbit = true;
    f.pins = 0;
    f.arrivalCycle = 0;
    return idx;
}

std::uint64_t
FrameCache::pickVictim()
{
    // Two full sweeps: the first clears reference bits, so the second is
    // guaranteed to find an unpinned frame if one exists.
    const std::uint64_t limit = frames.size() * 2;
    for (std::uint64_t step = 0; step < limit; step++) {
        Frame &f = frames[clockHand];
        const std::uint64_t idx = clockHand;
        clockHand = (clockHand + 1) % frames.size();
        if (!f.used || f.pins > 0)
            continue;
        if (f.refbit) {
            f.refbit = false;
            continue;
        }
        return idx;
    }
    return noFrame;
}

void
FrameCache::releaseFrame(std::uint64_t frame_idx)
{
    Frame &f = frames[frame_idx];
    TFM_ASSERT(f.used, "releasing a free frame");
    TFM_ASSERT(f.pins == 0, "releasing a pinned frame");
    f.used = false;
    f.refbit = false;
    freeList.push_back(frame_idx);
}

} // namespace tfm
