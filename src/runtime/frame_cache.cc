#include "frame_cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tfm
{

namespace
{

std::uint64_t
frameCount(std::uint64_t local_bytes, std::uint32_t frame_size)
{
    const std::uint64_t count = local_bytes / frame_size;
    TFM_ASSERT(count >= 2, "local memory must hold at least two objects");
    return count;
}

} // anonymous namespace

FrameCache::FrameCache(std::uint64_t local_bytes, std::uint32_t frame_size,
                       std::uint32_t shard_count)
    : _frameSize(frame_size),
      frames(frameCount(local_bytes, frame_size)),
      shards(shard_count)
{
    const std::uint64_t count = frames.size();
    TFM_ASSERT(shard_count >= 1 &&
                   (shard_count & (shard_count - 1)) == 0,
               "frame-cache shard count must be a power of two");
    TFM_ASSERT(count >= 2 * shard_count,
               "each frame-cache shard must hold at least two frames");
    arena = std::make_unique<std::byte[]>(
        static_cast<std::size_t>(count) * frame_size);
    if (shard_count > 1) {
        std::uint32_t log2 = 0;
        while ((1u << log2) < shard_count)
            log2++;
        shardShift_ = 64 - log2;
    }
    // Contiguous ranges; the first (count % shards) shards get one
    // extra frame. Free lists are filled descending so allocation hands
    // out low frame indices first, exactly like the pre-sharding cache.
    const std::uint64_t base = count / shard_count;
    const std::uint64_t extra = count % shard_count;
    std::uint64_t lo = 0;
    for (std::uint32_t s = 0; s < shard_count; s++) {
        Shard &sh = shards[s];
        sh.lo = lo;
        sh.hi = lo + base + (s < extra ? 1 : 0);
        sh.clockHand = sh.lo;
        sh.freeList.reserve(sh.hi - sh.lo);
        for (std::uint64_t i = sh.hi; i-- > sh.lo;)
            sh.freeList.push_back(i);
        lo = sh.hi;
    }
    TFM_ASSERT(lo == count, "shard ranges must cover every frame");
}

std::uint32_t
FrameCache::shardOfFrame(std::uint64_t frame_idx) const
{
    // Shards are few (<= 64) and sorted; a linear scan is off the hot
    // path (eviction / evacuation only).
    for (std::uint32_t s = 0; s < shards.size(); s++) {
        if (frame_idx < shards[s].hi)
            return s;
    }
    TFM_ASSERT(false, "frame index beyond every shard range");
    return 0;
}

std::uint64_t
FrameCache::freeFrames() const
{
    std::uint64_t total = 0;
    for (const Shard &sh : shards)
        total += sh.freeList.size();
    return total;
}

std::uint64_t
FrameCache::usedFrames() const
{
    std::uint64_t limbo = 0;
    for (const Shard &sh : shards)
        limbo += sh.limbo.size();
    return frames.size() - freeFrames() - limbo;
}

std::uint64_t
FrameCache::allocFrameIn(std::uint32_t shard)
{
    Shard &sh = shards[shard];
    if (sh.freeList.empty())
        return noFrame;
    const std::uint64_t idx = sh.freeList.back();
    sh.freeList.pop_back();
    Frame &f = frames[idx];
    f.used = true;
    f.refbit.store(true, std::memory_order_relaxed);
    f.pins.store(0, std::memory_order_relaxed);
    f.arrivalCycle = 0;
    return idx;
}

std::uint64_t
FrameCache::pickVictimIn(std::uint32_t shard)
{
    Shard &sh = shards[shard];
    // Two full sweeps: the first clears reference bits, so the second is
    // guaranteed to find an unpinned frame if one exists.
    const std::uint64_t span = sh.hi - sh.lo;
    const std::uint64_t limit = span * 2;
    for (std::uint64_t step = 0; step < limit; step++) {
        Frame &f = frames[sh.clockHand];
        const std::uint64_t idx = sh.clockHand;
        sh.clockHand++;
        if (sh.clockHand == sh.hi)
            sh.clockHand = sh.lo;
        if (!f.used || f.pins.load(std::memory_order_relaxed) > 0)
            continue;
        if (f.refbit.load(std::memory_order_relaxed)) {
            f.refbit.store(false, std::memory_order_relaxed);
            continue;
        }
        return idx;
    }
    return noFrame;
}

void
FrameCache::retireFrame(std::uint32_t shard, std::uint64_t frame_idx,
                        std::uint64_t epoch_stamp)
{
    Shard &sh = shards[shard];
    Frame &f = frames[frame_idx];
    TFM_ASSERT(f.used, "retiring a free frame");
    TFM_ASSERT(f.pins.load(std::memory_order_relaxed) == 0,
               "retiring a pinned frame");
    f.used = false;
    f.refbit.store(false, std::memory_order_relaxed);
    sh.limbo.push_back({frame_idx, epoch_stamp});
}

std::uint64_t
FrameCache::reclaimFrames(std::uint32_t shard,
                          std::uint64_t min_active_epoch)
{
    Shard &sh = shards[shard];
    std::uint64_t reclaimed = 0;
    for (std::size_t i = 0; i < sh.limbo.size();) {
        if (sh.limbo[i].stamp <= min_active_epoch) {
            // Safe: every thread still inside an epoch section entered
            // it after this frame was unmapped, so none can hold a
            // pointer into it (DESIGN.md §4k).
            sh.freeList.push_back(sh.limbo[i].frameIdx);
            sh.limbo[i] = sh.limbo.back();
            sh.limbo.pop_back();
            reclaimed++;
        } else {
            i++;
        }
    }
    return reclaimed;
}

std::uint64_t
FrameCache::allocFrame()
{
    TFM_ASSERT(shards.size() == 1,
               "allocFrame() without a shard is single-shard only");
    return allocFrameIn(0);
}

std::uint64_t
FrameCache::pickVictim()
{
    TFM_ASSERT(shards.size() == 1,
               "pickVictim() without a shard is single-shard only");
    return pickVictimIn(0);
}

void
FrameCache::releaseFrame(std::uint64_t frame_idx)
{
    Frame &f = frames[frame_idx];
    TFM_ASSERT(f.used, "releasing a free frame");
    TFM_ASSERT(f.pins.load(std::memory_order_relaxed) == 0,
               "releasing a pinned frame");
    f.used = false;
    f.refbit.store(false, std::memory_order_relaxed);
    shards[shardOfFrame(frame_idx)].freeList.push_back(frame_idx);
}

} // namespace tfm
