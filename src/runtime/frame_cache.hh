/**
 * @file
 * Local-memory frame cache: the "hot" tier that holds localized objects.
 *
 * Local memory is divided into object-size frames backed by one arena
 * allocation. Victim selection uses the CLOCK approximation of LRU with
 * pin counts, matching AIFM's hotness-driven evacuation at the fidelity
 * the figures need (hot objects stay, cold objects leave).
 */

#ifndef TRACKFM_RUNTIME_FRAME_CACHE_HH
#define TRACKFM_RUNTIME_FRAME_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace tfm
{

/** Book-keeping for one local frame. */
struct Frame
{
    std::uint64_t objId = 0;       ///< object currently resident
    std::uint64_t arrivalCycle = 0; ///< when an async fetch completes
    std::uint32_t pins = 0;        ///< loop-chunk pin count
    bool used = false;             ///< frame holds a live object
    bool refbit = false;           ///< CLOCK reference bit
};

/**
 * Fixed-capacity frame pool with CLOCK victim selection.
 *
 * The cache itself never talks to the network; the runtime asks for a
 * victim, performs the writeback, and then reassigns the frame.
 */
class FrameCache
{
  public:
    FrameCache(std::uint64_t local_bytes, std::uint32_t frame_size);

    std::uint64_t numFrames() const { return frames.size(); }
    std::uint32_t frameSize() const { return _frameSize; }
    std::uint64_t freeFrames() const { return freeList.size(); }
    std::uint64_t usedFrames() const { return frames.size() - freeList.size(); }

    /** Host pointer to the frame's payload. */
    std::byte *
    frameData(std::uint64_t frame_idx)
    {
        return arena.get() +
               static_cast<std::size_t>(frame_idx) * _frameSize;
    }

    Frame &frame(std::uint64_t frame_idx) { return frames[frame_idx]; }

    /**
     * Take a free frame if one exists.
     * @return frame index, or noFrame when the cache is full.
     */
    std::uint64_t allocFrame();

    /**
     * Pick an eviction victim with the CLOCK sweep, skipping pinned
     * frames and clearing reference bits on the way.
     *
     * @return victim frame index, or noFrame when every frame is pinned.
     */
    std::uint64_t pickVictim();

    /** Return a frame to the free list. */
    void releaseFrame(std::uint64_t frame_idx);

    static constexpr std::uint64_t noFrame = ~0ull;

  private:
    std::uint32_t _frameSize;
    std::unique_ptr<std::byte[]> arena;
    std::vector<Frame> frames;
    std::vector<std::uint64_t> freeList;
    std::uint64_t clockHand = 0;
};

} // namespace tfm

#endif // TRACKFM_RUNTIME_FRAME_CACHE_HH
