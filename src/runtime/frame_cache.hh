/**
 * @file
 * Local-memory frame cache: the "hot" tier that holds localized objects.
 *
 * Local memory is divided into object-size frames backed by one arena
 * allocation. Victim selection uses the CLOCK approximation of LRU with
 * pin counts, matching AIFM's hotness-driven evacuation at the fidelity
 * the figures need (hot objects stay, cold objects leave).
 *
 * The cache is lock-striped into N shards (DESIGN.md §4k): frames are
 * partitioned into contiguous shard ranges, objects map to shards by a
 * multiplicative hash of their id, and each shard carries its own
 * mutex, free list, CLOCK hand, and limbo list. With one shard (the
 * default) the sweep order, free-list order, and victim choices are
 * byte-identical to the pre-sharding cache, which the deterministic
 * replay gates rely on.
 */

#ifndef TRACKFM_RUNTIME_FRAME_CACHE_HH
#define TRACKFM_RUNTIME_FRAME_CACHE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace tfm
{

/**
 * Book-keeping for one local frame.
 *
 * pins and refbit are atomic because the concurrent guard fast path
 * touches them without the shard lock (refbit marking, transient
 * prefetch pins); every other field is written only under the owning
 * shard's mutex or in single-thread mode.
 */
struct Frame
{
    std::uint64_t objId = 0;        ///< object currently resident
    std::uint64_t arrivalCycle = 0; ///< when an async fetch completes
    std::atomic<std::uint32_t> pins{0}; ///< loop-chunk pin count
    bool used = false;              ///< frame holds a live object
    std::atomic<bool> refbit{false}; ///< CLOCK reference bit
};

/**
 * Fixed-capacity frame pool with per-shard CLOCK victim selection.
 *
 * The cache itself never talks to the network; the runtime asks for a
 * victim, performs the writeback, and then reassigns the frame. Under
 * concurrency the runtime additionally parks evicted frames in the
 * shard's limbo list (retireFrame) until every worker thread has passed
 * the eviction's epoch (reclaimFrames) — the epoch-based reclamation
 * protocol that makes the lock-free guard fast path safe.
 */
class FrameCache
{
  public:
    FrameCache(std::uint64_t local_bytes, std::uint32_t frame_size,
               std::uint32_t shard_count = 1);

    std::uint64_t numFrames() const { return frames.size(); }
    std::uint32_t frameSize() const { return _frameSize; }
    std::uint32_t numShards() const
    {
        return static_cast<std::uint32_t>(shards.size());
    }
    std::uint64_t freeFrames() const;
    std::uint64_t usedFrames() const;

    /** Shard owning @p obj_id's frames (Fibonacci multiplicative hash;
     *  always 0 with a single shard). */
    std::uint32_t
    shardOf(std::uint64_t obj_id) const
    {
        if (shards.size() == 1)
            return 0;
        return static_cast<std::uint32_t>(
            (obj_id * 0x9e3779b97f4a7c15ull) >> shardShift_);
    }

    /** Shard owning frame @p frame_idx (contiguous ranges). */
    std::uint32_t shardOfFrame(std::uint64_t frame_idx) const;

    /** The shard's lock stripe; the runtime holds it across victim
     *  selection, eviction, and frame fill. */
    std::mutex &shardMutex(std::uint32_t shard)
    {
        return shards[shard].mu;
    }

    /** Host pointer to the frame's payload. */
    std::byte *
    frameData(std::uint64_t frame_idx)
    {
        return arena.get() +
               static_cast<std::size_t>(frame_idx) * _frameSize;
    }

    Frame &frame(std::uint64_t frame_idx) { return frames[frame_idx]; }

    /** @name Shard-aware allocation (caller holds the shard mutex when
     *  concurrent)
     * @{ */
    /** Take a free frame from @p shard, or noFrame when it is full. */
    std::uint64_t allocFrameIn(std::uint32_t shard);

    /**
     * Pick an eviction victim with @p shard's CLOCK sweep, skipping
     * pinned frames and clearing reference bits on the way.
     *
     * @return victim frame index, or noFrame when every frame of the
     *         shard is pinned or in limbo.
     */
    std::uint64_t pickVictimIn(std::uint32_t shard);

    /**
     * Park an evicted frame in the shard's limbo list, stamped with the
     * eviction epoch that unmapped it. The frame is invisible to CLOCK
     * (used=false) but its payload must stay intact until reclaimed.
     */
    void retireFrame(std::uint32_t shard, std::uint64_t frame_idx,
                     std::uint64_t epoch_stamp);

    /**
     * Move limbo frames whose stamp is <= @p min_active_epoch (the
     * minimum epoch slot over all active worker threads) back to the
     * free list. Returns the number reclaimed.
     */
    std::uint64_t reclaimFrames(std::uint32_t shard,
                                std::uint64_t min_active_epoch);

    /** Frames currently parked in @p shard's limbo list. */
    std::uint64_t
    limboFrames(std::uint32_t shard) const
    {
        return shards[shard].limbo.size();
    }
    /** @} */

    /** @name Single-shard legacy API (Fastswap runtime, unit tests)
     * @{ */
    /** Take a free frame if one exists (single-shard caches only). */
    std::uint64_t allocFrame();
    /** CLOCK victim (single-shard caches only). */
    std::uint64_t pickVictim();
    /** @} */

    /** Return a frame to its shard's free list immediately (the
     *  single-thread eviction path: no limbo, no epoch). */
    void releaseFrame(std::uint64_t frame_idx);

    static constexpr std::uint64_t noFrame = ~0ull;

  private:
    /** One lock stripe: a contiguous frame range with its own CLOCK. */
    struct Shard
    {
        std::mutex mu;
        std::uint64_t lo = 0;  ///< first frame index (inclusive)
        std::uint64_t hi = 0;  ///< last frame index (exclusive)
        std::vector<std::uint64_t> freeList;
        std::uint64_t clockHand = 0;
        /** An unmapped frame awaiting quiescence of every reader. */
        struct Retired
        {
            std::uint64_t frameIdx = 0;
            std::uint64_t stamp = 0; ///< eviction epoch at retirement
        };
        std::vector<Retired> limbo;
    };

    std::uint32_t _frameSize;
    std::unique_ptr<std::byte[]> arena;
    std::vector<Frame> frames;
    std::vector<Shard> shards;
    std::uint32_t shardShift_ = 0; ///< 64 - log2(numShards), shards > 1
};

} // namespace tfm

#endif // TRACKFM_RUNTIME_FRAME_CACHE_HH
