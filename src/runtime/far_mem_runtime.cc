#include "far_mem_runtime.hh"

#include <algorithm>
#include <cstring>
#include <thread>

#include "obs/obs.hh"
#include "obs/replay.hh"
#include "sim/logging.hh"

namespace tfm
{

RuntimeStats &
RuntimeStats::operator+=(const RuntimeStats &other)
{
    demandFetches += other.demandFetches;
    prefetchIssued += other.prefetchIssued;
    prefetchHits += other.prefetchHits;
    prefetchLateHits += other.prefetchLateHits;
    evictions += other.evictions;
    dirtyWritebacks += other.dirtyWritebacks;
    localizeCalls += other.localizeCalls;
    prefetchBatches += other.prefetchBatches;
    inflightJoins += other.inflightJoins;
    writebackFlushes += other.writebackFlushes;
    writebackBufferHits += other.writebackBufferHits;
    return *this;
}

thread_local FarMemRuntime::WorkerContext *FarMemRuntime::tlsWorker_ =
    nullptr;

FarMemRuntime::FarMemRuntime(const RuntimeConfig &config,
                             const CostParams &cost_params)
    : cfg(config),
      _costs(cost_params),
      ost(config.farHeapBytes, config.objectSizeBytes),
      cache(config.localMemBytes, config.objectSizeBytes,
            config.cacheShards ? config.cacheShards : 1),
      alloc_(config.farHeapBytes, config.objectSizeBytes),
      prefetcher(config.prefetchDepth)
{
    rec_ = cfg.recorder ? cfg.recorder : obs::defaultRecorder();
    if (cfg.concurrent) {
        TFM_ASSERT(!rec_, "record/replay needs the deterministic "
                          "single-stream runtime (concurrent=false)");
        TFM_ASSERT(!cfg.cluster.wantsCluster(),
                   "the concurrent runtime drives the single-node "
                   "remote tier (fetchMt charges one link)");
        // The MT data plane is demand-only: speculation would need
        // cross-shard frame traffic under a single shard lock.
        cfg.prefetchEnabled = false;
    }
    if (rec_)
        recInstance_ = rec_->registerInstance();
    if (rec_ && rec_->replaying()) {
        // The recorded stream stands in for the whole remote tier.
        backend_ = std::make_unique<ReplayBackend>(
            _clock, _costs, cfg.farHeapBytes, *rec_, recInstance_);
    } else {
        backend_ = makeRemoteBackend(_clock, _costs, cfg.farHeapBytes,
                                     cfg.objectSizeBytes, cfg.cluster);
        if (rec_) {
            // Context streams (link messages, shard deaths) hook the
            // inner backend; the decorator logs the op stream itself.
            backend_->attachRecorder(rec_, recInstance_);
            backend_ = std::make_unique<RecordingBackend>(
                std::move(backend_), _clock, *rec_, recInstance_);
        }
    }
    obs_ = cfg.obs ? cfg.obs : obs::defaultSink();
    if (obs_) {
        obsStream_ = obs_->registerStream(
            cfg.obsLabel.empty() ? cfg.obsKind : cfg.obsLabel.c_str());
        backend_->attachObs(obs_, obsStream_);
    }
}

CycleClock &
FarMemRuntime::clock()
{
    WorkerContext *w = boundWorker();
    return w ? w->clock : _clock;
}

const CycleClock &
FarMemRuntime::clock() const
{
    const WorkerContext *w = boundWorker();
    return w ? w->clock : _clock;
}

const RuntimeStats &
FarMemRuntime::stats() const
{
    const WorkerContext *w = boundWorker();
    return w ? w->stats : _stats;
}

RuntimeStats
FarMemRuntime::mergedStats() const
{
    RuntimeStats total = _stats;
    for (const auto &ctx : workers_)
        total += ctx->stats;
    return total;
}

FarMemRuntime::WorkerContext *
FarMemRuntime::registerWorker()
{
    TFM_ASSERT(cfg.concurrent,
               "registerWorker() on a deterministic runtime");
    auto ctx = std::make_unique<WorkerContext>();
    ctx->owner = this;
    ctx->index = static_cast<std::uint32_t>(workers_.size());
    // Workers inherit the setup-time clock so their timeline never lags
    // the device clock's link reservations (which cannot rewind).
    ctx->clock.advanceTo(_clock.now());
    workers_.push_back(std::move(ctx));
    return workers_.back().get();
}

void
FarMemRuntime::bindWorker(WorkerContext *w)
{
    TFM_ASSERT(w && w->owner == this, "binding a foreign worker context");
    tlsWorker_ = w;
}

void
FarMemRuntime::unbindWorker()
{
    tlsWorker_ = nullptr;
}

FarMemRuntime::WorkerContext *
FarMemRuntime::boundWorker() const
{
    WorkerContext *w = tlsWorker_;
    return (w && w->owner == this) ? w : nullptr;
}

std::uint64_t
FarMemRuntime::allocate(std::uint64_t bytes)
{
    clock().advance(_costs.allocCycles);
    if (cfg.concurrent) {
        std::lock_guard<std::mutex> g(allocMu_);
        const std::uint64_t offset = alloc_.allocate(bytes);
        TFM_ASSERT(offset != RegionAllocator::badOffset,
                   "far heap exhausted");
        return offset;
    }
    const std::uint64_t offset = alloc_.allocate(bytes);
    TFM_ASSERT(offset != RegionAllocator::badOffset, "far heap exhausted");
    return offset;
}

void
FarMemRuntime::deallocate(std::uint64_t offset)
{
    clock().advance(_costs.allocCycles);
    if (cfg.concurrent) {
        std::lock_guard<std::mutex> g(allocMu_);
        alloc_.deallocate(offset);
        return;
    }
    alloc_.deallocate(offset);
}

std::uint64_t
FarMemRuntime::sizeOf(std::uint64_t offset) const
{
    return alloc_.sizeOf(offset);
}

std::byte *
FarMemRuntime::tryFast(std::uint64_t offset, bool for_write)
{
    const std::uint64_t obj_id = ost.objectOf(offset);
    ObjectMeta &meta = ost[obj_id];
    if (!meta.safeForFastPath())
        return nullptr;
    Frame &f = cache.frame(meta.frame());
    f.refbit = true;
    meta.setHot();
    if (for_write)
        meta.setDirty();
    return cache.frameData(meta.frame()) + ost.offsetInObject(offset);
}

std::byte *
FarMemRuntime::localize(std::uint64_t offset, bool for_write,
                        Localized *outcome)
{
    _stats.localizeCalls++;
    if (obs_ && obs_->seriesDue(obsStream_, _clock.now()))
        obsEpochSample();
    const std::uint64_t obj_id = ost.objectOf(offset);
    ObjectMeta &meta = ost[obj_id];

    if (meta.present()) {
        Frame &f = cache.frame(meta.frame());
        f.refbit = true;
        meta.setHot();
        Localized result = Localized::AlreadyLocal;
        if (meta.inflight()) {
            // An in-flight (possibly batched) fetch already covers this
            // object: join it instead of issuing a duplicate demand
            // fetch, waiting out only the residual latency.
            const bool late = f.arrivalCycle > _clock.now();
            if (obs_) {
                obs_->prefetchWait.record(
                    late ? f.arrivalCycle - _clock.now() : 0);
            }
            _clock.advanceTo(f.arrivalCycle);
            meta.clearInflight();
            _stats.prefetchHits++;
            _stats.inflightJoins++;
            if (late)
                _stats.prefetchLateHits++;
            result = Localized::PrefetchWait;
        }
        if (for_write)
            meta.setDirty();
        if (outcome)
            *outcome = result;
        return cache.frameData(meta.frame()) + ost.offsetInObject(offset);
    }

    // Demand miss. takeFrame() first: its eviction may park further
    // entries in (or flush) the writeback buffer.
    const std::uint64_t missStart = _clock.now();
    const std::uint64_t frame_idx = takeFrame(obj_id);
    std::byte *data = cache.frameData(frame_idx);
    Frame &f = cache.frame(frame_idx);
    f.objId = obj_id;
    f.arrivalCycle = 0;

    const std::ptrdiff_t wb = findPendingWriteback(obj_id);
    if (wb >= 0) {
        // The object was evicted dirty but its payload is still parked
        // in the writeback buffer: resurrect it locally without any
        // network traffic. The remote copy is stale, so it stays dirty.
        std::memcpy(data, wbBuf[static_cast<std::size_t>(wb)].data.data(),
                    ost.objectSize());
        wbBuf.erase(wbBuf.begin() + wb);
        parkedCount_--;
        _clock.advance(_costs.evacuateObjectCycles);
        meta.makeLocal(frame_idx);
        meta.setDirty();
        _stats.writebackBufferHits++;
        if (obs_ && obs_->trace().enabled()) {
            obs_->trace().instant(obsStream_, TrackApp, "wb-resurrect",
                                  "runtime", _clock.now());
            obs_->trace().arg("obj", obj_id);
        }
        if (outcome)
            *outcome = Localized::AlreadyLocal;
        return data + ost.offsetInObject(offset);
    }

    // Blocking fetch from the remote node. A begin/end span (rather
    // than a completed one) keeps the app track timestamp-ordered: the
    // lookahead issued by onDemandMiss() emits instants inside it.
    if (obs_ && obs_->trace().enabled()) {
        obs_->trace().begin(obsStream_, TrackApp, "demand-fetch",
                            "runtime", _clock.now());
        obs_->trace().arg("obj", obj_id);
    }
    backend_->fetch(obj_id << ost.objectShift(), data, ost.objectSize());
    _clock.advance(_costs.remoteFetchSwCycles);
    meta.makeLocal(frame_idx);
    if (for_write)
        meta.setDirty();
    _stats.demandFetches++;
    onDemandMiss(obj_id);
    if (obs_) {
        obs_->demandFetch.record(_clock.now() - missStart);
        if (lastMissObj != ~0ull) {
            obs_->interMissDist.record(obj_id > lastMissObj
                                           ? obj_id - lastMissObj
                                           : lastMissObj - obj_id);
        }
        lastMissObj = obj_id;
        if (obs_->trace().enabled()) {
            obs_->trace().end(obsStream_, TrackApp, "demand-fetch",
                              "runtime", _clock.now());
        }
    }
    if (outcome)
        *outcome = Localized::RemoteFetch;
    return data + ost.offsetInObject(offset);
}

std::uint64_t
FarMemRuntime::takeFrame(std::uint64_t obj_id)
{
    const std::uint32_t shard = cache.shardOf(obj_id);
    std::uint64_t frame_idx = cache.allocFrameIn(shard);
    if (frame_idx != FrameCache::noFrame)
        return frame_idx;
    std::uint64_t victim = cache.pickVictimIn(shard);
    TFM_ASSERT(victim != FrameCache::noFrame,
               "local memory exhausted: every frame is pinned");
    victim = evacDecision(victim);
    evictFrame(victim);
    frame_idx = cache.allocFrameIn(shard);
    TFM_ASSERT(frame_idx != FrameCache::noFrame, "eviction freed no frame");
    return frame_idx;
}

void
FarMemRuntime::evictFrame(std::uint64_t frame_idx)
{
    Frame &f = cache.frame(frame_idx);
    ObjectMeta &meta = ost[f.objId];
    TFM_ASSERT(meta.present() && meta.frame() == frame_idx,
               "state table / frame cache mismatch on eviction");
    _clock.advance(_costs.evacuateObjectCycles);
    if (obs_ && obs_->trace().enabled()) {
        obs_->trace().instant(obsStream_, TrackApp, "evict", "runtime",
                              _clock.now());
        obs_->trace().arg("obj", f.objId);
        obs_->trace().arg("dirty", meta.dirty() ? 1 : 0);
    }
    if (meta.dirty()) {
        _stats.dirtyWritebacks++;
        if (cfg.batchingEnabled && cfg.writebackBatchMax > 1) {
            // Park the payload in the coalescing buffer; the frame is
            // reused immediately, so the bytes must be copied out.
            if (wbBuf.empty())
                wbOldestCycle = _clock.now();
            PendingWriteback pending;
            pending.objId = f.objId;
            pending.parkCycle = _clock.now();
            pending.data.assign(cache.frameData(frame_idx),
                                cache.frameData(frame_idx) +
                                    ost.objectSize());
            wbBuf.push_back(std::move(pending));
            parkedCount_++;
        } else {
            backend_->writeback(f.objId << ost.objectShift(),
                                cache.frameData(frame_idx),
                                ost.objectSize());
        }
    }
    meta.makeRemote();
    cache.releaseFrame(frame_idx);
    _stats.evictions++;
    _evictionEpoch++;
    maybeFlushWritebacks();
}

std::uint64_t
FarMemRuntime::evacDecision(std::uint64_t victim)
{
    if (!rec_)
        return victim;
    const Frame &f = cache.frame(victim);
    const ObjectMeta &meta = ost[f.objId];
    std::uint64_t args[4] = {victim, f.objId, meta.dirty() ? 1u : 0u,
                             _evictionEpoch.load()};
    rec_->record(recInstance_, FrCat::Evac, FrKind::EvacVictim, _clock.now(),
                 args, 4);
    return args[0];
}

std::ptrdiff_t
FarMemRuntime::findPendingWriteback(std::uint64_t obj_id) const
{
    for (std::size_t i = 0; i < wbBuf.size(); i++) {
        if (wbBuf[i].objId == obj_id)
            return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
}

void
FarMemRuntime::flushWritebacks()
{
    if (wbBuf.empty())
        return;
    if (obs_) {
        const std::uint64_t now = _clock.now();
        for (const PendingWriteback &pending : wbBuf)
            obs_->wbResidency.record(now - pending.parkCycle);
        if (obs_->trace().enabled()) {
            obs_->trace().instant(obsStream_, TrackApp, "wb-flush",
                                  "runtime", now);
            obs_->trace().arg("entries", wbBuf.size());
        }
    }
    std::vector<RemoteWriteSeg> segs;
    segs.reserve(wbBuf.size());
    for (const PendingWriteback &pending : wbBuf) {
        segs.push_back({pending.objId << ost.objectShift(),
                        pending.data.data(), ost.objectSize()});
    }
    backend_->writebackBatch(segs);
    parkedCount_ -= wbBuf.size();
    wbBuf.clear();
    _stats.writebackFlushes++;
}

void
FarMemRuntime::maybeFlushWritebacks()
{
    if (wbBuf.empty())
        return;
    if (wbBuf.size() >= cfg.writebackBatchMax ||
        _clock.now() - wbOldestCycle >= cfg.writebackFlushCycles) {
        flushWritebacks();
    }
}

void
FarMemRuntime::onDemandMiss(std::uint64_t obj_id)
{
    if (!cfg.prefetchEnabled)
        return;
    std::int64_t stride = prefetcher.onDemandMiss(obj_id);
    if (rec_) {
        // Prefetcher decision feed: every demand miss records (and
        // replay verifies) the issue decision, stride 0 included.
        std::uint64_t args[4] = {obj_id,
                                 static_cast<std::uint64_t>(stride),
                                 prefetcher.depth(), 0};
        rec_->record(recInstance_, FrCat::Prefetch,
                     FrKind::PrefetchDecision, _clock.now(), args, 4);
        stride = static_cast<std::int64_t>(args[1]);
    }
    if (stride != 0)
        prefetchObjects(obj_id, stride, prefetcher.depth());
}

void
FarMemRuntime::prefetchObjects(std::uint64_t obj_id, std::int64_t stride,
                               std::uint32_t count)
{
    // Never speculate past the allocated region: fetching unallocated
    // objects only pollutes the local tier.
    const std::uint64_t frontier_obj =
        (alloc_.frontier() + ost.objectSize() - 1) >> ost.objectShift();

    const std::uint32_t batch_max =
        (cfg.batchingEnabled && cfg.fetchBatchMax > 1) ? cfg.fetchBatchMax
                                                       : 1;
    // Segments of the batch being assembled, and the frames they land
    // in. Collected frames are transiently pinned so mid-collection
    // evictions (for later targets) can never steal them before their
    // payload arrives.
    std::vector<RemoteFetchSeg> segs;
    std::vector<std::uint64_t> seg_frames;

    const auto issueBatch = [&] {
        if (segs.empty())
            return;
        if (obs_ && obs_->trace().enabled()) {
            obs_->trace().instant(obsStream_, TrackApp, "prefetch-issue",
                                  "runtime", _clock.now());
            obs_->trace().arg("count", segs.size());
        }
        // Per-segment arrivals: the batch's payloads stream back in
        // order, so the first objects of the window are consumable
        // before the tail has serialized.
        std::vector<std::uint64_t> arrivals;
        backend_->fetchBatchAsync(segs, &arrivals);
        for (std::size_t i = 0; i < seg_frames.size(); i++) {
            Frame &f = cache.frame(seg_frames[i]);
            f.arrivalCycle = arrivals[i];
            f.pins--;
        }
        _stats.prefetchIssued += segs.size();
        if (segs.size() >= 2)
            _stats.prefetchBatches++;
        segs.clear();
        seg_frames.clear();
    };

    for (std::uint32_t k = 1; k <= count; k++) {
        const std::int64_t target =
            static_cast<std::int64_t>(obj_id) + stride * k;
        if (target < 0 ||
            static_cast<std::uint64_t>(target) >= ost.numObjects() ||
            static_cast<std::uint64_t>(target) >= frontier_obj) {
            break;
        }
        const std::uint64_t tid = static_cast<std::uint64_t>(target);
        ObjectMeta &meta = ost[tid];
        if (meta.present())
            continue;
        // Pending-writeback objects are resurrected from the buffer on
        // demand; fetching the (stale) remote copy would be wrong.
        if (findPendingWriteback(tid) >= 0)
            continue;
        const std::uint32_t shard = cache.shardOf(tid);
        std::uint64_t frame_idx = cache.allocFrameIn(shard);
        if (frame_idx == FrameCache::noFrame) {
            const std::uint64_t victim = cache.pickVictimIn(shard);
            if (victim == FrameCache::noFrame)
                break; // everything pinned; skip prefetching
            evictFrame(evacDecision(victim));
            frame_idx = cache.allocFrameIn(shard);
            if (frame_idx == FrameCache::noFrame)
                break;
        }
        meta.makeLocal(frame_idx);
        meta.setInflight();
        Frame &f = cache.frame(frame_idx);
        f.objId = tid;
        f.arrivalCycle = ~0ull; // patched when the batch is issued
        f.pins++;
        segs.push_back({tid << ost.objectShift(),
                        cache.frameData(frame_idx), ost.objectSize()});
        seg_frames.push_back(frame_idx);
        if (segs.size() >= batch_max)
            issueBatch();
    }
    issueBatch();
}

void
FarMemRuntime::pinObject(std::uint64_t obj_id)
{
    ObjectMeta &meta = ost[obj_id];
    TFM_ASSERT(meta.present(), "pinning a remote object");
    Frame &f = cache.frame(meta.frame());
    f.pins++;
    meta.setPinned();
}

void
FarMemRuntime::unpinObject(std::uint64_t obj_id)
{
    ObjectMeta &meta = ost[obj_id];
    TFM_ASSERT(meta.present() && meta.pinned(), "unpinning an unpinned object");
    Frame &f = cache.frame(meta.frame());
    TFM_ASSERT(f.pins > 0, "pin count underflow");
    if (--f.pins == 0)
        meta.clearPinned();
}

void
FarMemRuntime::rawWrite(std::uint64_t offset, const void *src,
                        std::size_t len)
{
    const auto *bytes = static_cast<const std::byte *>(src);
    std::size_t done = 0;
    while (done < len) {
        const std::uint64_t at = offset + done;
        const std::uint64_t obj_id = ost.objectOf(at);
        const std::uint64_t in_obj = ost.offsetInObject(at);
        const std::size_t chunk = std::min<std::size_t>(
            len - done, ost.objectSize() - in_obj);
        backend_->rawWrite(at, bytes + done, chunk);
        const ObjectMeta &meta = ost[obj_id];
        if (meta.present()) {
            std::memcpy(cache.frameData(meta.frame()) + in_obj,
                        bytes + done, chunk);
        } else if (const std::ptrdiff_t wb = findPendingWriteback(obj_id);
                   wb >= 0) {
            // Keep the parked copy coherent, or the eventual flush
            // would overwrite this raw write with stale bytes.
            std::memcpy(wbBuf[static_cast<std::size_t>(wb)].data.data() +
                            in_obj,
                        bytes + done, chunk);
        }
        done += chunk;
    }
}

void
FarMemRuntime::rawRead(std::uint64_t offset, void *dst, std::size_t len)
{
    auto *bytes = static_cast<std::byte *>(dst);
    std::size_t done = 0;
    while (done < len) {
        const std::uint64_t at = offset + done;
        const std::uint64_t obj_id = ost.objectOf(at);
        const std::uint64_t in_obj = ost.offsetInObject(at);
        const std::size_t chunk = std::min<std::size_t>(
            len - done, ost.objectSize() - in_obj);
        const ObjectMeta &meta = ost[obj_id];
        if (meta.present()) {
            std::memcpy(bytes + done,
                        cache.frameData(meta.frame()) + in_obj, chunk);
        } else if (const std::ptrdiff_t wb = findPendingWriteback(obj_id);
                   wb >= 0) {
            // A parked dirty copy is newer than the remote one.
            std::memcpy(bytes + done,
                        wbBuf[static_cast<std::size_t>(wb)].data.data() +
                            in_obj,
                        chunk);
        } else {
            backend_->rawRead(at, bytes + done, chunk);
        }
        done += chunk;
    }
}

void
FarMemRuntime::evacuateAll()
{
    // Drain the coalescing buffers first: these objects are already
    // remote in the state table, but their newest bytes are still
    // local. Flushed without measurement-window charges, like the
    // frame sweep below.
    drainWorkerWritebacks();
    for (const PendingWriteback &pending : wbBuf) {
        backend_->rawWrite(pending.objId << ost.objectShift(),
                           pending.data.data(), ost.objectSize());
    }
    parkedCount_ -= wbBuf.size();
    wbBuf.clear();
    for (std::uint64_t i = 0; i < cache.numFrames(); i++) {
        Frame &f = cache.frame(i);
        if (!f.used)
            continue;
        TFM_ASSERT(f.pins == 0, "evacuateAll with pinned frames");
        // Flush payload without charging measurement-window costs.
        ObjectMeta &meta = ost[f.objId];
        if (meta.dirty()) {
            backend_->rawWrite(f.objId << ost.objectShift(),
                               cache.frameData(i), ost.objectSize());
        }
        meta.makeRemote();
        cache.releaseFrame(i);
    }
    // Limbo frames are already unmapped; with no workers running (the
    // caller's contract) every reader is quiescent, so reclaim them all.
    for (std::uint32_t s = 0; s < cache.numShards(); s++)
        cache.reclaimFrames(s, quiescentEpoch);
    prefetcher.reset();
    _evictionEpoch++;
}

std::uint64_t
FarMemRuntime::minActiveEpoch() const
{
    std::uint64_t min = quiescentEpoch;
    for (const auto &ctx : workers_)
        min = std::min(min, ctx->epochSlot.load());
    return min;
}

bool
FarMemRuntime::tryFastReadMt(WorkerContext &w, std::uint64_t offset,
                             void *dst, std::size_t len, MtFill *fill)
{
    const std::uint64_t obj_id = ost.objectOf(offset);
    epochEnter(w);
    // Exactly one snapshot of the state word: decoding safety and the
    // frame index from separate loads could straddle an eviction.
    const std::uint64_t raw = ost[obj_id].raw();
    const bool hit = ObjectMeta::rawSafe(raw);
    if (hit) {
        const std::uint64_t frame_idx = ObjectMeta::rawFrame(raw);
        std::byte *base = cache.frameData(frame_idx);
        // The epoch section covers the copy: even if the frame is
        // retired mid-memcpy its payload cannot be reused until this
        // worker quiesces (the bytes read may be stale only if the app
        // itself races a writer on this object, which is an app race).
        std::memcpy(dst, base + ost.offsetInObject(offset), len);
        cache.frame(frame_idx).refbit.store(true,
                                            std::memory_order_relaxed);
        ost[obj_id].setHot();
        if (fill) {
            fill->valid = true;
            fill->objId = obj_id;
            // The epoch observed at entry: conservative (an eviction
            // since entry invalidates the fill on its first lookup).
            fill->epoch = w.epochSlot.load(std::memory_order_relaxed);
            fill->frameBase = base;
            fill->meta = &ost[obj_id];
            fill->frame = &cache.frame(frame_idx);
        }
    }
    epochExit(w);
    return hit;
}

bool
FarMemRuntime::tryCachedReadMt(WorkerContext &w, const MtFill &fill,
                               std::uint64_t offset, void *dst,
                               std::size_t len)
{
    if (!fill.valid || !cfg.guardCacheEnabled ||
        ost.objectOf(offset) != fill.objId)
        return false;
    epochEnter(w);
    // An unchanged epoch proves no frame anywhere was unmapped since
    // the fill, so the cached translation is live; the raw() snapshot
    // additionally respects a concurrent unmap that has not bumped the
    // epoch yet (its payload is still intact — EBR holds it — so a hit
    // racing the unmap still copies the right bytes).
    const bool hit = fill.epoch == _evictionEpoch.load() &&
                     ObjectMeta::rawSafe(fill.meta->raw());
    if (hit) {
        std::memcpy(dst, fill.frameBase + ost.offsetInObject(offset),
                    len);
        fill.frame->refbit.store(true, std::memory_order_relaxed);
        fill.meta->setHot();
    }
    epochExit(w);
    return hit;
}

void
FarMemRuntime::localizeReadMt(WorkerContext &w, std::uint64_t offset,
                              void *dst, std::size_t len, MtFill *fill,
                              Localized *outcome)
{
    const std::uint64_t obj_id = ost.objectOf(offset);
    const std::uint32_t shard = cache.shardOf(obj_id);
    std::lock_guard<std::mutex> g(cache.shardMutex(shard));
    w.stats.localizeCalls++;
    ObjectMeta &meta = ost[obj_id];
    Localized result = Localized::AlreadyLocal;
    std::uint64_t frame_idx;
    if (meta.present()) {
        // Lost the race to another worker's localize (or the fast path
        // missed on a transient in-flight bit): the object is here.
        frame_idx = meta.frame();
        Frame &f = cache.frame(frame_idx);
        f.refbit.store(true, std::memory_order_relaxed);
        meta.setHot();
        if (meta.inflight()) {
            // Setup-time prefetch leftovers only; the MT data plane is
            // demand-only.
            w.clock.advanceTo(f.arrivalCycle);
            meta.clearInflight();
            w.stats.prefetchHits++;
            w.stats.inflightJoins++;
            result = Localized::PrefetchWait;
        }
    } else {
        frame_idx = takeFrameMt(w, shard);
        std::byte *data = cache.frameData(frame_idx);
        Frame &f = cache.frame(frame_idx);
        f.objId = obj_id;
        f.arrivalCycle = 0;
        if (parkedCount_.load() > 0 &&
            stealParkedWriteback(obj_id, data)) {
            // Evicted dirty and still parked in a writeback buffer:
            // resurrect locally; the stale remote copy stays dirty.
            w.clock.advance(_costs.evacuateObjectCycles);
            meta.makeLocal(frame_idx);
            meta.setDirty();
            w.stats.writebackBufferHits++;
        } else {
            fetchMt(w, obj_id, data);
            w.clock.advance(_costs.remoteFetchSwCycles);
            // Publish only after the payload is in place: a lock-free
            // reader that sees present must see the bytes (seq_cst
            // store orders after the fill).
            meta.makeLocal(frame_idx);
            w.stats.demandFetches++;
            result = Localized::RemoteFetch;
        }
        meta.setHot();
    }
    // Copy out under the shard lock: the frame cannot be unmapped while
    // its stripe is held.
    std::memcpy(dst,
                cache.frameData(frame_idx) + ost.offsetInObject(offset),
                len);
    if (fill) {
        fill->valid = true;
        fill->objId = obj_id;
        fill->epoch = _evictionEpoch.load();
        fill->frameBase = cache.frameData(frame_idx);
        fill->meta = &meta;
        fill->frame = &cache.frame(frame_idx);
    }
    if (outcome)
        *outcome = result;
}

void
FarMemRuntime::localizeWriteMt(WorkerContext &w, std::uint64_t offset,
                               const void *src, std::size_t len,
                               bool *was_present, Localized *outcome)
{
    const std::uint64_t obj_id = ost.objectOf(offset);
    const std::uint32_t shard = cache.shardOf(obj_id);
    std::lock_guard<std::mutex> g(cache.shardMutex(shard));
    ObjectMeta &meta = ost[obj_id];
    const bool present = meta.present();
    Localized result = Localized::AlreadyLocal;
    std::uint64_t frame_idx;
    if (present) {
        frame_idx = meta.frame();
        Frame &f = cache.frame(frame_idx);
        f.refbit.store(true, std::memory_order_relaxed);
        if (meta.inflight()) {
            w.clock.advanceTo(f.arrivalCycle);
            meta.clearInflight();
            w.stats.prefetchHits++;
            w.stats.inflightJoins++;
        }
    } else {
        w.stats.localizeCalls++;
        frame_idx = takeFrameMt(w, shard);
        std::byte *data = cache.frameData(frame_idx);
        Frame &f = cache.frame(frame_idx);
        f.objId = obj_id;
        f.arrivalCycle = 0;
        if (parkedCount_.load() > 0 &&
            stealParkedWriteback(obj_id, data)) {
            w.clock.advance(_costs.evacuateObjectCycles);
            w.stats.writebackBufferHits++;
        } else {
            fetchMt(w, obj_id, data);
            w.clock.advance(_costs.remoteFetchSwCycles);
            w.stats.demandFetches++;
            result = Localized::RemoteFetch;
        }
        meta.makeLocal(frame_idx);
    }
    meta.setHot();
    meta.setDirty();
    // In-place update under the shard lock; there is no lock-free
    // write path, so two writers to one object always serialize here.
    std::memcpy(cache.frameData(frame_idx) + ost.offsetInObject(offset),
                src, len);
    if (was_present)
        *was_present = present;
    if (outcome)
        *outcome = result;
}

std::uint64_t
FarMemRuntime::takeFrameMt(WorkerContext &w, std::uint32_t shard)
{
    for (std::uint64_t spin = 0;; spin++) {
        std::uint64_t frame_idx = cache.allocFrameIn(shard);
        if (frame_idx != FrameCache::noFrame)
            return frame_idx;
        if (cache.limboFrames(shard) > 0 &&
            cache.reclaimFrames(shard, minActiveEpoch()) > 0) {
            continue;
        }
        const std::uint64_t victim = cache.pickVictimIn(shard);
        if (victim != FrameCache::noFrame) {
            evictFrameMt(w, shard, victim);
            continue; // the victim reclaims once readers quiesce
        }
        // Every frame is pinned or parked behind an active reader.
        // Epoch sections never block on locks (the §4k deadlock-freedom
        // rule), so yielding lets the laggard finish and quiesce.
        TFM_ASSERT(spin < (1ull << 24),
                   "frame shard wedged: pins or readers never drain");
        std::this_thread::yield();
    }
}

void
FarMemRuntime::evictFrameMt(WorkerContext &w, std::uint32_t shard,
                            std::uint64_t frame_idx)
{
    Frame &f = cache.frame(frame_idx);
    ObjectMeta &meta = ost[f.objId];
    TFM_ASSERT(meta.present() && meta.frame() == frame_idx,
               "state table / frame cache mismatch on eviction");
    w.clock.advance(_costs.evacuateObjectCycles);
    if (meta.dirty()) {
        w.stats.dirtyWritebacks++;
        std::lock_guard<std::mutex> bg(w.wbMu);
        if (w.wbBuf.empty())
            w.wbOldestCycle = w.clock.now();
        PendingWriteback pending;
        pending.objId = f.objId;
        pending.parkCycle = w.clock.now();
        pending.data.assign(cache.frameData(frame_idx),
                            cache.frameData(frame_idx) +
                                ost.objectSize());
        w.wbBuf.push_back(std::move(pending));
        parkedCount_++;
    }
    // Unmap, then stamp, then retire. A reader whose epoch slot is >=
    // the stamp provably entered its section after the unmap (seq_cst
    // total order), re-read the state word, and missed — so a frame is
    // reclaimed only when min(active slots) >= its stamp.
    meta.makeRemote();
    const std::uint64_t stamp = ++_evictionEpoch;
    cache.retireFrame(shard, frame_idx, stamp);
    w.stats.evictions++;
    maybeFlushWorkerWritebacks(w);
}

void
FarMemRuntime::fetchMt(WorkerContext &w, std::uint64_t obj_id,
                       std::byte *data)
{
    std::lock_guard<std::mutex> g(netMu_);
    // Concurrent demand fetch (DESIGN.md §4k): the payload copy and
    // link stats happen under netMu_, but the cycle charge rides the
    // worker's own timeline via fetchSyncAt — per-core fetches overlap
    // the request latency instead of serializing behind the shared
    // device clock's busy frontier.
    const std::uint64_t off = obj_id << ost.objectShift();
    backend_->rawRead(off, data, ost.objectSize());
    const std::uint64_t done =
        backend_->link(0).fetchSyncAt(w.clock.now(), ost.objectSize());
    w.clock.advanceTo(done);
}

bool
FarMemRuntime::stealParkedWriteback(std::uint64_t obj_id, std::byte *dst)
{
    for (const auto &ctx : workers_) {
        std::lock_guard<std::mutex> g(ctx->wbMu);
        for (std::size_t i = 0; i < ctx->wbBuf.size(); i++) {
            if (ctx->wbBuf[i].objId != obj_id)
                continue;
            std::memcpy(dst, ctx->wbBuf[i].data.data(),
                        ost.objectSize());
            ctx->wbBuf.erase(ctx->wbBuf.begin() +
                             static_cast<std::ptrdiff_t>(i));
            parkedCount_--;
            return true;
        }
    }
    // The main-thread buffer can hold setup-time leftovers; workers
    // never add to it, but they may steal from it (mainWbMu_ keeps two
    // stealers apart — the main thread itself is idle while workers
    // run).
    std::lock_guard<std::mutex> g(mainWbMu_);
    const std::ptrdiff_t wb = findPendingWriteback(obj_id);
    if (wb < 0)
        return false;
    std::memcpy(dst, wbBuf[static_cast<std::size_t>(wb)].data.data(),
                ost.objectSize());
    wbBuf.erase(wbBuf.begin() + wb);
    parkedCount_--;
    return true;
}

void
FarMemRuntime::flushWorkerWritebacks(WorkerContext &w)
{
    std::lock_guard<std::mutex> bg(w.wbMu);
    if (w.wbBuf.empty())
        return;
    std::vector<RemoteWriteSeg> segs;
    segs.reserve(w.wbBuf.size());
    for (const PendingWriteback &pending : w.wbBuf) {
        segs.push_back({pending.objId << ost.objectShift(),
                        pending.data.data(), ost.objectSize()});
    }
    {
        std::lock_guard<std::mutex> ng(netMu_);
        _clock.jumpTo(w.clock.now());
        backend_->writebackBatch(segs);
        w.clock.jumpTo(_clock.now());
    }
    parkedCount_ -= w.wbBuf.size();
    w.wbBuf.clear();
    w.stats.writebackFlushes++;
}

void
FarMemRuntime::maybeFlushWorkerWritebacks(WorkerContext &w)
{
    const std::uint64_t flush_at =
        cfg.batchingEnabled ? cfg.writebackBatchMax : 1;
    bool flush = false;
    {
        std::lock_guard<std::mutex> g(w.wbMu);
        flush = !w.wbBuf.empty() &&
                (w.wbBuf.size() >= flush_at ||
                 w.clock.now() - w.wbOldestCycle >=
                     cfg.writebackFlushCycles);
    }
    if (flush)
        flushWorkerWritebacks(w);
}

void
FarMemRuntime::drainWorkerWritebacks()
{
    for (const auto &ctx : workers_) {
        std::lock_guard<std::mutex> g(ctx->wbMu);
        for (const PendingWriteback &pending : ctx->wbBuf) {
            backend_->rawWrite(pending.objId << ost.objectShift(),
                               pending.data.data(), ost.objectSize());
        }
        parkedCount_ -= ctx->wbBuf.size();
        ctx->wbBuf.clear();
    }
}

void
FarMemRuntime::exportStats(StatSet &set) const
{
    const RuntimeStats merged = mergedStats();
    set.add("runtime.demand_fetches", merged.demandFetches);
    set.add("runtime.prefetch_issued", merged.prefetchIssued);
    set.add("runtime.prefetch_hits", merged.prefetchHits);
    set.add("runtime.prefetch_late_hits", merged.prefetchLateHits);
    set.add("runtime.evictions", merged.evictions);
    set.add("runtime.dirty_writebacks", merged.dirtyWritebacks);
    set.add("runtime.localize_calls", merged.localizeCalls);
    set.add("runtime.prefetch_batches", merged.prefetchBatches);
    set.add("runtime.inflight_joins", merged.inflightJoins);
    set.add("runtime.writeback_flushes", merged.writebackFlushes);
    set.add("runtime.writeback_buffer_hits", merged.writebackBufferHits);
    const NetStats net = backend_->netStats();
    set.add("net.bytes_fetched", net.bytesFetched);
    set.add("net.bytes_written_back", net.bytesWrittenBack);
    set.add("net.fetch_messages", net.fetchMessages);
    set.add("net.writeback_messages", net.writebackMessages);
    set.add("net.fetch_payloads", net.fetchPayloads);
    set.add("net.writeback_payloads", net.writebackPayloads);
    set.add("net.fetch_batches", net.fetchBatches);
    set.add("net.writeback_batches", net.writebackBatches);
    backend_->exportStats(set);
    set.add("alloc.allocations", alloc_.stats().allocations);
    set.add("alloc.frees", alloc_.stats().frees);
    set.add("prefetcher.armed_misses", prefetcher.stats().armedMisses);
    set.add("prefetcher.tracker_allocs", prefetcher.stats().trackerAllocs);
    set.add("prefetcher.tracker_evictions",
            prefetcher.stats().trackerEvictions);
    set.add("clock.cycles", _clock.now());
    if (rec_)
        rec_->exportStats(set);
    if (obs_)
        obs_->exportStats(set);
}

std::uint64_t
FarMemRuntime::heapChecksum()
{
    // Same FNV-1a constants as the recorder's log checksum.
    std::uint64_t h = 1469598103934665603ull;
    std::vector<std::byte> buf(64 * 1024);
    std::uint64_t at = 0;
    while (at < cfg.farHeapBytes) {
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(buf.size(), cfg.farHeapBytes - at));
        rawRead(at, buf.data(), chunk);
        for (std::size_t i = 0; i < chunk; ++i) {
            h ^= static_cast<std::uint64_t>(buf[i]);
            h *= 1099511628211ull;
        }
        at += chunk;
    }
    return h;
}

void
FarMemRuntime::obsEpochSample()
{
    obs_->counterSample(
        obsStream_, _clock.now(),
        {{"frames_used", cache.usedFrames()},
         {"wb_pending", wbBuf.size()},
         {"net_bytes", backend_->netStats().totalBytes()}});
}

} // namespace tfm
