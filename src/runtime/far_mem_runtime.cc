#include "far_mem_runtime.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace tfm
{

FarMemRuntime::FarMemRuntime(const RuntimeConfig &config,
                             const CostParams &cost_params)
    : cfg(config),
      _costs(cost_params),
      _net(_clock, _costs),
      _remote(config.farHeapBytes),
      ost(config.farHeapBytes, config.objectSizeBytes),
      cache(config.localMemBytes, config.objectSizeBytes),
      alloc_(config.farHeapBytes, config.objectSizeBytes),
      prefetcher(config.prefetchDepth)
{}

std::uint64_t
FarMemRuntime::allocate(std::uint64_t bytes)
{
    _clock.advance(_costs.allocCycles);
    const std::uint64_t offset = alloc_.allocate(bytes);
    TFM_ASSERT(offset != RegionAllocator::badOffset, "far heap exhausted");
    return offset;
}

void
FarMemRuntime::deallocate(std::uint64_t offset)
{
    _clock.advance(_costs.allocCycles);
    alloc_.deallocate(offset);
}

std::uint64_t
FarMemRuntime::sizeOf(std::uint64_t offset) const
{
    return alloc_.sizeOf(offset);
}

std::byte *
FarMemRuntime::tryFast(std::uint64_t offset, bool for_write)
{
    const std::uint64_t obj_id = ost.objectOf(offset);
    ObjectMeta &meta = ost[obj_id];
    if (!meta.safeForFastPath())
        return nullptr;
    Frame &f = cache.frame(meta.frame());
    f.refbit = true;
    meta.setHot();
    if (for_write)
        meta.setDirty();
    return cache.frameData(meta.frame()) + ost.offsetInObject(offset);
}

std::byte *
FarMemRuntime::localize(std::uint64_t offset, bool for_write,
                        Localized *outcome)
{
    _stats.localizeCalls++;
    const std::uint64_t obj_id = ost.objectOf(offset);
    ObjectMeta &meta = ost[obj_id];

    if (meta.present()) {
        Frame &f = cache.frame(meta.frame());
        f.refbit = true;
        meta.setHot();
        Localized result = Localized::AlreadyLocal;
        if (meta.inflight()) {
            // A prefetch got here first; wait out the residual latency.
            const bool late = f.arrivalCycle > _clock.now();
            _net.waitUntil(f.arrivalCycle);
            meta.clearInflight();
            _stats.prefetchHits++;
            if (late)
                _stats.prefetchLateHits++;
            result = Localized::PrefetchWait;
        }
        if (for_write)
            meta.setDirty();
        if (outcome)
            *outcome = result;
        return cache.frameData(meta.frame()) + ost.offsetInObject(offset);
    }

    // Demand miss: blocking fetch from the remote node.
    const std::uint64_t frame_idx = takeFrame();
    std::byte *data = cache.frameData(frame_idx);
    _remote.fetch(_net, obj_id << ost.objectShift(), data,
                  ost.objectSize());
    _clock.advance(_costs.remoteFetchSwCycles);
    meta.makeLocal(frame_idx);
    if (for_write)
        meta.setDirty();
    Frame &f = cache.frame(frame_idx);
    f.objId = obj_id;
    f.arrivalCycle = 0;
    _stats.demandFetches++;
    onDemandMiss(obj_id);
    if (outcome)
        *outcome = Localized::RemoteFetch;
    return data + ost.offsetInObject(offset);
}

std::uint64_t
FarMemRuntime::takeFrame()
{
    std::uint64_t frame_idx = cache.allocFrame();
    if (frame_idx != FrameCache::noFrame)
        return frame_idx;
    const std::uint64_t victim = cache.pickVictim();
    TFM_ASSERT(victim != FrameCache::noFrame,
               "local memory exhausted: every frame is pinned");
    evictFrame(victim);
    frame_idx = cache.allocFrame();
    TFM_ASSERT(frame_idx != FrameCache::noFrame, "eviction freed no frame");
    return frame_idx;
}

void
FarMemRuntime::evictFrame(std::uint64_t frame_idx)
{
    Frame &f = cache.frame(frame_idx);
    ObjectMeta &meta = ost[f.objId];
    TFM_ASSERT(meta.present() && meta.frame() == frame_idx,
               "state table / frame cache mismatch on eviction");
    _clock.advance(_costs.evacuateObjectCycles);
    if (meta.dirty()) {
        _remote.writeback(_net, f.objId << ost.objectShift(),
                          cache.frameData(frame_idx), ost.objectSize());
        _stats.dirtyWritebacks++;
    }
    meta.makeRemote();
    cache.releaseFrame(frame_idx);
    _stats.evictions++;
}

void
FarMemRuntime::onDemandMiss(std::uint64_t obj_id)
{
    if (!cfg.prefetchEnabled)
        return;
    const std::int64_t stride = prefetcher.onDemandMiss(obj_id);
    if (stride != 0)
        prefetchObjects(obj_id, stride, prefetcher.depth());
}

void
FarMemRuntime::prefetchObjects(std::uint64_t obj_id, std::int64_t stride,
                               std::uint32_t count)
{
    // Never speculate past the allocated region: fetching unallocated
    // objects only pollutes the local tier.
    const std::uint64_t frontier_obj =
        (alloc_.frontier() + ost.objectSize() - 1) >> ost.objectShift();
    for (std::uint32_t k = 1; k <= count; k++) {
        const std::int64_t target =
            static_cast<std::int64_t>(obj_id) + stride * k;
        if (target < 0 ||
            static_cast<std::uint64_t>(target) >= ost.numObjects() ||
            static_cast<std::uint64_t>(target) >= frontier_obj) {
            break;
        }
        const std::uint64_t tid = static_cast<std::uint64_t>(target);
        ObjectMeta &meta = ost[tid];
        if (meta.present())
            continue;
        std::uint64_t frame_idx = cache.allocFrame();
        if (frame_idx == FrameCache::noFrame) {
            const std::uint64_t victim = cache.pickVictim();
            if (victim == FrameCache::noFrame)
                return; // everything pinned; skip prefetching
            evictFrame(victim);
            frame_idx = cache.allocFrame();
            if (frame_idx == FrameCache::noFrame)
                return;
        }
        std::byte *data = cache.frameData(frame_idx);
        const std::uint64_t arrival = _remote.fetchAsync(
            _net, tid << ost.objectShift(), data, ost.objectSize());
        meta.makeLocal(frame_idx);
        meta.setInflight();
        Frame &f = cache.frame(frame_idx);
        f.objId = tid;
        f.arrivalCycle = arrival;
        _stats.prefetchIssued++;
    }
}

void
FarMemRuntime::pinObject(std::uint64_t obj_id)
{
    ObjectMeta &meta = ost[obj_id];
    TFM_ASSERT(meta.present(), "pinning a remote object");
    Frame &f = cache.frame(meta.frame());
    f.pins++;
    meta.setPinned();
}

void
FarMemRuntime::unpinObject(std::uint64_t obj_id)
{
    ObjectMeta &meta = ost[obj_id];
    TFM_ASSERT(meta.present() && meta.pinned(), "unpinning an unpinned object");
    Frame &f = cache.frame(meta.frame());
    TFM_ASSERT(f.pins > 0, "pin count underflow");
    if (--f.pins == 0)
        meta.clearPinned();
}

void
FarMemRuntime::rawWrite(std::uint64_t offset, const void *src,
                        std::size_t len)
{
    const auto *bytes = static_cast<const std::byte *>(src);
    std::size_t done = 0;
    while (done < len) {
        const std::uint64_t at = offset + done;
        const std::uint64_t obj_id = ost.objectOf(at);
        const std::uint64_t in_obj = ost.offsetInObject(at);
        const std::size_t chunk = std::min<std::size_t>(
            len - done, ost.objectSize() - in_obj);
        _remote.rawWrite(at, bytes + done, chunk);
        const ObjectMeta &meta = ost[obj_id];
        if (meta.present()) {
            std::memcpy(cache.frameData(meta.frame()) + in_obj,
                        bytes + done, chunk);
        }
        done += chunk;
    }
}

void
FarMemRuntime::rawRead(std::uint64_t offset, void *dst, std::size_t len)
{
    auto *bytes = static_cast<std::byte *>(dst);
    std::size_t done = 0;
    while (done < len) {
        const std::uint64_t at = offset + done;
        const std::uint64_t obj_id = ost.objectOf(at);
        const std::uint64_t in_obj = ost.offsetInObject(at);
        const std::size_t chunk = std::min<std::size_t>(
            len - done, ost.objectSize() - in_obj);
        const ObjectMeta &meta = ost[obj_id];
        if (meta.present()) {
            std::memcpy(bytes + done,
                        cache.frameData(meta.frame()) + in_obj, chunk);
        } else {
            _remote.rawRead(at, bytes + done, chunk);
        }
        done += chunk;
    }
}

void
FarMemRuntime::evacuateAll()
{
    for (std::uint64_t i = 0; i < cache.numFrames(); i++) {
        Frame &f = cache.frame(i);
        if (!f.used)
            continue;
        TFM_ASSERT(f.pins == 0, "evacuateAll with pinned frames");
        // Flush payload without charging measurement-window costs.
        ObjectMeta &meta = ost[f.objId];
        if (meta.dirty()) {
            _remote.rawWrite(f.objId << ost.objectShift(),
                             cache.frameData(i), ost.objectSize());
        }
        meta.makeRemote();
        cache.releaseFrame(i);
    }
    prefetcher.reset();
}

void
FarMemRuntime::exportStats(StatSet &set) const
{
    set.add("runtime.demand_fetches", _stats.demandFetches);
    set.add("runtime.prefetch_issued", _stats.prefetchIssued);
    set.add("runtime.prefetch_hits", _stats.prefetchHits);
    set.add("runtime.prefetch_late_hits", _stats.prefetchLateHits);
    set.add("runtime.evictions", _stats.evictions);
    set.add("runtime.dirty_writebacks", _stats.dirtyWritebacks);
    set.add("runtime.localize_calls", _stats.localizeCalls);
    set.add("net.bytes_fetched", _net.stats().bytesFetched);
    set.add("net.bytes_written_back", _net.stats().bytesWrittenBack);
    set.add("net.fetch_messages", _net.stats().fetchMessages);
    set.add("alloc.allocations", alloc_.stats().allocations);
    set.add("alloc.frees", alloc_.stats().frees);
    set.add("clock.cycles", _clock.now());
}

} // namespace tfm
