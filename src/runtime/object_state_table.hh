/**
 * @file
 * TrackFM's object state table: a contiguous array of ObjectMeta entries
 * indexed by object ID (section 3.2 of the paper).
 *
 * Sized like a single-level page table over the far heap: heapBytes /
 * objectSize entries of 8 bytes each (e.g. a 32 GB heap of 4 KB objects
 * needs 2^23 entries = 64 MB).
 */

#ifndef TRACKFM_RUNTIME_OBJECT_STATE_TABLE_HH
#define TRACKFM_RUNTIME_OBJECT_STATE_TABLE_HH

#include <cstdint>
#include <vector>

#include "object_meta.hh"
#include "sim/logging.hh"

namespace tfm
{

/** Flat object-ID -> metadata lookup table. */
class ObjectStateTable
{
  public:
    ObjectStateTable(std::uint64_t heap_bytes, std::uint32_t object_size)
        : objSize(object_size),
          objShift(shiftFor(object_size)),
          entries((heap_bytes + object_size - 1) / object_size)
    {}

    std::uint64_t numObjects() const { return entries.size(); }
    std::uint32_t objectSize() const { return objSize; }
    std::uint32_t objectShift() const { return objShift; }

    /** Object ID covering a far-heap byte offset. */
    std::uint64_t
    objectOf(std::uint64_t offset) const
    {
        return offset >> objShift;
    }

    /** Byte offset of @p offset within its object. */
    std::uint64_t
    offsetInObject(std::uint64_t offset) const
    {
        return offset & (objSize - 1);
    }

    ObjectMeta &
    operator[](std::uint64_t obj_id)
    {
        TFM_ASSERT(obj_id < entries.size(), "object id out of table range");
        return entries[obj_id];
    }

    const ObjectMeta &
    operator[](std::uint64_t obj_id) const
    {
        TFM_ASSERT(obj_id < entries.size(), "object id out of table range");
        return entries[obj_id];
    }

    /** Metadata footprint in bytes (reported like a page-table cost). */
    std::uint64_t footprintBytes() const { return entries.size() * 8; }

  private:
    static std::uint32_t
    shiftFor(std::uint32_t object_size)
    {
        TFM_ASSERT(object_size >= 16 &&
                       (object_size & (object_size - 1)) == 0,
                   "object size must be a power of two >= 16");
        std::uint32_t shift = 0;
        while ((1u << shift) < object_size)
            shift++;
        return shift;
    }

    std::uint32_t objSize;
    std::uint32_t objShift;
    std::vector<ObjectMeta> entries;
};

} // namespace tfm

#endif // TRACKFM_RUNTIME_OBJECT_STATE_TABLE_HH
