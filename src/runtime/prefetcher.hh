/**
 * @file
 * Multi-stream stride prefetcher over object IDs.
 *
 * Reproduces AIFM's stride prefetcher as used by TrackFM (section 4.3):
 * when consecutive demand fetches show a stable object-ID stride, the
 * runtime issues asynchronous fetches for the next `depth` objects so
 * later guards find them already local (or nearly arrived).
 *
 * Multiple concurrent streams (e.g. STREAM copy's source and destination
 * arrays) are tracked independently: a miss is matched to the nearest
 * tracker within a window of object IDs, so interleaved sweeps do not
 * destroy each other's stride history.
 */

#ifndef TRACKFM_RUNTIME_PREFETCHER_HH
#define TRACKFM_RUNTIME_PREFETCHER_HH

#include <array>
#include <cstdint>
#include <cstdlib>

namespace tfm
{

/** Stride-detection counters (exported as "prefetcher.*"). */
struct PrefetcherStats
{
    std::uint64_t armedMisses = 0;      ///< misses that recommended lookahead
    std::uint64_t trackerAllocs = 0;    ///< misses that opened a new stream
    std::uint64_t trackerEvictions = 0; ///< streams displaced by new ones
};

/**
 * Detects stable strides in the demand-miss object-ID sequence.
 *
 * After `trainLength` consecutive same-stride misses within one tracked
 * stream the prefetcher is "armed" for that stream and recommends
 * issuing lookahead.
 */
class StridePrefetcher
{
  public:
    StridePrefetcher(std::uint32_t depth = 8, std::uint32_t train_length = 2)
        : _depth(depth), trainLength(train_length)
    {}

    std::uint32_t depth() const { return _depth; }

    /**
     * Record a demand miss on @p obj_id.
     * @return the detected stride when a stream is armed, 0 otherwise.
     */
    std::int64_t
    onDemandMiss(std::uint64_t obj_id)
    {
        Tracker *t = matchTracker(obj_id);
        if (!t) {
            t = victimTracker();
            _stats.trackerAllocs++;
            if (t->valid)
                _stats.trackerEvictions++;
            t->valid = true;
            t->lastObj = obj_id;
            t->lastStride = 0;
            t->confidence = 0;
            t->lastUse = ++useCounter;
            return 0;
        }
        const std::int64_t stride =
            static_cast<std::int64_t>(obj_id) -
            static_cast<std::int64_t>(t->lastObj);
        if (stride != 0 && stride == t->lastStride) {
            if (t->confidence < trainLength)
                t->confidence++;
        } else {
            t->confidence = stride != 0 ? 1 : t->confidence;
        }
        t->lastStride = stride;
        t->lastObj = obj_id;
        t->lastUse = ++useCounter;
        const bool armed = t->confidence >= trainLength && stride != 0;
        if (armed)
            _stats.armedMisses++;
        return armed ? stride : 0;
    }

    const PrefetcherStats &stats() const { return _stats; }

    void
    reset()
    {
        for (auto &t : trackers)
            t = Tracker{};
        useCounter = 0;
    }

  private:
    struct Tracker
    {
        std::uint64_t lastObj = 0;
        std::int64_t lastStride = 0;
        std::uint32_t confidence = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    /// Maximum object-ID distance for a miss to join a stream.
    static constexpr std::int64_t matchWindow = 256;
    static constexpr std::size_t numTrackers = 8;

    Tracker *
    matchTracker(std::uint64_t obj_id)
    {
        Tracker *best = nullptr;
        std::int64_t best_dist = matchWindow + 1;
        for (auto &t : trackers) {
            if (!t.valid)
                continue;
            const std::int64_t dist = std::llabs(
                static_cast<std::int64_t>(obj_id) -
                static_cast<std::int64_t>(t.lastObj));
            if (dist == 0)
                return &t; // exact match: no closer stream exists
            if (dist <= matchWindow && dist < best_dist) {
                best = &t;
                best_dist = dist;
            }
        }
        return best;
    }

    Tracker *
    victimTracker()
    {
        Tracker *victim = &trackers[0];
        for (auto &t : trackers) {
            if (!t.valid)
                return &t;
            if (t.lastUse < victim->lastUse)
                victim = &t;
        }
        return victim;
    }

    std::uint32_t _depth;
    std::uint32_t trainLength;
    std::array<Tracker, numTrackers> trackers{};
    std::uint64_t useCounter = 0;
    PrefetcherStats _stats;
};

} // namespace tfm

#endif // TRACKFM_RUNTIME_PREFETCHER_HH
