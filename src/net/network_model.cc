#include "network_model.hh"

#include <algorithm>
#include <cmath>

#include "obs/flight_recorder.hh"
#include "obs/obs.hh"
#include "sim/logging.hh"

namespace tfm
{

NetStats &
NetStats::operator+=(const NetStats &other)
{
    bytesFetched += other.bytesFetched;
    bytesWrittenBack += other.bytesWrittenBack;
    fetchMessages += other.fetchMessages;
    writebackMessages += other.writebackMessages;
    fetchPayloads += other.fetchPayloads;
    writebackPayloads += other.writebackPayloads;
    fetchBatches += other.fetchBatches;
    writebackBatches += other.writebackBatches;
    maxFetchBatch = std::max(maxFetchBatch, other.maxFetchBatch);
    maxWritebackBatch = std::max(maxWritebackBatch, other.maxWritebackBatch);
    return *this;
}

std::uint64_t
NetworkModel::transferCycles(std::uint64_t bytes) const
{
    return static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(bytes) / _costs.netBytesPerCycle));
}

std::uint64_t
NetworkModel::reserveInbound(std::uint64_t bytes)
{
    // The request leaves now; payload serialization begins once the
    // request reaches the remote node and the inbound link is free.
    const std::uint64_t ready =
        std::max(_clock.now() + _costs.netLatencyCycles, inFreeAt);
    inFreeAt = ready + transferCycles(bytes);
    return inFreeAt;
}

void
NetworkModel::accountFetch(std::uint64_t bytes, std::uint32_t payloads)
{
    _stats.bytesFetched += bytes;
    _stats.fetchMessages++;
    _stats.fetchPayloads += payloads;
    if (payloads >= 2)
        _stats.fetchBatches++;
    _stats.maxFetchBatch = std::max<std::uint64_t>(_stats.maxFetchBatch,
                                                   payloads);
}

void
NetworkModel::observeFetch(std::uint64_t issue, std::uint64_t arrival,
                           std::uint64_t bytes, std::uint32_t payloads)
{
    if (rec_) {
        rec_->note(recInstance_, FrCat::Net, FrKind::NetFetch, issue,
                   bytes, payloads, arrival, recShard_);
    }
    if (!obs_)
        return;
    obs_->fetchLatency.record(arrival - issue);
    obs_->fetchBatch.record(payloads);
    TraceSink &sink = obs_->trace();
    if (sink.enabled()) {
        sink.complete(obsStream_, TrackNetIn + obsTrackBase_, "net.fetch",
                      "net", issue, arrival - issue);
        sink.arg("bytes", bytes);
        sink.arg("payloads", payloads);
    }
}

void
NetworkModel::fetchSync(std::uint64_t bytes)
{
    fetchBatchSync(bytes, 1);
}

void
NetworkModel::fetchBatchSync(std::uint64_t bytes, std::uint32_t payloads)
{
    TFM_ASSERT(payloads > 0, "empty fetch batch");
    const std::uint64_t issue = _clock.now();
    _clock.advance(_costs.perMessageCpuCycles +
                   _costs.perPayloadCpuCycles * (payloads - 1));
    const std::uint64_t arrival = reserveInbound(bytes);
    _clock.advanceTo(arrival);
    accountFetch(bytes, payloads);
    observeFetch(issue, arrival, bytes, payloads);
}

std::uint64_t
NetworkModel::fetchSyncAt(std::uint64_t issue, std::uint64_t bytes)
{
    const std::uint64_t done = issue + _costs.perMessageCpuCycles +
                               _costs.netLatencyCycles +
                               transferCycles(bytes);
    if (done > inFreeAt)
        inFreeAt = done;
    accountFetch(bytes, 1);
    return done;
}

std::uint64_t
NetworkModel::fetchAsync(std::uint64_t bytes)
{
    return fetchBatchAsync(bytes, 1);
}

std::uint64_t
NetworkModel::fetchBatchAsync(std::uint64_t bytes, std::uint32_t payloads)
{
    TFM_ASSERT(payloads > 0, "empty fetch batch");
    const std::uint64_t issue = _clock.now();
    _clock.advance(_costs.prefetchIssueCycles +
                   _costs.perPayloadCpuCycles * (payloads - 1));
    const std::uint64_t arrival = reserveInbound(bytes);
    accountFetch(bytes, payloads);
    observeFetch(issue, arrival, bytes, payloads);
    return arrival;
}

std::uint64_t
NetworkModel::fetchBatchAsyncSegmented(
    const std::vector<std::uint64_t> &payloadBytes,
    std::vector<std::uint64_t> &arrivals)
{
    TFM_ASSERT(!payloadBytes.empty(), "empty fetch batch");
    const auto payloads = static_cast<std::uint32_t>(payloadBytes.size());
    const std::uint64_t issue = _clock.now();
    _clock.advance(_costs.prefetchIssueCycles +
                   _costs.perPayloadCpuCycles * (payloads - 1));
    std::uint64_t total = 0;
    for (const std::uint64_t bytes : payloadBytes)
        total += bytes;
    const std::uint64_t ready =
        std::max(_clock.now() + _costs.netLatencyCycles, inFreeAt);
    arrivals.clear();
    arrivals.reserve(payloads);
    std::uint64_t at = ready;
    for (const std::uint64_t bytes : payloadBytes) {
        at += transferCycles(bytes);
        arrivals.push_back(at);
    }
    inFreeAt = at;
    accountFetch(total, payloads);
    observeFetch(issue, at, total, payloads);
    return at;
}

void
NetworkModel::writebackAsync(std::uint64_t bytes)
{
    writebackBatch(bytes, 1);
}

void
NetworkModel::writebackBatch(std::uint64_t bytes, std::uint32_t payloads)
{
    TFM_ASSERT(payloads > 0, "empty writeback batch");
    const std::uint64_t issue = _clock.now();
    _clock.advance(_costs.perMessageCpuCycles +
                   _costs.perPayloadCpuCycles * (payloads - 1));
    const std::uint64_t start = std::max(_clock.now(), outFreeAt);
    outFreeAt = start + transferCycles(bytes);
    _stats.bytesWrittenBack += bytes;
    _stats.writebackMessages++;
    _stats.writebackPayloads += payloads;
    if (payloads >= 2)
        _stats.writebackBatches++;
    _stats.maxWritebackBatch =
        std::max<std::uint64_t>(_stats.maxWritebackBatch, payloads);
    if (rec_) {
        rec_->note(recInstance_, FrCat::Net, FrKind::NetWriteback, issue,
                   bytes, payloads, outFreeAt, recShard_);
    }
    if (obs_) {
        obs_->writebackLatency.record(outFreeAt - issue);
        obs_->writebackBatch.record(payloads);
        TraceSink &sink = obs_->trace();
        if (sink.enabled()) {
            sink.complete(obsStream_, TrackNetOut + obsTrackBase_,
                          "net.writeback", "net", issue, outFreeAt - issue);
            sink.arg("bytes", bytes);
            sink.arg("payloads", payloads);
        }
    }
}

} // namespace tfm
