#include "network_model.hh"

#include <cmath>

namespace tfm
{

std::uint64_t
NetworkModel::transferCycles(std::uint64_t bytes) const
{
    return static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(bytes) / _costs.netBytesPerCycle));
}

std::uint64_t
NetworkModel::reserveInbound(std::uint64_t bytes)
{
    // The request leaves now; payload serialization begins once the
    // request reaches the remote node and the inbound link is free.
    const std::uint64_t ready =
        std::max(_clock.now() + _costs.netLatencyCycles, inFreeAt);
    inFreeAt = ready + transferCycles(bytes);
    return inFreeAt;
}

void
NetworkModel::fetchSync(std::uint64_t bytes)
{
    _clock.advance(_costs.perMessageCpuCycles);
    const std::uint64_t arrival = reserveInbound(bytes);
    _clock.advanceTo(arrival);
    _stats.bytesFetched += bytes;
    _stats.fetchMessages++;
}

std::uint64_t
NetworkModel::fetchAsync(std::uint64_t bytes)
{
    _clock.advance(_costs.prefetchIssueCycles);
    const std::uint64_t arrival = reserveInbound(bytes);
    _stats.bytesFetched += bytes;
    _stats.fetchMessages++;
    return arrival;
}

void
NetworkModel::writebackAsync(std::uint64_t bytes)
{
    _clock.advance(_costs.perMessageCpuCycles);
    const std::uint64_t start = std::max(_clock.now(), outFreeAt);
    outFreeAt = start + transferCycles(bytes);
    _stats.bytesWrittenBack += bytes;
    _stats.writebackMessages++;
}

} // namespace tfm
