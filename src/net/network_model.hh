/**
 * @file
 * Simulated network link between the compute node and the remote memory
 * node.
 *
 * Models the paper's 25 Gb/s NIC with the TCP (Shenango) backend used by
 * AIFM/TrackFM and the RDMA backend used by Fastswap: a fixed round-trip
 * latency plus bandwidth-limited serialization of payload bytes on a
 * single full-duplex link. All transfers are tracked per direction so the
 * I/O-amplification figures (13 and 16c) can be regenerated.
 */

#ifndef TRACKFM_NET_NETWORK_MODEL_HH
#define TRACKFM_NET_NETWORK_MODEL_HH

#include <cstdint>

#include "sim/cost_params.hh"
#include "sim/cycle_clock.hh"

namespace tfm
{

/** Statistics accumulated by the link. */
struct NetStats
{
    std::uint64_t bytesFetched = 0;     ///< remote -> local payload bytes
    std::uint64_t bytesWrittenBack = 0; ///< local -> remote payload bytes
    std::uint64_t fetchMessages = 0;
    std::uint64_t writebackMessages = 0;

    std::uint64_t totalBytes() const { return bytesFetched + bytesWrittenBack; }
};

/**
 * A full-duplex point-to-point link with latency and bandwidth.
 *
 * The inbound (fetch) and outbound (writeback) directions serialize
 * independently. Synchronous fetches block the caller (advance the clock
 * to the arrival time); asynchronous operations only reserve link time.
 */
class NetworkModel
{
  public:
    NetworkModel(CycleClock &clock, const CostParams &costs)
        : _clock(clock), _costs(costs)
    {}

    /**
     * Fetch @p bytes synchronously; the clock advances to the completion
     * time (request latency + serialized transfer) and the local CPU is
     * charged the per-message software cost.
     */
    void fetchSync(std::uint64_t bytes);

    /**
     * Issue an asynchronous fetch of @p bytes (prefetch). Returns the
     * absolute cycle at which the data will have arrived. The caller is
     * charged only the issue-side CPU cost.
     *
     * @return arrival time in absolute cycles.
     */
    std::uint64_t fetchAsync(std::uint64_t bytes);

    /**
     * Block until an asynchronous fetch issued earlier has arrived.
     * Charges only the residual wait (zero when already arrived).
     */
    void waitUntil(std::uint64_t arrivalCycle) { _clock.advanceTo(arrivalCycle); }

    /**
     * Write @p bytes back to the remote node asynchronously (evacuation,
     * page-out). Reserves outbound link time and counts bytes; the caller
     * pays only the per-message CPU cost.
     */
    void writebackAsync(std::uint64_t bytes);

    const NetStats &stats() const { return _stats; }
    void resetStats() { _stats = NetStats{}; }

    /** Earliest cycle at which the inbound link is free (for tests). */
    std::uint64_t inboundFreeAt() const { return inFreeAt; }
    /** Earliest cycle at which the outbound link is free (for tests). */
    std::uint64_t outboundFreeAt() const { return outFreeAt; }

  private:
    /// Cycles needed to push @p bytes through the link at line rate.
    std::uint64_t transferCycles(std::uint64_t bytes) const;
    /// Reserve inbound link time for a payload, returning arrival cycle.
    std::uint64_t reserveInbound(std::uint64_t bytes);

    CycleClock &_clock;
    const CostParams &_costs;
    NetStats _stats;
    std::uint64_t inFreeAt = 0;
    std::uint64_t outFreeAt = 0;
};

} // namespace tfm

#endif // TRACKFM_NET_NETWORK_MODEL_HH
