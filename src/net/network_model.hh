/**
 * @file
 * Simulated network link between the compute node and the remote memory
 * node.
 *
 * Models the paper's 25 Gb/s NIC with the TCP (Shenango) backend used by
 * AIFM/TrackFM and the RDMA backend used by Fastswap: a fixed round-trip
 * latency plus bandwidth-limited serialization of payload bytes on a
 * single full-duplex link. All transfers are tracked per direction so the
 * I/O-amplification figures (13 and 16c) can be regenerated.
 */

#ifndef TRACKFM_NET_NETWORK_MODEL_HH
#define TRACKFM_NET_NETWORK_MODEL_HH

#include <cstdint>
#include <vector>

#include "sim/cost_params.hh"
#include "sim/cycle_clock.hh"

namespace tfm
{

class FlightRecorder;
class Observability;

/** Statistics accumulated by the link. */
struct NetStats
{
    std::uint64_t bytesFetched = 0;     ///< remote -> local payload bytes
    std::uint64_t bytesWrittenBack = 0; ///< local -> remote payload bytes
    std::uint64_t fetchMessages = 0;
    std::uint64_t writebackMessages = 0;
    /// Total object payloads carried by fetch messages (>= fetchMessages;
    /// the ratio is the coalescing factor for the Fig. 13 pipeline).
    std::uint64_t fetchPayloads = 0;
    std::uint64_t writebackPayloads = 0;
    /// Messages that actually coalesced two or more payloads.
    std::uint64_t fetchBatches = 0;
    std::uint64_t writebackBatches = 0;
    /// Largest batch seen in each direction.
    std::uint64_t maxFetchBatch = 0;
    std::uint64_t maxWritebackBatch = 0;

    std::uint64_t totalBytes() const { return bytesFetched + bytesWrittenBack; }
    std::uint64_t totalMessages() const
    {
        return fetchMessages + writebackMessages;
    }

    /** Mean payloads per fetch message (1.0 when nothing coalesces). */
    double
    fetchCoalescing() const
    {
        return fetchMessages == 0
                   ? 1.0
                   : static_cast<double>(fetchPayloads) /
                         static_cast<double>(fetchMessages);
    }

    /** Mean payloads per writeback message (outbound mirror). */
    double
    writebackCoalescing() const
    {
        return writebackMessages == 0
                   ? 1.0
                   : static_cast<double>(writebackPayloads) /
                         static_cast<double>(writebackMessages);
    }

    /** Element-wise sum (aggregating per-shard links). */
    NetStats &operator+=(const NetStats &other);
};

/**
 * A full-duplex point-to-point link with latency and bandwidth.
 *
 * The inbound (fetch) and outbound (writeback) directions serialize
 * independently. Synchronous fetches block the caller (advance the clock
 * to the arrival time); asynchronous operations only reserve link time.
 */
class NetworkModel
{
  public:
    NetworkModel(CycleClock &clock, const CostParams &costs)
        : _clock(clock), _costs(costs)
    {}

    /**
     * Fetch @p bytes synchronously; the clock advances to the completion
     * time (request latency + serialized transfer) and the local CPU is
     * charged the per-message software cost.
     */
    void fetchSync(std::uint64_t bytes);

    /**
     * Issue an asynchronous fetch of @p bytes (prefetch). Returns the
     * absolute cycle at which the data will have arrived. The caller is
     * charged only the issue-side CPU cost.
     *
     * @return arrival time in absolute cycles.
     */
    std::uint64_t fetchAsync(std::uint64_t bytes);

    /**
     * Issue one asynchronous multi-object fetch message carrying
     * @p payloads coalesced objects totalling @p bytes. A single
     * issue-side CPU + latency charge covers the whole batch; each
     * payload beyond the first adds only the scatter-gather entry cost.
     *
     * @return arrival time of the complete batch in absolute cycles.
     */
    std::uint64_t fetchBatchAsync(std::uint64_t bytes,
                                  std::uint32_t payloads);

    /**
     * Like fetchBatchAsync(), but reports when each payload of the
     * single response message becomes usable: payloads stream back
     * back-to-back, so payload i arrives after the request latency plus
     * the cumulative serialization of payloads 0..i, not at the end of
     * the whole batch.
     *
     * @param payloadBytes per-payload byte counts, in transfer order.
     * @param arrivals out-param; arrivals[i] is the absolute cycle at
     *                 which payload i has fully arrived.
     * @return arrival of the last payload (== arrivals.back()).
     */
    std::uint64_t
    fetchBatchAsyncSegmented(const std::vector<std::uint64_t> &payloadBytes,
                             std::vector<std::uint64_t> &arrivals);

    /**
     * Synchronous multi-object fetch (a demand miss that drags its
     * coalescing window along): one per-message charge, the clock
     * advances to the arrival of the whole batch.
     */
    void fetchBatchSync(std::uint64_t bytes, std::uint32_t payloads);

    /**
     * Block until an asynchronous fetch issued earlier has arrived.
     * Charges only the residual wait (zero when already arrived).
     */
    void waitUntil(std::uint64_t arrivalCycle) { _clock.advanceTo(arrivalCycle); }

    /**
     * Concurrent-mode demand fetch issued at @p issue on a worker's
     * private timeline (DESIGN.md §4k). Per-core flows overlap the
     * request latency — each worker pays CPU + round trip + its own
     * payload serialization on its own clock — so the shared frontier
     * never drags a behind-schedule worker's completion into another
     * core's future (the pathology of time-sharing the device clock
     * through fetchSync: every fetch would snap to the global
     * frontier, serializing all latencies). Cross-core bandwidth
     * contention is deliberately not modeled — at object sizes the
     * transfer is two orders of magnitude below the round trip. The
     * frontier still advances monotonically for the deterministic
     * paths' no-un-reserve invariant, and the fetch is counted in
     * NetStats. Does not touch the shared clock.
     *
     * @return completion cycle on the issuing worker's timeline.
     */
    std::uint64_t fetchSyncAt(std::uint64_t issue, std::uint64_t bytes);

    /**
     * Write @p bytes back to the remote node asynchronously (evacuation,
     * page-out). Reserves outbound link time and counts bytes; the caller
     * pays only the per-message CPU cost.
     */
    void writebackAsync(std::uint64_t bytes);

    /**
     * Write @p payloads coalesced objects totalling @p bytes back in one
     * outbound message (batched evacuation). One per-message CPU charge
     * plus the per-payload scatter-gather cost covers the whole batch.
     */
    void writebackBatch(std::uint64_t bytes, std::uint32_t payloads);

    const NetStats &stats() const { return _stats; }
    void resetStats() { _stats = NetStats{}; }

    /** The shared simulated clock (for devices behind the link). */
    std::uint64_t now() const { return _clock.now(); }

    /** Earliest cycle at which the inbound link is free (for tests). */
    std::uint64_t inboundFreeAt() const { return inFreeAt; }
    /** Earliest cycle at which the outbound link is free (for tests). */
    std::uint64_t outboundFreeAt() const { return outFreeAt; }

    /** @name Observability
     *  Attach the owning runtime's sink; the link then emits one span
     *  per message (issue -> arrival) on its in/out tracks and feeds
     *  the latency/batch-size histograms. Never charges cycles.
     *  @p trackBase shifts the in/out/remote track ids so each shard of
     *  a cluster renders as its own set of tracks (0 for the single
     *  link, obs::shardTrackBase(i) for shard i).
     * @{ */
    void
    attachObs(Observability *sink, std::uint32_t stream,
              std::uint32_t trackBase = 0)
    {
        obs_ = sink;
        obsStream_ = stream;
        obsTrackBase_ = trackBase;
    }
    Observability *obs() const { return obs_; }
    std::uint32_t obsStream() const { return obsStream_; }
    std::uint32_t obsTrackBase() const { return obsTrackBase_; }
    /** @} */

    /** @name Flight recorder
     *  When attached, the link logs one context event per message
     *  ({bytes, payloads, arrival, shard}) onto @p instance's net
     *  stream; @p shard labels which cluster link this is (0 for the
     *  single-node backend). Never charges cycles.
     * @{ */
    void
    attachRecorder(FlightRecorder *recorder, std::uint16_t instance,
                   std::uint32_t shard)
    {
        rec_ = recorder;
        recInstance_ = instance;
        recShard_ = shard;
    }
    /** @} */

  private:
    /// Cycles needed to push @p bytes through the link at line rate.
    std::uint64_t transferCycles(std::uint64_t bytes) const;
    /// Reserve inbound link time for a payload, returning arrival cycle.
    std::uint64_t reserveInbound(std::uint64_t bytes);
    /// Record one inbound message carrying @p payloads objects.
    void accountFetch(std::uint64_t bytes, std::uint32_t payloads);
    /// Observe one inbound message span (no-op when unattached).
    void observeFetch(std::uint64_t issue, std::uint64_t arrival,
                      std::uint64_t bytes, std::uint32_t payloads);

    CycleClock &_clock;
    const CostParams &_costs;
    NetStats _stats;
    std::uint64_t inFreeAt = 0;
    std::uint64_t outFreeAt = 0;
    Observability *obs_ = nullptr;
    std::uint32_t obsStream_ = 0;
    std::uint32_t obsTrackBase_ = 0;
    FlightRecorder *rec_ = nullptr;
    std::uint16_t recInstance_ = 0;
    std::uint32_t recShard_ = 0;
};

} // namespace tfm

#endif // TRACKFM_NET_NETWORK_MODEL_HH
