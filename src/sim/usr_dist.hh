/**
 * @file
 * Key/value size distribution modeled on the USR pool from Atikoglu et
 * al., "Workload Analysis of a Large-Scale Key-Value Store" (SIGMETRICS
 * 2012), which the paper uses for the memcached experiment (Fig. 16).
 *
 * USR is dominated by very small items: keys of 16-21 bytes and values
 * of 2 bytes, which makes it maximally sensitive to I/O amplification.
 */

#ifndef TRACKFM_SIM_USR_DIST_HH
#define TRACKFM_SIM_USR_DIST_HH

#include <cstdint>

#include "rng.hh"

namespace tfm
{

/** One sampled key/value pair size. */
struct KvSize
{
    std::uint32_t keyBytes;
    std::uint32_t valueBytes;
};

/**
 * Sampler for USR-style key/value sizes.
 *
 * Keys are uniformly 16 or 21 bytes (the two sizes observed in USR);
 * values are 2 bytes with high probability with a small tail of larger
 * values so that eviction and multi-object items get exercised.
 */
class UsrSizeDist
{
  public:
    explicit UsrSizeDist(std::uint64_t seed = 7) : rng(seed) {}

    KvSize
    next()
    {
        KvSize s;
        s.keyBytes = (rng.below(2) == 0) ? 16 : 21;
        const std::uint64_t roll = rng.below(100);
        if (roll < 90) {
            s.valueBytes = 2;
        } else if (roll < 98) {
            s.valueBytes = static_cast<std::uint32_t>(8 + rng.below(56));
        } else {
            s.valueBytes = static_cast<std::uint32_t>(64 + rng.below(448));
        }
        return s;
    }

  private:
    Rng rng;
};

} // namespace tfm

#endif // TRACKFM_SIM_USR_DIST_HH
