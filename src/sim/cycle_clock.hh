/**
 * @file
 * Simulated time source shared by one application thread and the devices
 * (network, remote node) it interacts with.
 */

#ifndef TRACKFM_SIM_CYCLE_CLOCK_HH
#define TRACKFM_SIM_CYCLE_CLOCK_HH

#include <cstdint>

namespace tfm
{

/**
 * A monotonically advancing cycle counter.
 *
 * The application thread advances the clock as it executes (per-access
 * base costs, guard costs, fault handling). Blocking operations such as
 * a synchronous remote fetch advance the clock to the operation's
 * completion time; asynchronous operations (prefetch, writeback) merely
 * schedule completion times against the clock and consume link bandwidth
 * in the NetworkModel.
 */
class CycleClock
{
  public:
    /** Current simulated time in cycles. */
    std::uint64_t now() const { return _now; }

    /** Advance by a duration (normal forward execution). */
    void advance(std::uint64_t cycles) { _now += cycles; }

    /** Block until an absolute time; no-op if already past it. */
    void
    advanceTo(std::uint64_t when)
    {
        if (when > _now)
            _now = when;
    }

    /** Reset to time zero (between bench configurations). */
    void reset() { _now = 0; }

    /**
     * Set the clock to an absolute time, possibly rewinding it. This is
     * the device-clock time-sharing hook of the concurrent runtime
     * (DESIGN.md §4k): worker threads own private clocks, and before a
     * backend call the shared device clock is jumped to the calling
     * worker's time (the NetworkModel's busy tracking is max()-based,
     * so a rewound clock can never un-reserve link time). Never used on
     * an application clock, which stays monotone.
     */
    void jumpTo(std::uint64_t when) { _now = when; }

    /** Convert a cycle count to seconds at the given core frequency. */
    static double
    toSeconds(std::uint64_t cycles, double ghz)
    {
        return static_cast<double>(cycles) / (ghz * 1e9);
    }

  private:
    std::uint64_t _now = 0;
};

} // namespace tfm

#endif // TRACKFM_SIM_CYCLE_CLOCK_HH
