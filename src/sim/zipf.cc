#include "zipf.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace tfm
{

ZipfGenerator::ZipfGenerator(std::uint64_t n, double skew, std::uint64_t seed)
    : _n(n), _skew(skew), rng(seed)
{
    TFM_ASSERT(n > 0, "zipf over empty domain");
    cdf.resize(n);
    double sum = 0.0;
    for (std::uint64_t k = 0; k < n; k++) {
        sum += 1.0 / std::pow(static_cast<double>(k + 1), skew);
        cdf[k] = sum;
    }
    const double inv = 1.0 / sum;
    for (auto &p : cdf)
        p *= inv;
}

double
ZipfGenerator::pmf(std::uint64_t k) const
{
    TFM_ASSERT(k < _n, "zipf pmf rank out of range");
    return k == 0 ? cdf[0] : cdf[k] - cdf[k - 1];
}

std::uint64_t
ZipfGenerator::next()
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    if (it == cdf.end())
        return _n - 1;
    return static_cast<std::uint64_t>(it - cdf.begin());
}

} // namespace tfm
