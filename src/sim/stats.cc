#include "stats.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace tfm
{

const std::uint64_t *
StatSet::find(const std::string &name) const
{
    for (const auto &[key, value] : entries) {
        if (key == name)
            return &value;
    }
    return nullptr;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    const std::uint64_t *value = find(name);
    return value ? *value : 0;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[key, value] : other.entries) {
        bool found = false;
        for (auto &[name, sum] : entries) {
            if (name == key) {
                sum += value;
                found = true;
                break;
            }
        }
        if (!found)
            entries.emplace_back(key, value);
    }
}

void
StatSet::dump(std::ostream &os, const std::string &prefix) const
{
    std::size_t width = 0;
    for (const auto &[key, value] : entries)
        width = std::max(width, key.size());
    for (const auto &[key, value] : entries) {
        os << prefix << std::left
           << std::setw(static_cast<int>(width)) << key << std::right
           << " = " << value << "\n";
    }
}

} // namespace tfm
