#include "stats.hh"

#include <ostream>

namespace tfm
{

std::uint64_t
StatSet::get(const std::string &name) const
{
    for (const auto &[key, value] : entries) {
        if (key == name)
            return value;
    }
    return 0;
}

void
StatSet::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[key, value] : entries)
        os << prefix << key << " = " << value << "\n";
}

} // namespace tfm
