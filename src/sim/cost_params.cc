#include "cost_params.hh"

#include <ostream>

namespace tfm
{

void
CostParams::dump(std::ostream &os) const
{
    os << "CostParams (cycles @ " << cpuGhz << " GHz):\n"
       << "  seqAccess=" << seqAccessCycles
       << " randAccess=" << randAccessCycles
       << " guardedSeqAccess=" << guardedSeqAccessCycles
       << " compute=" << computeCycles << "\n"
       << "  fastPath r/w=" << fastPathReadCycles << "/"
       << fastPathWriteCycles
       << " uncached r/w=" << fastPathUncachedReadCycles << "/"
       << fastPathUncachedWriteCycles << "\n"
       << "  slowPath r/w=" << slowPathReadCycles << "/"
       << slowPathWriteCycles
       << " uncached r/w=" << slowPathUncachedReadCycles << "/"
       << slowPathUncachedWriteCycles << "\n"
       << "  custodyReject=" << custodyRejectCycles
       << " boundaryCheck=" << boundaryCheckCycles
       << " localityGuard=" << localityGuardCycles << "\n"
       << "  pageFault local=" << pageFaultLocalCycles
       << " remoteSw=" << pageFaultRemoteSwCycles
       << " reclaim=" << pageReclaimCycles << "\n"
       << "  smartPtrDeref=" << smartPtrDerefCycles
       << " derefScope=" << derefScopeCycles << "\n"
       << "  netLatency=" << netLatencyCycles
       << " netBytesPerCycle=" << netBytesPerCycle
       << " perMessageCpu=" << perMessageCpuCycles
       << " perPayloadCpu=" << perPayloadCpuCycles << "\n"
       << "  guardCacheHit r/w=" << guardCacheHitReadCycles << "/"
       << guardCacheHitWriteCycles
       << " revalidate=" << revalidateCycles << "\n"
       << "  remoteFetchSw=" << remoteFetchSwCycles
       << " evacuateObject=" << evacuateObjectCycles
       << " alloc=" << allocCycles
       << " prefetchIssue=" << prefetchIssueCycles << "\n";
}

} // namespace tfm
