/**
 * @file
 * Lightweight named-counter registry for simulation statistics.
 *
 * Each runtime keeps a typed stats struct for hot-path counting; this
 * registry exists for uniform reporting across systems in benches and
 * EXPERIMENTS.md tables.
 */

#ifndef TRACKFM_SIM_STATS_HH
#define TRACKFM_SIM_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace tfm
{

/**
 * An append-only list of (name, value) statistics.
 *
 * Runtimes implement an exportStats(StatSet&) hook; bench binaries merge
 * and print the sets.
 */
class StatSet
{
  public:
    void
    add(std::string name, std::uint64_t value)
    {
        entries.emplace_back(std::move(name), value);
    }

    /**
     * Look up a stat by exact name.
     * @return pointer to the value (valid until the set is modified),
     *         or nullptr when no entry has that name — unlike get(),
     *         which cannot distinguish absent from present-but-zero.
     */
    const std::uint64_t *find(const std::string &name) const;

    /** Look up a stat by exact name; returns 0 when absent. */
    std::uint64_t get(const std::string &name) const;

    const std::vector<std::pair<std::string, std::uint64_t>> &
    all() const
    {
        return entries;
    }

    /**
     * Fold @p other into this set: values of entries sharing a name are
     * summed; names only in @p other are appended in their order. Used
     * for cluster-wide aggregation of per-node stat sets.
     */
    void merge(const StatSet &other);

    /** Column-aligned listing: names padded to the widest, one per line. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

  private:
    std::vector<std::pair<std::string, std::uint64_t>> entries;
};

} // namespace tfm

#endif // TRACKFM_SIM_STATS_HH
