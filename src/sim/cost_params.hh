/**
 * @file
 * Cost-model constants for the TrackFM reproduction.
 *
 * All durations are in simulated CPU cycles at the paper's 2.4 GHz clock.
 * Defaults are calibrated against Tables 1 and 2 of the paper (median
 * cycles over 1000 trials) and the empirical anchors called out in
 * DESIGN.md section 4.
 */

#ifndef TRACKFM_SIM_COST_PARAMS_HH
#define TRACKFM_SIM_COST_PARAMS_HH

#include <cstdint>
#include <iosfwd>

namespace tfm
{

/**
 * Tunable cycle costs for every primitive event in the simulation.
 *
 * A single CostParams instance is shared by a System and all of its
 * runtimes so that TrackFM, Fastswap, and AIFM baselines are charged
 * from one consistent model.
 */
struct CostParams
{
    /// Simulated core frequency, used only to convert cycles to seconds.
    double cpuGhz = 2.4;

    /** @name Baseline memory access costs
     *  Per-access cost the application pays regardless of far-memory
     *  system. Sequential (streaming, vectorizable) access is far cheaper
     *  per element than dependent/random access (Table 1 measures the
     *  random-ish case at 36 cycles).
     * @{ */
    /// Vectorizable sequential access (e.g. STREAM inner loop).
    std::uint64_t seqAccessCycles = 4;
    /// Dependent or random access (pointer chase, hash probe).
    std::uint64_t randAccessCycles = 36;
    /// Sequential access whose loop carries an inline guard: the guard's
    /// branches defeat vectorization, so the base cost rises.
    std::uint64_t guardedSeqAccessCycles = 15;
    /// Generic non-memory work per loop iteration when a workload wants
    /// to model compute (e.g. k-means distance math), per flop-ish unit.
    std::uint64_t computeCycles = 1;
    /** @} */

    /** @name TrackFM guard costs (Table 1)
     * @{ */
    std::uint64_t fastPathReadCycles = 21;
    std::uint64_t fastPathWriteCycles = 21;
    std::uint64_t fastPathUncachedReadCycles = 297;
    std::uint64_t fastPathUncachedWriteCycles = 309;
    /// Slow path with the object already local (runtime call only).
    std::uint64_t slowPathReadCycles = 144;
    std::uint64_t slowPathWriteCycles = 159;
    std::uint64_t slowPathUncachedReadCycles = 453;
    std::uint64_t slowPathUncachedWriteCycles = 432;
    /// Custody-check rejection for non-TrackFM pointers (~4 instructions).
    std::uint64_t custodyRejectCycles = 4;
    /** @} */

    /** @name Loop chunking costs (section 3.4)
     *  The boundary check replaces the fast-path guard inside chunked
     *  loops; the locality-invariant guard replaces the slow-path guard
     *  at object-crossing boundaries and pins the object via a runtime
     *  call — "slightly more expensive" than the slow-path guard
     *  (section 3.4), i.e. a few hundred cycles of runtime call + pin
     *  bookkeeping. Note that the compiler's *decision* model uses the
     *  paper's own fitted constants (tfm/cost_model.hh), which place
     *  the break-even at ~730 elements/object; see DESIGN.md section 4
     *  for the discussion of that split.
     * @{ */
    std::uint64_t boundaryCheckCycles = 3;
    std::uint64_t localityGuardCycles = 2000;
    /** @} */

    /** @name Fastswap costs (Table 2)
     *  Software fault-handling cost; the remote case additionally pays the
     *  network model for the 4 KB page transfer, which brings the total to
     *  the paper's ~34-35 K cycles.
     * @{ */
    std::uint64_t pageFaultLocalCycles = 1300;
    std::uint64_t pageFaultRemoteSwCycles = 2900;
    /// Per evicted page under memory pressure: cgroup direct reclaim,
    /// unmapping, and TLB shootdown (~5 us). Not part of Table 2's
    /// fault microbenchmark (which faults into free frames); this is
    /// the kernel-side cost the paper cites ("mapping and cgroups
    /// memory reclamation") that user-level evacuation avoids.
    std::uint64_t pageReclaimCycles = 12000;
    /** @} */

    /** @name AIFM library-mode costs
     * @{ */
    /// Smart-pointer dereference indirection inside a DerefScope.
    std::uint64_t smartPtrDerefCycles = 5;
    /// Entering/leaving a DerefScope.
    std::uint64_t derefScopeCycles = 8;
    /// Per-element cost of a library iterator's inner loop (bounds
    /// check + pointer bump + non-vectorizable loop body), comparable
    /// to TrackFM's chunked loop body — the 10% gap between the two
    /// systems comes from guards on non-loop accesses.
    std::uint64_t aifmIteratorCycles = 16;
    /** @} */

    /** @name Network model (25 Gb/s NIC, TCP backend)
     * @{ */
    /// One-way request + response latency (~11.7 us at 2.4 GHz).
    std::uint64_t netLatencyCycles = 28000;
    /// Link bandwidth: 25 Gb/s at 2.4 GHz is ~1.3 bytes per cycle.
    double netBytesPerCycle = 1.3;
    /// Per-message CPU cost on the local side (TCP stack, Shenango).
    std::uint64_t perMessageCpuCycles = 600;
    /// CPU cost of each additional payload coalesced into a multi-object
    /// message (scatter-gather entry + per-object header), far below the
    /// per-message charge — the gap batching exploits.
    std::uint64_t perPayloadCpuCycles = 40;
    /** @} */

    /** @name Guard last-object inline cache
     *  Repeated hits on the object touched by the previous guard skip
     *  the object-state-table load: compare the cached object id, test
     *  the cached meta word, and reuse the translated frame pointer — a
     *  handful of straight-line instructions, cheaper than the full
     *  Table 1 fast path.
     * @{ */
    std::uint64_t guardCacheHitReadCycles = 8;
    std::uint64_t guardCacheHitWriteCycles = 8;
    /// Epoch revalidation of a hoisted guard: load the global eviction
    /// epoch, compare with the armed value, branch — cheaper than even
    /// the inline-cache hit because no address math or meta check runs.
    std::uint64_t revalidateCycles = 3;
    /** @} */

    /** @name Runtime bookkeeping
     * @{ */
    /// Software overhead of a blocking remote object fetch beyond the
    /// network time (AIFM request setup, yield, wakeup).
    std::uint64_t remoteFetchSwCycles = 3300;
    /// Evacuating one object (metadata flip + writeback issue).
    std::uint64_t evacuateObjectCycles = 400;
    /// Allocation fast path in the region allocator.
    std::uint64_t allocCycles = 120;
    /// Issuing one asynchronous prefetch request.
    std::uint64_t prefetchIssueCycles = 80;
    /** @} */

    /** Print all constants (used by bench binaries for reproducibility). */
    void dump(std::ostream &os) const;
};

} // namespace tfm

#endif // TRACKFM_SIM_COST_PARAMS_HH
