/**
 * @file
 * Deterministic pseudo-random number generation for workload generators.
 *
 * Uses splitmix64 for seeding and xoshiro256** for the stream; both are
 * tiny, fast, and fully reproducible across platforms, which matters for
 * regenerating the paper's figures deterministically.
 */

#ifndef TRACKFM_SIM_RNG_HH
#define TRACKFM_SIM_RNG_HH

#include <cstdint>

namespace tfm
{

/** splitmix64 step; used to expand a single seed into xoshiro state. */
inline std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** generator with a std::uniform_random_bit_generator-style
 * interface so it can drive standard distributions when needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x5eed)
    {
        std::uint64_t sm = seed;
        for (auto &word : state)
            word = splitmix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift rejection-free mapping; adequate for workloads.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace tfm

#endif // TRACKFM_SIM_RNG_HH
