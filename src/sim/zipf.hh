/**
 * @file
 * Zipfian key sampler used by the hashmap and memcached workloads.
 */

#ifndef TRACKFM_SIM_ZIPF_HH
#define TRACKFM_SIM_ZIPF_HH

#include <cstdint>
#include <vector>

#include "rng.hh"

namespace tfm
{

/**
 * Samples integers in [0, n) with P(k) proportional to 1 / (k+1)^skew.
 *
 * Uses the classic precomputed-CDF + binary search approach for exact
 * sampling; n in this reproduction is at most a few million so the table
 * is cheap. The paper uses skews between 1.0 and 1.3 (Fig. 16) and 1.02
 * (Fig. 9/13).
 */
class ZipfGenerator
{
  public:
    ZipfGenerator(std::uint64_t n, double skew, std::uint64_t seed = 42);

    /** Draw one sample (a rank in [0, n)). */
    std::uint64_t next();

    /**
     * Exact sampling probability of rank @p k, straight from the CDF
     * table the sampler draws against — the ground truth the
     * statistical tests compare observed frequencies to.
     */
    double pmf(std::uint64_t k) const;

    std::uint64_t n() const { return _n; }
    double skew() const { return _skew; }

  private:
    std::uint64_t _n;
    double _skew;
    Rng rng;
    /// cdf[k] = P(X <= k); monotone in [0, 1].
    std::vector<double> cdf;
};

} // namespace tfm

#endif // TRACKFM_SIM_ZIPF_HH
