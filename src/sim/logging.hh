/**
 * @file
 * Minimal gem5-style status/error reporting helpers.
 *
 * panic() is for internal invariant violations (bugs in this library);
 * fatal() is for unrecoverable user/configuration errors; warn() and
 * inform() print status without stopping the simulation.
 */

#ifndef TRACKFM_SIM_LOGGING_HH
#define TRACKFM_SIM_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace tfm
{

/** Print a formatted message with a severity prefix and abort. */
[[noreturn]] inline void
panicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg, file, line);
    std::abort();
}

/** Print a formatted message with a severity prefix and exit(1). */
[[noreturn]] inline void
fatalImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg, file, line);
    std::exit(1);
}

/** @name Non-fatal status reporting
 *
 * Severity levels for TFM_WARN / TFM_INFORM, gated by the
 * TFM_LOG_LEVEL environment variable: 0 silences everything, 1 (the
 * default) prints warnings, 2 adds informational messages. The level
 * is read once per process.
 * @{ */
enum LogLevel : int
{
    LogSilent = 0,
    LogWarn = 1,
    LogInform = 2
};

inline int
logLevel()
{
    static const int level = [] {
        const char *env = std::getenv("TFM_LOG_LEVEL");
        if (!env || !*env)
            return static_cast<int>(LogWarn);
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed <= 0)
            return static_cast<int>(LogSilent);
        return static_cast<int>(parsed == 1 ? LogWarn : LogInform);
    }();
    return level;
}

__attribute__((format(printf, 2, 3))) inline void
logPrint(const char *severity, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "%s: ", severity);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
    va_end(args);
}
/** @} */

} // namespace tfm

#define TFM_PANIC(msg) ::tfm::panicImpl(__FILE__, __LINE__, (msg))
#define TFM_FATAL(msg) ::tfm::fatalImpl(__FILE__, __LINE__, (msg))

/** Printf-style warning, on unless TFM_LOG_LEVEL=0. */
#define TFM_WARN(...)                                                       \
    do {                                                                    \
        if (::tfm::logLevel() >= ::tfm::LogWarn)                            \
            ::tfm::logPrint("warn", __VA_ARGS__);                           \
    } while (0)

/** Printf-style status message, printed only at TFM_LOG_LEVEL>=2. */
#define TFM_INFORM(...)                                                     \
    do {                                                                    \
        if (::tfm::logLevel() >= ::tfm::LogInform)                          \
            ::tfm::logPrint("inform", __VA_ARGS__);                         \
    } while (0)

/** Assert an internal invariant; always on (simulation correctness). */
#define TFM_ASSERT(cond, msg)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            TFM_PANIC(msg);                                                 \
    } while (0)

#endif // TRACKFM_SIM_LOGGING_HH
