/**
 * @file
 * Minimal gem5-style status/error reporting helpers.
 *
 * panic() is for internal invariant violations (bugs in this library);
 * fatal() is for unrecoverable user/configuration errors; warn() and
 * inform() print status without stopping the simulation.
 */

#ifndef TRACKFM_SIM_LOGGING_HH
#define TRACKFM_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>

namespace tfm
{

/** Print a formatted message with a severity prefix and abort. */
[[noreturn]] inline void
panicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg, file, line);
    std::abort();
}

/** Print a formatted message with a severity prefix and exit(1). */
[[noreturn]] inline void
fatalImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg, file, line);
    std::exit(1);
}

} // namespace tfm

#define TFM_PANIC(msg) ::tfm::panicImpl(__FILE__, __LINE__, (msg))
#define TFM_FATAL(msg) ::tfm::fatalImpl(__FILE__, __LINE__, (msg))

/** Assert an internal invariant; always on (simulation correctness). */
#define TFM_ASSERT(cond, msg)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            TFM_PANIC(msg);                                                 \
    } while (0)

#endif // TRACKFM_SIM_LOGGING_HH
