/**
 * @file
 * The remote memory node: a byte-addressed backing store for the far
 * heap, reached only through the NetworkModel.
 *
 * In the paper this is a second CloudLab server running the AIFM remote
 * agent (or, for Fastswap, a remote swap target). Here it is an
 * in-process store; the separation is enforced by charging every access
 * through the network and by keeping request counters, so code paths are
 * identical to the two-machine setup up to the transport.
 */

#ifndef TRACKFM_REMOTE_REMOTE_NODE_HH
#define TRACKFM_REMOTE_REMOTE_NODE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/network_model.hh"

namespace tfm
{

/** Request counters on the remote side. */
struct RemoteStats
{
    std::uint64_t fetchRequests = 0;     ///< inbound messages served
    std::uint64_t writebackRequests = 0; ///< outbound messages absorbed
    std::uint64_t fetchPayloads = 0;     ///< objects shipped (>= requests)
    std::uint64_t writebackPayloads = 0; ///< objects absorbed

    /** Element-wise sum (aggregating per-shard nodes). */
    RemoteStats &
    operator+=(const RemoteStats &other)
    {
        fetchRequests += other.fetchRequests;
        writebackRequests += other.writebackRequests;
        fetchPayloads += other.fetchPayloads;
        writebackPayloads += other.writebackPayloads;
        return *this;
    }
};

/** One object of a multi-object fetch message. */
struct RemoteFetchSeg
{
    std::uint64_t offset = 0; ///< far-heap byte offset
    std::byte *dst = nullptr; ///< local frame the payload lands in
    std::size_t len = 0;
};

/** One object of a multi-object writeback message. */
struct RemoteWriteSeg
{
    std::uint64_t offset = 0;
    const std::byte *src = nullptr;
    std::size_t len = 0;
};

/**
 * Flat backing store for the far heap.
 *
 * Addresses are offsets in [0, capacity). Reads (fetch) copy from the
 * store into a local frame; writes (writeback) copy a local frame into
 * the store. Network accounting is the caller's job via the helpers that
 * take the NetworkModel, keeping the store itself transport-agnostic.
 */
class RemoteNode
{
  public:
    explicit RemoteNode(std::uint64_t capacityBytes)
        : store(capacityBytes, std::byte{0})
    {}

    std::uint64_t capacity() const { return store.size(); }

    /**
     * Synchronously fetch @p len bytes at @p offset into @p dst, paying
     * the full network round trip.
     */
    void fetch(NetworkModel &net, std::uint64_t offset, std::byte *dst,
               std::size_t len);

    /**
     * Asynchronously fetch (prefetch). Data is copied immediately (the
     * store is in-process) but the returned arrival cycle tells the
     * runtime when the object may be marked present.
     *
     * @return absolute cycle of arrival.
     */
    std::uint64_t fetchAsync(NetworkModel &net, std::uint64_t offset,
                             std::byte *dst, std::size_t len);

    /**
     * Asynchronously fetch every segment of @p segs as ONE coalesced
     * network message (batched prefetch / coalesced demand window).
     *
     * @param arrivals when non-null, filled with the per-segment arrival
     *                 cycles: the response streams its payloads back in
     *                 order, so earlier segments are usable before the
     *                 batch completes.
     * @return absolute cycle at which the whole batch has arrived.
     */
    std::uint64_t fetchBatchAsync(NetworkModel &net,
                                  const std::vector<RemoteFetchSeg> &segs,
                                  std::vector<std::uint64_t> *arrivals = nullptr);

    /** Write @p len bytes at @p offset from @p src (evacuation). */
    void writeback(NetworkModel &net, std::uint64_t offset,
                   const std::byte *src, std::size_t len);

    /**
     * Absorb every segment of @p segs as ONE coalesced writeback
     * message (batched evacuation flush).
     */
    void writebackBatch(NetworkModel &net,
                        const std::vector<RemoteWriteSeg> &segs);

    /**
     * Populate the store directly, bypassing the network. Used only for
     * workload initialization, which the paper's figures exclude from
     * their measurement windows.
     */
    void rawWrite(std::uint64_t offset, const std::byte *src,
                  std::size_t len);

    /** Direct read for verification in tests (no accounting). */
    void rawRead(std::uint64_t offset, std::byte *dst, std::size_t len) const;

    const RemoteStats &stats() const { return _stats; }

  private:
    void checkRange(std::uint64_t offset, std::size_t len) const;

    std::vector<std::byte> store;
    RemoteStats _stats;
};

} // namespace tfm

#endif // TRACKFM_REMOTE_REMOTE_NODE_HH
