#include "remote_node.hh"

#include <cstring>

#include "sim/logging.hh"

namespace tfm
{

void
RemoteNode::checkRange(std::uint64_t offset, std::size_t len) const
{
    TFM_ASSERT(offset + len <= store.size(),
               "remote access out of backing-store range");
}

void
RemoteNode::fetch(NetworkModel &net, std::uint64_t offset, std::byte *dst,
                  std::size_t len)
{
    checkRange(offset, len);
    net.fetchSync(len);
    std::memcpy(dst, store.data() + offset, len);
    _stats.fetchRequests++;
}

std::uint64_t
RemoteNode::fetchAsync(NetworkModel &net, std::uint64_t offset,
                       std::byte *dst, std::size_t len)
{
    checkRange(offset, len);
    const std::uint64_t arrival = net.fetchAsync(len);
    std::memcpy(dst, store.data() + offset, len);
    _stats.fetchRequests++;
    return arrival;
}

void
RemoteNode::writeback(NetworkModel &net, std::uint64_t offset,
                      const std::byte *src, std::size_t len)
{
    checkRange(offset, len);
    net.writebackAsync(len);
    std::memcpy(store.data() + offset, src, len);
    _stats.writebackRequests++;
}

void
RemoteNode::rawWrite(std::uint64_t offset, const std::byte *src,
                     std::size_t len)
{
    checkRange(offset, len);
    std::memcpy(store.data() + offset, src, len);
}

void
RemoteNode::rawRead(std::uint64_t offset, std::byte *dst,
                    std::size_t len) const
{
    checkRange(offset, len);
    std::memcpy(dst, store.data() + offset, len);
}

} // namespace tfm
