#include "remote_node.hh"

#include <cstdio>
#include <cstring>

#include "obs/obs.hh"
#include "sim/logging.hh"

namespace tfm
{

namespace
{

/**
 * Mark one served request on the remote-node track of the link's trace
 * stream. @p at is when the request is known complete on the caller's
 * clock; the remote side has no clock of its own.
 */
void
observeServe(const NetworkModel &net, const char *name, std::uint64_t at,
             std::uint64_t payloads)
{
    Observability *obs = net.obs();
    if (!obs || !obs->trace().enabled())
        return;
    obs->trace().instant(net.obsStream(), TrackRemote + net.obsTrackBase(),
                         name, "remote", at);
    obs->trace().arg("payloads", payloads);
}

} // anonymous namespace

void
RemoteNode::checkRange(std::uint64_t offset, std::size_t len) const
{
    // Overflow-safe: a segment list is built offset-by-offset, so a bad
    // entry must name itself — multi-object messages would otherwise
    // die without saying which of their segments straddled the end.
    if (offset <= store.size() && len <= store.size() - offset)
        return;
    char msg[128];
    std::snprintf(msg, sizeof(msg),
                  "remote access out of backing-store range: offset %llu "
                  "len %zu capacity %zu",
                  static_cast<unsigned long long>(offset), len,
                  store.size());
    TFM_PANIC(msg);
}

void
RemoteNode::fetch(NetworkModel &net, std::uint64_t offset, std::byte *dst,
                  std::size_t len)
{
    checkRange(offset, len);
    net.fetchSync(len);
    std::memcpy(dst, store.data() + offset, len);
    _stats.fetchRequests++;
    _stats.fetchPayloads++;
    observeServe(net, "remote.fetch", net.now(), 1);
}

std::uint64_t
RemoteNode::fetchAsync(NetworkModel &net, std::uint64_t offset,
                       std::byte *dst, std::size_t len)
{
    checkRange(offset, len);
    const std::uint64_t arrival = net.fetchAsync(len);
    std::memcpy(dst, store.data() + offset, len);
    _stats.fetchRequests++;
    _stats.fetchPayloads++;
    observeServe(net, "remote.fetch", net.now(), 1);
    return arrival;
}

std::uint64_t
RemoteNode::fetchBatchAsync(NetworkModel &net,
                            const std::vector<RemoteFetchSeg> &segs,
                            std::vector<std::uint64_t> *arrivals)
{
    TFM_ASSERT(!segs.empty(), "empty remote fetch batch");
    std::uint64_t arrival;
    if (arrivals) {
        std::vector<std::uint64_t> sizes;
        sizes.reserve(segs.size());
        for (const RemoteFetchSeg &seg : segs) {
            checkRange(seg.offset, seg.len);
            sizes.push_back(seg.len);
        }
        arrival = net.fetchBatchAsyncSegmented(sizes, *arrivals);
    } else {
        std::uint64_t total = 0;
        for (const RemoteFetchSeg &seg : segs) {
            checkRange(seg.offset, seg.len);
            total += seg.len;
        }
        arrival = net.fetchBatchAsync(
            total, static_cast<std::uint32_t>(segs.size()));
    }
    for (const RemoteFetchSeg &seg : segs)
        std::memcpy(seg.dst, store.data() + seg.offset, seg.len);
    _stats.fetchRequests++;
    _stats.fetchPayloads += segs.size();
    observeServe(net, "remote.fetch", net.now(), segs.size());
    return arrival;
}

void
RemoteNode::writeback(NetworkModel &net, std::uint64_t offset,
                      const std::byte *src, std::size_t len)
{
    checkRange(offset, len);
    net.writebackAsync(len);
    std::memcpy(store.data() + offset, src, len);
    _stats.writebackRequests++;
    _stats.writebackPayloads++;
    observeServe(net, "remote.writeback", net.now(), 1);
}

void
RemoteNode::writebackBatch(NetworkModel &net,
                           const std::vector<RemoteWriteSeg> &segs)
{
    TFM_ASSERT(!segs.empty(), "empty remote writeback batch");
    std::uint64_t total = 0;
    for (const RemoteWriteSeg &seg : segs) {
        checkRange(seg.offset, seg.len);
        total += seg.len;
    }
    net.writebackBatch(total, static_cast<std::uint32_t>(segs.size()));
    for (const RemoteWriteSeg &seg : segs)
        std::memcpy(store.data() + seg.offset, seg.src, seg.len);
    _stats.writebackRequests++;
    _stats.writebackPayloads += segs.size();
    observeServe(net, "remote.writeback", net.now(), segs.size());
}

void
RemoteNode::rawWrite(std::uint64_t offset, const std::byte *src,
                     std::size_t len)
{
    checkRange(offset, len);
    std::memcpy(store.data() + offset, src, len);
}

void
RemoteNode::rawRead(std::uint64_t offset, std::byte *dst,
                    std::size_t len) const
{
    checkRange(offset, len);
    std::memcpy(dst, store.data() + offset, len);
}

} // namespace tfm
